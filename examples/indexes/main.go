// Indexes: build every index family over the same dataset with the bare
// constructor API and compare what each trades — accuracy, compute, I/O,
// memory, and storage. The paper's Sec. II taxonomy in one table.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"svdbench"
	"svdbench/internal/index"
)

func main() {
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)
	metric := ds.Spec.Metric

	type entry struct {
		name  string
		ix    svdbench.VectorIndex
		opts  svdbench.SearchOptions
		built time.Duration
	}
	var entries []entry
	add := func(name string, opts svdbench.SearchOptions, build func() (svdbench.VectorIndex, error)) {
		start := time.Now()
		ix, err := build()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		entries = append(entries, entry{name, ix, opts, time.Since(start)})
	}

	add("FLAT (exact)", svdbench.SearchOptions{}, func() (svdbench.VectorIndex, error) {
		return svdbench.NewFlat(ds.Vectors, metric, nil), nil
	})
	add("IVF_FLAT", svdbench.SearchOptions{NProbe: 6}, func() (svdbench.VectorIndex, error) {
		return svdbench.BuildIVF(ds.Vectors, nil, svdbench.IVFConfig{Metric: metric, Seed: 1})
	})
	add("IVF_PQ", svdbench.SearchOptions{NProbe: 6}, func() (svdbench.VectorIndex, error) {
		ix, err := svdbench.BuildIVF(ds.Vectors, nil, svdbench.IVFConfig{Metric: metric, Seed: 1, PQ: true})
		if err != nil {
			return nil, err
		}
		var page int64
		ix.AssignPages(func(n int64) int64 { p := page; page += n; return p })
		return ix, nil
	})
	add("HNSW", svdbench.SearchOptions{EfSearch: 20}, func() (svdbench.VectorIndex, error) {
		return svdbench.BuildHNSW(ds.Vectors, nil, svdbench.HNSWConfig{M: 16, EfConstruction: 200, Metric: metric, Seed: 1})
	})
	add("DISKANN", svdbench.SearchOptions{SearchList: 10, BeamWidth: 4}, func() (svdbench.VectorIndex, error) {
		ix, err := svdbench.BuildDiskANN(ds.Vectors, nil, svdbench.DiskANNConfig{Metric: metric, Seed: 1})
		if err != nil {
			return nil, err
		}
		var page int64
		ix.AssignPages(func(n int64) int64 { p := page; page += n; return p })
		return ix, nil
	})
	add("SPANN", svdbench.SearchOptions{NProbe: 3}, func() (svdbench.VectorIndex, error) {
		ix, err := svdbench.BuildSPANN(ds.Vectors, nil, svdbench.SPANNConfig{Metric: metric, Seed: 1})
		if err != nil {
			return nil, err
		}
		var page int64
		ix.AssignPages(func(n int64) int64 { p := page; page += n; return p })
		return ix, nil
	})

	fmt.Printf("index family comparison on %s (%d × %d-d vectors)\n\n", spec.Name, ds.Vectors.Len(), ds.Vectors.Dim)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index\tbuild\trecall@10\tfull dists\tPQ dists\tpages\tmemory KiB\tstorage KiB")
	for _, e := range entries {
		results := make([][]int32, ds.Queries.Len())
		var stats index.Stats
		for qi := range results {
			res := e.ix.Search(ds.Queries.Row(qi), svdbench.PaperK, e.opts)
			results[qi] = res.IDs
			stats.Add(res.Stats)
		}
		n := ds.Queries.Len()
		recall := svdbench.MeanRecallAtK(results, ds.GroundTruth, svdbench.PaperK)
		var memKiB, stoKiB int64
		if sr, ok := e.ix.(index.SizeReporter); ok {
			memKiB, stoKiB = sr.MemoryBytes()/1024, sr.StorageBytes()/1024
		}
		fmt.Fprintf(tw, "%s\t%v\t%.3f\t%d\t%d\t%d\t%d\t%d\n",
			e.name, e.built.Round(time.Millisecond), recall,
			stats.DistComps/n, stats.PQComps/n, stats.PagesRead/n, memKiB, stoKiB)
	}
	tw.Flush()
	fmt.Println("\n(storage-based indexes trade memory for SSD pages; quantised ones trade accuracy for bytes)")
}
