// I/O tracing: capture the block-layer trace of a DiskANN search workload
// (the paper's bpftrace methodology), write it to CSV, and analyse it —
// bandwidth timeline, request-size histogram, and the O-15 4 KiB check.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"svdbench"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/trace"
	"svdbench/internal/vdb"
)

func main() {
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)
	col, err := svdbench.NewCollection("iotrace", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })
	execs := col.RecordQueries(ds.Queries, svdbench.PaperK,
		svdbench.SearchOptions{SearchList: 10, BeamWidth: 4})

	// Run 8 query threads with a raw-record tracer attached to the
	// device — the equivalent of probing block_rq_issue.
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, 20)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	tr := trace.NewTracer(true)
	tr.SetBucket(20 * time.Millisecond)
	dev.Attach(tr)
	eng := vdb.NewEngine(k, cpu, dev, svdbench.Milvus())
	deadline := sim.Time(400 * time.Millisecond)
	next := 0
	for t := 0; t < 8; t++ {
		k.Spawn("query", func(e *sim.Env) {
			for e.Now() < deadline {
				qe := &execs[next]
				next++
				if next == len(execs) {
					next = 0
				}
				if err := eng.RunQuery(e, qe); err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	k.RunAll()

	// Persist the raw trace like the paper's artifact does.
	f, err := os.CreateTemp("", "svdbench-trace-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteCSV(f, tr.Records()); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("captured %d block requests → %s\n", len(tr.Records()), f.Name())

	// Analyse: totals, O-15, timeline.
	fmt.Println(tr.Summarize(400 * time.Millisecond))
	fmt.Printf("4 KiB fraction: %.4f%% (paper O-15: >99.99%%)\n\n", 100*tr.FractionOfSize(4096))
	fmt.Println("read bandwidth timeline (20ms buckets):")
	for _, p := range tr.Timeline() {
		bar := int(p.ReadMiBps(20*time.Millisecond)) / 4
		fmt.Printf("  %6dms %8.1f MiB/s %s\n",
			int64(time.Duration(p.Start)/time.Millisecond),
			p.ReadMiBps(20*time.Millisecond), bars(bar))
	}
	// Round-trip through the CSV reader, proving cmd/iostat compatibility.
	rf, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	records, err := trace.ReadCSV(rf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCSV round trip: %d records re-read (analyse offline with cmd/iostat)\n", len(records))
}

func bars(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
