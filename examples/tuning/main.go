// Tuning: the paper's Sec. VI workflow — sweep DiskANN's search_list and
// beam_width on one dataset and print the accuracy/performance/I-O
// trade-off, so an operator can pick the knee of the curve.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"svdbench"
)

func main() {
	var (
		dsName  = flag.String("dataset", "cohere-small", "catalog dataset")
		threads = flag.Int("threads", 4, "closed-loop query threads")
	)
	flag.Parse()

	spec, err := svdbench.CatalogSpec(*dsName, svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)
	col, err := svdbench.NewCollection("tuning", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })

	cfg := svdbench.RunConfig{Threads: *threads, Duration: 300 * time.Millisecond, Repetitions: 1}
	measure := func(opts svdbench.SearchOptions) (recall float64, m svdbench.Metrics) {
		execs := col.RecordQueries(ds.Queries, svdbench.PaperK, opts)
		ids := make([][]int32, len(execs))
		for i := range execs {
			ids[i] = execs[i].IDs
		}
		recall = svdbench.MeanRecallAtK(ids, ds.GroundTruth, svdbench.PaperK)
		return recall, svdbench.RunWorkload(execs, svdbench.Milvus(), cfg).Metrics
	}

	fmt.Printf("DiskANN tuning on %s (%d vectors, %d threads)\n\n", *dsName, col.Len(), *threads)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "search_list\trecall@10\tQPS\tP99\tKiB/query")
	for _, L := range []int{10, 20, 50, 100} {
		recall, m := measure(svdbench.SearchOptions{SearchList: L, BeamWidth: 4})
		fmt.Fprintf(tw, "%d\t%.3f\t%.0f\t%v\t%.1f\n", L, recall, m.QPS, m.P99, m.KiBPerQuery())
	}
	tw.Flush()
	fmt.Println("\n(the paper's O-16: accuracy gains diminish past search_list≈20 while cost keeps rising)")

	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "beam_width\trecall@10\tQPS\tP99\tKiB/query")
	for _, W := range []int{1, 2, 4, 8} {
		recall, m := measure(svdbench.SearchOptions{SearchList: 100, BeamWidth: W})
		fmt.Fprintf(tw, "%d\t%.3f\t%.0f\t%v\t%.1f\n", W, recall, m.QPS, m.P99, m.KiBPerQuery())
	}
	tw.Flush()
	fmt.Println("\n(wider beams fetch more pages per hop but take fewer hops — W=1 is best-first search)")
}
