// Persistence: build a collection once, save it, and restore it instantly —
// the data-persistence feature of full-fledged vector databases (Sec. II-C)
// and the mechanism behind the harness's index cache.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"svdbench"
	"svdbench/internal/vdb"
)

func main() {
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)

	// Build and checkpoint.
	buildStart := time.Now()
	col, err := svdbench.NewCollection("kb", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(buildStart)

	dir, err := os.MkdirTemp("", "svdbench-persist-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "kb.col")
	if err := col.Save(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("built in %v, checkpointed %d vectors to %s (%.1f KiB)\n",
		buildTime.Round(time.Millisecond), col.Len(), path, float64(info.Size())/1024)

	// Restore: vectors come from the dataset, structure from the file.
	loadStart := time.Now()
	restored, err := vdb.LoadCollection(path, ds.Vectors, svdbench.Milvus(), svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored in %v (%.0f× faster than building)\n",
		time.Since(loadStart).Round(time.Microsecond),
		float64(buildTime)/float64(time.Since(loadStart)))

	// Byte-identical behaviour.
	opts := svdbench.SearchOptions{SearchList: 10, BeamWidth: 4}
	var page int64
	alloc := func(n int64) int64 { p := page; page += n; return p }
	col.AssignStorage(alloc)
	page = 0
	restored.AssignStorage(alloc)
	same := 0
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		a := col.Search(ds.Queries.Row(qi), svdbench.PaperK, opts)
		b := restored.Search(ds.Queries.Row(qi), svdbench.PaperK, opts)
		if reflect.DeepEqual(a.IDs, b.IDs) {
			same++
		}
	}
	fmt.Printf("identical results on %d/%d queries\n", same, ds.Queries.Len())
}
