// RAG-style retrieval: the workload the paper's introduction motivates. A
// document corpus is embedded, stored with payloads in a vector collection,
// and queried for top-k context passages — including payload-filtered
// retrieval ("only docs from this source").
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"math/rand"

	"svdbench"
)

// doc is one knowledge-base entry.
type doc struct {
	Title  string
	Source string
	Text   string
}

// corpus is a miniature knowledge base; each topic cluster gets paraphrased
// variants so near-duplicates embed near each other.
func corpus() []doc {
	topics := []struct {
		source string
		base   string
	}{
		{"wiki", "solid state drives store data in NAND flash"},
		{"wiki", "NVMe queues allow parallel I/O submission"},
		{"wiki", "page cache keeps hot file data in DRAM"},
		{"blog", "vector databases index embeddings for similarity search"},
		{"blog", "HNSW graphs trade memory for low search latency"},
		{"blog", "DiskANN keeps compressed vectors in memory and graphs on SSD"},
		{"paper", "recall at ten measures approximate search accuracy"},
		{"paper", "beam search widens the frontier to hide I/O latency"},
	}
	var docs []doc
	for ti, t := range topics {
		for v := 0; v < 40; v++ {
			docs = append(docs, doc{
				Title:  fmt.Sprintf("%s-%d-v%d", t.source, ti, v),
				Source: t.source,
				Text:   fmt.Sprintf("%s (variant %d)", t.base, v),
			})
		}
	}
	return docs
}

// embed is a deterministic toy text embedder: topic words dominate the
// direction, variant noise perturbs it — enough structure for nearest
// neighbours to be meaningful.
func embed(text string, dim int) []float32 {
	h := fnv.New64a()
	h.Write([]byte(text))
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	v := make([]float32, dim)
	// Word-anchored components so shared words align vectors.
	words := 0
	start := 0
	for i := 0; i <= len(text); i++ {
		if i == len(text) || text[i] == ' ' {
			if i > start {
				wh := fnv.New64a()
				wh.Write([]byte(text[start:i]))
				wr := rand.New(rand.NewSource(int64(wh.Sum64())))
				for d := 0; d < dim; d++ {
					v[d] += float32(wr.NormFloat64())
				}
				words++
			}
			start = i + 1
		}
	}
	for d := 0; d < dim; d++ {
		v[d] += float32(r.NormFloat64()) * 0.2 // variant noise
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	scale := float32(1 / math.Sqrt(norm))
	for d := range v {
		v[d] *= scale
	}
	return v
}

func main() {
	const dim = 256
	docs := corpus()

	// Embed the corpus and load it with payloads into a Qdrant-profile
	// collection (monolithic HNSW, payload filters).
	vectors := svdbench.NewMatrix(len(docs), dim)
	payloads := make([]svdbench.Payload, len(docs))
	for i, d := range docs {
		vectors.SetRow(i, embed(d.Text, dim))
		payloads[i] = svdbench.Payload{"title": d.Title, "source": d.Source, "text": d.Text}
	}
	col, err := svdbench.NewCollection("rag-kb", dim, svdbench.Cosine,
		svdbench.Qdrant(), svdbench.IndexHNSW, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(vectors, payloads); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base: %d passages indexed\n", col.Len())

	retrieve := func(question string, opts svdbench.SearchOptions) {
		q := embed(question, dim)
		exec := col.Search(q, 3, opts)
		fmt.Printf("\nQ: %s\n", question)
		for rank, id := range exec.IDs {
			p := col.Payload(id)
			fmt.Printf("  %d. [%s] %s — %s\n", rank+1, p["source"], p["title"], p["text"])
		}
	}

	// Plain retrieval.
	retrieve("how does DiskANN use the SSD", svdbench.SearchOptions{EfSearch: 64})
	// Filtered retrieval: restrict the context to one source, the
	// payload-pushdown feature of Sec. II-C.
	retrieve("how do flash drives store data",
		svdbench.SearchOptions{EfSearch: 128, Filter: col.FilterEq("source", "wiki")})

	// Freshness: RAG knowledge bases update without retraining — insert a
	// new fact and retrieve it immediately.
	fresh := "zoned namespace SSDs expose append-only regions"
	id, err := col.Insert(embed(fresh, dim), svdbench.Payload{"title": "news-0", "source": "news", "text": fresh})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted fresh passage id=%d\n", id)
	retrieve("what are zoned namespace SSDs", svdbench.SearchOptions{EfSearch: 64})
}
