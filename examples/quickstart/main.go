// Quickstart: build a vector collection, search it, and measure it on the
// simulated NVMe testbed — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"svdbench"
)

func main() {
	// 1. A synthetic embedding dataset with exact ground truth. The
	// catalog mirrors the paper's Cohere/OpenAI corpora; tiny scale keeps
	// this example instant.
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)
	fmt.Printf("dataset: %d vectors × %d dims, %d queries\n",
		ds.Vectors.Len(), ds.Vectors.Dim, ds.Queries.Len())

	// 2. A collection under Milvus's engine traits with the
	// storage-based DiskANN index (the paper's headline setup).
	col, err := svdbench.NewCollection("quickstart", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })
	fmt.Printf("collection: %d vectors in %d segment(s)\n", col.Len(), len(col.Segments()))

	// 3. Search it directly and check recall against ground truth.
	opts := svdbench.SearchOptions{SearchList: 10, BeamWidth: 4}
	results := make([][]int32, ds.Queries.Len())
	for qi := range results {
		results[qi] = col.Search(ds.Queries.Row(qi), svdbench.PaperK, opts).IDs
	}
	recall := svdbench.MeanRecallAtK(results, ds.GroundTruth, svdbench.PaperK)
	fmt.Printf("recall@10 at search_list=10: %.3f\n", recall)

	// 4. Record executions and replay them on the simulated testbed:
	// 16 closed-loop query threads against a 20-core CPU and a
	// Samsung-990-Pro-like SSD model.
	execs := col.RecordQueries(ds.Queries, svdbench.PaperK, opts)
	out := svdbench.RunWorkload(execs, svdbench.Milvus(), svdbench.RunConfig{
		Threads:     16,
		Duration:    500 * time.Millisecond,
		Repetitions: 1,
	})
	m := out.Metrics
	fmt.Printf("simulated: %.0f QPS, P99 %v, %.1f MiB/s read, %.1f KiB/query, CPU %.0f%%\n",
		m.QPS, m.P99, m.ReadMiBps, m.KiBPerQuery(), 100*m.CPUUtil)
	fmt.Printf("I/O granularity: %.2f%% of requests are 4 KiB (the paper's O-15)\n", 100*m.Frac4KiB)
}
