// Benchmarks regenerating every table and figure of the paper, one
// testing.B target per artefact. They run the same experiment code as
// cmd/annbench at the tiny dataset scale so `go test -bench=.` finishes in
// minutes; use the harness for full-scale runs:
//
//	go run ./cmd/annbench -experiment fig2 -scale repro
//
// The first iteration of each benchmark pays dataset generation, index
// construction and tuning; the shared bench memoises those across targets,
// mirroring how the paper's scripts reuse built indexes.
package svdbench

import (
	"io"
	"sync"
	"testing"
	"time"

	"svdbench/internal/core"
	"svdbench/internal/dataset"
)

var (
	benchOnce sync.Once
	benchInst *core.Bench
)

// sharedBench returns the process-wide bench at tiny scale with fast cells.
func sharedBench() *core.Bench {
	benchOnce.Do(func() {
		benchInst = core.NewBench(dataset.ScaleTiny, "")
		benchInst.RunDefaults = core.RunConfig{
			Duration:    150 * time.Millisecond,
			Repetitions: 1,
			Cores:       20,
		}
	})
	return benchInst
}

// runExperiment drives one registry entry b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := core.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	bench := sharedBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(bench, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SSDCalibration(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2ParameterTuning(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkFig2Throughput(b *testing.B)            { runExperiment(b, "fig2") }
func BenchmarkFig3Latency(b *testing.B)               { runExperiment(b, "fig3") }
func BenchmarkFig4CPU(b *testing.B)                   { runExperiment(b, "fig4") }
func BenchmarkFig5BandwidthTimeline(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFig6PerQueryBandwidth(b *testing.B)     { runExperiment(b, "fig6") }
func BenchmarkFig7SearchListThroughput(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8SearchListLatency(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9SearchListRecall(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10SearchListBandwidth(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11SearchListPerQueryBW(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12BeamWidthThroughput(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13BeamWidthLatency(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14BeamWidthBandwidth(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkFig15BeamWidthPerQueryBW(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkExtAHybridWorkload(b *testing.B)        { runExperiment(b, "extA") }
func BenchmarkExtBFilteredSearch(b *testing.B)        { runExperiment(b, "extB") }
func BenchmarkExtCAblation(b *testing.B)              { runExperiment(b, "extC") }
func BenchmarkExtDSPANN(b *testing.B)                 { runExperiment(b, "extD") }
func BenchmarkExtECache(b *testing.B)                 { runExperiment(b, "cache") }
func BenchmarkExtFPipeline(b *testing.B)              { runExperiment(b, "pipeline") }

// --- Micro-benchmarks of the core building blocks ---

var (
	microOnce  sync.Once
	microStack *core.Stack
)

func microDiskANN(b *testing.B) *core.Stack {
	b.Helper()
	microOnce.Do(func() {
		st, err := sharedBench().Stack("cohere-small", milvusDiskANNSetup())
		if err != nil {
			panic(err)
		}
		microStack = st
	})
	return microStack
}

func milvusDiskANNSetup() Setup {
	return Setup{Engine: Milvus(), Index: IndexDiskANN}
}

// BenchmarkDiskANNQuery measures one real beam-search query.
func BenchmarkDiskANNQuery(b *testing.B) {
	st := microDiskANN(b)
	ds := st.Dataset
	opts := SearchOptions{SearchList: 10, BeamWidth: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries.Row(i % ds.Queries.Len())
		st.Col.Search(q, PaperK, opts)
	}
}

// BenchmarkReplayQuery measures one simulated query execution end to end.
func BenchmarkReplayQuery(b *testing.B) {
	st := microDiskANN(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := RunWorkload(st.Execs, Milvus(), RunConfig{
			Threads: 4, Duration: 20 * time.Millisecond, Repetitions: 1, Cores: 20,
		})
		if out.Metrics.Served == 0 {
			b.Fatal("no queries served")
		}
	}
}
