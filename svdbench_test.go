package svdbench

import (
	"testing"
	"time"
)

// TestPublicAPIEndToEnd walks the complete public surface the way
// examples/quickstart does: dataset → collection → direct search → recall →
// record → simulate.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec, err := CatalogSpec("cohere-small", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateDataset(spec)
	if ds.Vectors.Dim != 768 {
		t.Fatalf("dim = %d", ds.Vectors.Dim)
	}
	col, err := NewCollection("t", ds.Spec.Dim, ds.Spec.Metric, Milvus(), IndexDiskANN, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })

	opts := SearchOptions{SearchList: 10, BeamWidth: 4}
	results := make([][]int32, ds.Queries.Len())
	for qi := range results {
		results[qi] = col.Search(ds.Queries.Row(qi), PaperK, opts).IDs
	}
	recall := MeanRecallAtK(results, ds.GroundTruth, PaperK)
	if recall < 0.85 {
		t.Errorf("recall = %v", recall)
	}

	execs := col.RecordQueries(ds.Queries, PaperK, opts)
	out := RunWorkload(execs, Milvus(), RunConfig{Threads: 4, Duration: 100 * time.Millisecond, Repetitions: 1})
	if out.Metrics.QPS <= 0 || out.Metrics.ReadMiBps <= 0 {
		t.Errorf("simulation produced no work: %+v", out.Metrics)
	}
	if out.Metrics.Frac4KiB != 1 {
		t.Errorf("4KiB fraction = %v", out.Metrics.Frac4KiB)
	}
}

func TestPublicConstantsAndRegistry(t *testing.T) {
	if len(PaperSetups()) != 7 {
		t.Error("setups wrong")
	}
	if len(CatalogNames()) != 4 {
		t.Error("catalog wrong")
	}
	if len(Experiments()) != 23 {
		t.Error("registry wrong")
	}
	if _, err := ExperimentByID("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := EngineByName("milvus"); err != nil {
		t.Error(err)
	}
	for _, k := range []IndexKind{IndexIVFFlat, IndexIVFPQ, IndexHNSW, IndexHNSWSQ, IndexDiskANN} {
		supported := false
		for _, s := range PaperSetups() {
			if s.Index == k {
				supported = true
			}
		}
		if !supported {
			t.Errorf("index kind %s not covered by paper setups", k)
		}
	}
}

func TestNewBenchDefaults(t *testing.T) {
	b := NewBench(ScaleTiny, "")
	if b == nil {
		t.Fatal("nil bench")
	}
	if _, err := b.Dataset("cohere-small"); err != nil {
		t.Fatal(err)
	}
}
