// Package dataset provides the vector workloads for the benchmark: seeded
// synthetic embedding datasets shaped like the paper's Cohere (768-d) and
// OpenAI (1536-d) corpora, exact brute-force ground truth, and recall@k.
//
// The real corpora are not redistributable and far exceed what pure-Go index
// construction can handle in this environment, so the generator substitutes
// a Gaussian mixture: cluster centres drawn on the unit sphere, points
// scattered around them with per-cluster spread, then L2-normalised. This
// keeps the two properties the paper's results depend on — realistic
// clusteredness (which drives recall/parameter-tuning behaviour) and the
// original dimensionalities (which drive bytes-per-vector and therefore I/O
// granularity) — while scaling counts down. Every dataset keeps the paper's
// 10× small→large ratio.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"svdbench/internal/vec"
)

// Spec describes a synthetic dataset deterministically: the same spec always
// generates bit-identical data.
type Spec struct {
	Name       string
	N          int // number of base vectors
	Dim        int
	NumQueries int
	Clusters   int // Gaussian mixture components
	Spread     float64
	Seed       int64
	Metric     vec.Metric
	GroundK    int // neighbours per query in the ground truth
}

// Dataset is a generated workload: base vectors, query vectors, and exact
// top-GroundK nearest neighbours for every query.
type Dataset struct {
	Spec        Spec
	Vectors     *vec.Matrix
	Queries     *vec.Matrix
	GroundTruth [][]int32
}

// DefaultGroundK is the ground-truth depth kept per query; recall@k is
// supported for any k up to this.
const DefaultGroundK = 100

// Generate builds the dataset described by spec, including ground truth
// (computed exactly, in parallel across queries).
func Generate(spec Spec) *Dataset {
	if spec.N <= 0 || spec.Dim <= 0 || spec.NumQueries <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec %+v", spec))
	}
	if spec.Clusters <= 0 {
		spec.Clusters = 64
	}
	if spec.Spread <= 0 {
		spec.Spread = 0.9
	}
	if spec.GroundK <= 0 {
		spec.GroundK = DefaultGroundK
	}
	if spec.GroundK > spec.N {
		spec.GroundK = spec.N
	}
	r := rand.New(rand.NewSource(spec.Seed))

	// Cluster centres are generated hierarchically — superclusters on the
	// sphere, clusters scattered around them — because real embedding
	// corpora have topic hierarchies: clusters of one topic family sit
	// closer to each other than to the rest. This multi-scale similarity
	// structure is what gives graph traversals a navigation gradient;
	// mutually orthogonal centres (a flat mixture in high dimensions)
	// would be a pathological, unrealistically unnavigable geometry.
	superCount := (spec.Clusters + 7) / 8
	supers := vec.NewMatrix(superCount, spec.Dim)
	for c := 0; c < superCount; c++ {
		row := supers.Row(c)
		for i := range row {
			row[i] = float32(r.NormFloat64())
		}
		vec.Normalize(row)
	}
	superSigma := 0.7 / math.Sqrt(float64(spec.Dim))
	centers := vec.NewMatrix(spec.Clusters, spec.Dim)
	for c := 0; c < spec.Clusters; c++ {
		row := centers.Row(c)
		super := supers.Row(c % superCount)
		for i := range row {
			row[i] = super[i] + float32(r.NormFloat64()*superSigma)
		}
		vec.Normalize(row)
	}
	// Zipf-ish skew over clusters, like topical text corpora.
	weights := make([]float64, spec.Clusters)
	var wsum float64
	for c := range weights {
		weights[c] = 1 / float64(c+1)
		wsum += weights[c]
	}
	cum := make([]float64, spec.Clusters)
	acc := 0.0
	for c := range weights {
		acc += weights[c] / wsum
		cum[c] = acc
	}
	pick := func() int {
		x := r.Float64()
		i := sort.SearchFloat64s(cum, x)
		if i >= spec.Clusters {
			i = spec.Clusters - 1
		}
		return i
	}

	// Spread is the expected noise norm relative to the (unit) cluster
	// centre: a Spread of 0.9 yields intra-cluster cosine similarities
	// around 0.55–0.7, the range real text-embedding corpora exhibit for
	// related passages.
	//
	// Two further properties of real embedding geometry are modelled
	// because graph-index navigability depends on them:
	//
	//   - Each point blends a primary centre with a random secondary one
	//     (documents mix topics); the bridge points this creates give
	//     greedy traversals a gradient between clusters.
	//   - Noise is low-rank (intrinsic dimension ≈ 48, like the rapidly
	//     decaying spectra of transformer embeddings), not full-rank
	//     isotropic: full-dimensional noise would make local geometry
	//     maximally unnavigable regardless of dataset.
	noiseRank := 48
	if noiseRank > spec.Dim {
		noiseRank = spec.Dim
	}
	basis := vec.NewMatrix(noiseRank, spec.Dim)
	for b := 0; b < noiseRank; b++ {
		row := basis.Row(b)
		for i := range row {
			row[i] = float32(r.NormFloat64())
		}
		vec.Normalize(row)
	}
	sigma := spec.Spread / math.Sqrt(float64(noiseRank))
	coeff := make([]float32, noiseRank)
	sample := func(m *vec.Matrix, i int) {
		c := pick()
		center := centers.Row(c)
		second := centers.Row(pick())
		w2 := float32(r.Float64() * 0.6)
		for b := range coeff {
			coeff[b] = float32(r.NormFloat64() * sigma)
		}
		row := m.Row(i)
		for j := range row {
			row[j] = center[j] + w2*second[j]
		}
		for b := 0; b < noiseRank; b++ {
			brow := basis.Row(b)
			cb := coeff[b]
			for j := range row {
				row[j] += cb * brow[j]
			}
		}
		vec.Normalize(row)
	}

	vectors := vec.NewMatrix(spec.N, spec.Dim)
	for i := 0; i < spec.N; i++ {
		sample(vectors, i)
	}
	queries := vec.NewMatrix(spec.NumQueries, spec.Dim)
	for i := 0; i < spec.NumQueries; i++ {
		sample(queries, i)
	}

	ds := &Dataset{Spec: spec, Vectors: vectors, Queries: queries}
	ds.GroundTruth = BruteForce(vectors, queries, spec.Metric, spec.GroundK)
	return ds
}

// BruteForce computes the exact top-k neighbours of every query over the
// base vectors, parallelised across queries with real goroutines (this is
// preprocessing, not simulated work).
func BruteForce(base, queries *vec.Matrix, metric vec.Metric, k int) [][]int32 {
	nq := queries.Len()
	out := make([][]int32, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, nq)
	for q := 0; q < nq; q++ {
		next <- q
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range next {
				out[q] = topK(base, queries.Row(q), metric, k)
			}
		}()
	}
	wg.Wait()
	return out
}

// topK returns the ids of the k closest base vectors to query, ordered from
// closest to farthest.
func topK(base *vec.Matrix, query []float32, metric vec.Metric, k int) []int32 {
	n := base.Len()
	if k > n {
		k = n
	}
	type cand struct {
		id   int32
		dist float32
	}
	// Bounded max-heap over the k best.
	heapArr := make([]cand, 0, k)
	less := func(i, j int) bool { // max-heap by distance
		if heapArr[i].dist != heapArr[j].dist {
			return heapArr[i].dist > heapArr[j].dist
		}
		return heapArr[i].id > heapArr[j].id
	}
	down := func(i int) {
		for {
			l, rr := 2*i+1, 2*i+2
			big := i
			if l < len(heapArr) && less(l, big) {
				big = l
			}
			if rr < len(heapArr) && less(rr, big) {
				big = rr
			}
			if big == i {
				return
			}
			heapArr[i], heapArr[big] = heapArr[big], heapArr[i]
			i = big
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(i, p) {
				return
			}
			heapArr[i], heapArr[p] = heapArr[p], heapArr[i]
			i = p
		}
	}
	for id := 0; id < n; id++ {
		d := vec.Distance(metric, query, base.Row(id))
		if len(heapArr) < k {
			heapArr = append(heapArr, cand{int32(id), d})
			up(len(heapArr) - 1)
		} else if d < heapArr[0].dist || (d == heapArr[0].dist && int32(id) < heapArr[0].id) {
			heapArr[0] = cand{int32(id), d}
			down(0)
		}
	}
	sort.Slice(heapArr, func(i, j int) bool {
		if heapArr[i].dist != heapArr[j].dist {
			return heapArr[i].dist < heapArr[j].dist
		}
		return heapArr[i].id < heapArr[j].id
	})
	ids := make([]int32, len(heapArr))
	for i, c := range heapArr {
		ids[i] = c.id
	}
	return ids
}

// RecallAtK returns |result ∩ truth[:k]| / k for one query.
func RecallAtK(result []int32, truth []int32, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(truth) {
		k = len(truth)
	}
	want := make(map[int32]struct{}, k)
	for _, id := range truth[:k] {
		want[id] = struct{}{}
	}
	hit := 0
	n := k
	if n > len(result) {
		n = len(result)
	}
	for _, id := range result[:n] {
		if _, ok := want[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// MeanRecallAtK averages RecallAtK over all queries.
func MeanRecallAtK(results [][]int32, truth [][]int32, k int) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for i := range results {
		sum += RecallAtK(results[i], truth[i], k)
	}
	return sum / float64(len(results))
}
