package dataset

import (
	"fmt"
	"sort"

	"svdbench/internal/vec"
)

// Scale selects how large the catalog datasets are relative to the paper's
// originals. The paper used Cohere 1M/10M (768-d) and OpenAI 500K/5M
// (1536-d); pure-Go index construction cannot reach those counts in this
// environment, so the catalog keeps dimensions and the 10× small→large
// ratio while shrinking counts by a fixed factor.
type Scale string

const (
	// ScaleTiny is for unit tests and -quick runs.
	ScaleTiny Scale = "tiny"
	// ScaleSmall is for fast interactive experiments.
	ScaleSmall Scale = "small"
	// ScaleRepro is the default experiment scale (1/200 of the paper).
	ScaleRepro Scale = "repro"
)

// scaleDiv maps a scale to the divisor applied to the paper's vector counts.
var scaleDiv = map[Scale]int{
	ScaleTiny:  5000,
	ScaleSmall: 1000,
	ScaleRepro: 200,
}

// queriesFor returns the query-set size per scale; the paper uses 1 000
// query vectors (Sec. III-B).
func queriesFor(s Scale) int {
	switch s {
	case ScaleTiny:
		return 50
	case ScaleSmall:
		return 500
	default:
		return 1000
	}
}

// CatalogNames lists the paper's four datasets in presentation order.
func CatalogNames() []string {
	return []string{"cohere-small", "cohere-large", "openai-small", "openai-large"}
}

// SegmentCapacityFor returns the Milvus segment capacity matching a scale.
// Milvus's real sealed-segment size (512 MiB ≈ 170 k 768-d vectors) puts the
// paper's datasets at roughly 6 and 60 segments; scaling the capacity with
// the divisor preserves those segment counts, which drive the paper's O-14
// (per-query I/O grows ≈10× with 10× data because every query fans out
// across every segment).
func SegmentCapacityFor(s Scale) int {
	switch s {
	case ScaleTiny:
		return 64
	case ScaleSmall:
		return 320
	default:
		return 1600
	}
}

// paperCounts holds the paper's original vector counts.
var paperCounts = map[string]int{
	"cohere-small": 1_000_000,  // Cohere 1M
	"cohere-large": 10_000_000, // Cohere 10M
	"openai-small": 500_000,    // OpenAI 500K
	"openai-large": 5_000_000,  // OpenAI 5M
}

var paperDims = map[string]int{
	"cohere-small": 768,
	"cohere-large": 768,
	"openai-small": 1536,
	"openai-large": 1536,
}

// CatalogSpec returns the Spec for one named dataset at the given scale.
func CatalogSpec(name string, s Scale) (Spec, error) {
	n, ok := paperCounts[name]
	if !ok {
		names := CatalogNames()
		sort.Strings(names)
		return Spec{}, fmt.Errorf("dataset: unknown name %q (have %v)", name, names)
	}
	div, ok := scaleDiv[s]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown scale %q", s)
	}
	count := n / div
	if count < 200 {
		count = 200
	}
	return Spec{
		Name:       fmt.Sprintf("%s@%s", name, s),
		N:          count,
		Dim:        paperDims[name],
		NumQueries: queriesFor(s),
		Clusters:   64,
		Spread:     0.9,
		Seed:       seedFor(name),
		Metric:     vec.Cosine,
		GroundK:    DefaultGroundK,
	}, nil
}

// seedFor derives a stable per-dataset seed so every dataset differs but
// regenerates identically.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// PaperCount returns the paper's original vector count for a dataset name.
func PaperCount(name string) int { return paperCounts[name] }
