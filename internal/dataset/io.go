package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"svdbench/internal/vec"
)

// File format: a little-endian binary layout with a magic header, the spec,
// then vectors, queries and ground truth. The format exists so expensive
// ground-truth computation is paid once per spec and reused across harness
// invocations.

const fileMagic = "SVDBDS01"

// CachePath returns the cache file name for a spec inside dir. Every field
// that shapes the generated data participates, so changing the generator's
// parameters can never resurrect stale caches.
func CachePath(dir string, spec Spec) string {
	return filepath.Join(dir, fmt.Sprintf("%s-n%d-d%d-q%d-k%d-s%d-c%d-sp%03d.ds",
		sanitize(spec.Name), spec.N, spec.Dim, spec.NumQueries, spec.GroundK, spec.Seed,
		spec.Clusters, int(spec.Spread*100)))
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// LoadOrGenerate returns the dataset for spec, reading it from the cache
// directory when present and generating + caching it otherwise. An empty dir
// disables caching.
func LoadOrGenerate(dir string, spec Spec) (*Dataset, error) {
	if dir == "" {
		return Generate(spec), nil
	}
	path := CachePath(dir, spec)
	if ds, err := ReadFile(path); err == nil {
		return ds, nil
	}
	ds := Generate(spec)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: create cache dir: %w", err)
	}
	if err := WriteFile(path, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteFile stores the dataset at path atomically.
func WriteFile(path string, ds *Dataset) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := encode(w, ds); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: encode: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: close: %w", err)
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a dataset previously stored with WriteFile.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(bufio.NewReaderSize(f, 1<<20))
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("bad string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeFloats(w io.Writer, data []float32) error {
	buf := make([]byte, 8192)
	for len(data) > 0 {
		n := len(buf) / 4
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(data[i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

func readFloats(r io.Reader, data []float32) error {
	buf := make([]byte, 8192)
	for len(data) > 0 {
		n := len(buf) / 4
		if n > len(data) {
			n = len(data)
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		data = data[n:]
	}
	return nil
}

func encode(w io.Writer, ds *Dataset) error {
	if _, err := io.WriteString(w, fileMagic); err != nil {
		return err
	}
	if err := writeString(w, ds.Spec.Name); err != nil {
		return err
	}
	hdr := []int64{
		int64(ds.Spec.N), int64(ds.Spec.Dim), int64(ds.Spec.NumQueries),
		int64(ds.Spec.Clusters), int64(math.Float64bits(ds.Spec.Spread)),
		ds.Spec.Seed, int64(ds.Spec.Metric), int64(ds.Spec.GroundK),
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := writeFloats(w, ds.Vectors.Raw()); err != nil {
		return err
	}
	if err := writeFloats(w, ds.Queries.Raw()); err != nil {
		return err
	}
	for _, gt := range ds.GroundTruth {
		if err := binary.Write(w, binary.LittleEndian, int32(len(gt))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, gt); err != nil {
			return err
		}
	}
	return nil
}

func decode(r io.Reader) (*Dataset, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	hdr := make([]int64, 8)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	spec := Spec{
		Name:       name,
		N:          int(hdr[0]),
		Dim:        int(hdr[1]),
		NumQueries: int(hdr[2]),
		Clusters:   int(hdr[3]),
		Spread:     math.Float64frombits(uint64(hdr[4])),
		Seed:       hdr[5],
		Metric:     vec.Metric(hdr[6]),
		GroundK:    int(hdr[7]),
	}
	if spec.N <= 0 || spec.Dim <= 0 || spec.NumQueries <= 0 || spec.N > 1<<31 {
		return nil, fmt.Errorf("dataset: corrupt header %+v", spec)
	}
	vectors := vec.NewMatrix(spec.N, spec.Dim)
	if err := readFloats(r, vectors.Raw()); err != nil {
		return nil, err
	}
	queries := vec.NewMatrix(spec.NumQueries, spec.Dim)
	if err := readFloats(r, queries.Raw()); err != nil {
		return nil, err
	}
	gt := make([][]int32, spec.NumQueries)
	for i := range gt {
		var n int32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n < 0 || int(n) > spec.N {
			return nil, fmt.Errorf("dataset: corrupt ground truth length %d", n)
		}
		gt[i] = make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, gt[i]); err != nil {
			return nil, err
		}
	}
	return &Dataset{Spec: spec, Vectors: vectors, Queries: queries, GroundTruth: gt}, nil
}
