package dataset

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"svdbench/internal/vec"
)

func tinySpec() Spec {
	return Spec{
		Name: "test", N: 500, Dim: 16, NumQueries: 20,
		Clusters: 8, Spread: 0.3, Seed: 42, Metric: vec.Cosine, GroundK: 10,
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	a := Generate(tinySpec())
	b := Generate(tinySpec())
	if a.Vectors.Len() != 500 || a.Vectors.Dim != 16 {
		t.Fatalf("vectors %dx%d", a.Vectors.Len(), a.Vectors.Dim)
	}
	if a.Queries.Len() != 20 {
		t.Fatalf("queries %d", a.Queries.Len())
	}
	if !reflect.DeepEqual(a.Vectors.Raw(), b.Vectors.Raw()) {
		t.Error("same spec produced different vectors")
	}
	if !reflect.DeepEqual(a.GroundTruth, b.GroundTruth) {
		t.Error("same spec produced different ground truth")
	}
}

func TestGeneratedVectorsNormalized(t *testing.T) {
	ds := Generate(tinySpec())
	for i := 0; i < ds.Vectors.Len(); i += 50 {
		n := vec.Norm(ds.Vectors.Row(i))
		if math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("vector %d has norm %v", i, n)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s1 := tinySpec()
	s2 := tinySpec()
	s2.Seed = 43
	a, b := Generate(s1), Generate(s2)
	if reflect.DeepEqual(a.Vectors.Raw(), b.Vectors.Raw()) {
		t.Error("different seeds produced identical vectors")
	}
}

func TestGroundTruthIsExact(t *testing.T) {
	ds := Generate(tinySpec())
	// Re-verify query 0 by exhaustive scan.
	q := ds.Queries.Row(0)
	best := int32(-1)
	bestD := float32(math.Inf(1))
	for i := 0; i < ds.Vectors.Len(); i++ {
		d := vec.Distance(ds.Spec.Metric, q, ds.Vectors.Row(i))
		if d < bestD {
			bestD, best = d, int32(i)
		}
	}
	if ds.GroundTruth[0][0] != best {
		t.Errorf("nearest = %d, ground truth says %d", best, ds.GroundTruth[0][0])
	}
	if len(ds.GroundTruth[0]) != 10 {
		t.Errorf("ground truth depth = %d, want 10", len(ds.GroundTruth[0]))
	}
}

func TestGroundTruthSortedByDistance(t *testing.T) {
	ds := Generate(tinySpec())
	for qi, gt := range ds.GroundTruth {
		q := ds.Queries.Row(qi)
		prev := float32(math.Inf(-1))
		for _, id := range gt {
			d := vec.Distance(ds.Spec.Metric, q, ds.Vectors.Row(int(id)))
			if d < prev-1e-6 {
				t.Fatalf("query %d: ground truth not sorted", qi)
			}
			prev = d
		}
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	base := vec.MatrixFromRows([][]float32{{1, 0}, {0, 1}})
	got := topK(base, []float32{1, 0}, vec.L2, 10)
	if len(got) != 2 || got[0] != 0 {
		t.Errorf("topK = %v", got)
	}
}

// Property: brute-force top-k always contains the single nearest neighbour
// found by direct scan, and ids are unique.
func TestPropertyBruteForceContainsNearest(t *testing.T) {
	f := func(seed int64) bool {
		spec := tinySpec()
		spec.N = 120
		spec.NumQueries = 4
		spec.Seed = seed
		ds := Generate(spec)
		for qi := 0; qi < spec.NumQueries; qi++ {
			seen := map[int32]bool{}
			for _, id := range ds.GroundTruth[qi] {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRecallAtK(t *testing.T) {
	truth := []int32{1, 2, 3, 4, 5}
	if r := RecallAtK([]int32{1, 2, 3}, truth, 3); r != 1 {
		t.Errorf("perfect recall = %v", r)
	}
	if r := RecallAtK([]int32{1, 9, 8}, truth, 3); math.Abs(r-1.0/3.0) > 1e-9 {
		t.Errorf("recall = %v, want 1/3", r)
	}
	if r := RecallAtK(nil, truth, 3); r != 0 {
		t.Errorf("empty result recall = %v", r)
	}
	if r := RecallAtK([]int32{1}, truth, 0); r != 0 {
		t.Errorf("k=0 recall = %v", r)
	}
	// k larger than truth depth clamps.
	if r := RecallAtK([]int32{1, 2, 3, 4, 5}, truth, 10); r != 1 {
		t.Errorf("clamped recall = %v", r)
	}
}

func TestMeanRecallAtK(t *testing.T) {
	res := [][]int32{{1, 2}, {9, 9}}
	truth := [][]int32{{1, 2}, {1, 2}}
	if m := MeanRecallAtK(res, truth, 2); m != 0.5 {
		t.Errorf("mean recall = %v, want 0.5", m)
	}
	if m := MeanRecallAtK(nil, nil, 2); m != 0 {
		t.Errorf("empty mean recall = %v", m)
	}
}

func TestCatalogSpecs(t *testing.T) {
	for _, name := range CatalogNames() {
		spec, err := CatalogSpec(name, ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Dim != paperDims[name] {
			t.Errorf("%s dim = %d", name, spec.Dim)
		}
	}
	// 10x ratio preserved at every scale.
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleRepro} {
		small, _ := CatalogSpec("cohere-small", s)
		large, _ := CatalogSpec("cohere-large", s)
		ratio := float64(large.N) / float64(small.N)
		if ratio < 9.5 || ratio > 10.5 {
			t.Errorf("scale %s: cohere ratio = %v, want 10", s, ratio)
		}
	}
	if _, err := CatalogSpec("nope", ScaleTiny); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := CatalogSpec("cohere-small", Scale("nope")); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	if seedFor("a") != seedFor("a") {
		t.Error("seedFor not stable")
	}
	if seedFor("cohere-small") == seedFor("cohere-large") {
		t.Error("seedFor collision")
	}
}

func TestRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	ds := Generate(tinySpec())
	path := filepath.Join(dir, "x.ds")
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spec, ds.Spec) {
		t.Errorf("spec mismatch: %+v vs %+v", got.Spec, ds.Spec)
	}
	if !reflect.DeepEqual(got.Vectors.Raw(), ds.Vectors.Raw()) {
		t.Error("vectors mismatch after round trip")
	}
	if !reflect.DeepEqual(got.GroundTruth, ds.GroundTruth) {
		t.Error("ground truth mismatch after round trip")
	}
}

func TestLoadOrGenerateUsesCache(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	a, err := LoadOrGenerate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadOrGenerate(dir, spec) // second call must hit the cache
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Vectors.Raw(), b.Vectors.Raw()) {
		t.Error("cache round trip changed data")
	}
	// Empty dir disables caching but still works.
	c, err := LoadOrGenerate("", spec)
	if err != nil || c.Vectors.Len() != spec.N {
		t.Errorf("no-cache path failed: %v", err)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ds")
	if err := WriteFile(path+".orig", Generate(tinySpec())); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("NOTMAGIC-and-some-junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c@d"); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}
