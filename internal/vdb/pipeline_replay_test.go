package vdb

import (
	"testing"
	"time"

	"svdbench/internal/index"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/trace"
)

// runTimed replays one QueryExec on a fresh neutral engine and returns the
// elapsed virtual time plus the tracer that watched the device.
func runTimed(t *testing.T, qe *QueryExec, batched bool) (sim.Duration, *trace.Tracer) {
	t.Helper()
	h := newEngineHarness(Traits{Name: "neutral"})
	if batched {
		h.eng.SetBatcher(ssd.NewBatcher(h.dev))
	}
	tr := trace.NewTracer(false)
	h.dev.Attach(tr)
	var elapsed sim.Duration
	h.k.Spawn("q", func(e *sim.Env) {
		start := e.Now()
		if err := h.eng.RunQuery(e, qe); err != nil {
			t.Errorf("query failed: %v", err)
		}
		elapsed = e.Now().Sub(start)
	})
	end := h.k.RunAll()
	tr.FinishAt(end)
	return elapsed, tr
}

// pipelinedExec is a two-hop beam query where hop 1 prefetches hop 2's
// pages; stripPrefetch is the same schedule without the speculation.
func pipelinedExec() *QueryExec {
	return &QueryExec{Segments: [][]index.Step{{
		{
			CPU:      200 * time.Microsecond,
			Pages:    []int64{0, 1},
			Prefetch: []index.PrefetchRun{{Pages: []int64{10, 11}}},
		},
		{CPU: 200 * time.Microsecond, Pages: []int64{10, 11}},
	}}}
}

func stripPrefetch(qe *QueryExec) *QueryExec {
	out := &QueryExec{IDs: qe.IDs, Stats: qe.Stats}
	for _, seg := range qe.Segments {
		steps := make([]index.Step, len(seg))
		for i, s := range seg {
			s.Prefetch = nil
			steps[i] = s
		}
		out.Segments = append(out.Segments, steps)
	}
	return out
}

// TestReplayPrefetchOverlapsIO: a prefetched schedule finishes strictly
// faster than the same schedule without speculation — hop 2's read overlaps
// hop 2's CPU — while the device sees identical traffic (the prefetch read
// replaces the demand read, it does not duplicate it).
func TestReplayPrefetchOverlapsIO(t *testing.T) {
	qe := pipelinedExec()
	base, baseTr := runTimed(t, stripPrefetch(qe), false)
	pf, pfTr := runTimed(t, qe, false)
	if pf >= base {
		t.Errorf("prefetched replay took %v, not below synchronous %v", pf, base)
	}
	bOps, _, bBytes, _ := baseTr.Totals()
	pOps, _, pBytes, _ := pfTr.Totals()
	if bOps != pOps || bBytes != pBytes {
		t.Errorf("prefetched device traffic (%d ops, %d B) differs from synchronous (%d ops, %d B)",
			pOps, pBytes, bOps, bBytes)
	}
}

// TestReplayPrefetchJoinWaitsForResidual: when the demand arrives before the
// prefetch lands, the query waits only for the residual latency — total time
// is still below the fully synchronous schedule, and no page is read twice.
func TestReplayPrefetchJoinWaitsForResidual(t *testing.T) {
	// Tiny CPU burst: the hop-2 demand arrives long before the ~100µs read
	// completes, so the join path (Wait on an unfired event) is exercised.
	qe := &QueryExec{Segments: [][]index.Step{{
		{CPU: time.Microsecond, Pages: []int64{0}, Prefetch: []index.PrefetchRun{{Pages: []int64{10}}}},
		{CPU: time.Microsecond, Pages: []int64{10}},
	}}}
	base, baseTr := runTimed(t, stripPrefetch(qe), false)
	pf, pfTr := runTimed(t, qe, false)
	if pf >= base {
		t.Errorf("joined replay took %v, not below synchronous %v", pf, base)
	}
	bOps, _, _, _ := baseTr.Totals()
	pOps, _, _, _ := pfTr.Totals()
	if bOps != 2 || pOps != 2 {
		t.Errorf("read ops = %d sync / %d prefetched, want 2/2 (no duplicate reads)", bOps, pOps)
	}
}

// TestReplayContiguousPrefetchJoin: SPANN-style contiguous runs join as one
// read keyed by their first page.
func TestReplayContiguousPrefetchJoin(t *testing.T) {
	qe := &QueryExec{Segments: [][]index.Step{{
		{
			CPU:        100 * time.Microsecond,
			Pages:      []int64{0, 1, 2, 3},
			Contiguous: true,
			Prefetch:   []index.PrefetchRun{{Pages: []int64{8, 9, 10, 11}, Contiguous: true}},
		},
		{CPU: 100 * time.Microsecond, Pages: []int64{8, 9, 10, 11}, Contiguous: true},
	}}}
	base, baseTr := runTimed(t, stripPrefetch(qe), false)
	pf, pfTr := runTimed(t, qe, false)
	if pf >= base {
		t.Errorf("contiguous prefetched replay took %v, not below synchronous %v", pf, base)
	}
	bOps, _, bBytes, _ := baseTr.Totals()
	pOps, _, pBytes, _ := pfTr.Totals()
	if bOps != pOps || bBytes != pBytes {
		t.Errorf("device traffic differs: %d/%d ops, %d/%d bytes", bOps, pOps, bBytes, pBytes)
	}
}

// TestReplayUnusedPrefetchCostsBandwidthNotLatency: a prefetch nothing
// demands adds device reads (the wasted-speculation bandwidth tax) without
// blocking query completion.
func TestReplayUnusedPrefetchCostsBandwidthNotLatency(t *testing.T) {
	qe := &QueryExec{Segments: [][]index.Step{{
		{CPU: 50 * time.Microsecond, Pages: []int64{0}, Prefetch: []index.PrefetchRun{{Pages: []int64{99}}}},
	}}}
	_, tr := runTimed(t, qe, false)
	ops, _, _, _ := tr.Totals()
	if ops != 2 {
		t.Errorf("device read ops = %d, want 2 (demand + wasted prefetch)", ops)
	}
}

// TestReplayThroughBatcher: routing the same prefetched schedule through the
// coalescer must not change the bytes read or break completion.
func TestReplayThroughBatcher(t *testing.T) {
	qe := pipelinedExec()
	_, directTr := runTimed(t, qe, false)
	_, batchedTr := runTimed(t, qe, true)
	dOps, _, dBytes, _ := directTr.Totals()
	bOps, _, bBytes, _ := batchedTr.Totals()
	if dOps != bOps || dBytes != bBytes {
		t.Errorf("batched device traffic (%d ops, %d B) differs from direct (%d ops, %d B)",
			bOps, bBytes, dOps, dBytes)
	}
}
