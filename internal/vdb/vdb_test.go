package vdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/trace"
	"svdbench/internal/vec"
)

func testDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: fmt.Sprintf("vdb-test-%d", n), N: n, Dim: 32, NumQueries: 20,
		Clusters: 8, Seed: 21, Metric: vec.Cosine, GroundK: 10,
	})
}

func TestTraitsSupports(t *testing.T) {
	if !Milvus().Supports(IndexDiskANN) {
		t.Error("milvus must support DiskANN")
	}
	if Qdrant().Supports(IndexDiskANN) {
		t.Error("qdrant must not support DiskANN (Sec. III-C)")
	}
	if !LanceDB().Supports(IndexIVFPQ) || LanceDB().Supports(IndexHNSW) {
		t.Error("lancedb supports only quantised indexes")
	}
}

func TestEngineByName(t *testing.T) {
	for _, n := range []string{"milvus", "qdrant", "weaviate", "lancedb"} {
		tr, err := EngineByName(n)
		if err != nil || tr.Name != n {
			t.Errorf("EngineByName(%s) = %+v, %v", n, tr.Name, err)
		}
	}
	if _, err := EngineByName("oracle"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestPaperSetups(t *testing.T) {
	setups := PaperSetups()
	if len(setups) != 7 {
		t.Fatalf("got %d setups, want the paper's 7", len(setups))
	}
	storage := 0
	for _, s := range setups {
		if !s.Engine.Supports(s.Index) {
			t.Errorf("setup %s unsupported by its engine", s.Label())
		}
		if s.Index.StorageBased() {
			storage++
		}
	}
	if storage != 2 {
		t.Errorf("%d storage-based setups, want 2 (Milvus-DiskANN, LanceDB-IVF)", storage)
	}
}

func TestUnsupportedIndexRejected(t *testing.T) {
	_, err := NewCollection("c", 32, vec.Cosine, Qdrant(), IndexDiskANN, DefaultBuildParams())
	if !errors.Is(err, ErrUnsupportedIndex) {
		t.Errorf("err = %v, want ErrUnsupportedIndex", err)
	}
}

func TestBulkLoadSegmentsUnderMilvus(t *testing.T) {
	ds := testDataset(t, 1000)
	tr := Milvus()
	tr.SegmentCapacity = 256
	col, err := NewCollection("c", 32, ds.Spec.Metric, tr, IndexHNSW, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Segments()); got != 4 {
		t.Errorf("segments = %d, want 4 (1000/256)", got)
	}
	if col.Len() != 1000 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestMonolithicUnderQdrant(t *testing.T) {
	ds := testDataset(t, 600)
	col, _ := NewCollection("c", 32, ds.Spec.Metric, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	if len(col.Segments()) != 1 {
		t.Errorf("segments = %d, want 1 (monolithic)", len(col.Segments()))
	}
}

func TestSegmentedSearchRecall(t *testing.T) {
	ds := testDataset(t, 1000)
	tr := Milvus()
	tr.SegmentCapacity = 250
	col, _ := NewCollection("c", 32, ds.Spec.Metric, tr, IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	results := make([][]int32, ds.Queries.Len())
	for qi := range results {
		exec := col.Search(ds.Queries.Row(qi), 10, index.SearchOptions{EfSearch: 64})
		results[qi] = exec.IDs
	}
	if r := dataset.MeanRecallAtK(results, ds.GroundTruth, 10); r < 0.9 {
		t.Errorf("segmented recall = %v, want ≥0.9 (merge must preserve quality)", r)
	}
}

func TestRecordQueriesShape(t *testing.T) {
	ds := testDataset(t, 600)
	tr := Milvus()
	tr.SegmentCapacity = 200
	col, _ := NewCollection("c", 32, ds.Spec.Metric, tr, IndexDiskANN, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	var next int64
	col.AssignStorage(func(n int64) int64 { p := next; next += n; return p })
	execs := col.RecordQueries(ds.Queries, 10, index.SearchOptions{SearchList: 10, BeamWidth: 4})
	if len(execs) != ds.Queries.Len() {
		t.Fatalf("recorded %d execs", len(execs))
	}
	for qi, e := range execs {
		if len(e.Segments) != 3 {
			t.Fatalf("query %d: %d segment profiles, want 3", qi, len(e.Segments))
		}
		pages := 0
		for _, steps := range e.Segments {
			for _, s := range steps {
				pages += len(s.Pages)
			}
		}
		if pages == 0 {
			t.Fatalf("query %d recorded no I/O for DiskANN", qi)
		}
	}
}

func TestInsertDeleteAndTombstones(t *testing.T) {
	ds := testDataset(t, 400)
	col, _ := NewCollection("c", 32, ds.Spec.Metric, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	// Insert a vector identical to query 0: it must become the top hit.
	q := ds.Queries.Row(0)
	id, err := col.Insert(q, Payload{"kind": "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	exec := col.Search(q, 5, index.SearchOptions{EfSearch: 50})
	if len(exec.IDs) == 0 || exec.IDs[0] != id {
		t.Fatalf("fresh insert not top hit: %v (want %d first)", exec.IDs, id)
	}
	// Delete it: it must vanish.
	col.Delete(id)
	exec = col.Search(q, 5, index.SearchOptions{EfSearch: 50})
	for _, got := range exec.IDs {
		if got == id {
			t.Fatal("tombstoned id still returned")
		}
	}
	if !col.Deleted(id) || col.Payload(id) != nil {
		t.Error("tombstone bookkeeping wrong")
	}
}

func TestPayloadFilteredSearch(t *testing.T) {
	ds := testDataset(t, 400)
	payloads := make([]Payload, 400)
	for i := range payloads {
		lang := "en"
		if i%4 == 0 {
			lang = "nl"
		}
		payloads[i] = Payload{"lang": lang}
	}
	col, _ := NewCollection("c", 32, ds.Spec.Metric, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, payloads); err != nil {
		t.Fatal(err)
	}
	exec := col.Search(ds.Queries.Row(0), 10, index.SearchOptions{
		EfSearch: 100,
		Filter:   col.FilterEq("lang", "nl"),
	})
	if len(exec.IDs) == 0 {
		t.Fatal("filtered search found nothing")
	}
	for _, id := range exec.IDs {
		if id%4 != 0 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	col, _ := NewCollection("c", 32, vec.Cosine, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(vec.NewMatrix(0, 32), nil); err == nil {
		t.Error("empty load accepted")
	}
	if err := col.BulkLoad(vec.NewMatrix(10, 16), nil); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := col.Insert(make([]float32, 7), nil); err == nil {
		t.Error("bad insert dim accepted")
	}
}

// --- Engine simulation tests ---

type engineHarness struct {
	k   *sim.Kernel
	cpu *sim.CPU
	dev *ssd.Device
	eng *Engine
}

func newEngineHarness(tr Traits) *engineHarness {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, 20)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	return &engineHarness{k: k, cpu: cpu, dev: dev, eng: NewEngine(k, cpu, dev, tr)}
}

func cpuOnlyExec(d time.Duration) *QueryExec {
	return &QueryExec{Segments: [][]index.Step{{{CPU: d}}}}
}

func TestEngineRunQueryBasicTiming(t *testing.T) {
	tr := Qdrant()
	h := newEngineHarness(tr)
	var elapsed sim.Duration
	h.k.Spawn("q", func(e *sim.Env) {
		start := e.Now()
		if err := h.eng.RunQuery(e, cpuOnlyExec(time.Millisecond)); err != nil {
			t.Errorf("query failed: %v", err)
		}
		elapsed = e.Now().Sub(start)
	})
	h.k.RunAll()
	want := tr.RPCOverhead + tr.IdleWake + tr.PerQueryCPU + time.Millisecond
	if elapsed != want {
		t.Errorf("latency = %v, want %v", elapsed, want)
	}
	if h.eng.Served() != 1 {
		t.Errorf("served = %d", h.eng.Served())
	}
}

func TestIdleWakePaidOnlyWhenIdle(t *testing.T) {
	tr := Qdrant()
	h := newEngineHarness(tr)
	lats := make([]sim.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		h.k.Spawn("q", func(e *sim.Env) {
			if i == 1 {
				e.Sleep(50 * time.Microsecond) // arrive while q0 is in flight
			}
			start := e.Now()
			h.eng.RunQuery(e, cpuOnlyExec(time.Millisecond))
			lats[i] = e.Now().Sub(start)
		})
	}
	h.k.RunAll()
	if lats[1] >= lats[0] {
		t.Errorf("busy-arrival latency %v not below idle-arrival %v", lats[1], lats[0])
	}
	if lats[0]-lats[1] != tr.IdleWake {
		t.Errorf("difference %v, want IdleWake %v", lats[0]-lats[1], tr.IdleWake)
	}
}

func TestIntraQueryParallelFansOut(t *testing.T) {
	serial := Qdrant() // no fan-out
	par := Milvus()    // fan-out
	mkExec := func() *QueryExec {
		segs := make([][]index.Step, 4)
		for i := range segs {
			segs[i] = []index.Step{{CPU: time.Millisecond}}
		}
		return &QueryExec{Segments: segs}
	}
	run := func(tr Traits) sim.Duration {
		h := newEngineHarness(tr)
		var elapsed sim.Duration
		h.k.Spawn("q", func(e *sim.Env) {
			start := e.Now()
			h.eng.RunQuery(e, mkExec())
			elapsed = e.Now().Sub(start)
		})
		h.k.RunAll()
		return elapsed
	}
	ts := run(serial)
	tp := run(par)
	// Serial pays 4 ms of segment work; parallel pays ~1 ms.
	if tp >= ts-2*time.Millisecond {
		t.Errorf("parallel %v not clearly below serial %v", tp, ts)
	}
}

func TestMaxReadConcurrentCapsFanOut(t *testing.T) {
	tr := Milvus()
	tr.MaxReadConcurrent = 1
	h := newEngineHarness(tr)
	segs := make([][]index.Step, 4)
	for i := range segs {
		segs[i] = []index.Step{{CPU: time.Millisecond}}
	}
	var elapsed sim.Duration
	h.k.Spawn("q", func(e *sim.Env) {
		start := e.Now()
		h.eng.RunQuery(e, &QueryExec{Segments: segs})
		elapsed = e.Now().Sub(start)
	})
	h.k.RunAll()
	if elapsed < 4*time.Millisecond {
		t.Errorf("capped fan-out finished in %v, want ≥4ms (serialised)", elapsed)
	}
}

func TestOutOfMemoryFailure(t *testing.T) {
	tr := LanceDB()
	tr.MemPerQuery = 1 << 30
	tr.MemBudget = 2 << 30 // only two queries fit
	h := newEngineHarness(tr)
	var okCount, oomCount int
	for i := 0; i < 5; i++ {
		h.k.Spawn("q", func(e *sim.Env) {
			err := h.eng.RunQuery(e, cpuOnlyExec(10*time.Millisecond))
			switch {
			case err == nil:
				okCount++
			case errors.Is(err, ErrOutOfMemory):
				oomCount++
			default:
				t.Errorf("unexpected error %v", err)
			}
		})
	}
	h.k.RunAll()
	if okCount != 2 || oomCount != 3 {
		t.Errorf("ok=%d oom=%d, want 2/3", okCount, oomCount)
	}
	if h.eng.OOMFailures() != 3 {
		t.Errorf("OOMFailures = %d", h.eng.OOMFailures())
	}
}

func TestGlobalLockSerializes(t *testing.T) {
	run := func(tr Traits) int {
		h := newEngineHarness(tr)
		deadline := sim.Time(40 * time.Millisecond)
		done := 0
		for i := 0; i < 8; i++ {
			h.k.Spawn("q", func(e *sim.Env) {
				for e.Now() < deadline {
					if h.eng.RunQuery(e, cpuOnlyExec(0)) == nil {
						done++
					}
				}
			})
		}
		h.k.RunAll()
		return done
	}
	locked := LanceDB() // GlobalLockFraction 0.6 of 2.5 ms
	free := LanceDB()
	free.GlobalLockFraction = 0
	nLocked, nFree := run(locked), run(free)
	// With 8 threads on 20 cores the unlocked engine is embarrassingly
	// parallel; the locked one is capped at ~1/1.5ms.
	if nLocked*2 >= nFree {
		t.Errorf("global lock not limiting: locked=%d free=%d", nLocked, nFree)
	}
}

func TestStorageQueryIssuesIO(t *testing.T) {
	tr := Milvus()
	h := newEngineHarness(tr)
	exec := &QueryExec{Segments: [][]index.Step{{
		{CPU: 10 * time.Microsecond, Pages: []int64{0, 1, 2, 3}},
		{CPU: 10 * time.Microsecond, Pages: []int64{4, 5}},
	}}}
	h.k.Spawn("q", func(e *sim.Env) { h.eng.RunQuery(e, exec) })
	h.k.RunAll()
	reads, _ := h.dev.Stats()
	if reads != 6 {
		t.Errorf("device reads = %d, want 6", reads)
	}
}

func TestRunInsertAndDeleteWrite(t *testing.T) {
	tr := Milvus()
	h := newEngineHarness(tr)
	h.k.Spawn("w", func(e *sim.Env) {
		h.eng.RunInsert(e, 768*4)
		h.eng.RunDelete(e)
	})
	h.k.RunAll()
	_, writes := h.dev.Stats()
	if writes != 2 {
		t.Errorf("writes = %d, want 2 (WAL + tombstone)", writes)
	}
}

func TestSetupLabel(t *testing.T) {
	s := Setup{Milvus(), IndexDiskANN}
	if s.Label() != "milvus-DISKANN" {
		t.Errorf("label = %s", s.Label())
	}
}

func TestReplayContiguousStepIsOneRequest(t *testing.T) {
	h := newEngineHarness(Milvus())
	tr := trace.NewTracer(true)
	h.dev.Attach(tr)
	exec := &QueryExec{Segments: [][]index.Step{{
		{Pages: []int64{10, 11, 12, 13}, Contiguous: true}, // posting list
		{Pages: []int64{20, 21}},                           // beam
	}}}
	h.k.Spawn("q", func(e *sim.Env) { h.eng.RunQuery(e, exec) })
	h.k.RunAll()
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d requests, want 3 (1 contiguous + 2 beam)", len(recs))
	}
	if recs[0].Bytes != 4*4096 {
		t.Errorf("contiguous request = %d bytes, want %d", recs[0].Bytes, 4*4096)
	}
	if recs[1].Bytes != 4096 || recs[2].Bytes != 4096 {
		t.Errorf("beam requests = %d/%d bytes, want 4096 each", recs[1].Bytes, recs[2].Bytes)
	}
}
