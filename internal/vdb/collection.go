package vdb

import (
	"context"
	"fmt"
	"sync"

	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/index/flat"
	"svdbench/internal/index/hnsw"
	"svdbench/internal/index/ivf"
	"svdbench/internal/vec"
)

// Payload is the auxiliary data attached to one vector (the paper's
// "payload" feature of full-fledged vector databases, Sec. II-C).
type Payload map[string]string

// Segment is one sealed shard of a collection: an immutable vector block
// with its own index.
type Segment struct {
	IDs   []int32
	Data  *vec.Matrix
	Index index.Index
}

// Collection is a named vector collection under one engine's traits: sealed
// segments with indexes, a growing tail segment that is brute-force
// searched, tombstoned deletes, and payload storage.
type Collection struct {
	Name   string
	dim    int
	metric vec.Metric
	traits Traits
	kind   IndexKind
	params BuildParams

	segments []*Segment
	growData *vec.Matrix
	growIDs  []int32

	tombstones map[int32]bool
	payloads   map[int32]Payload
	nextID     int32
}

// NewCollection creates an empty collection for the engine's traits.
// The index kind must be supported by the engine.
func NewCollection(name string, dim int, metric vec.Metric, traits Traits, kind IndexKind, params BuildParams) (*Collection, error) {
	if !traits.Supports(kind) {
		return nil, fmt.Errorf("%w: %s does not expose %s", ErrUnsupportedIndex, traits.Name, kind)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("%w: invalid dimension %d", ErrBadParams, dim)
	}
	return &Collection{
		Name:       name,
		dim:        dim,
		metric:     metric,
		traits:     traits,
		kind:       kind,
		params:     params,
		growData:   vec.NewMatrix(0, dim),
		tombstones: map[int32]bool{},
		payloads:   map[int32]Payload{},
	}, nil
}

// Dim returns the vector dimensionality.
func (c *Collection) Dim() int { return c.dim }

// Metric returns the distance metric.
func (c *Collection) Metric() vec.Metric { return c.metric }

// IndexKind returns the configured index family.
func (c *Collection) IndexKind() IndexKind { return c.kind }

// Traits returns the engine traits the collection runs under.
func (c *Collection) Traits() Traits { return c.traits }

// Len returns the number of live vectors.
func (c *Collection) Len() int {
	n := len(c.growIDs)
	for _, s := range c.segments {
		n += len(s.IDs)
	}
	return n - len(c.tombstones)
}

// Segments returns the sealed segments.
func (c *Collection) Segments() []*Segment { return c.segments }

// BulkLoad ingests the matrix as the collection's sealed contents: rows are
// split into SegmentCapacity-sized segments (or one monolithic segment) and
// indexed in parallel. Assigned ids are sequential from zero. payloads, when
// non-nil, attaches payloads[i] to row i.
func (c *Collection) BulkLoad(data *vec.Matrix, payloads []Payload) error {
	n := data.Len()
	if n == 0 {
		return fmt.Errorf("%w: bulk load of empty matrix", ErrBadParams)
	}
	if data.Dim != c.dim {
		return fmt.Errorf("%w: bulk load dim %d, want %d", ErrBadParams, data.Dim, c.dim)
	}
	capPer := c.traits.SegmentCapacity
	if capPer <= 0 {
		capPer = n
	}
	type job struct {
		lo, hi int
		out    int
	}
	var jobs []job
	for lo := 0; lo < n; lo += capPer {
		hi := lo + capPer
		if hi > n {
			hi = n
		}
		jobs = append(jobs, job{lo, hi, len(jobs)})
	}
	segs := make([]*Segment, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sub := vec.NewMatrix(j.hi-j.lo, c.dim)
			ids := make([]int32, j.hi-j.lo)
			for i := j.lo; i < j.hi; i++ {
				sub.SetRow(i-j.lo, data.Row(i))
				ids[i-j.lo] = int32(i)
			}
			ix, err := c.buildIndex(sub, ids, int64(j.out))
			if err != nil {
				errs[j.out] = err
				return
			}
			segs[j.out] = &Segment{IDs: ids, Data: sub, Index: ix}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.segments = segs
	c.nextID = int32(n)
	for i, p := range payloads {
		if p != nil {
			c.payloads[int32(i)] = p
		}
	}
	return nil
}

// buildIndex constructs the configured index over one segment's rows.
func (c *Collection) buildIndex(data *vec.Matrix, ids []int32, segSeed int64) (index.Index, error) {
	seed := c.params.Seed + segSeed
	switch c.kind {
	case IndexIVFFlat:
		return ivf.Build(data, ids, ivf.Config{NList: c.params.NList, Metric: c.metric, Seed: seed})
	case IndexIVFPQ:
		return ivf.Build(data, ids, ivf.Config{NList: c.params.NList, Metric: c.metric, Seed: seed, PQ: true})
	case IndexHNSW:
		return hnsw.Build(data, ids, hnsw.Config{M: c.params.M, EfConstruction: c.params.EfConstruction, Metric: c.metric, Seed: seed})
	case IndexHNSWSQ:
		return hnsw.Build(data, ids, hnsw.Config{M: c.params.M, EfConstruction: c.params.EfConstruction, Metric: c.metric, Seed: seed, ScalarQuantize: true})
	case IndexDiskANN:
		return diskann.Build(data, ids, diskann.Config{R: c.params.R, LBuild: c.params.LBuild, Alpha: c.params.Alpha, Layout: c.params.Layout, Metric: c.metric, Seed: seed})
	default:
		return nil, fmt.Errorf("%w: unknown index kind %q", ErrBadParams, c.kind)
	}
}

// AssignStorage lays storage-based indexes out on a device's pages. It must
// be called once after BulkLoad when the index kind is storage-based.
func (c *Collection) AssignStorage(alloc func(npages int64) int64) {
	for _, s := range c.segments {
		switch ix := s.Index.(type) {
		case *diskann.Index:
			ix.AssignPages(alloc)
		case *ivf.Index:
			ix.AssignPages(alloc)
		}
	}
}

// Insert adds one vector to the growing tail segment and returns its id.
// Growing rows are scanned brute-force by searches until compaction.
func (c *Collection) Insert(v []float32, payload Payload) (int32, error) {
	if len(v) != c.dim {
		return 0, fmt.Errorf("%w: insert dim %d, want %d", ErrBadParams, len(v), c.dim)
	}
	id := c.nextID
	c.nextID++
	c.growData.AppendRow(v)
	c.growIDs = append(c.growIDs, id)
	if payload != nil {
		c.payloads[id] = payload
	}
	return id, nil
}

// Delete tombstones an id; searches stop returning it immediately.
func (c *Collection) Delete(id int32) {
	c.tombstones[id] = true
	delete(c.payloads, id)
}

// Deleted reports whether an id is tombstoned.
func (c *Collection) Deleted(id int32) bool { return c.tombstones[id] }

// GrowingLen returns the number of rows in the growing tail.
func (c *Collection) GrowingLen() int { return len(c.growIDs) }

// Payload returns the payload of an id (nil when absent).
func (c *Collection) Payload(id int32) Payload { return c.payloads[id] }

// FilterEq builds a search filter matching payload[field] == value,
// honouring tombstones.
func (c *Collection) FilterEq(field, value string) func(int32) bool {
	return func(id int32) bool {
		if c.tombstones[id] {
			return false
		}
		p := c.payloads[id]
		return p != nil && p[field] == value
	}
}

// liveFilter wraps a user filter with tombstone checking.
func (c *Collection) liveFilter(user func(int32) bool) func(int32) bool {
	if len(c.tombstones) == 0 {
		return user
	}
	return func(id int32) bool {
		if c.tombstones[id] {
			return false
		}
		return user == nil || user(id)
	}
}

// QueryExec is the recorded execution of one query against this collection:
// the per-segment step sequences the simulator replays, plus the merged
// result ids for recall computation and the summed per-segment work counts.
type QueryExec struct {
	Segments [][]index.Step
	IDs      []int32
	Stats    index.Stats
}

// runBatch is the collection's batch-first search core: every public search
// entry point — Search, Record, SearchBatch, RecordQueries — routes through
// it. The batch visits each unit (sealed segments in order, then the
// brute-forced growing tail) once, running all queries against that unit via
// index.SearchBatchOf, and merges per query in unit order, so each query's
// result is byte-identical to searching the units sequentially for that
// query alone. When record is true, per-(query, unit) profiles are captured
// through SearchOptions.RecorderFor into the returned QueryExecs.
func (c *Collection) runBatch(ctx context.Context, rows [][]float32, k int, opts index.SearchOptions, record bool) []QueryExec {
	out := make([]QueryExec, len(rows))
	if len(rows) == 0 || (len(c.segments) == 0 && len(c.growIDs) == 0) {
		return out
	}
	opts.Filter = c.liveFilter(opts.Filter)

	units := make([]index.Index, 0, len(c.segments)+1)
	for _, s := range c.segments {
		units = append(units, s.Index)
	}
	if len(c.growIDs) > 0 {
		units = append(units, flat.New(c.growData, c.metric, c.growIDs))
	}

	heaps := make([]index.MaxHeap, len(rows))
	if record {
		for qi := range out {
			out[qi].Segments = make([][]index.Step, 0, len(units))
		}
	}
	for _, unit := range units {
		uOpts := opts
		var profs []index.Profile
		if record {
			profs = make([]index.Profile, len(rows))
			uOpts.RecorderFor = func(qi int) *index.Profile { return &profs[qi] }
		}
		results := index.SearchBatchOf(ctx, unit, rows, k, uOpts)
		for qi, res := range results {
			for i := range res.IDs {
				heaps[qi].PushBounded(index.Neighbor{ID: res.IDs[i], Dist: res.Dists[i]}, k)
			}
			out[qi].Stats.Add(res.Stats)
			if record {
				out[qi].Segments = append(out[qi].Segments, profs[qi].Steps)
			}
		}
	}
	for qi := range out {
		ns := heaps[qi].SortedAscending()
		out[qi].IDs = make([]int32, len(ns))
		for i, n := range ns {
			out[qi].IDs[i] = n.ID
		}
	}
	return out
}

// Search runs one real query (outside the simulation) and returns the merged
// top-k result without capturing execution profiles. It replaces the old
// SearchDirect(q, k, opts, false).
func (c *Collection) Search(q []float32, k int, opts index.SearchOptions) QueryExec {
	return c.runBatch(context.Background(), [][]float32{q}, k, opts, false)[0]
}

// Record runs one real query and captures its per-segment execution profiles
// for replay. It replaces the old SearchDirect(q, k, opts, true).
func (c *Collection) Record(q []float32, k int, opts index.SearchOptions) QueryExec {
	return c.runBatch(context.Background(), [][]float32{q}, k, opts, true)[0]
}

// SearchBatch runs every query row through the batch-first core without
// recording, up to opts.QueryConcurrency queries concurrently per unit. Each
// query's result is byte-identical to Search on the same options; ctx
// cancellation stops scheduling new queries (unstarted queries return zero
// QueryExecs).
func (c *Collection) SearchBatch(ctx context.Context, queries *vec.Matrix, k int, opts index.SearchOptions) []QueryExec {
	return c.runBatch(ctx, matrixRows(queries), k, opts, false)
}

// RecordQueries captures the execution of every query row: the workload the
// simulation replays. It is a thin wrapper over the same batch core as
// SearchBatch with recording enabled. Queries are processed in parallel
// (host goroutines) since recording is preprocessing — except when the
// options select a mutable node cache (LRU), whose state evolves across
// queries: those run sequentially in query order (index.BatchRun serialises
// them) so the captured executions do not depend on goroutine interleaving.
func (c *Collection) RecordQueries(queries *vec.Matrix, k int, opts index.SearchOptions) []QueryExec {
	return c.runBatch(context.Background(), matrixRows(queries), k, opts, true)
}

// matrixRows views a query matrix as a row slice for the batch core.
func matrixRows(m *vec.Matrix) [][]float32 {
	rows := make([][]float32, m.Len())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}
