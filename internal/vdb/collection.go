package vdb

import (
	"fmt"
	"sync"

	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/index/flat"
	"svdbench/internal/index/hnsw"
	"svdbench/internal/index/ivf"
	"svdbench/internal/vec"
)

// Payload is the auxiliary data attached to one vector (the paper's
// "payload" feature of full-fledged vector databases, Sec. II-C).
type Payload map[string]string

// Segment is one sealed shard of a collection: an immutable vector block
// with its own index.
type Segment struct {
	IDs   []int32
	Data  *vec.Matrix
	Index index.Index
}

// Collection is a named vector collection under one engine's traits: sealed
// segments with indexes, a growing tail segment that is brute-force
// searched, tombstoned deletes, and payload storage.
type Collection struct {
	Name   string
	dim    int
	metric vec.Metric
	traits Traits
	kind   IndexKind
	params BuildParams

	segments []*Segment
	growData *vec.Matrix
	growIDs  []int32

	tombstones map[int32]bool
	payloads   map[int32]Payload
	nextID     int32
}

// NewCollection creates an empty collection for the engine's traits.
// The index kind must be supported by the engine.
func NewCollection(name string, dim int, metric vec.Metric, traits Traits, kind IndexKind, params BuildParams) (*Collection, error) {
	if !traits.Supports(kind) {
		return nil, fmt.Errorf("%w: %s does not expose %s", ErrUnsupportedIndex, traits.Name, kind)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("%w: invalid dimension %d", ErrBadParams, dim)
	}
	return &Collection{
		Name:       name,
		dim:        dim,
		metric:     metric,
		traits:     traits,
		kind:       kind,
		params:     params,
		growData:   vec.NewMatrix(0, dim),
		tombstones: map[int32]bool{},
		payloads:   map[int32]Payload{},
	}, nil
}

// Dim returns the vector dimensionality.
func (c *Collection) Dim() int { return c.dim }

// Metric returns the distance metric.
func (c *Collection) Metric() vec.Metric { return c.metric }

// IndexKind returns the configured index family.
func (c *Collection) IndexKind() IndexKind { return c.kind }

// Traits returns the engine traits the collection runs under.
func (c *Collection) Traits() Traits { return c.traits }

// Len returns the number of live vectors.
func (c *Collection) Len() int {
	n := len(c.growIDs)
	for _, s := range c.segments {
		n += len(s.IDs)
	}
	return n - len(c.tombstones)
}

// Segments returns the sealed segments.
func (c *Collection) Segments() []*Segment { return c.segments }

// BulkLoad ingests the matrix as the collection's sealed contents: rows are
// split into SegmentCapacity-sized segments (or one monolithic segment) and
// indexed in parallel. Assigned ids are sequential from zero. payloads, when
// non-nil, attaches payloads[i] to row i.
func (c *Collection) BulkLoad(data *vec.Matrix, payloads []Payload) error {
	n := data.Len()
	if n == 0 {
		return fmt.Errorf("%w: bulk load of empty matrix", ErrBadParams)
	}
	if data.Dim != c.dim {
		return fmt.Errorf("%w: bulk load dim %d, want %d", ErrBadParams, data.Dim, c.dim)
	}
	capPer := c.traits.SegmentCapacity
	if capPer <= 0 {
		capPer = n
	}
	type job struct {
		lo, hi int
		out    int
	}
	var jobs []job
	for lo := 0; lo < n; lo += capPer {
		hi := lo + capPer
		if hi > n {
			hi = n
		}
		jobs = append(jobs, job{lo, hi, len(jobs)})
	}
	segs := make([]*Segment, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sub := vec.NewMatrix(j.hi-j.lo, c.dim)
			ids := make([]int32, j.hi-j.lo)
			for i := j.lo; i < j.hi; i++ {
				sub.SetRow(i-j.lo, data.Row(i))
				ids[i-j.lo] = int32(i)
			}
			ix, err := c.buildIndex(sub, ids, int64(j.out))
			if err != nil {
				errs[j.out] = err
				return
			}
			segs[j.out] = &Segment{IDs: ids, Data: sub, Index: ix}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.segments = segs
	c.nextID = int32(n)
	for i, p := range payloads {
		if p != nil {
			c.payloads[int32(i)] = p
		}
	}
	return nil
}

// buildIndex constructs the configured index over one segment's rows.
func (c *Collection) buildIndex(data *vec.Matrix, ids []int32, segSeed int64) (index.Index, error) {
	seed := c.params.Seed + segSeed
	switch c.kind {
	case IndexIVFFlat:
		return ivf.Build(data, ids, ivf.Config{NList: c.params.NList, Metric: c.metric, Seed: seed})
	case IndexIVFPQ:
		return ivf.Build(data, ids, ivf.Config{NList: c.params.NList, Metric: c.metric, Seed: seed, PQ: true})
	case IndexHNSW:
		return hnsw.Build(data, ids, hnsw.Config{M: c.params.M, EfConstruction: c.params.EfConstruction, Metric: c.metric, Seed: seed})
	case IndexHNSWSQ:
		return hnsw.Build(data, ids, hnsw.Config{M: c.params.M, EfConstruction: c.params.EfConstruction, Metric: c.metric, Seed: seed, ScalarQuantize: true})
	case IndexDiskANN:
		return diskann.Build(data, ids, diskann.Config{R: c.params.R, LBuild: c.params.LBuild, Alpha: c.params.Alpha, Metric: c.metric, Seed: seed})
	default:
		return nil, fmt.Errorf("%w: unknown index kind %q", ErrBadParams, c.kind)
	}
}

// AssignStorage lays storage-based indexes out on a device's pages. It must
// be called once after BulkLoad when the index kind is storage-based.
func (c *Collection) AssignStorage(alloc func(npages int64) int64) {
	for _, s := range c.segments {
		switch ix := s.Index.(type) {
		case *diskann.Index:
			ix.AssignPages(alloc)
		case *ivf.Index:
			ix.AssignPages(alloc)
		}
	}
}

// Insert adds one vector to the growing tail segment and returns its id.
// Growing rows are scanned brute-force by searches until compaction.
func (c *Collection) Insert(v []float32, payload Payload) (int32, error) {
	if len(v) != c.dim {
		return 0, fmt.Errorf("%w: insert dim %d, want %d", ErrBadParams, len(v), c.dim)
	}
	id := c.nextID
	c.nextID++
	c.growData.AppendRow(v)
	c.growIDs = append(c.growIDs, id)
	if payload != nil {
		c.payloads[id] = payload
	}
	return id, nil
}

// Delete tombstones an id; searches stop returning it immediately.
func (c *Collection) Delete(id int32) {
	c.tombstones[id] = true
	delete(c.payloads, id)
}

// Deleted reports whether an id is tombstoned.
func (c *Collection) Deleted(id int32) bool { return c.tombstones[id] }

// GrowingLen returns the number of rows in the growing tail.
func (c *Collection) GrowingLen() int { return len(c.growIDs) }

// Payload returns the payload of an id (nil when absent).
func (c *Collection) Payload(id int32) Payload { return c.payloads[id] }

// FilterEq builds a search filter matching payload[field] == value,
// honouring tombstones.
func (c *Collection) FilterEq(field, value string) func(int32) bool {
	return func(id int32) bool {
		if c.tombstones[id] {
			return false
		}
		p := c.payloads[id]
		return p != nil && p[field] == value
	}
}

// liveFilter wraps a user filter with tombstone checking.
func (c *Collection) liveFilter(user func(int32) bool) func(int32) bool {
	if len(c.tombstones) == 0 {
		return user
	}
	return func(id int32) bool {
		if c.tombstones[id] {
			return false
		}
		return user == nil || user(id)
	}
}

// QueryExec is the recorded execution of one query against this collection:
// the per-segment step sequences the simulator replays, plus the merged
// result ids for recall computation.
type QueryExec struct {
	Segments [][]index.Step
	IDs      []int32
}

// SearchDirect runs the real search (outside the simulation) and returns the
// merged top-k result. When record is true the per-segment execution
// profiles are captured into the returned QueryExec.
func (c *Collection) SearchDirect(q []float32, k int, opts index.SearchOptions, record bool) QueryExec {
	if len(c.segments) == 0 && len(c.growIDs) == 0 {
		return QueryExec{}
	}
	opts.Filter = c.liveFilter(opts.Filter)
	var merged index.MaxHeap
	exec := QueryExec{}
	if record {
		exec.Segments = make([][]index.Step, 0, len(c.segments))
	}
	for _, s := range c.segments {
		segOpts := opts
		var prof index.Profile
		if record {
			segOpts.Recorder = &prof
		}
		res := s.Index.Search(q, k, segOpts)
		for i := range res.IDs {
			merged.PushBounded(index.Neighbor{ID: res.IDs[i], Dist: res.Dists[i]}, k)
		}
		if record {
			exec.Segments = append(exec.Segments, prof.Steps)
		}
	}
	// Brute-force the growing tail.
	if len(c.growIDs) > 0 {
		fx := flat.New(c.growData, c.metric, c.growIDs)
		gOpts := opts
		var prof index.Profile
		if record {
			gOpts.Recorder = &prof
		}
		res := fx.Search(q, k, gOpts)
		for i := range res.IDs {
			merged.PushBounded(index.Neighbor{ID: res.IDs[i], Dist: res.Dists[i]}, k)
		}
		if record {
			exec.Segments = append(exec.Segments, prof.Steps)
		}
	}
	ns := merged.SortedAscending()
	exec.IDs = make([]int32, len(ns))
	for i, n := range ns {
		exec.IDs[i] = n.ID
	}
	return exec
}

// RecordQueries captures the execution of every query row: the workload the
// simulation replays. Queries are processed in parallel (host goroutines)
// since recording is preprocessing — except when the options select a
// mutable node cache (LRU), whose state evolves across queries: those are
// recorded sequentially in query order so the captured executions do not
// depend on host goroutine interleaving.
func (c *Collection) RecordQueries(queries *vec.Matrix, k int, opts index.SearchOptions) []QueryExec {
	out := make([]QueryExec, queries.Len())
	if opts.NodeCacheMutable() {
		for qi := range out {
			out[qi] = c.SearchDirect(queries.Row(qi), k, opts, true)
		}
		return out
	}
	var wg sync.WaitGroup
	nw := len(out)
	sem := make(chan struct{}, 8)
	for qi := 0; qi < nw; qi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[qi] = c.SearchDirect(queries.Row(qi), k, opts, true)
		}(qi)
	}
	wg.Wait()
	return out
}
