package vdb

import (
	"reflect"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// TestReplayEmitsCacheHits: steps carrying CachePages report them to the
// device's tracer as absorbed reads — page-size bytes each, no device
// traffic, no effect on the block-request counters.
func TestReplayEmitsCacheHits(t *testing.T) {
	h := newEngineHarness(Traits{Name: "neutral"})
	tr := trace.NewTracer(false)
	h.dev.Attach(tr)
	pageSize := h.dev.Config().PageSize
	qe := &QueryExec{Segments: [][]index.Step{{
		{CPU: time.Microsecond, Pages: []int64{1, 2}, CachePages: 3},
		{CPU: time.Microsecond, CachePages: 2},
	}}}
	h.k.Spawn("q", func(e *sim.Env) {
		if err := h.eng.RunQuery(e, qe); err != nil {
			t.Errorf("query failed: %v", err)
		}
	})
	h.k.RunAll()
	hits, bytes := tr.CacheTotals()
	if hits != 5 || bytes != int64(5*pageSize) {
		t.Errorf("cache totals = (%d, %d), want (5, %d)", hits, bytes, 5*pageSize)
	}
	readOps, _, readBytes, _ := tr.Totals()
	if readOps != 2 || readBytes != int64(2*pageSize) {
		t.Errorf("device totals = (%d, %d), want 2 page reads", readOps, readBytes)
	}
	sum := tr.Summarize(time.Second)
	if sum.CacheHits != 5 {
		t.Errorf("summary cache hits = %d, want 5", sum.CacheHits)
	}
	wantRate := float64(5) / float64(7)
	if diff := sum.CacheHitRate - wantRate; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("summary hit rate = %v, want %v", sum.CacheHitRate, wantRate)
	}
}

// TestReplayCacheHitsWithoutTracer: an unattached device must replay cache
// steps without panicking (EmitCacheHit on a nil tracer is a no-op).
func TestReplayCacheHitsWithoutTracer(t *testing.T) {
	h := newEngineHarness(Traits{Name: "neutral"})
	qe := &QueryExec{Segments: [][]index.Step{{{CachePages: 4}}}}
	h.k.Spawn("q", func(e *sim.Env) {
		if err := h.eng.RunQuery(e, qe); err != nil {
			t.Errorf("query failed: %v", err)
		}
	})
	h.k.RunAll()
	if h.eng.Served() != 1 {
		t.Errorf("served = %d, want 1", h.eng.Served())
	}
}

// lruCollection builds a small monolithic DiskANN collection with storage
// assigned, ready for cached recording.
func lruCollection(t *testing.T) (*Collection, *dataset.Dataset) {
	t.Helper()
	ds := testDataset(t, 300)
	traits := Milvus()
	traits.SegmentCapacity = 0
	col, err := NewCollection("cache-test", ds.Spec.Dim, ds.Spec.Metric, traits, IndexDiskANN, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	var next int64
	col.AssignStorage(func(n int64) int64 { p := next; next += n; return p })
	return col, ds
}

// TestRecordQueriesDeterministicWithLRUCache is the fuzz-satellite's
// integration half: two independent, identically built collections record
// the same workload against a mutable (LRU) node cache and must produce
// byte-identical executions and identical cache counters — RecordQueries
// serialises itself when the cache is mutable, so host goroutine
// interleaving cannot leak in.
func TestRecordQueriesDeterministicWithLRUCache(t *testing.T) {
	opts := index.SearchOptions{
		SearchList: 20, BeamWidth: 4,
		NodeCacheNodes: 16, NodeCachePolicy: index.NodeCacheLRU,
	}
	if !opts.NodeCacheMutable() {
		t.Fatal("LRU options must report a mutable cache")
	}
	record := func() ([]QueryExec, string) {
		col, ds := lruCollection(t)
		execs := col.RecordQueries(ds.Queries, 10, opts)
		ix := col.Segments()[0].Index.(*diskann.Index)
		snap, ok := ix.CacheSnapshot(opts)
		if !ok {
			t.Fatal("no cache snapshot after recording")
		}
		return execs, snap.String()
	}
	execs1, snap1 := record()
	execs2, snap2 := record()
	if !reflect.DeepEqual(execs1, execs2) {
		t.Error("two identical LRU-cached recordings produced different executions")
	}
	if snap1 != snap2 {
		t.Errorf("cache snapshots differ:\n%s\n%s", snap1, snap2)
	}
	var cached int
	for _, qe := range execs1 {
		for _, seg := range qe.Segments {
			for _, s := range seg {
				cached += s.CachePages
			}
		}
	}
	if cached == 0 {
		t.Error("LRU cache absorbed no pages across the workload")
	}
}

// TestRecordQueriesStaticMatchesSequential: with an immutable static cache
// the parallel recording path must agree with a sequential one.
func TestRecordQueriesStaticMatchesSequential(t *testing.T) {
	opts := index.SearchOptions{
		SearchList: 20, BeamWidth: 4,
		NodeCacheNodes: 16, NodeCachePolicy: index.NodeCacheStatic,
	}
	if opts.NodeCacheMutable() {
		t.Fatal("static options must not report a mutable cache")
	}
	col, ds := lruCollection(t)
	parallel := col.RecordQueries(ds.Queries, 10, opts)
	sequential := make([]QueryExec, ds.Queries.Len())
	for qi := range sequential {
		sequential[qi] = col.Record(ds.Queries.Row(qi), 10, opts)
	}
	if !reflect.DeepEqual(parallel, sequential) {
		t.Error("parallel static-cached recording differs from sequential")
	}
}
