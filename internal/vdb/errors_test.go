package vdb

import (
	"errors"
	"testing"

	"svdbench/internal/vec"
)

func TestUnknownEngineSentinel(t *testing.T) {
	_, err := EngineByName("oracle")
	if !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("err = %v, want ErrUnknownEngine", err)
	}
}

func TestBadParamsSentinel(t *testing.T) {
	if _, err := NewCollection("c", 0, vec.Cosine, Qdrant(), IndexHNSW, DefaultBuildParams()); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero dim: err = %v, want ErrBadParams", err)
	}

	col, err := NewCollection("c", 8, vec.Cosine, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.BulkLoad(vec.NewMatrix(0, 8), nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty bulk load: err = %v, want ErrBadParams", err)
	}
	if err := col.BulkLoad(vec.NewMatrix(4, 16), nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("dim-mismatched bulk load: err = %v, want ErrBadParams", err)
	}
	if _, err := col.Insert(make([]float32, 16), nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("dim-mismatched insert: err = %v, want ErrBadParams", err)
	}
}

// TestUnknownIndexKindWrapsBadParams pins the errwrap fix in
// buildIndex: an unknown index kind is caller input, so the error must
// carry ErrBadParams for annbench's exit-code classification (exit 2, not
// the internal-failure exit 1 a bare fmt.Errorf caused).
func TestUnknownIndexKindWrapsBadParams(t *testing.T) {
	c := &Collection{kind: IndexKind("quantum-skiplist"), metric: vec.Cosine, params: DefaultBuildParams()}
	_, err := c.buildIndex(vec.NewMatrix(1, 4), nil, 0)
	if !errors.Is(err, ErrBadParams) {
		t.Errorf("unknown index kind: err = %v, want ErrBadParams in the chain", err)
	}
}
