package vdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func saveLoadRoundTrip(t *testing.T, kind IndexKind, traits Traits, opts index.SearchOptions) {
	t.Helper()
	ds := testDataset(t, 600)
	col, err := NewCollection("p", 32, ds.Spec.Metric, traits, kind, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	var next int64
	col.AssignStorage(func(n int64) int64 { p := next; next += n; return p })

	path := filepath.Join(t.TempDir(), "col.bin")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCollection(path, ds.Vectors, traits, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() || len(got.Segments()) != len(col.Segments()) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), len(got.Segments()), col.Len(), len(col.Segments()))
	}
	next = 0
	got.AssignStorage(func(n int64) int64 { p := next; next += n; return p })
	// Identical search results query for query.
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := col.Search(q, 10, opts)
		b := got.Search(q, 10, opts)
		if !reflect.DeepEqual(a.IDs, b.IDs) {
			t.Fatalf("%s query %d: results differ after round trip:\n%v\n%v", kind, qi, a.IDs, b.IDs)
		}
	}
	// Inserts still work after load (nextID restored).
	id, err := got.Insert(ds.Queries.Row(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != ds.Vectors.Len() {
		t.Errorf("post-load insert id = %d, want %d", id, ds.Vectors.Len())
	}
}

func TestSaveLoadHNSW(t *testing.T) {
	saveLoadRoundTrip(t, IndexHNSW, Qdrant(), index.SearchOptions{EfSearch: 40})
}

func TestSaveLoadHNSWSegmented(t *testing.T) {
	tr := Milvus()
	tr.SegmentCapacity = 200
	saveLoadRoundTrip(t, IndexHNSW, tr, index.SearchOptions{EfSearch: 40})
}

func TestSaveLoadHNSWSQ(t *testing.T) {
	saveLoadRoundTrip(t, IndexHNSWSQ, LanceDB(), index.SearchOptions{EfSearch: 40})
}

func TestSaveLoadDiskANN(t *testing.T) {
	tr := Milvus()
	tr.SegmentCapacity = 300
	saveLoadRoundTrip(t, IndexDiskANN, tr, index.SearchOptions{SearchList: 20, BeamWidth: 4})
}

func TestSaveLoadIVFFlat(t *testing.T) {
	saveLoadRoundTrip(t, IndexIVFFlat, Milvus(), index.SearchOptions{NProbe: 8})
}

func TestSaveLoadIVFPQ(t *testing.T) {
	saveLoadRoundTrip(t, IndexIVFPQ, LanceDB(), index.SearchOptions{NProbe: 8})
}

func TestLoadRejectsGarbage(t *testing.T) {
	ds := testDataset(t, 300)
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not a collection"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCollection(path, ds.Vectors, Qdrant(), DefaultBuildParams()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadRejectsDimMismatch(t *testing.T) {
	ds := testDataset(t, 300)
	col, _ := NewCollection("p", 32, ds.Spec.Metric, Qdrant(), IndexHNSW, DefaultBuildParams())
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "col.bin")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	bad := vec.NewMatrix(10, 16)
	if _, err := LoadCollection(path, bad, Qdrant(), DefaultBuildParams()); err == nil {
		t.Error("dim mismatch accepted")
	}
}
