package vdb

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// TestSearchBatchMatchesSequentialProperty is the pipeline's determinism
// property: SearchBatch must be byte-identical to a sequential Search loop
// under every combination of look-ahead depth, query concurrency, and
// node-cache configuration. Look-ahead and concurrency may only change when
// pages are read, never what the search returns or demands.
//
// Each trial searches two independently built but identical collections —
// batch on one, sequential on the other — so mutable (LRU) cache state
// cannot leak between the two orderings being compared.
func TestSearchBatchMatchesSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	caches := []index.SearchOption{
		func(o *index.SearchOptions) {}, // no cache
		index.WithNodeCachePolicy(index.NodeCacheStatic),
		index.WithNodeCachePolicy(index.NodeCacheLRU),
	}
	prefetchTrials, prefetchSeen := 0, 0
	for trial := 0; trial < 6; trial++ {
		opts := index.SearchOptions{SearchList: 20, BeamWidth: 4}
		opts = opts.With(
			index.WithLookAhead(rng.Intn(5)),
			index.WithQueryConcurrency(1+rng.Intn(8)),
			caches[rng.Intn(len(caches))],
		)
		if opts.NodeCachePolicy != "" {
			opts = opts.With(index.WithNodeCacheNodes(16))
		}
		colBatch, ds := lruCollection(t)
		colSeq, _ := lruCollection(t)

		batch := colBatch.SearchBatch(context.Background(), ds.Queries, 10, opts)
		if len(batch) != ds.Queries.Len() {
			t.Fatalf("trial %d: batch returned %d execs for %d queries", trial, len(batch), ds.Queries.Len())
		}
		for qi := range batch {
			seq := colSeq.Search(ds.Queries.Row(qi), 10, opts)
			if !reflect.DeepEqual(batch[qi], seq) {
				t.Fatalf("trial %d (la=%d qc=%d cache=%q): query %d batch exec differs from sequential\nbatch: %+v\nseq:   %+v",
					trial, opts.LookAhead, opts.QueryConcurrency, opts.NodeCachePolicy, qi, batch[qi], seq)
			}
		}
		if opts.LookAhead > 0 {
			prefetchTrials++
			for qi := range batch {
				if batch[qi].Stats.PrefetchPages > 0 {
					prefetchSeen++
					break
				}
			}
		}
	}
	if prefetchTrials > 0 && prefetchSeen == 0 {
		t.Error("no look-ahead trial recorded any prefetch pages")
	}
}

// TestRecordQueriesLookAheadPreservesResults: recording with look-ahead must
// yield the same results, demand steps and demand statistics as recording
// without — the speculation lives only in the Prefetch field of each step
// and the prefetch counters of the stats.
func TestRecordQueriesLookAheadPreservesResults(t *testing.T) {
	opts := index.SearchOptions{SearchList: 20, BeamWidth: 4}
	colBase, ds := lruCollection(t)
	colLA, _ := lruCollection(t)
	base := colBase.RecordQueries(ds.Queries, 10, opts)
	la := colLA.RecordQueries(ds.Queries, 10, opts.With(index.WithLookAhead(4)))

	prefetched := 0
	for qi := range base {
		if !reflect.DeepEqual(base[qi].IDs, la[qi].IDs) {
			t.Fatalf("query %d: look-ahead changed result IDs", qi)
		}
		bs, ls := base[qi].Stats, la[qi].Stats
		prefetched += ls.PrefetchPages
		if ls.PrefetchUsed > ls.PrefetchPages {
			t.Fatalf("query %d: prefetch used %d exceeds issued %d", qi, ls.PrefetchUsed, ls.PrefetchPages)
		}
		ls.PrefetchPages, ls.PrefetchUsed = 0, 0
		if bs != ls {
			t.Fatalf("query %d: demand stats differ: base %+v vs look-ahead %+v", qi, bs, ls)
		}
		if len(base[qi].Segments) != len(la[qi].Segments) {
			t.Fatalf("query %d: segment count differs", qi)
		}
		for si := range base[qi].Segments {
			bSteps, lSteps := base[qi].Segments[si], la[qi].Segments[si]
			if len(bSteps) != len(lSteps) {
				t.Fatalf("query %d seg %d: step count %d vs %d", qi, si, len(bSteps), len(lSteps))
			}
			for i := range lSteps {
				s := lSteps[i]
				s.Prefetch = nil
				if !reflect.DeepEqual(bSteps[i], s) {
					t.Fatalf("query %d seg %d step %d differs beyond Prefetch:\nbase: %+v\nla:   %+v",
						qi, si, i, bSteps[i], lSteps[i])
				}
			}
		}
	}
	if prefetched == 0 {
		t.Error("look-ahead recording issued no prefetch pages across the workload")
	}
}
