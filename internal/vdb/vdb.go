// Package vdb implements the vector-database layer of the reproduction: a
// full database core (collections, segments, payloads, insert/delete with
// tombstones, search scheduling) plus four engine trait profiles that
// reproduce the architectural differences between the systems the paper
// benchmarks — Milvus, Qdrant, Weaviate and LanceDB.
//
// The paper's central methodological point (O-2, O-6, O-8) is that the
// database around an index matters as much as the index itself. The traits
// encode exactly the public architectural facts behind those observations:
//
//   - Milvus shards collections into fixed-capacity segments, builds one
//     index per segment, and fans a single query out across segments in
//     parallel — which is why its throughput plateaus at ~4 concurrent
//     queries on large datasets (O-4) and why DiskANN I/O per query grows
//     with dataset size (O-14).
//   - Qdrant and Weaviate keep one monolithic HNSW graph per collection and
//     execute each query on one core; they scale with the number of query
//     threads until cores saturate (O-5).
//   - Weaviate carries a high fixed per-query overhead (GraphQL/REST
//     processing), making its throughput nearly independent of dataset
//     size (O-6).
//   - LanceDB is an embedded library driven from Python: no server
//     round-trip, but a large per-query interpreter cost, a global lock
//     over parts of execution, and per-query memory that runs the process
//     out of memory at high concurrency (Sec. IV-A).
package vdb

import (
	"errors"
	"fmt"
	"time"
)

// IndexKind selects the index family a collection builds.
type IndexKind string

const (
	IndexIVFFlat IndexKind = "IVF_FLAT"
	IndexIVFPQ   IndexKind = "IVF_PQ"
	IndexHNSW    IndexKind = "HNSW"
	IndexHNSWSQ  IndexKind = "HNSW_SQ"
	IndexDiskANN IndexKind = "DISKANN"
)

// StorageBased reports whether the index keeps its vectors on the SSD.
func (k IndexKind) StorageBased() bool {
	return k == IndexDiskANN || k == IndexIVFPQ
}

// BuildParams carries the build-time parameters of Table II.
type BuildParams struct {
	// NList is IVF's cluster count (0 = the 4·√n rule).
	NList int
	// M and EfConstruction are HNSW's construction parameters (paper:
	// 16 and 200).
	M              int
	EfConstruction int
	// R, LBuild and Alpha are DiskANN's Vamana parameters.
	R      int
	LBuild int
	Alpha  float64
	// Layout selects DiskANN's on-disk layout (index.LayoutID or
	// index.LayoutPage; empty = ID-packed node-per-page).
	Layout string
	// Seed makes builds deterministic.
	Seed int64
}

// DefaultBuildParams returns the paper's Table II build-time settings.
func DefaultBuildParams() BuildParams {
	return BuildParams{M: 16, EfConstruction: 200, R: 48, LBuild: 100, Alpha: 1.2, Seed: 1}
}

// Traits is the behavioural envelope of one engine. Durations are virtual
// time; none of them depend on the host machine.
type Traits struct {
	// Name is the engine name as used in the paper's figures.
	Name string
	// RPCOverhead is the client↔server round-trip latency of one query
	// (network + serialisation). It elapses without consuming CPU.
	// Embedded engines have zero.
	RPCOverhead time.Duration
	// PerQueryCPU is the fixed request-processing cost (parsing,
	// planning, result assembly) burned on one core per query.
	PerQueryCPU time.Duration
	// IdleWake is the thread-pool park/unpark penalty paid by a query
	// that arrives at an idle engine. At high concurrency no query pays
	// it, which produces the superlinear 1→16 thread scaling of O-4.
	IdleWake time.Duration
	// MaxConcurrent caps queries executing inside the engine at once
	// (0 = unbounded). Excess queries queue FIFO.
	MaxConcurrent int
	// SegmentCapacity is the maximum vectors per sealed segment
	// (0 = monolithic collection).
	SegmentCapacity int
	// IntraQueryParallel fans one query's per-segment work across cores.
	IntraQueryParallel bool
	// MaxReadConcurrent caps a single query's concurrent segment workers
	// when IntraQueryParallel is set (0 = one worker per segment). It
	// models Milvus's queryNode.scheduler.maxReadConcurrentRatio.
	MaxReadConcurrent int
	// GlobalLockFraction is the fraction of PerQueryCPU executed under a
	// process-global lock (LanceDB's interpreter).
	GlobalLockFraction float64
	// MemPerQuery and MemBudget model per-query working memory against a
	// process budget; exceeding it fails the query with ErrOutOfMemory.
	MemPerQuery int64
	MemBudget   int64
	// Embedded marks client-side library engines (no server process).
	Embedded bool
	// SupportedIndexes lists the index kinds the engine exposes,
	// mirroring Sec. III-C.
	SupportedIndexes []IndexKind
}

// Supports reports whether the engine exposes the given index kind.
func (t Traits) Supports(kind IndexKind) bool {
	for _, k := range t.SupportedIndexes {
		if k == kind {
			return true
		}
	}
	return false
}

// ErrOutOfMemory is returned when an engine exceeds its memory budget, the
// failure mode the paper hit with LanceDB-HNSW at 256 threads.
var ErrOutOfMemory = errors.New("vdb: out of memory")

// ErrUnsupportedIndex is returned when a collection requests an index the
// engine does not expose.
var ErrUnsupportedIndex = errors.New("vdb: index kind not supported by engine")

// ErrUnknownEngine is returned by EngineByName for a name outside the
// paper's engine set. It marks a user error (a bad -engine flag) as opposed
// to an internal failure; cmd/annbench maps it to a distinct exit code.
var ErrUnknownEngine = errors.New("vdb: unknown engine")

// ErrBadParams marks structurally invalid caller input — a non-positive
// dimension, an empty bulk load, a vector whose dimension does not match the
// collection. Wrap sites attach the specifics with %w.
var ErrBadParams = errors.New("vdb: bad parameters")

// Milvus returns the Milvus trait profile.
func Milvus() Traits {
	return Traits{
		Name:               "milvus",
		RPCOverhead:        110 * time.Microsecond,
		PerQueryCPU:        45 * time.Microsecond,
		IdleWake:           150 * time.Microsecond,
		SegmentCapacity:    8192,
		IntraQueryParallel: true,
		// Milvus's queryNode scheduler admits roughly one segment task
		// per core (maxReadConcurrentRatio=1): queries queue for task
		// slots long before the CPU saturates, which is why both its
		// throughput and CPU usage plateau after ~4 concurrent queries
		// on multi-segment collections (the paper's O-4 and Fig. 4).
		MaxReadConcurrent: 20,
		SupportedIndexes:  []IndexKind{IndexIVFFlat, IndexHNSW, IndexDiskANN},
	}
}

// Qdrant returns the Qdrant trait profile.
func Qdrant() Traits {
	return Traits{
		Name:             "qdrant",
		RPCOverhead:      140 * time.Microsecond,
		PerQueryCPU:      90 * time.Microsecond,
		IdleWake:         280 * time.Microsecond,
		SupportedIndexes: []IndexKind{IndexHNSW},
	}
}

// Weaviate returns the Weaviate trait profile.
func Weaviate() Traits {
	return Traits{
		Name:             "weaviate",
		RPCOverhead:      180 * time.Microsecond,
		PerQueryCPU:      450 * time.Microsecond,
		IdleWake:         450 * time.Microsecond,
		SupportedIndexes: []IndexKind{IndexHNSW},
	}
}

// LanceDB returns the LanceDB trait profile (embedded Python library).
func LanceDB() Traits {
	return Traits{
		Name:               "lancedb",
		RPCOverhead:        0,
		PerQueryCPU:        2500 * time.Microsecond,
		IdleWake:           0,
		GlobalLockFraction: 0.3,
		MemPerQuery:        96 << 20,
		MemBudget:          14 << 30,
		Embedded:           true,
		SupportedIndexes:   []IndexKind{IndexIVFPQ, IndexHNSWSQ},
	}
}

// EngineByName returns the trait profile for a paper engine name.
func EngineByName(name string) (Traits, error) {
	switch name {
	case "milvus":
		return Milvus(), nil
	case "qdrant":
		return Qdrant(), nil
	case "weaviate":
		return Weaviate(), nil
	case "lancedb":
		return LanceDB(), nil
	default:
		return Traits{}, fmt.Errorf("%w %q (have milvus, qdrant, weaviate, lancedb)", ErrUnknownEngine, name)
	}
}

// Setup names one (engine, index) configuration from the paper's Sec. IV
// list: five memory-based and two storage-based setups.
type Setup struct {
	Engine Traits
	Index  IndexKind
}

// Label renders the paper's setup naming, e.g. "milvus-DISKANN".
func (s Setup) Label() string { return s.Engine.Name + "-" + string(s.Index) }

// PaperSetups returns the seven configurations of Figures 2–4. LanceDB's
// per-query memory pressure applies to its in-memory HNSW only: the IVF
// variant streams posting lists from storage and survived 256 threads in the
// paper (it was excluded for throughput, not stability).
func PaperSetups() []Setup {
	lanceIVF := LanceDB()
	lanceIVF.MemPerQuery = 0
	lanceIVF.MemBudget = 0
	return []Setup{
		{Milvus(), IndexIVFFlat},
		{Milvus(), IndexHNSW},
		{Milvus(), IndexDiskANN},
		{Qdrant(), IndexHNSW},
		{Weaviate(), IndexHNSW},
		{LanceDB(), IndexHNSWSQ},
		{lanceIVF, IndexIVFPQ},
	}
}
