package vdb

import (
	"time"

	"svdbench/internal/index"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

// Engine executes recorded queries inside the discrete-event simulation
// under one trait profile. It owns the scheduler state that produces the
// paper's engine-level differences: admission control, idle-wake penalties,
// the global lock, per-query memory accounting, and segment fan-out.
type Engine struct {
	Traits
	k   *sim.Kernel
	cpu *sim.CPU
	dev *ssd.Device
	rd  pageReader // read path: the device directly, or a coalescing Batcher

	sched      *sim.Semaphore // admission (nil = unbounded)
	readSlots  *sim.Semaphore // segment-worker cap (nil = unbounded)
	globalLock *sim.Semaphore

	active    int
	memInUse  int64
	served    int64
	oomFailed int64
}

// NewEngine binds a trait profile to a simulation, its CPU, and the storage
// device queries read from.
func NewEngine(k *sim.Kernel, cpu *sim.CPU, dev *ssd.Device, traits Traits) *Engine {
	e := &Engine{Traits: traits, k: k, cpu: cpu, dev: dev, rd: dev}
	if traits.MaxConcurrent > 0 {
		e.sched = sim.NewSemaphore(k, traits.Name+"/sched", int64(traits.MaxConcurrent))
	}
	if traits.IntraQueryParallel && traits.MaxReadConcurrent > 0 {
		e.readSlots = sim.NewSemaphore(k, traits.Name+"/read", int64(traits.MaxReadConcurrent))
	}
	if traits.GlobalLockFraction > 0 {
		e.globalLock = sim.NewSemaphore(k, traits.Name+"/gil", 1)
	}
	return e
}

// pageReader is the engine's read path: one blocking read request. The
// device's direct path charges full submission CPU per request; an
// ssd.Batcher coalesces requests outstanding across concurrent queries into
// shared submissions.
type pageReader interface {
	Read(e *sim.Env, page int64, bytes int)
}

// SetBatcher routes the engine's reads through a request coalescer (nil
// restores the direct device path). The batcher must be bound to this
// engine's device.
func (e *Engine) SetBatcher(b *ssd.Batcher) {
	if b == nil {
		e.rd = e.dev
		return
	}
	e.rd = b
}

// Device returns the engine's storage device.
func (e *Engine) Device() *ssd.Device { return e.dev }

// CPUResource returns the engine's CPU.
func (e *Engine) CPUResource() *sim.CPU { return e.cpu }

// Served returns the number of queries completed.
func (e *Engine) Served() int64 { return e.served }

// OOMFailures returns the number of queries rejected for memory.
func (e *Engine) OOMFailures() int64 { return e.oomFailed }

// RunQuery executes one recorded query in the calling simulated process,
// blocking for its full virtual duration. It returns ErrOutOfMemory when the
// trait memory budget is exceeded (the paper's LanceDB-HNSW failure mode).
func (e *Engine) RunQuery(env *sim.Env, qe *QueryExec) error {
	// Client → server half of the round trip.
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	// Memory admission.
	if e.MemPerQuery > 0 && e.MemBudget > 0 {
		if e.memInUse+e.MemPerQuery > e.MemBudget {
			e.oomFailed++
			return ErrOutOfMemory
		}
		e.memInUse += e.MemPerQuery
		defer func() { e.memInUse -= e.MemPerQuery }()
	}
	// A query arriving at an idle engine pays the thread-pool wake-up;
	// queries arriving while it is already waking queue behind it instead
	// of paying again.
	wasIdle := e.active == 0
	e.active++
	defer func() { e.active-- }()
	if e.IdleWake > 0 && wasIdle {
		env.Sleep(e.IdleWake)
	}

	if e.sched != nil {
		e.sched.Acquire(env, 1)
		defer e.sched.Release(1)
	}

	// Fixed request-processing cost, part of it under the global lock.
	if e.PerQueryCPU > 0 {
		locked := time.Duration(float64(e.PerQueryCPU) * e.GlobalLockFraction)
		free := e.PerQueryCPU - locked
		if locked > 0 && e.globalLock != nil {
			e.globalLock.Acquire(env, 1)
			e.cpu.Use(env, locked)
			e.globalLock.Release(1)
		}
		e.cpu.Use(env, free)
	}

	// Per-segment work: fan out when the engine parallelises a query
	// across segments (Milvus), otherwise run them in sequence.
	if e.IntraQueryParallel && len(qe.Segments) > 1 {
		g := env.NewGroup()
		for _, steps := range qe.Segments {
			steps := steps
			g.Go(e.Name+"/seg", func(ce *sim.Env) {
				if e.readSlots != nil {
					e.readSlots.Acquire(ce, 1)
					defer e.readSlots.Release(1)
				}
				e.replaySteps(ce, steps)
			})
		}
		g.Wait(env)
	} else {
		for _, steps := range qe.Segments {
			e.replaySteps(env, steps)
		}
	}

	// Server → client half of the round trip.
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.served++
	return nil
}

// replaySteps walks one segment's recorded steps: each step burns its CPU
// on a core, launches its speculative prefetches in the background, then
// issues its demand page batch (beam semantics). Node-cache hits recorded in
// a step were already charged as CPU at record time; here they are only
// reported to the tracer so run metrics can show hit rates alongside the
// device traffic they displaced.
//
// Prefetches are the replay half of look-ahead: each PrefetchRun becomes a
// background process reading its pages while subsequent steps burn CPU, with
// a completion event keyed by first page. When a later step demands pages
// whose prefetch is still in flight, the demand joins the event (waiting
// only for the residual latency) instead of issuing a duplicate read — the
// mechanism that overlaps hop h+1's I/O with hop h's compute.
func (e *Engine) replaySteps(env *sim.Env, steps []index.Step) {
	pageSize := e.dev.Config().PageSize
	var inflight map[int64]*sim.Event // first page → prefetch completion
	for _, s := range steps {
		if s.CPU > 0 {
			e.cpu.Use(env, s.CPU)
		}
		if s.CachePages > 0 {
			e.dev.Tracer().EmitCacheHit(env.Now(), s.CachePages, s.CachePages*pageSize)
		}
		for _, pf := range s.Prefetch {
			if len(pf.Pages) == 0 {
				continue
			}
			if inflight == nil {
				inflight = map[int64]*sim.Event{}
			}
			if pf.Contiguous {
				ev := sim.NewEvent(e.k)
				inflight[pf.Pages[0]] = ev
				first, bytes := pf.Pages[0], len(pf.Pages)*pageSize
				e.k.Spawn(e.Name+"/prefetch", func(ce *sim.Env) {
					e.rd.Read(ce, first, bytes)
					ev.Fire()
				})
			} else {
				for _, p := range pf.Pages {
					p := p
					ev := sim.NewEvent(e.k)
					inflight[p] = ev
					e.k.Spawn(e.Name+"/prefetch", func(ce *sim.Env) {
						e.rd.Read(ce, p, pageSize)
						ev.Fire()
					})
				}
			}
		}
		if len(s.Pages) == 0 {
			continue
		}
		if s.Contiguous {
			if ev, ok := inflight[s.Pages[0]]; ok {
				delete(inflight, s.Pages[0])
				ev.Wait(env)
			} else {
				e.rd.Read(env, s.Pages[0], len(s.Pages)*pageSize)
			}
			continue
		}
		// Beam step: join pages already in flight from a prefetch, read the
		// rest in parallel, then wait for everything.
		var joins []*sim.Event
		toRead := s.Pages
		if inflight != nil {
			joins = make([]*sim.Event, 0, len(s.Pages))
			toRead = make([]int64, 0, len(s.Pages))
			for _, p := range s.Pages {
				if ev, ok := inflight[p]; ok {
					delete(inflight, p)
					joins = append(joins, ev)
				} else {
					toRead = append(toRead, p)
				}
			}
		}
		switch len(toRead) {
		case 0:
		case 1:
			e.rd.Read(env, toRead[0], pageSize)
		default:
			g := env.NewGroup()
			for _, p := range toRead {
				p := p
				g.Go(e.Name+"/beam-read", func(ce *sim.Env) { e.rd.Read(ce, p, pageSize) })
			}
			g.Wait(env)
		}
		for _, ev := range joins {
			ev.Wait(env)
		}
	}
}

// RunInsert executes one insert in simulated time: request processing plus
// a write-ahead-log append of the vector rounded up to page granularity.
func (e *Engine) RunInsert(env *sim.Env, vectorBytes int) {
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.cpu.Use(env, e.PerQueryCPU/2+10*time.Microsecond)
	pageSize := e.dev.Config().PageSize
	walBytes := ((vectorBytes + pageSize - 1) / pageSize) * pageSize
	e.dev.Write(env, 0, walBytes)
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
}

// RunDelete executes one delete: request processing plus a one-page
// tombstone WAL record.
func (e *Engine) RunDelete(env *sim.Env) {
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.cpu.Use(env, e.PerQueryCPU/2+5*time.Microsecond)
	e.dev.Write(env, 0, e.dev.Config().PageSize)
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
}
