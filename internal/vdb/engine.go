package vdb

import (
	"time"

	"svdbench/internal/index"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

// Engine executes recorded queries inside the discrete-event simulation
// under one trait profile. It owns the scheduler state that produces the
// paper's engine-level differences: admission control, idle-wake penalties,
// the global lock, per-query memory accounting, and segment fan-out.
type Engine struct {
	Traits
	k       *sim.Kernel
	cpu     *sim.CPU
	dev     *ssd.Device
	rd      pageReader   // read path: the device directly, or a coalescing Batcher
	batcher *ssd.Batcher // non-nil when rd coalesces (typed for ReadPages)

	sched      *sim.Semaphore // admission (nil = unbounded)
	readSlots  *sim.Semaphore // segment-worker cap (nil = unbounded)
	globalLock *sim.Semaphore

	active    int
	memInUse  int64
	served    int64
	oomFailed int64

	scratch []*replayScratch // per-query replay state pool
	pfPool  []*prefetchJob   // background-prefetch body pool
	reap    []*prefetchJob   // abandoned async prefetches awaiting completion
	pfName  string           // precomposed prefetch proc name (concat allocates)
}

// NewEngine binds a trait profile to a simulation, its CPU, and the storage
// device queries read from.
func NewEngine(k *sim.Kernel, cpu *sim.CPU, dev *ssd.Device, traits Traits) *Engine {
	e := &Engine{Traits: traits, k: k, cpu: cpu, dev: dev, rd: dev, pfName: traits.Name + "/prefetch"}
	if traits.MaxConcurrent > 0 {
		e.sched = sim.NewSemaphore(k, traits.Name+"/sched", int64(traits.MaxConcurrent))
	}
	if traits.IntraQueryParallel && traits.MaxReadConcurrent > 0 {
		e.readSlots = sim.NewSemaphore(k, traits.Name+"/read", int64(traits.MaxReadConcurrent))
	}
	if traits.GlobalLockFraction > 0 {
		e.globalLock = sim.NewSemaphore(k, traits.Name+"/gil", 1)
	}
	return e
}

// pageReader is the engine's read path: one blocking read request. The
// device's direct path charges full submission CPU per request; an
// ssd.Batcher coalesces requests outstanding across concurrent queries into
// shared submissions.
type pageReader interface {
	Read(e *sim.Env, page int64, bytes int)
}

// SetBatcher routes the engine's reads through a request coalescer (nil
// restores the direct device path). The batcher must be bound to this
// engine's device.
func (e *Engine) SetBatcher(b *ssd.Batcher) {
	e.batcher = b
	if b == nil {
		e.rd = e.dev
		return
	}
	e.rd = b
}

// Device returns the engine's storage device.
func (e *Engine) Device() *ssd.Device { return e.dev }

// CPUResource returns the engine's CPU.
func (e *Engine) CPUResource() *sim.CPU { return e.cpu }

// Served returns the number of queries completed.
func (e *Engine) Served() int64 { return e.served }

// OOMFailures returns the number of queries rejected for memory.
func (e *Engine) OOMFailures() int64 { return e.oomFailed }

// RunQuery executes one recorded query in the calling simulated process,
// blocking for its full virtual duration. It returns ErrOutOfMemory when the
// trait memory budget is exceeded (the paper's LanceDB-HNSW failure mode).
func (e *Engine) RunQuery(env *sim.Env, qe *QueryExec) error {
	// Client → server half of the round trip.
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	// Memory admission.
	if e.MemPerQuery > 0 && e.MemBudget > 0 {
		if e.memInUse+e.MemPerQuery > e.MemBudget {
			e.oomFailed++
			return ErrOutOfMemory
		}
		e.memInUse += e.MemPerQuery
		defer func() { e.memInUse -= e.MemPerQuery }()
	}
	// A query arriving at an idle engine pays the thread-pool wake-up;
	// queries arriving while it is already waking queue behind it instead
	// of paying again.
	wasIdle := e.active == 0
	e.active++
	defer func() { e.active-- }()
	if e.IdleWake > 0 && wasIdle {
		env.Sleep(e.IdleWake)
	}

	if e.sched != nil {
		e.sched.Acquire(env, 1)
		defer e.sched.Release(1)
	}

	// Fixed request-processing cost, part of it under the global lock.
	if e.PerQueryCPU > 0 {
		locked := time.Duration(float64(e.PerQueryCPU) * e.GlobalLockFraction)
		free := e.PerQueryCPU - locked
		if locked > 0 && e.globalLock != nil {
			e.globalLock.Acquire(env, 1)
			e.cpu.Use(env, locked)
			e.globalLock.Release(1)
		}
		e.cpu.Use(env, free)
	}

	// Per-segment work: fan out when the engine parallelises a query
	// across segments (Milvus), otherwise run them in sequence.
	if e.IntraQueryParallel && len(qe.Segments) > 1 {
		g := env.NewGroup()
		for _, steps := range qe.Segments {
			steps := steps
			g.Go(e.Name+"/seg", func(ce *sim.Env) {
				if e.readSlots != nil {
					e.readSlots.Acquire(ce, 1)
					defer e.readSlots.Release(1)
				}
				e.replaySteps(ce, steps)
			})
		}
		g.Wait(env)
	} else {
		for _, steps := range qe.Segments {
			e.replaySteps(env, steps)
		}
	}

	// Server → client half of the round trip.
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.served++
	return nil
}

// replayScratch is the reusable per-query state of replaySteps. Replaying
// queries interleave inside the simulation, so each in-flight query borrows
// its own instance from the engine's pool; the steady state allocates
// nothing per query.
type replayScratch struct {
	inflight map[int64]*prefetchJob // first page → in-flight prefetch
	jobs     []pfRef                // every prefetch issued by this query
	joins    []*prefetchJob         // current step's joined prefetches
	toRead   []int64                // current step's demand pages
}

// pfRef records one issued prefetch for the end-of-query sweep. Joined jobs
// are released — and may be reissued — before the sweep runs, so the ref
// snapshots the job's generation: a stale generation means this ref's
// incarnation is already back in the pool.
type pfRef struct {
	pj  *prefetchJob
	gen uint32
}

func (e *Engine) allocScratch() *replayScratch {
	if n := len(e.scratch); n > 0 {
		s := e.scratch[n-1]
		e.scratch = e.scratch[:n-1]
		return s
	}
	// Sized for a deep look-ahead schedule up front: the scratch is reused
	// for the engine's lifetime, so growth allocations are worth avoiding.
	return &replayScratch{
		inflight: make(map[int64]*prefetchJob, 64),
		jobs:     make([]pfRef, 0, 64),
		joins:    make([]*prefetchJob, 0, 16),
		toRead:   make([]int64, 0, 16),
	}
}

func (e *Engine) releaseScratch(s *replayScratch) {
	clear(s.inflight)
	s.jobs, s.joins, s.toRead = s.jobs[:0], s.joins[:0], s.toRead[:0]
	e.scratch = append(e.scratch, s)
}

// prefetchJob is the pooled state of one background prefetch. A demand step
// joining the prefetch waits on ev and releases the job immediately; jobs
// the query never joined are swept at query end — released when already
// complete, otherwise handed off to free themselves (proc path) or to the
// engine's reap list (async path) once their read lands.
type prefetchJob struct {
	eng       *Engine
	page      int64
	bytes     int
	ev        *sim.Event
	gen       uint32
	abandoned bool
}

// Run performs the speculative read and fires the completion event
// (prefetchJob implements sim.Runner) — the direct-device path; in
// coalesced mode the batcher services the read and fires ev with no
// process at all.
func (pj *prefetchJob) Run(ce *sim.Env) {
	pj.eng.rd.Read(ce, pj.page, pj.bytes)
	pj.ev.Fire()
	if pj.abandoned {
		pj.eng.releasePF(pj)
	}
}

func (e *Engine) allocPF(page int64, bytes int) *prefetchJob {
	var pj *prefetchJob
	if n := len(e.pfPool); n > 0 {
		pj = e.pfPool[n-1]
		e.pfPool = e.pfPool[:n-1]
	} else {
		pj = &prefetchJob{eng: e}
	}
	pj.page, pj.bytes = page, bytes
	pj.ev = e.k.AllocEvent()
	pj.abandoned = false
	return pj
}

func (e *Engine) releasePF(pj *prefetchJob) {
	pj.gen++ // invalidate outstanding pfRefs to this incarnation
	e.k.ReleaseEvent(pj.ev)
	pj.ev = nil
	e.pfPool = append(e.pfPool, pj)
}

// reapPrefetches releases abandoned async prefetches whose reads have since
// completed. Called on each query's sweep, keeping the unfired tail small.
func (e *Engine) reapPrefetches() {
	kept := e.reap[:0]
	for _, pj := range e.reap {
		if pj.ev.Fired() {
			e.releasePF(pj)
		} else {
			kept = append(kept, pj)
		}
	}
	e.reap = kept
}

// spawnPrefetch issues one background prefetch and registers it with the
// query's scratch under its first page. In coalesced mode the read is an
// async batcher submission; otherwise a pooled process performs it.
func (e *Engine) spawnPrefetch(scr *replayScratch, first int64, bytes int) {
	pj := e.allocPF(first, bytes)
	scr.inflight[first] = pj
	scr.jobs = append(scr.jobs, pfRef{pj: pj, gen: pj.gen})
	if e.batcher != nil {
		e.batcher.ReadAsync(first, bytes, pj.ev)
	} else {
		e.k.SpawnRunner(e.pfName, pj)
	}
}

// issuePrefetches launches every speculative read a step recorded. In
// coalesced mode the caller invokes it after submitting the step's demand
// reads so speculative transfers queue behind demand ones — the same bus
// order the process path produces, where prefetch processes only run once
// the query parks on its demand I/O.
func (e *Engine) issuePrefetches(scr *replayScratch, pfs []index.PrefetchRun, pageSize int) {
	for _, pf := range pfs {
		if len(pf.Pages) == 0 {
			continue
		}
		if pf.Contiguous {
			e.spawnPrefetch(scr, pf.Pages[0], len(pf.Pages)*pageSize)
		} else {
			for _, p := range pf.Pages {
				e.spawnPrefetch(scr, p, pageSize)
			}
		}
	}
}

// replaySteps walks one segment's recorded steps: each step burns its CPU
// on a core, launches its speculative prefetches in the background, then
// issues its demand page batch (beam semantics). Node-cache hits recorded in
// a step were already charged as CPU at record time; here they are only
// reported to the tracer so run metrics can show hit rates alongside the
// device traffic they displaced.
//
// Prefetches are the replay half of look-ahead: each PrefetchRun becomes a
// background process reading its pages while subsequent steps burn CPU, with
// a completion event keyed by first page. When a later step demands pages
// whose prefetch is still in flight, the demand joins the event (waiting
// only for the residual latency) instead of issuing a duplicate read — the
// mechanism that overlaps hop h+1's I/O with hop h's compute.
func (e *Engine) replaySteps(env *sim.Env, steps []index.Step) {
	pageSize := e.dev.Config().PageSize
	async := e.batcher != nil
	var scr *replayScratch // lazily borrowed: only prefetching queries pay
	for _, s := range steps {
		if s.CPU > 0 {
			e.cpu.Use(env, s.CPU)
		}
		if s.CachePages > 0 {
			e.dev.Tracer().EmitCacheHit(env.Now(), s.CachePages, s.CachePages*pageSize)
		}
		pfs := s.Prefetch
		if len(pfs) > 0 && scr == nil {
			scr = e.allocScratch()
		}
		if !async && len(pfs) > 0 {
			// Process path: the prefetch processes are only scheduled here;
			// they run — and enqueue their reads — once the query parks on
			// its demand I/O below, so demand transfers stay ahead.
			e.issuePrefetches(scr, pfs, pageSize)
			pfs = nil
		}
		if len(s.Pages) == 0 {
			if len(pfs) > 0 {
				e.issuePrefetches(scr, pfs, pageSize)
			}
			continue
		}
		if s.Contiguous {
			var joined *prefetchJob
			if scr != nil {
				if pj, ok := scr.inflight[s.Pages[0]]; ok {
					delete(scr.inflight, s.Pages[0])
					joined = pj
				}
			}
			switch {
			case joined != nil:
				if len(pfs) > 0 {
					e.issuePrefetches(scr, pfs, pageSize)
				}
				joined.ev.Wait(env)
				e.releasePF(joined)
			case async:
				// Submit the demand read, then the step's prefetches, then
				// park — speculative transfers queue behind the demand one.
				dem := e.k.AllocEvent()
				e.batcher.ReadAsync(s.Pages[0], len(s.Pages)*pageSize, dem)
				if len(pfs) > 0 {
					e.issuePrefetches(scr, pfs, pageSize)
				}
				dem.Wait(env)
				e.k.ReleaseEvent(dem)
			default:
				e.rd.Read(env, s.Pages[0], len(s.Pages)*pageSize)
			}
			continue
		}
		// Beam step: join pages already in flight from a prefetch, read the
		// rest in parallel, then wait for everything.
		var joins []*prefetchJob
		toRead := s.Pages
		if scr != nil && len(scr.inflight) > 0 {
			scr.joins = scr.joins[:0]
			scr.toRead = scr.toRead[:0]
			for _, p := range s.Pages {
				if pj, ok := scr.inflight[p]; ok {
					delete(scr.inflight, p)
					scr.joins = append(scr.joins, pj)
				} else {
					scr.toRead = append(scr.toRead, p)
				}
			}
			joins, toRead = scr.joins, scr.toRead
		}
		if async {
			// Same demand-before-prefetch submission order as the contiguous
			// case, with the whole residual beam joining one event.
			var dem *sim.Event
			if len(toRead) > 0 {
				dem = e.k.AllocEvent()
				if len(toRead) == 1 {
					e.batcher.ReadAsync(toRead[0], pageSize, dem)
				} else {
					e.batcher.ReadPagesAsync(toRead, dem)
				}
			}
			if len(pfs) > 0 {
				e.issuePrefetches(scr, pfs, pageSize)
			}
			if dem != nil {
				dem.Wait(env)
				e.k.ReleaseEvent(dem)
			}
		} else {
			switch len(toRead) {
			case 0:
			case 1:
				e.rd.Read(env, toRead[0], pageSize)
			default:
				e.dev.ReadPages(env, toRead)
			}
		}
		for _, pj := range joins {
			pj.ev.Wait(env)
			e.releasePF(pj)
		}
	}
	if scr != nil {
		// Sweep in issue order (deterministic — never map iteration).
		// Joined jobs released at the join and possibly reissued since, so
		// their refs are stale; completed-but-wasted prefetches release now;
		// still-in-flight ones release themselves after their read lands
		// (proc path) or park on the reap list (async path, no process to
		// free them).
		e.reapPrefetches()
		for _, ref := range scr.jobs {
			pj := ref.pj
			if pj.gen != ref.gen {
				continue
			}
			switch {
			case pj.ev.Fired():
				e.releasePF(pj)
			case e.batcher != nil:
				e.reap = append(e.reap, pj)
			default:
				pj.abandoned = true
			}
		}
		e.releaseScratch(scr)
	}
}

// RunInsert executes one insert in simulated time: request processing plus
// a write-ahead-log append of the vector rounded up to page granularity.
func (e *Engine) RunInsert(env *sim.Env, vectorBytes int) {
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.cpu.Use(env, e.PerQueryCPU/2+10*time.Microsecond)
	pageSize := e.dev.Config().PageSize
	walBytes := ((vectorBytes + pageSize - 1) / pageSize) * pageSize
	e.dev.Write(env, 0, walBytes)
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
}

// RunDelete executes one delete: request processing plus a one-page
// tombstone WAL record.
func (e *Engine) RunDelete(env *sim.Env) {
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
	e.cpu.Use(env, e.PerQueryCPU/2+5*time.Microsecond)
	e.dev.Write(env, 0, e.dev.Config().PageSize)
	if e.RPCOverhead > 0 {
		env.Sleep(e.RPCOverhead / 2)
	}
}
