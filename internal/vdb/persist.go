package vdb

import (
	"fmt"
	"os"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/index/hnsw"
	"svdbench/internal/index/ivf"
	"svdbench/internal/vec"
)

const collectionMagic = "SVDCOL01"

// Save persists the collection's sealed index structures to path. Vector
// payload data is not written — it is re-derivable from the dataset — so
// the file holds segment boundaries plus each segment's serialised index.
// Growing rows, tombstones and payloads are runtime state and are not
// persisted (matching a database checkpoint of sealed segments).
func (c *Collection) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("vdb: save: %w", err)
	}
	w := binenc.NewWriter(f)
	w.Magic(collectionMagic)
	w.String(c.Name)
	w.Int(c.dim)
	w.Int(int(c.metric))
	w.String(string(c.kind))
	w.Int(len(c.segments))
	for _, s := range c.segments {
		w.I32s(s.IDs)
		switch ix := s.Index.(type) {
		case *hnsw.Index:
			ix.WriteTo(w)
		case *diskann.Index:
			ix.WriteTo(w)
		case *ivf.Index:
			ix.WriteTo(w)
		default:
			f.Close()
			os.Remove(tmp)
			// A cache-ineligible index reaching Save is a harness bug, not
			// caller input, so it stays an internal (exit 1) error.
			return fmt.Errorf("vdb: save: unsupported index type %T", s.Index) //annlint:allow errwrap -- harness bug, internal by design
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vdb: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vdb: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadCollection restores a collection saved with Save, re-binding it to the
// full dataset matrix it was bulk-loaded from. traits and params must match
// the original configuration (they determine scheduler behaviour, not the
// persisted structure).
func LoadCollection(path string, data *vec.Matrix, traits Traits, params BuildParams) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := binenc.NewReader(f)
	r.Magic(collectionMagic)
	name := r.String()
	dim := r.Int()
	metric := vec.Metric(r.Int())
	kind := IndexKind(r.String())
	nseg := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if dim != data.Dim {
		return nil, fmt.Errorf("vdb: load: persisted dim %d, data dim %d", dim, data.Dim)
	}
	if nseg < 0 || nseg > 1<<20 {
		return nil, fmt.Errorf("vdb: load: corrupt segment count %d", nseg)
	}
	col, err := NewCollection(name, dim, metric, traits, kind, params)
	if err != nil {
		return nil, err
	}
	var maxID int32 = -1
	for si := 0; si < nseg; si++ {
		ids := r.I32s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		sub := vec.NewMatrix(len(ids), dim)
		for i, id := range ids {
			if int(id) >= data.Len() || id < 0 {
				return nil, fmt.Errorf("vdb: load: segment %d references row %d outside data", si, id)
			}
			sub.SetRow(i, data.Row(int(id)))
			if id > maxID {
				maxID = id
			}
		}
		var ix index.Index
		switch kind {
		case IndexHNSW, IndexHNSWSQ:
			ix, err = hnsw.ReadFrom(r, sub, ids)
		case IndexDiskANN:
			ix, err = diskann.ReadFrom(r, sub, ids)
		case IndexIVFFlat, IndexIVFPQ:
			ix, err = ivf.ReadFrom(r, sub, ids)
		default:
			err = fmt.Errorf("vdb: load: unknown index kind %q", kind) //annlint:allow errwrap -- corrupt snapshot bytes are a cache condition, not caller parameters
		}
		if err != nil {
			return nil, err
		}
		col.segments = append(col.segments, &Segment{IDs: ids, Data: sub, Index: ix})
	}
	col.nextID = maxID + 1
	return col, nil
}
