package vec

import (
	"math"
	"math/rand"
	"testing"
)

// commonDims covers the dimension-specialised kernels (96/128/768/1536), the
// 8-way and 4-way unroll boundaries, and every remainder 1-7.
var commonDims = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
	31, 32, 33, 63, 64, 65, 95, 96, 97, 127, 128, 129, 768, 769, 1536,
}

// legacyDot is the pre-kernel 4-way scalar loop, kept verbatim as the
// reference the whole kernel family must stay bit-identical to: golden files
// and pre-built index assets pin floats computed by exactly this order.
func legacyDot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func legacyL2Sq(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func legacyCosine(a, b []float32) float32 {
	na := float32(math.Sqrt(float64(legacyDot(a, a))))
	nb := float32(math.Sqrt(float64(legacyDot(b, b))))
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - legacyDot(a, b)/(na*nb)
}

// TestScalarKernelsMatchLegacy pins Dot/L2Sq/CosineDistance (now routed
// through the unrolled kernels) to the original scalar loops, bit for bit.
func TestScalarKernelsMatchLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range commonDims {
		for rep := 0; rep < 8; rep++ {
			a, b := randVec(r, d), randVec(r, d)
			if got, want := Dot(a, b), legacyDot(a, b); got != want {
				t.Fatalf("dim %d: Dot = %x, legacy %x", d, got, want)
			}
			if got, want := L2Sq(a, b), legacyL2Sq(a, b); got != want {
				t.Fatalf("dim %d: L2Sq = %x, legacy %x", d, got, want)
			}
			if got, want := CosineDistance(a, b), legacyCosine(a, b); got != want {
				t.Fatalf("dim %d: CosineDistance = %x, legacy %x", d, got, want)
			}
		}
	}
}

// TestBatch4BitIdentity pins the 4-row kernels (SSE on amd64, interleaved Go
// elsewhere) and the pure-Go reference to the scalar path, bit for bit.
func TestBatch4BitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, d := range commonDims {
		for rep := 0; rep < 8; rep++ {
			q := randVec(r, d)
			rows := [4][]float32{randVec(r, d), randVec(r, d), randVec(r, d), randVec(r, d)}
			want := [4]float32{}
			for i, row := range rows {
				want[i] = Dot(q, row)
			}
			g0, g1, g2, g3 := dot4Go(q, rows[0], rows[1], rows[2], rows[3])
			if [4]float32{g0, g1, g2, g3} != want {
				t.Fatalf("dim %d: dot4Go = %v, want %v", d, [4]float32{g0, g1, g2, g3}, want)
			}
			a0, a1, a2, a3 := Dot4(q, rows[0], rows[1], rows[2], rows[3])
			if [4]float32{a0, a1, a2, a3} != want {
				t.Fatalf("dim %d: Dot4 = %v, want %v", d, [4]float32{a0, a1, a2, a3}, want)
			}

			for i, row := range rows {
				want[i] = L2Sq(q, row)
			}
			g0, g1, g2, g3 = l2sq4Go(q, rows[0], rows[1], rows[2], rows[3])
			if [4]float32{g0, g1, g2, g3} != want {
				t.Fatalf("dim %d: l2sq4Go = %v, want %v", d, [4]float32{g0, g1, g2, g3}, want)
			}
			a0, a1, a2, a3 = L2Sq4(q, rows[0], rows[1], rows[2], rows[3])
			if [4]float32{a0, a1, a2, a3} != want {
				t.Fatalf("dim %d: L2Sq4 = %v, want %v", d, [4]float32{a0, a1, a2, a3}, want)
			}
		}
	}
}

// TestBatchBitIdentityPackedRows pins DotBatch/L2SqBatch/DistanceBatch over
// packed rows (every row count 0..9, so the 4-row main loop and the scalar
// tail both run) to the per-pair scalar calls, bit for bit.
func TestBatchBitIdentityPackedRows(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, d := range commonDims {
		for n := 0; n <= 9; n++ {
			q := randVec(r, d)
			rows := make([]float32, n*d)
			for i := range rows {
				rows[i] = float32(r.NormFloat64())
			}
			out := make([]float32, n)

			DotBatch(q, rows, out)
			for i := 0; i < n; i++ {
				if want := Dot(q, rows[i*d:(i+1)*d]); out[i] != want {
					t.Fatalf("dim %d n %d row %d: DotBatch = %x, want %x", d, n, i, out[i], want)
				}
			}
			L2SqBatch(q, rows, out)
			for i := 0; i < n; i++ {
				if want := L2Sq(q, rows[i*d:(i+1)*d]); out[i] != want {
					t.Fatalf("dim %d n %d row %d: L2SqBatch = %x, want %x", d, n, i, out[i], want)
				}
			}
			for _, m := range []Metric{L2, IP, Cosine} {
				DistanceBatch(m, q, rows, out)
				for i := 0; i < n; i++ {
					if want := Distance(m, q, rows[i*d:(i+1)*d]); out[i] != want {
						t.Fatalf("dim %d n %d row %d metric %v: DistanceBatch = %x, want %x", d, n, i, m, out[i], want)
					}
				}
			}
		}
	}
}

// TestBatchRandomDims drives random (dim, rows) shapes, including remainders
// 1-7 in both dimension and row count.
func TestBatchRandomDims(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for rep := 0; rep < 300; rep++ {
		d := 1 + r.Intn(200)
		n := r.Intn(13)
		q := randVec(r, d)
		rows := make([]float32, n*d)
		for i := range rows {
			rows[i] = float32(r.NormFloat64())
		}
		out := make([]float32, n)
		m := Metric(r.Intn(3))
		DistanceBatch(m, q, rows, out)
		for i := 0; i < n; i++ {
			if want := Distance(m, q, rows[i*d:(i+1)*d]); out[i] != want {
				t.Fatalf("dim %d n %d row %d metric %v: DistanceBatch = %x, want %x", d, n, i, m, out[i], want)
			}
		}
	}
}

func TestCosineBatchZeroVectors(t *testing.T) {
	d := 8
	zero := make([]float32, d)
	rows := make([]float32, 3*d)
	for i := d; i < 2*d; i++ {
		rows[i] = 1 // middle row non-zero, first and last rows zero
	}
	out := make([]float32, 3)
	DistanceBatch(Cosine, zero, rows, out)
	for i, got := range out {
		if got != 1 {
			t.Errorf("zero query row %d: got %v, want 1", i, got)
		}
	}
	q := make([]float32, d)
	q[0] = 2
	DistanceBatch(Cosine, q, rows, out)
	if out[0] != 1 || out[2] != 1 {
		t.Errorf("zero rows: got %v, want 1 at rows 0 and 2", out)
	}
	if want := CosineDistance(q, rows[d:2*d]); out[1] != want {
		t.Errorf("non-zero row: got %v, want %v", out[1], want)
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { DotBatch(make([]float32, 4), make([]float32, 9), make([]float32, 2)) },
		func() { L2SqBatch(make([]float32, 4), make([]float32, 9), make([]float32, 2)) },
		func() { DistanceBatch(Cosine, make([]float32, 4), make([]float32, 9), make([]float32, 2)) },
		func() { Dot4(make([]float32, 4), make([]float32, 4), make([]float32, 3), make([]float32, 4), make([]float32, 4)) },
		func() { L2Sq4(make([]float32, 4), make([]float32, 5), make([]float32, 4), make([]float32, 4), make([]float32, 4)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on mismatched lengths", i)
				}
			}()
			f()
		}()
	}
}

// TestBatchKernelsZeroAlloc: the batch entry points must not allocate — they
// sit inside the zero-alloc search hot path.
func TestBatchKernelsZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q := randVec(r, 768)
	rows := make([]float32, 16*768)
	for i := range rows {
		rows[i] = float32(r.NormFloat64())
	}
	out := make([]float32, 16)
	for _, m := range []Metric{L2, IP, Cosine} {
		m := m
		if n := testing.AllocsPerRun(20, func() { DistanceBatch(m, q, rows, out) }); n != 0 {
			t.Errorf("DistanceBatch(%v) allocates %v/op", m, n)
		}
	}
	if n := testing.AllocsPerRun(20, func() { CosineDistance(q, rows[:768]) }); n != 0 {
		t.Errorf("CosineDistance allocates %v/op", n)
	}
}

func benchDims(b *testing.B, f func(b *testing.B, d int)) {
	for _, d := range []int{96, 128, 768, 1536} {
		d := d
		b.Run(map[int]string{96: "96", 128: "128", 768: "768", 1536: "1536"}[d], func(b *testing.B) {
			f(b, d)
		})
	}
}

func BenchmarkDotDims(b *testing.B) {
	benchDims(b, func(b *testing.B, d int) {
		r := rand.New(rand.NewSource(1))
		x, y := randVec(r, d), randVec(r, d)
		b.SetBytes(int64(8 * d))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = Dot(x, y)
		}
	})
}

func BenchmarkL2SqDims(b *testing.B) {
	benchDims(b, func(b *testing.B, d int) {
		r := rand.New(rand.NewSource(1))
		x, y := randVec(r, d), randVec(r, d)
		b.SetBytes(int64(8 * d))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = L2Sq(x, y)
		}
	})
}

func BenchmarkCosineDims(b *testing.B) {
	benchDims(b, func(b *testing.B, d int) {
		r := rand.New(rand.NewSource(1))
		x, y := randVec(r, d), randVec(r, d)
		b.SetBytes(int64(8 * d))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = CosineDistance(x, y)
		}
	})
}

const benchBatchRows = 256

func BenchmarkDotBatchDims(b *testing.B) {
	benchDims(b, func(b *testing.B, d int) {
		r := rand.New(rand.NewSource(1))
		q := randVec(r, d)
		rows := make([]float32, benchBatchRows*d)
		for i := range rows {
			rows[i] = float32(r.NormFloat64())
		}
		out := make([]float32, benchBatchRows)
		b.SetBytes(int64(4 * d * benchBatchRows))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			DotBatch(q, rows, out)
		}
	})
}

func BenchmarkL2SqBatchDims(b *testing.B) {
	benchDims(b, func(b *testing.B, d int) {
		r := rand.New(rand.NewSource(1))
		q := randVec(r, d)
		rows := make([]float32, benchBatchRows*d)
		for i := range rows {
			rows[i] = float32(r.NormFloat64())
		}
		out := make([]float32, benchBatchRows)
		b.SetBytes(int64(4 * d * benchBatchRows))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			L2SqBatch(q, rows, out)
		}
	})
}
