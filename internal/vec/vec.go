// Package vec provides the float32 vector kernels used throughout the
// benchmark: dot products, squared Euclidean distance, cosine similarity,
// and normalisation, plus batch variants (batch.go) that score one query
// against many rows per call — SSE assembly on amd64, interleaved pure Go
// elsewhere, bit-identical to the scalar path either way (see kernels.go for
// the reduction-order contract). The simulated CPU cost model (internal/sim)
// charges virtual time per dimension independently of the host's real speed.
package vec

import (
	"fmt"
	"math"
)

// Metric identifies a distance (or similarity) function between two vectors.
type Metric int

const (
	// L2 is squared Euclidean distance (smaller is closer).
	L2 Metric = iota
	// IP is negative inner product (smaller is closer), for maximum
	// inner-product search.
	IP
	// Cosine is cosine distance 1-cos(a,b) (smaller is closer).
	Cosine
)

func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case IP:
		return "IP"
	case Cosine:
		return "COSINE"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance computes the metric between a and b; smaller is always closer.
// The slices must have equal length.
func Distance(m Metric, a, b []float32) float32 {
	switch m {
	case L2:
		return L2Sq(a, b)
	case IP:
		return -Dot(a, b)
	case Cosine:
		return CosineDistance(a, b)
	default:
		panic("vec: unknown metric")
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	return dotGo(a, b)
}

// L2Sq returns the squared Euclidean distance between a and b.
func L2Sq(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	return l2sqGo(a, b)
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(dotGo(a, a))))
}

// CosineDistance returns 1 - cos(a, b). Zero vectors yield distance 1.
// All three accumulations (a·b, a·a, b·b) happen in one fused pass over the
// data; each follows the standard reduction order, so the result is
// bit-identical to computing Dot(a, b), Norm(a) and Norm(b) separately.
func CosineDistance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	ab, aa, bb := dotFused3Go(a, b)
	na := float32(math.Sqrt(float64(aa)))
	nb := float32(math.Sqrt(float64(bb)))
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - ab/(na*nb)
}

// Normalize scales a to unit length in place. Zero vectors are unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Add accumulates b into a element-wise.
func Add(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies every element of a by s.
func Scale(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// Matrix is a dense row-major collection of equal-dimension vectors backed by
// one contiguous allocation, the storage format used by datasets and
// indexes.
type Matrix struct {
	Dim  int
	data []float32
}

// NewMatrix allocates an n×dim matrix of zeros.
func NewMatrix(n, dim int) *Matrix {
	return &Matrix{Dim: dim, data: make([]float32, n*dim)}
}

// MatrixFromRows builds a matrix by copying the given rows, which must all
// have identical length.
func MatrixFromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Dim {
			panic(fmt.Sprintf("vec: row %d has dim %d, want %d", i, len(r), m.Dim))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Len returns the number of rows.
func (m *Matrix) Len() int {
	if m.Dim == 0 {
		return 0
	}
	return len(m.data) / m.Dim
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float32) {
	copy(m.Row(i), v)
}

// Raw exposes the backing slice (rows concatenated) for serialisation.
func (m *Matrix) Raw() []float32 { return m.data }

// AppendRow grows the matrix by one row (copying v).
func (m *Matrix) AppendRow(v []float32) {
	if m.Dim == 0 {
		m.Dim = len(v)
	}
	if len(v) != m.Dim {
		panic(fmt.Sprintf("vec: append row dim %d, want %d", len(v), m.Dim))
	}
	m.data = append(m.data, v...)
}
