// Package vec provides the float32 vector kernels used throughout the
// benchmark: dot products, squared Euclidean distance, cosine similarity,
// and normalisation. The inner loops are written with 4-way manual unrolling,
// which the Go compiler turns into reasonably tight code; the simulated CPU
// cost model (internal/sim) charges virtual time per dimension independently
// of the host's real speed.
package vec

import (
	"fmt"
	"math"
)

// Metric identifies a distance (or similarity) function between two vectors.
type Metric int

const (
	// L2 is squared Euclidean distance (smaller is closer).
	L2 Metric = iota
	// IP is negative inner product (smaller is closer), for maximum
	// inner-product search.
	IP
	// Cosine is cosine distance 1-cos(a,b) (smaller is closer).
	Cosine
)

func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case IP:
		return "IP"
	case Cosine:
		return "COSINE"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance computes the metric between a and b; smaller is always closer.
// The slices must have equal length.
func Distance(m Metric, a, b []float32) float32 {
	switch m {
	case L2:
		return L2Sq(a, b)
	case IP:
		return -Dot(a, b)
	case Cosine:
		return CosineDistance(a, b)
	default:
		panic("vec: unknown metric")
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// L2Sq returns the squared Euclidean distance between a and b.
func L2Sq(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// CosineDistance returns 1 - cos(a, b). Zero vectors yield distance 1.
func CosineDistance(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

// Normalize scales a to unit length in place. Zero vectors are unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Add accumulates b into a element-wise.
func Add(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies every element of a by s.
func Scale(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// Matrix is a dense row-major collection of equal-dimension vectors backed by
// one contiguous allocation, the storage format used by datasets and
// indexes.
type Matrix struct {
	Dim  int
	data []float32
}

// NewMatrix allocates an n×dim matrix of zeros.
func NewMatrix(n, dim int) *Matrix {
	return &Matrix{Dim: dim, data: make([]float32, n*dim)}
}

// MatrixFromRows builds a matrix by copying the given rows, which must all
// have identical length.
func MatrixFromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Dim {
			panic(fmt.Sprintf("vec: row %d has dim %d, want %d", i, len(r), m.Dim))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Len returns the number of rows.
func (m *Matrix) Len() int {
	if m.Dim == 0 {
		return 0
	}
	return len(m.data) / m.Dim
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float32) {
	copy(m.Row(i), v)
}

// Raw exposes the backing slice (rows concatenated) for serialisation.
func (m *Matrix) Raw() []float32 { return m.data }

// AppendRow grows the matrix by one row (copying v).
func (m *Matrix) AppendRow(v []float32) {
	if m.Dim == 0 {
		m.Dim = len(v)
	}
	if len(v) != m.Dim {
		panic(fmt.Sprintf("vec: append row dim %d, want %d", len(v), m.Dim))
	}
	m.data = append(m.data, v...)
}
