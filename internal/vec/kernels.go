// Pure-Go distance kernels: the portable implementations behind Dot/L2Sq and
// the batch API, and the bit-exact reference the assembly kernels are tested
// against.
//
// Reduction-order contract (load-bearing — see DESIGN.md "Kernels &
// scratch buffers"): every kernel, scalar or batch, Go or assembly, computes
// a dot product (or squared distance) with exactly four partial accumulators
// s0..s3, where s_j sums the terms of elements j, j+4, j+8, ... in index
// order, reduced as ((s0+s1)+s2)+s3, with any remainder elements (len%4)
// folded in afterwards one at a time. Float addition is not associative, so
// this fixed order is what makes the scalar path, the 8-way unrolled
// dimension-specialised path, the 4-row interleaved batch path and the SSE
// path all produce bit-identical float32 results — and bit-identical results
// are what keep recorded executions, golden files and pre-built index assets
// stable across kernel changes.
package vec

// dotGo is the portable dot product. Dimensions that are a multiple of 8
// (every common embedding dim: 96, 128, 384, 768, 1536) take the 8-way
// unrolled kernel; everything else takes the 4-way loop with a scalar tail.
func dotGo(a, b []float32) float32 {
	if len(a) >= 8 && len(a)%8 == 0 {
		return dot8(a, b)
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot8 is the 8-way unrolled kernel for len%8==0: two 4-element groups per
// iteration feed the same four accumulators in group order, which is exactly
// the order the 4-way loop uses.
func dot8(a, b []float32) float32 {
	b = b[:len(a):len(a)]
	var s0, s1, s2, s3 float32
	for i := 0; i+8 <= len(a); i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s0 += a[i+4] * b[i+4]
		s1 += a[i+5] * b[i+5]
		s2 += a[i+6] * b[i+6]
		s3 += a[i+7] * b[i+7]
	}
	return s0 + s1 + s2 + s3
}

// l2sqGo is the portable squared Euclidean distance, mirroring dotGo.
func l2sqGo(a, b []float32) float32 {
	if len(a) >= 8 && len(a)%8 == 0 {
		return l2sq8(a, b)
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// l2sq8 is the 8-way unrolled kernel for len%8==0 (see dot8).
func l2sq8(a, b []float32) float32 {
	b = b[:len(a):len(a)]
	var s0, s1, s2, s3 float32
	for i := 0; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d0 = a[i+4] - b[i+4]
		d1 = a[i+5] - b[i+5]
		d2 = a[i+6] - b[i+6]
		d3 = a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	return s0 + s1 + s2 + s3
}

// dot4Go computes four dot products of q against r0..r3 in one interleaved
// pass, each bit-identical to dotGo(q, r_i). Sharing the pass amortises the
// query loads and gives the CPU sixteen independent accumulator chains.
func dot4Go(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	n := len(q)
	r0 = r0[:n:n]
	r1 = r1[:n:n]
	r2 = r2[:n:n]
	r3 = r3[:n:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var e0, e1, e2, e3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		a0 += q0 * r0[i]
		a1 += q1 * r0[i+1]
		a2 += q2 * r0[i+2]
		a3 += q3 * r0[i+3]
		b0 += q0 * r1[i]
		b1 += q1 * r1[i+1]
		b2 += q2 * r1[i+2]
		b3 += q3 * r1[i+3]
		c0 += q0 * r2[i]
		c1 += q1 * r2[i+1]
		c2 += q2 * r2[i+2]
		c3 += q3 * r2[i+3]
		e0 += q0 * r3[i]
		e1 += q1 * r3[i+1]
		e2 += q2 * r3[i+2]
		e3 += q3 * r3[i+3]
	}
	d0 = a0 + a1 + a2 + a3
	d1 = b0 + b1 + b2 + b3
	d2 = c0 + c1 + c2 + c3
	d3 = e0 + e1 + e2 + e3
	for ; i < n; i++ {
		d0 += q[i] * r0[i]
		d1 += q[i] * r1[i]
		d2 += q[i] * r2[i]
		d3 += q[i] * r3[i]
	}
	return d0, d1, d2, d3
}

// dotFused3Go computes a·b, a·a and b·b in one pass. Each product keeps its
// own four accumulators in the standard order, so all three results are
// bit-identical to separate dotGo calls.
func dotFused3Go(a, b []float32) (ab, aa, bb float32) {
	n := len(a)
	b = b[:n:n]
	var p0, p1, p2, p3 float32
	var q0, q1, q2, q3 float32
	var r0, r1, r2, r3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		b0, b1, b2, b3 := b[i], b[i+1], b[i+2], b[i+3]
		p0 += a0 * b0
		p1 += a1 * b1
		p2 += a2 * b2
		p3 += a3 * b3
		q0 += a0 * a0
		q1 += a1 * a1
		q2 += a2 * a2
		q3 += a3 * a3
		r0 += b0 * b0
		r1 += b1 * b1
		r2 += b2 * b2
		r3 += b3 * b3
	}
	ab = p0 + p1 + p2 + p3
	aa = q0 + q1 + q2 + q3
	bb = r0 + r1 + r2 + r3
	for ; i < n; i++ {
		ab += a[i] * b[i]
		aa += a[i] * a[i]
		bb += b[i] * b[i]
	}
	return ab, aa, bb
}

// l2sq4Go computes four squared Euclidean distances of q against r0..r3 in
// one interleaved pass, each bit-identical to l2sqGo(q, r_i).
func l2sq4Go(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	n := len(q)
	r0 = r0[:n:n]
	r1 = r1[:n:n]
	r2 = r2[:n:n]
	r3 = r3[:n:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var e0, e1, e2, e3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		t0 := q0 - r0[i]
		t1 := q1 - r0[i+1]
		t2 := q2 - r0[i+2]
		t3 := q3 - r0[i+3]
		a0 += t0 * t0
		a1 += t1 * t1
		a2 += t2 * t2
		a3 += t3 * t3
		t0 = q0 - r1[i]
		t1 = q1 - r1[i+1]
		t2 = q2 - r1[i+2]
		t3 = q3 - r1[i+3]
		b0 += t0 * t0
		b1 += t1 * t1
		b2 += t2 * t2
		b3 += t3 * t3
		t0 = q0 - r2[i]
		t1 = q1 - r2[i+1]
		t2 = q2 - r2[i+2]
		t3 = q3 - r2[i+3]
		c0 += t0 * t0
		c1 += t1 * t1
		c2 += t2 * t2
		c3 += t3 * t3
		t0 = q0 - r3[i]
		t1 = q1 - r3[i+1]
		t2 = q2 - r3[i+2]
		t3 = q3 - r3[i+3]
		e0 += t0 * t0
		e1 += t1 * t1
		e2 += t2 * t2
		e3 += t3 * t3
	}
	d0 = a0 + a1 + a2 + a3
	d1 = b0 + b1 + b2 + b3
	d2 = c0 + c1 + c2 + c3
	d3 = e0 + e1 + e2 + e3
	for ; i < n; i++ {
		t := q[i] - r0[i]
		d0 += t * t
		t = q[i] - r1[i]
		d1 += t * t
		t = q[i] - r2[i]
		d2 += t * t
		t = q[i] - r3[i]
		d3 += t * t
	}
	return d0, d1, d2, d3
}
