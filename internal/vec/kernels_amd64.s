#include "textflag.h"

// SSE batch kernels: score one query against four rows in a single pass.
//
// Bit-identity with the scalar kernels is by construction, not by luck. The
// scalar path keeps four partial accumulators s0..s3 (s_j sums elements
// j, j+4, j+8, ...) and reduces them as ((s0+s1)+s2)+s3. Here each row gets
// one XMM accumulator whose lane j plays the role of s_j: MULPS/ADDPS are
// IEEE-exact per lane, so after the loop lane j holds exactly the scalar
// s_j, and the SHUFPS/ADDSS ladder below reduces the lanes in exactly the
// scalar order. Remainder elements (n%4) are added by the Go wrapper after
// the reduction, again matching the scalar order. Any change here must keep
// that order — the property tests in batch_test.go compare with exact !=.

// func dot4SSE(q, r0, r1, r2, r3 *float32, n int) (d0, d1, d2, d3 float32)
TEXT ·dot4SSE(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), AX
	MOVQ r0+8(FP), BX
	MOVQ r1+16(FP), CX
	MOVQ r2+24(FP), DX
	MOVQ r3+32(FP), SI
	MOVQ n+40(FP), DI
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	SHRQ  $2, DI
	JZ    reduce
loop:
	MOVUPS (AX), X4
	MOVUPS (BX), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (CX), X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVUPS (DX), X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVUPS (SI), X8
	MULPS  X4, X8
	ADDPS  X8, X3
	ADDQ   $16, AX
	ADDQ   $16, BX
	ADDQ   $16, CX
	ADDQ   $16, DX
	ADDQ   $16, SI
	DECQ   DI
	JNZ    loop
reduce:
	// lane-ordered reduction ((s0+s1)+s2)+s3 for each accumulator
	MOVAPS X0, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X0
	MOVAPS X0, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X0
	MOVAPS X0, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X0
	MOVSS  X0, d0+48(FP)

	MOVAPS X1, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X1
	MOVAPS X1, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X1
	MOVAPS X1, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X1
	MOVSS  X1, d1+52(FP)

	MOVAPS X2, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X2
	MOVAPS X2, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X2
	MOVAPS X2, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X2
	MOVSS  X2, d2+56(FP)

	MOVAPS X3, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X3
	MOVAPS X3, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X3
	MOVAPS X3, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X3
	MOVSS  X3, d3+60(FP)
	RET

// func l2sq4SSE(q, r0, r1, r2, r3 *float32, n int) (d0, d1, d2, d3 float32)
//
// Computes (row-q) rather than (q-row) per element: negation is exact and
// the difference is immediately squared, so the result is bit-identical to
// the scalar (q-row)^2 accumulation.
TEXT ·l2sq4SSE(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), AX
	MOVQ r0+8(FP), BX
	MOVQ r1+16(FP), CX
	MOVQ r2+24(FP), DX
	MOVQ r3+32(FP), SI
	MOVQ n+40(FP), DI
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	SHRQ  $2, DI
	JZ    reduce
loop:
	MOVUPS (AX), X4
	MOVUPS (BX), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X0
	MOVUPS (CX), X6
	SUBPS  X4, X6
	MULPS  X6, X6
	ADDPS  X6, X1
	MOVUPS (DX), X7
	SUBPS  X4, X7
	MULPS  X7, X7
	ADDPS  X7, X2
	MOVUPS (SI), X8
	SUBPS  X4, X8
	MULPS  X8, X8
	ADDPS  X8, X3
	ADDQ   $16, AX
	ADDQ   $16, BX
	ADDQ   $16, CX
	ADDQ   $16, DX
	ADDQ   $16, SI
	DECQ   DI
	JNZ    loop
reduce:
	// lane-ordered reduction ((s0+s1)+s2)+s3 for each accumulator
	MOVAPS X0, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X0
	MOVAPS X0, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X0
	MOVAPS X0, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X0
	MOVSS  X0, d0+48(FP)

	MOVAPS X1, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X1
	MOVAPS X1, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X1
	MOVAPS X1, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X1
	MOVSS  X1, d1+52(FP)

	MOVAPS X2, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X2
	MOVAPS X2, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X2
	MOVAPS X2, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X2
	MOVSS  X2, d2+56(FP)

	MOVAPS X3, X9
	SHUFPS $0x01, X9, X9
	ADDSS  X9, X3
	MOVAPS X3, X9
	SHUFPS $0x02, X9, X9
	ADDSS  X9, X3
	MOVAPS X3, X9
	SHUFPS $0x03, X9, X9
	ADDSS  X9, X3
	MOVSS  X3, d3+60(FP)
	RET
