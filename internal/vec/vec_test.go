package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotUnrollRemainder(t *testing.T) {
	// Lengths around the 4-way unroll boundary.
	for n := 0; n <= 9; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float32
		for i := range a {
			a[i] = float32(i + 1)
			b[i] = float32(2 * (i + 1))
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Errorf("n=%d: Dot = %v, want %v", n, got, want)
		}
	}
}

func TestL2SqBasic(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := L2Sq(a, b); got != 25 {
		t.Errorf("L2Sq = %v, want 25", got)
	}
	if got := L2Sq(a, a); got != 0 {
		t.Errorf("L2Sq(a,a) = %v, want 0", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineDistance(a, b); !almostEqual(float64(got), 1, 1e-6) {
		t.Errorf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("self cosine distance = %v, want 0", got)
	}
	if got := CosineDistance([]float32{0, 0}, a); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestNormalize(t *testing.T) {
	a := []float32{3, 4}
	Normalize(a)
	if !almostEqual(float64(Norm(a)), 1, 1e-6) {
		t.Errorf("norm after normalize = %v", Norm(a))
	}
	z := []float32{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed: %v", z)
	}
}

func TestDistanceMetricDispatch(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{2, 4}
	if got, want := Distance(L2, a, b), L2Sq(a, b); got != want {
		t.Errorf("L2 dispatch = %v, want %v", got, want)
	}
	if got, want := Distance(IP, a, b), -Dot(a, b); got != want {
		t.Errorf("IP dispatch = %v, want %v", got, want)
	}
	if got, want := Distance(Cosine, a, b), CosineDistance(a, b); got != want {
		t.Errorf("Cosine dispatch = %v, want %v", got, want)
	}
}

func TestMetricString(t *testing.T) {
	if L2.String() != "L2" || IP.String() != "IP" || Cosine.String() != "COSINE" {
		t.Error("metric names wrong")
	}
	if Metric(99).String() != "Metric(99)" {
		t.Error("unknown metric name wrong")
	}
}

func randVec(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// Property: L2Sq(a,b) == Dot(a,a) - 2*Dot(a,b) + Dot(b,b).
func TestPropertyL2Expansion(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(64)
		a, b := randVec(r, n), randVec(r, n)
		lhs := float64(L2Sq(a, b))
		rhs := float64(Dot(a, a)) - 2*float64(Dot(a, b)) + float64(Dot(b, b))
		return almostEqual(lhs, rhs, 1e-2*(1+math.Abs(rhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: distances are symmetric and non-negative for L2 and Cosine.
func TestPropertyMetricSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(32)
		a, b := randVec(rr, n), randVec(rr, n)
		if L2Sq(a, b) != L2Sq(b, a) {
			return false
		}
		if L2Sq(a, b) < 0 {
			return false
		}
		ca, cb := CosineDistance(a, b), CosineDistance(b, a)
		return almostEqual(float64(ca), float64(cb), 1e-5) && ca > -1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Euclidean distance (on the square root).
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(32)
		a, b, c := randVec(rr, n), randVec(rr, n), randVec(rr, n)
		ab := math.Sqrt(float64(L2Sq(a, b)))
		bc := math.Sqrt(float64(L2Sq(b, c)))
		ac := math.Sqrt(float64(L2Sq(a, c)))
		return ac <= ab+bc+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(1, []float32{5, 6})
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	if r := m.Row(1); r[0] != 5 || r[1] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	if r := m.Row(0); r[0] != 0 || r[1] != 0 {
		t.Errorf("Row(0) = %v, want zeros", r)
	}
}

func TestMatrixFromRowsAndAppend(t *testing.T) {
	m := MatrixFromRows([][]float32{{1, 2}, {3, 4}})
	m.AppendRow([]float32{5, 6})
	if m.Len() != 3 || m.Row(2)[1] != 6 {
		t.Errorf("matrix after append wrong: len=%d", m.Len())
	}
	var empty Matrix
	if empty.Len() != 0 {
		t.Error("empty matrix must have zero length")
	}
}

func TestMatrixRowAliasing(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(0)
	r[0] = 42
	if m.Row(0)[0] != 42 {
		t.Error("Row must alias matrix storage")
	}
	// The 3-index slice must prevent append from clobbering row 1.
	r = append(r, 99)
	if m.Row(1)[0] == 99 {
		t.Error("append through row alias clobbered next row")
	}
}

func TestAddScaleClone(t *testing.T) {
	a := []float32{1, 2}
	b := Clone(a)
	Add(a, []float32{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("Add = %v", a)
	}
	if b[0] != 1 || b[1] != 2 {
		t.Errorf("Clone aliases source: %v", b)
	}
	Scale(b, 3)
	if b[0] != 3 || b[1] != 6 {
		t.Errorf("Scale = %v", b)
	}
}

func BenchmarkDot768(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVec(r, 768), randVec(r, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkL2Sq1536(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVec(r, 1536), randVec(r, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = L2Sq(x, y)
	}
}
