//go:build !amd64

package vec

func dot4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	return dot4Go(q, r0, r1, r2, r3)
}

func l2sq4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	return l2sq4Go(q, r0, r1, r2, r3)
}
