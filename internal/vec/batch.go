package vec

import "fmt"

// Batch scoring API: score one query against many rows per call. On amd64
// the 4-row kernels are SSE assembly (see kernels_amd64.s); elsewhere they
// are the interleaved pure-Go kernels in kernels.go. Either way every
// per-row result is bit-identical to the corresponding scalar call
// (Dot/L2Sq/Distance) — batch scoring may change speed, never floats — so
// callers are free to batch anywhere, including build paths and recorded
// executions, without perturbing golden files or pre-built index assets.

// Dot4 returns the four dot products of q against r0..r3, each bit-identical
// to Dot(q, r_i). All five slices must have equal length.
func Dot4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	check4(len(q), len(r0), len(r1), len(r2), len(r3))
	return dot4(q, r0, r1, r2, r3)
}

// L2Sq4 returns the four squared Euclidean distances of q against r0..r3,
// each bit-identical to L2Sq(q, r_i). All five slices must have equal length.
func L2Sq4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	check4(len(q), len(r0), len(r1), len(r2), len(r3))
	return l2sq4(q, r0, r1, r2, r3)
}

func check4(n, n0, n1, n2, n3 int) {
	if n0 != n || n1 != n || n2 != n || n3 != n {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d/%d/%d/%d", n, n0, n1, n2, n3))
	}
}

// DotBatch writes Dot(q, row_i) into out[i] for the len(out) rows packed
// row-major in rows (len(rows) must be len(out)*len(q)). Each out[i] is
// bit-identical to the scalar call.
//
//annlint:hotpath
func DotBatch(q, rows []float32, out []float32) {
	d, n := len(q), len(out)
	if len(rows) != n*d {
		panic(fmt.Sprintf("vec: rows length %d, want %d rows x dim %d", len(rows), n, d))
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		b := i * d
		out[i], out[i+1], out[i+2], out[i+3] = dot4(q,
			rows[b:b+d:b+d], rows[b+d:b+2*d:b+2*d],
			rows[b+2*d:b+3*d:b+3*d], rows[b+3*d:b+4*d:b+4*d])
	}
	for ; i < n; i++ {
		out[i] = dotGo(q, rows[i*d:(i+1)*d:(i+1)*d])
	}
}

// L2SqBatch writes L2Sq(q, row_i) into out[i] for the len(out) rows packed
// row-major in rows (len(rows) must be len(out)*len(q)). Each out[i] is
// bit-identical to the scalar call.
//
//annlint:hotpath
func L2SqBatch(q, rows []float32, out []float32) {
	d, n := len(q), len(out)
	if len(rows) != n*d {
		panic(fmt.Sprintf("vec: rows length %d, want %d rows x dim %d", len(rows), n, d))
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		b := i * d
		out[i], out[i+1], out[i+2], out[i+3] = l2sq4(q,
			rows[b:b+d:b+d], rows[b+d:b+2*d:b+2*d],
			rows[b+2*d:b+3*d:b+3*d], rows[b+3*d:b+4*d:b+4*d])
	}
	for ; i < n; i++ {
		out[i] = l2sqGo(q, rows[i*d:(i+1)*d:(i+1)*d])
	}
}

// DistanceBatch writes Distance(m, q, row_i) into out[i] for the len(out)
// rows packed row-major in rows. Each out[i] is bit-identical to the scalar
// call; for Cosine, Norm(q) is computed once (it is a pure function of q, so
// reusing it is still bit-identical to the per-pair scalar path).
//
//annlint:hotpath
func DistanceBatch(m Metric, q, rows []float32, out []float32) {
	switch m {
	case L2:
		L2SqBatch(q, rows, out)
	case IP:
		DotBatch(q, rows, out)
		for i := range out {
			out[i] = -out[i]
		}
	case Cosine:
		cosineDistanceBatch(q, rows, out)
	default:
		panic("vec: unknown metric")
	}
}

func cosineDistanceBatch(q, rows []float32, out []float32) {
	d, n := len(q), len(out)
	if len(rows) != n*d {
		panic(fmt.Sprintf("vec: rows length %d, want %d rows x dim %d", len(rows), n, d))
	}
	qn := Norm(q)
	if qn == 0 {
		for i := range out {
			out[i] = 1
		}
		return
	}
	DotBatch(q, rows, out)
	for i := 0; i < n; i++ {
		row := rows[i*d : (i+1)*d : (i+1)*d]
		rn := Norm(row)
		if rn == 0 {
			out[i] = 1
			continue
		}
		out[i] = 1 - out[i]/(qn*rn)
	}
}
