//go:build amd64

package vec

// The SSE kernels process the n&^3 prefix; the wrappers below fold the
// remainder elements in afterwards, matching the scalar kernels' order
// (remainder added one at a time after the ((s0+s1)+s2)+s3 reduction).

func dot4SSE(q, r0, r1, r2, r3 *float32, n int) (d0, d1, d2, d3 float32)
func l2sq4SSE(q, r0, r1, r2, r3 *float32, n int) (d0, d1, d2, d3 float32)

func dot4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	n := len(q)
	if n < 4 {
		return dot4Go(q, r0, r1, r2, r3)
	}
	_, _, _, _ = r0[n-1], r1[n-1], r2[n-1], r3[n-1]
	d0, d1, d2, d3 = dot4SSE(&q[0], &r0[0], &r1[0], &r2[0], &r3[0], n)
	for i := n &^ 3; i < n; i++ {
		d0 += q[i] * r0[i]
		d1 += q[i] * r1[i]
		d2 += q[i] * r2[i]
		d3 += q[i] * r3[i]
	}
	return d0, d1, d2, d3
}

func l2sq4(q, r0, r1, r2, r3 []float32) (d0, d1, d2, d3 float32) {
	n := len(q)
	if n < 4 {
		return l2sq4Go(q, r0, r1, r2, r3)
	}
	_, _, _, _ = r0[n-1], r1[n-1], r2[n-1], r3[n-1]
	d0, d1, d2, d3 = l2sq4SSE(&q[0], &r0[0], &r1[0], &r2[0], &r3[0], n)
	for i := n &^ 3; i < n; i++ {
		t := q[i] - r0[i]
		d0 += t * t
		t = q[i] - r1[i]
		d1 += t * t
		t = q[i] - r2[i]
		d2 += t * t
		t = q[i] - r3[i]
		d3 += t * t
	}
	return d0, d1, d2, d3
}
