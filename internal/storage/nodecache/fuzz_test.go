package nodecache

import (
	"fmt"
	"testing"
)

// FuzzLRUVsModel feeds arbitrary operation streams — touch, warm, drop —
// through an LRU cache and the reference model in lockstep. The byte stream
// encodes one operation per byte pair: the first byte selects the operation,
// the second the node. Plain `go test` runs the seed corpus below on every
// CI run; `go test -fuzz=FuzzLRUVsModel` explores further.
//
// The capacity is derived from the input so small corpora still cover the
// eviction boundary, capacity 1, and drop-heavy schedules.
func FuzzLRUVsModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0, 3})       // classic evict-order probe
	f.Add([]byte{0, 1, 2, 0, 0, 2, 0, 1})       // touch, drop, re-touch
	f.Add([]byte{1, 5, 1, 6, 0, 5, 0, 7, 0, 8}) // warm then touch past capacity
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // same node forever
	f.Add([]byte{0, 9, 2, 0, 2, 0, 0, 9, 1, 9}) // repeated drops
	f.Fuzz(func(t *testing.T, ops []byte) {
		capacity := 1 + len(ops)%7
		c := New(Config{Capacity: capacity, Policy: PolicyLRU})
		m := newModel(capacity, false)
		universe := make([]int32, 2*capacity+8)
		for i := range universe {
			universe[i] = int32(i)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			node := universe[int(ops[i+1])%len(universe)]
			switch ops[i] % 3 {
			case 0: // touch (insert on miss, refresh on hit, evict at cap)
				if got, want := c.Touch(node, 1), m.touch(node); got != want {
					t.Fatalf("op %d: Touch(%d) = %v, model %v", i, node, got, want)
				}
			case 1: // warm one node (no counter traffic)
				c.Warm([]int32{node}, func(int32) int { return 1 })
				m.warm([]int32{node})
			case 2: // drop
				c.Drop()
				m.drop()
			}
			checkAgainstModel(t, i, c, m, universe)
		}
	})
}

// FuzzStaticVsModel is the static-policy variant: the first bytes build the
// warm set, the rest are lookups that must never change residency.
func FuzzStaticVsModel(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3, 4, 5})
	f.Add([]byte{}, []byte{0, 0, 1})
	f.Add([]byte{7, 7, 7}, []byte{7, 8})
	f.Fuzz(func(t *testing.T, warmBytes, touches []byte) {
		capacity := 1 + (len(warmBytes)+len(touches))%5
		c := New(Config{Capacity: capacity, Policy: PolicyStatic})
		m := newModel(capacity, true)
		universe := make([]int32, 16)
		for i := range universe {
			universe[i] = int32(i)
		}
		warm := make([]int32, len(warmBytes))
		for i, b := range warmBytes {
			warm[i] = universe[int(b)%len(universe)]
		}
		c.Warm(warm, func(int32) int { return 1 })
		m.warm(warm)
		resident := c.Len()
		for i, b := range touches {
			node := universe[int(b)%len(universe)]
			if got, want := c.Touch(node, 1), m.touch(node); got != want {
				t.Fatalf("touch %d: Touch(%d) = %v, model %v", i, node, got, want)
			}
			if c.Len() != resident {
				t.Fatalf("touch %d: static resident set changed: %d -> %d", i, resident, c.Len())
			}
			checkAgainstModel(t, i, c, m, universe)
		}
	})
}

// FuzzDeterministicReplay replays any operation stream twice through two
// fresh caches and requires byte-identical snapshots — the fuzz-shaped form
// of the determinism guarantee.
func FuzzDeterministicReplay(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 0, 0, 1})
	f.Add([]byte{1, 1, 0, 1, 0, 2, 0, 3, 0, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		run := func() string {
			capacity := 1 + len(ops)%6
			c := New(Config{Capacity: capacity, Policy: PolicyLRU})
			for i := 0; i+1 < len(ops); i += 2 {
				node := int32(ops[i+1] % 23)
				switch ops[i] % 3 {
				case 0:
					c.Touch(node, 1+int(ops[i+1]%3))
				case 1:
					c.Warm([]int32{node}, func(int32) int { return 1 })
				case 2:
					c.Drop()
				}
			}
			return fmt.Sprintf("%+v", c.Snapshot())
		}
		if a, b := run(), run(); a != b {
			t.Errorf("replay diverged:\n%s\n%s", a, b)
		}
	})
}
