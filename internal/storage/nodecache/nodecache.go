// Package nodecache implements an index-aware node cache for storage-based
// ANN search: the layer between beam search (or posting probes) and the
// simulated device that absorbs the small random reads the paper identifies
// as the latency driver of storage-based search (Key Finding 2).
//
// Unlike the OS page cache (internal/storage/pagecache), which sees opaque
// page numbers at replay time, the node cache works in *index units* — a
// DiskANN graph node or a SPANN posting list — and is consulted by the index
// itself during search, before any page request is recorded. A hit removes
// the node's pages from the recorded I/O and charges a small in-memory hit
// cost instead; a miss records the device pages as before.
//
// Two replacement policies are provided, mirroring the deployed systems:
//
//   - PolicyStatic: a fixed resident set warmed ahead of time with the N
//     nodes closest to the traversal entry point (real DiskANN's
//     num_nodes_to_cache BFS warming). The set never changes at search
//     time, so concurrent recording stays deterministic.
//   - PolicyLRU: a dynamic least-recently-used cache admitting every missed
//     node. State evolves across queries, so recording against it must be
//     sequential (see index.SearchOptions.NodeCacheMutable); given one
//     access order the cache is fully deterministic.
//
// The cache tracks hits, misses, evictions, and bytes saved; Snapshot
// returns a copy for reporting. All state transitions are pure functions of
// the access sequence — there is no randomness and no wall-clock input —
// which is what makes byte-identical replay possible. Config.Seed exists so
// future sampled policies (Redis-style approximate LRU) have a recorded
// seed from day one; the exact policies ignore it.
package nodecache

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"svdbench/internal/sim"
)

// Policy is a node replacement policy.
type Policy string

const (
	// PolicyStatic is a fixed, pre-warmed resident set (DiskANN's
	// num_nodes_to_cache): lookups never admit or evict.
	PolicyStatic Policy = "static"
	// PolicyLRU is least-recently-used with admission on every miss.
	PolicyLRU Policy = "lru"
)

// ParsePolicy maps a policy name to a Policy. The empty string selects
// PolicyLRU, the dynamic default.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return PolicyLRU, nil
	case PolicyStatic, PolicyLRU:
		return Policy(s), nil
	default:
		//annlint:allow hotalloc -- error built only on the invalid-policy path; the success path is allocation-free
		return "", fmt.Errorf("nodecache: unknown policy %q (have %q, %q)", s, PolicyStatic, PolicyLRU)
	}
}

// DefaultHitCost is the in-memory cost of serving one cached page,
// matching the page-cache hit calibration.
const DefaultHitCost = 120 * time.Nanosecond

// Config parameterises a cache.
type Config struct {
	// Capacity is the maximum resident node count. It must be positive:
	// disabling the cache is the caller's job (a nil *Cache is a valid
	// "no cache" value for the index layer).
	Capacity int
	// Policy selects replacement ("" means PolicyLRU).
	Policy Policy
	// HitCostPerPage is the virtual time one cached page costs to serve
	// (default DefaultHitCost).
	HitCostPerPage sim.Duration
	// PageSize converts saved pages to saved bytes (default 4096).
	PageSize int
	// Seed is recorded for provenance so any future sampled policy is
	// seeded by construction; the deterministic policies ignore it.
	Seed int64
}

// Cache is a node cache under one policy. It is safe for concurrent use;
// for PolicyLRU callers must serialise whole access sequences themselves to
// keep recorded state deterministic (the mutex protects invariants, not
// ordering).
type Cache struct {
	mu  sync.Mutex
	cfg Config

	lru   *list.List // front = most recently used; values are entry
	index map[int32]*list.Element

	hits       int64
	misses     int64
	evictions  int64
	bytesSaved int64
}

// entry is one resident node and its page footprint.
type entry struct {
	node  int32
	pages int
}

// New creates a cache. It panics on a non-positive capacity or an unknown
// policy — both are programmer errors at the index layer, which validates
// user input before constructing a cache.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		panic(fmt.Sprintf("nodecache: capacity must be positive, got %d", cfg.Capacity))
	}
	p, err := ParsePolicy(string(cfg.Policy))
	if err != nil {
		panic(err.Error())
	}
	cfg.Policy = p
	if cfg.HitCostPerPage <= 0 {
		cfg.HitCostPerPage = DefaultHitCost
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	//annlint:allow hotalloc -- one-time cache construction, amortized over every query the cache serves
	return &Cache{
		cfg:   cfg,
		lru:   list.New(),
		index: make(map[int32]*list.Element), //annlint:allow hotalloc -- one-time cache construction, amortized over every query the cache serves
	}
}

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

// Capacity returns the maximum resident node count.
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// HitCost returns the virtual time serving pages cached pages costs.
func (c *Cache) HitCost(pages int) sim.Duration {
	return c.cfg.HitCostPerPage * sim.Duration(pages)
}

// Touch is the search-time access path: it reports whether node is resident,
// counting a hit or a miss. On a hit the node's recency is refreshed (LRU)
// and its saved bytes accounted. On a miss under PolicyLRU the node is
// admitted (the search fetches it anyway, so caching it is free), evicting
// the least recently used node if at capacity; PolicyStatic never admits.
// pages is the node's page footprint, used for bytes-saved accounting.
func (c *Cache) Touch(node int32, pages int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[node]; ok {
		c.hits++
		c.bytesSaved += int64(pages) * int64(c.cfg.PageSize)
		if c.cfg.Policy == PolicyLRU {
			c.lru.MoveToFront(el)
		}
		return true
	}
	c.misses++
	if c.cfg.Policy == PolicyLRU {
		c.admit(node, pages)
	}
	return false
}

// Contains reports residency without touching counters or recency.
func (c *Cache) Contains(node int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[node]
	return ok
}

// admit inserts a node, evicting from the LRU tail when over capacity.
// Callers hold c.mu.
func (c *Cache) admit(node int32, pages int) {
	if el, ok := c.index[node]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.index[node] = c.lru.PushFront(entry{node: node, pages: pages}) //annlint:allow hotalloc -- LRU admission allocates its list entry once per miss; the modeled device read dominates that cost
	for c.lru.Len() > c.cfg.Capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(entry).node)
		c.evictions++
	}
}

// Warm marks nodes resident without touching hit/miss counters, in order:
// the first node given is the last to be evicted under LRU. pages reports
// each node's page footprint. Nodes beyond capacity are ignored, so a
// static cache holds exactly its first Capacity warm nodes.
func (c *Cache) Warm(nodes []int32, pages func(node int32) int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if _, ok := c.index[n]; ok {
			continue
		}
		if c.lru.Len() >= c.cfg.Capacity {
			continue
		}
		c.index[n] = c.lru.PushBack(entry{node: n, pages: pages(n)}) //annlint:allow hotalloc -- warm set is installed once at cache construction, before any query runs
	}
}

// Drop empties the resident set (the drop_caches equivalent). Counters are
// kept, as with the page cache: Drop models losing state, not history.
func (c *Cache) Drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[int32]*list.Element)
}

// Len returns the resident node count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// ResidentPages sums the page footprint of the resident set.
func (c *Cache) ResidentPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(entry).pages
	}
	return total
}

// Snapshot is a copy of the cache's counters and occupancy at one instant.
// Two caches fed the same access sequence produce identical snapshots; the
// determinism tests compare their rendered bytes.
type Snapshot struct {
	Policy     Policy
	Capacity   int
	Resident   int
	Hits       int64
	Misses     int64
	Evictions  int64
	BytesSaved int64
}

// Touches returns the total accesses (hits + misses).
func (s Snapshot) Touches() int64 { return s.Hits + s.Misses }

// HitRate returns hits over touches (0 when untouched).
func (s Snapshot) HitRate() float64 {
	if t := s.Touches(); t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

func (s Snapshot) String() string {
	return fmt.Sprintf("policy=%s cap=%d resident=%d hits=%d misses=%d evictions=%d saved=%dB",
		s.Policy, s.Capacity, s.Resident, s.Hits, s.Misses, s.Evictions, s.BytesSaved)
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Policy:     c.cfg.Policy,
		Capacity:   c.cfg.Capacity,
		Resident:   c.lru.Len(),
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		BytesSaved: c.bytesSaved,
	}
}

// Merge folds another snapshot into s (for summing per-segment caches).
func (s Snapshot) Merge(other Snapshot) Snapshot {
	s.Capacity += other.Capacity
	s.Resident += other.Resident
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.BytesSaved += other.BytesSaved
	if s.Policy == "" {
		s.Policy = other.Policy
	}
	return s
}
