package nodecache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyLRU, true},
		{"lru", PolicyLRU, true},
		{"static", PolicyStatic, true},
		{"arc", "", false},
		{"LRU", "", false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePolicy(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{{Capacity: 0}, {Capacity: -1}, {Capacity: 4, Policy: "bogus"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStaticWarmHitsAndNeverAdmits(t *testing.T) {
	c := New(Config{Capacity: 2, Policy: PolicyStatic})
	c.Warm([]int32{10, 20, 30}, func(int32) int { return 2 }) // 30 is over capacity
	if c.Len() != 2 || !c.Contains(10) || !c.Contains(20) || c.Contains(30) {
		t.Fatalf("warm set wrong: len=%d", c.Len())
	}
	if !c.Touch(10, 2) || !c.Touch(20, 2) {
		t.Error("warm nodes must hit")
	}
	if c.Touch(99, 2) {
		t.Error("cold node hit a static cache")
	}
	if c.Contains(99) {
		t.Error("static cache admitted a missed node")
	}
	s := c.Snapshot()
	if s.Hits != 2 || s.Misses != 1 || s.Evictions != 0 {
		t.Errorf("snapshot = %v", s)
	}
	if want := int64(2 * 2 * 4096); s.BytesSaved != want {
		t.Errorf("bytes saved = %d, want %d", s.BytesSaved, want)
	}
}

func TestLRUAdmitAndEvict(t *testing.T) {
	c := New(Config{Capacity: 2, Policy: PolicyLRU})
	c.Touch(1, 1) // miss, admit
	c.Touch(2, 1) // miss, admit
	c.Touch(1, 1) // hit: 1 is MRU
	c.Touch(3, 1) // miss, admit, evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Errorf("resident set wrong: 1=%v 2=%v 3=%v", c.Contains(1), c.Contains(2), c.Contains(3))
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 || s.Resident != 2 {
		t.Errorf("snapshot = %v", s)
	}
	if s.Touches() != 4 {
		t.Errorf("touches = %d, want 4", s.Touches())
	}
}

func TestDropKeepsCounters(t *testing.T) {
	c := New(Config{Capacity: 4, Policy: PolicyLRU})
	c.Touch(1, 1)
	c.Touch(1, 1)
	c.Drop()
	if c.Len() != 0 {
		t.Errorf("len after drop = %d", c.Len())
	}
	if c.Touch(1, 1) {
		t.Error("hit after drop")
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("counters not kept across drop: %v", s)
	}
}

func TestHitCost(t *testing.T) {
	def := New(Config{Capacity: 1})
	if got := def.HitCost(3); got != 3*DefaultHitCost {
		t.Errorf("default hit cost = %v, want %v", got, 3*DefaultHitCost)
	}
	custom := New(Config{Capacity: 1, HitCostPerPage: time.Microsecond})
	if got := custom.HitCost(2); got != 2*time.Microsecond {
		t.Errorf("custom hit cost = %v, want 2µs", got)
	}
}

func TestResidentPages(t *testing.T) {
	c := New(Config{Capacity: 4, Policy: PolicyLRU})
	c.Touch(1, 2)
	c.Touch(2, 3)
	if got := c.ResidentPages(); got != 5 {
		t.Errorf("resident pages = %d, want 5", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Policy: PolicyLRU, Capacity: 2, Resident: 1, Hits: 3, Misses: 4, Evictions: 1, BytesSaved: 8192}
	b := Snapshot{Policy: PolicyLRU, Capacity: 2, Resident: 2, Hits: 1, Misses: 1, BytesSaved: 4096}
	m := a.Merge(b)
	if m.Capacity != 4 || m.Resident != 3 || m.Hits != 4 || m.Misses != 5 || m.Evictions != 1 || m.BytesSaved != 12288 {
		t.Errorf("merge = %v", m)
	}
}

// lruModel is the executable specification the property and fuzz tests
// check the real cache against: a slice ordered most-recently-used first.
type lruModel struct {
	cap    int
	static bool
	order  []int32 // MRU first
	hits   int64
	misses int64
	evict  int64
}

func newModel(capacity int, static bool) *lruModel {
	return &lruModel{cap: capacity, static: static}
}

func (m *lruModel) find(node int32) int {
	for i, n := range m.order {
		if n == node {
			return i
		}
	}
	return -1
}

func (m *lruModel) touch(node int32) bool {
	if i := m.find(node); i >= 0 {
		m.hits++
		if !m.static {
			m.order = append(m.order[:i], m.order[i+1:]...)
			m.order = append([]int32{node}, m.order...)
		}
		return true
	}
	m.misses++
	if !m.static {
		m.order = append([]int32{node}, m.order...)
		for len(m.order) > m.cap {
			m.order = m.order[:len(m.order)-1]
			m.evict++
		}
	}
	return false
}

func (m *lruModel) warm(nodes []int32) {
	for _, n := range nodes {
		if m.find(n) >= 0 || len(m.order) >= m.cap {
			continue
		}
		m.order = append(m.order, n)
	}
}

func (m *lruModel) drop() { m.order = nil }

// checkAgainstModel asserts every invariant the issue names: the resident
// set never exceeds capacity, hits+misses equals touches, residency and
// eviction order match the reference model, counters agree.
func checkAgainstModel(t *testing.T, step int, c *Cache, m *lruModel, universe []int32) {
	t.Helper()
	s := c.Snapshot()
	if s.Resident > s.Capacity {
		t.Fatalf("step %d: resident %d exceeds capacity %d", step, s.Resident, s.Capacity)
	}
	if s.Touches() != s.Hits+s.Misses {
		t.Fatalf("step %d: touches %d != hits %d + misses %d", step, s.Touches(), s.Hits, s.Misses)
	}
	if s.Hits != m.hits || s.Misses != m.misses || s.Evictions != m.evict {
		t.Fatalf("step %d: counters (h=%d m=%d e=%d) diverge from model (h=%d m=%d e=%d)",
			step, s.Hits, s.Misses, s.Evictions, m.hits, m.misses, m.evict)
	}
	if s.Resident != len(m.order) {
		t.Fatalf("step %d: resident %d, model %d", step, s.Resident, len(m.order))
	}
	for _, n := range universe {
		if c.Contains(n) != (m.find(n) >= 0) {
			t.Fatalf("step %d: node %d residency %v, model %v", step, n, c.Contains(n), m.find(n) >= 0)
		}
	}
}

// TestPropertyLRUMatchesModel drives seeded random access sequences through
// LRU caches of several capacities and checks cache state against the
// reference model after every operation. Because residency is compared after
// each touch, any divergence in *eviction order* surfaces at the first
// operation where the wrong node was evicted.
func TestPropertyLRUMatchesModel(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 32} {
		for seed := int64(0); seed < 4; seed++ {
			r := rand.New(rand.NewSource(seed*1000 + int64(capacity)))
			c := New(Config{Capacity: capacity, Policy: PolicyLRU, Seed: seed})
			m := newModel(capacity, false)
			universe := make([]int32, 3*capacity+4)
			for i := range universe {
				universe[i] = int32(i)
			}
			for step := 0; step < 500; step++ {
				switch op := r.Intn(20); {
				case op == 0:
					c.Drop()
					m.drop()
				default:
					n := universe[r.Intn(len(universe))]
					got := c.Touch(n, 1)
					want := m.touch(n)
					if got != want {
						t.Fatalf("cap=%d seed=%d step %d: Touch(%d) = %v, model %v", capacity, seed, step, n, got, want)
					}
				}
				checkAgainstModel(t, step, c, m, universe)
			}
		}
	}
}

// TestPropertyStaticMatchesModel is the same property for the static policy:
// the warm set is the complete resident set forever.
func TestPropertyStaticMatchesModel(t *testing.T) {
	for _, capacity := range []int{1, 5, 16} {
		for seed := int64(0); seed < 4; seed++ {
			r := rand.New(rand.NewSource(seed*77 + int64(capacity)))
			c := New(Config{Capacity: capacity, Policy: PolicyStatic, Seed: seed})
			m := newModel(capacity, true)
			universe := make([]int32, 2*capacity+6)
			for i := range universe {
				universe[i] = int32(i)
			}
			warm := universe[:capacity+2] // over-long: truncated at capacity
			c.Warm(warm, func(int32) int { return 1 })
			m.warm(warm)
			for step := 0; step < 300; step++ {
				n := universe[r.Intn(len(universe))]
				if got, want := c.Touch(n, 1), m.touch(n); got != want {
					t.Fatalf("cap=%d seed=%d step %d: Touch(%d) = %v, model %v", capacity, seed, step, n, got, want)
				}
				checkAgainstModel(t, step, c, m, universe)
			}
		}
	}
}

// TestDeterministicSnapshots runs the same seeded access sequence twice and
// requires byte-identical rendered counter snapshots.
func TestDeterministicSnapshots(t *testing.T) {
	run := func() string {
		r := rand.New(rand.NewSource(42))
		c := New(Config{Capacity: 8, Policy: PolicyLRU, Seed: 42})
		for i := 0; i < 2000; i++ {
			c.Touch(int32(r.Intn(40)), 1+r.Intn(2))
			if r.Intn(97) == 0 {
				c.Drop()
			}
		}
		return fmt.Sprintf("%+v", c.Snapshot())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs produced different snapshots:\n%s\n%s", a, b)
	}
}
