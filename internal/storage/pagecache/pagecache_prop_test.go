package pagecache

import (
	"math/rand"
	"testing"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

func TestHitCostDefault(t *testing.T) {
	k, _, c := newCache(0)
	if c.HitCost() != DefaultHitCost {
		t.Fatalf("HitCost = %v, want %v", c.HitCost(), DefaultHitCost)
	}
	var hitTime sim.Duration
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		t0 := e.Now()
		c.Touch(e, 1)
		hitTime = e.Now().Sub(t0)
	})
	k.RunAll()
	if hitTime != DefaultHitCost {
		t.Errorf("hit took %v, want %v", hitTime, DefaultHitCost)
	}
}

func TestHitCostOption(t *testing.T) {
	custom := 5 * time.Microsecond
	k := sim.NewKernel()
	dev := ssd.New(k, nil, ssd.DefaultConfig())
	c := New(dev, 0, WithHitCost(custom))
	if c.HitCost() != custom {
		t.Fatalf("HitCost = %v, want %v", c.HitCost(), custom)
	}
	var hitTime sim.Duration
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		t0 := e.Now()
		c.Touch(e, 1)
		hitTime = e.Now().Sub(t0)
	})
	k.RunAll()
	if hitTime != custom {
		t.Errorf("hit took %v, want %v", hitTime, custom)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestHitCostZeroMakesHitsFree(t *testing.T) {
	k := sim.NewKernel()
	dev := ssd.New(k, nil, ssd.DefaultConfig())
	c := New(dev, 0, WithHitCost(0))
	var hitTime sim.Duration
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		t0 := e.Now()
		c.Touch(e, 1)
		hitTime = e.Now().Sub(t0)
	})
	k.RunAll()
	if hitTime != 0 {
		t.Errorf("free hit took %v, want 0", hitTime)
	}
}

// pageModel is an obviously-correct reference LRU over int64 pages: a
// MRU-first slice. The property tests below drive Cache and the model with
// the same operation sequence and demand identical behaviour.
type pageModel struct {
	capacity int // <=0 unbounded
	order    []int64
	hits     int64
	misses   int64
}

func (m *pageModel) find(p int64) int {
	for i, q := range m.order {
		if q == p {
			return i
		}
	}
	return -1
}

func (m *pageModel) insert(p int64) {
	if i := m.find(p); i >= 0 {
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
	m.order = append([]int64{p}, m.order...)
	if m.capacity > 0 && len(m.order) > m.capacity {
		m.order = m.order[:m.capacity]
	}
}

func (m *pageModel) touch(p int64) {
	if m.find(p) >= 0 {
		m.hits++
		m.insert(p)
		return
	}
	m.misses++
	m.insert(p)
}

func (m *pageModel) drop() { m.order = nil }

// TestPropertyLRUMatchesModel drives random touch/warm/drop sequences
// through the cache and the reference model, checking after every step that
// residency, size, and hit/miss accounting agree and that the resident set
// never exceeds capacity.
func TestPropertyLRUMatchesModel(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 32} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*7919 + int64(capacity)))
			k := sim.NewKernel()
			dev := ssd.New(k, nil, ssd.DefaultConfig())
			c := New(dev, capacity)
			m := &pageModel{capacity: capacity}
			universe := make([]int64, 3*capacity+5)
			for i := range universe {
				universe[i] = int64(i)
			}
			k.Spawn("driver", func(e *sim.Env) {
				for step := 0; step < 400; step++ {
					switch r := rng.Intn(100); {
					case r < 80:
						p := universe[rng.Intn(len(universe))]
						c.Touch(e, p)
						m.touch(p)
					case r < 95:
						p := universe[rng.Intn(len(universe))]
						c.Warm([]int64{p})
						m.insert(p)
					default:
						c.Drop()
						m.drop()
					}
					if c.Len() != len(m.order) {
						t.Fatalf("cap=%d seed=%d step=%d: len=%d model=%d", capacity, seed, step, c.Len(), len(m.order))
					}
					if capacity > 0 && c.Len() > capacity {
						t.Fatalf("cap=%d seed=%d step=%d: %d resident pages exceed capacity", capacity, seed, step, c.Len())
					}
					for _, p := range universe {
						if c.Contains(p) != (m.find(p) >= 0) {
							t.Fatalf("cap=%d seed=%d step=%d: page %d residency %v, model %v",
								capacity, seed, step, p, c.Contains(p), m.find(p) >= 0)
						}
					}
					hits, misses := c.Stats()
					if hits != m.hits || misses != m.misses {
						t.Fatalf("cap=%d seed=%d step=%d: stats (%d,%d), model (%d,%d)",
							capacity, seed, step, hits, misses, m.hits, m.misses)
					}
				}
			})
			k.RunAll()
		}
	}
}
