// Package pagecache models the operating-system page cache sitting between
// an mmap-style reader and the block device. Engines that memory-map their
// index files (Qdrant in the paper's setup) touch pages through the cache: a
// hit costs only a small in-memory access time, a miss issues a 4 KiB read
// to the device and inserts the page.
//
// The cache implements LRU replacement with a configurable capacity and a
// Drop method equivalent to `echo 1 > /proc/sys/vm/drop_caches`, which the
// paper's methodology invokes before every run (Sec. III-B).
package pagecache

import (
	"container/list"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

// Cache is an LRU page cache over one device.
type Cache struct {
	dev      *ssd.Device
	capacity int // pages; <=0 means unbounded
	hitCost  sim.Duration

	lru   *list.List // front = most recently used; values are int64 pages
	index map[int64]*list.Element

	hits   int64
	misses int64
}

// DefaultHitCost is the in-memory access time a cache hit costs when no
// WithHitCost option overrides it (roughly a DRAM-resident page touch).
const DefaultHitCost = 120 * time.Nanosecond

// Option configures a Cache at construction time.
type Option func(*Cache)

// WithHitCost overrides the virtual time one cache hit costs. Non-positive
// values make hits free.
func WithHitCost(d sim.Duration) Option {
	return func(c *Cache) { c.hitCost = d }
}

// New creates a cache over dev holding at most capacity pages (<=0 for
// unbounded, modelling a machine with ample DRAM as in the paper's Qdrant
// configuration).
func New(dev *ssd.Device, capacity int, opts ...Option) *Cache {
	c := &Cache{
		dev:      dev,
		capacity: capacity,
		hitCost:  DefaultHitCost,
		lru:      list.New(),
		index:    make(map[int64]*list.Element),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// HitCost returns the virtual time one cache hit costs.
func (c *Cache) HitCost() sim.Duration { return c.hitCost }

// Touch accesses one page through the cache: a hit costs the in-memory hit
// time; a miss reads the page from the device and caches it.
func (c *Cache) Touch(e *sim.Env, page int64) {
	if el, ok := c.index[page]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		if c.hitCost > 0 {
			e.Sleep(c.hitCost)
		}
		return
	}
	c.misses++
	c.dev.Read(e, page, c.dev.Config().PageSize)
	c.insert(page)
}

// Contains reports whether the page is resident without touching it.
func (c *Cache) Contains(page int64) bool {
	_, ok := c.index[page]
	return ok
}

func (c *Cache) insert(page int64) {
	if el, ok := c.index[page]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.index[page] = c.lru.PushFront(page)
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(int64))
	}
}

// Warm marks pages resident without any device traffic or virtual time, as
// if a prior run populated the cache.
func (c *Cache) Warm(pages []int64) {
	for _, p := range pages {
		c.insert(p)
	}
}

// Drop empties the cache (drop_caches equivalent).
func (c *Cache) Drop() {
	c.lru.Init()
	c.index = make(map[int64]*list.Element)
}

// Len returns the number of resident pages.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats reports hit and miss counts since creation (Drop does not reset
// them).
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
