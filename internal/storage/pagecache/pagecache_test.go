package pagecache

import (
	"testing"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

func newCache(capacity int) (*sim.Kernel, *ssd.Device, *Cache) {
	k := sim.NewKernel()
	dev := ssd.New(k, nil, ssd.DefaultConfig())
	return k, dev, New(dev, capacity)
}

func TestMissThenHit(t *testing.T) {
	k, dev, c := newCache(0)
	var missTime, hitTime sim.Duration
	k.Spawn("p", func(e *sim.Env) {
		t0 := e.Now()
		c.Touch(e, 7)
		missTime = e.Now().Sub(t0)
		t1 := e.Now()
		c.Touch(e, 7)
		hitTime = e.Now().Sub(t1)
	})
	k.RunAll()
	if missTime < ssd.DefaultConfig().ReadLatency {
		t.Errorf("miss took %v, want at least device latency", missTime)
	}
	if hitTime >= missTime/10 {
		t.Errorf("hit took %v vs miss %v: hits must be far cheaper", hitTime, missTime)
	}
	reads, _ := dev.Stats()
	if reads != 1 {
		t.Errorf("device reads = %d, want 1", reads)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d,%d)", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	k, dev, c := newCache(2)
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		c.Touch(e, 2)
		c.Touch(e, 1) // 1 is now MRU; LRU order: 1, 2
		c.Touch(e, 3) // evicts 2
		if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
			t.Errorf("resident set wrong: 1=%v 2=%v 3=%v", c.Contains(1), c.Contains(2), c.Contains(3))
		}
		c.Touch(e, 2) // must miss again
	})
	k.RunAll()
	reads, _ := dev.Stats()
	if reads != 4 {
		t.Errorf("device reads = %d, want 4 (3 cold + 1 re-miss)", reads)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestDropCaches(t *testing.T) {
	k, dev, c := newCache(0)
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		c.Touch(e, 2)
		c.Drop()
		if c.Len() != 0 {
			t.Errorf("len after drop = %d", c.Len())
		}
		c.Touch(e, 1) // cold again
	})
	k.RunAll()
	reads, _ := dev.Stats()
	if reads != 3 {
		t.Errorf("device reads = %d, want 3", reads)
	}
}

func TestWarmAvoidsIO(t *testing.T) {
	k, dev, c := newCache(0)
	c.Warm([]int64{1, 2, 3})
	k.Spawn("p", func(e *sim.Env) {
		c.Touch(e, 1)
		c.Touch(e, 2)
		c.Touch(e, 3)
	})
	k.RunAll()
	reads, _ := dev.Stats()
	if reads != 0 {
		t.Errorf("device reads = %d, want 0 after warm", reads)
	}
}

func TestWarmDuplicateAndOverCapacity(t *testing.T) {
	_, _, c := newCache(2)
	c.Warm([]int64{1, 1, 2, 3})
	if c.Len() != 2 {
		t.Errorf("len = %d, want capacity 2", c.Len())
	}
	if c.Contains(1) {
		t.Error("page 1 should have been evicted (oldest)")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	k, _, c := newCache(0)
	k.Spawn("p", func(e *sim.Env) {
		for i := int64(0); i < 1000; i++ {
			c.Touch(e, i)
		}
	})
	k.RunAll()
	if c.Len() != 1000 {
		t.Errorf("len = %d, want 1000", c.Len())
	}
}
