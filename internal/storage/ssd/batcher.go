package ssd

import (
	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// Batcher coalesces read requests from concurrent simulated searches into
// shared device submissions, the cross-query half of the async pipeline:
// instead of every query paying the full SubmitCPU per 4 KiB read, requests
// outstanding at the same instant are drained by one dispatcher process in
// batches of up to the device queue depth (Config.Slots), paying SubmitCPU
// once per batch plus BatchSubmitCPU per additional request — io_uring-style
// doorbell batching. Service order inside the device is unchanged (the slot
// semaphore is FIFO), so coalescing alters CPU cost and submission timing,
// never which bytes are read.
//
// A Batcher is bound to one device and must only be used from simulation
// processes of that device's kernel.
type Batcher struct {
	d       *Device
	pending []batchReq
	running bool

	batches  int64
	requests int64
}

// batchReq is one queued read waiting for dispatch.
type batchReq struct {
	page  int64
	bytes int
	done  *sim.Event
}

// NewBatcher creates a batcher over the device.
func NewBatcher(d *Device) *Batcher { return &Batcher{d: d} }

// Read submits one read request through the coalescer and blocks the calling
// process until the device completes it.
func (b *Batcher) Read(e *sim.Env, page int64, bytes int) {
	if bytes <= 0 {
		panic("ssd: batched read of non-positive size")
	}
	req := batchReq{page: page, bytes: bytes, done: sim.NewEvent(b.d.k)}
	b.pending = append(b.pending, req)
	if !b.running {
		b.running = true
		b.d.k.Spawn(b.d.cfg.Name+"/batcher", b.dispatch)
	}
	req.done.Wait(e)
}

// dispatch drains the pending queue in batches of up to Slots requests. Each
// batch charges its amortised submission CPU, then every request is serviced
// concurrently by the device (slots and bus arbitrate as usual); the
// dispatcher moves on to the next batch without waiting for completions, so
// the device queue actually fills.
func (b *Batcher) dispatch(e *sim.Env) {
	for len(b.pending) > 0 {
		n := len(b.pending)
		if n > b.d.cfg.Slots {
			n = b.d.cfg.Slots
		}
		batch := make([]batchReq, n)
		copy(batch, b.pending)
		b.pending = b.pending[n:]
		b.batches++
		b.requests += int64(n)
		if b.d.cpu != nil {
			cost := b.d.cfg.SubmitCPU + sim.Duration(n-1)*b.d.cfg.BatchSubmitCPU
			if cost > 0 {
				b.d.cpu.Use(e, cost)
			}
		}
		for _, r := range batch {
			r := r
			b.d.k.Spawn("batched-read", func(ce *sim.Env) {
				b.d.service(ce, trace.Read, r.bytes)
				b.d.reads++
				r.done.Fire()
			})
		}
	}
	b.running = false
}

// Stats reports the number of dispatched batches and the requests they
// carried; requests/batches is the achieved coalescing factor.
func (b *Batcher) Stats() (batches, requests int64) { return b.batches, b.requests }
