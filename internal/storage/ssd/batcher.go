package ssd

import (
	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// Batcher coalesces read requests from concurrent simulated searches into
// shared device submissions, the cross-query half of the async pipeline:
// instead of every query paying the full SubmitCPU per 4 KiB read, requests
// outstanding at the same instant are drained by one dispatcher process in
// batches of up to the device queue depth (Config.Slots), paying SubmitCPU
// once per batch plus BatchSubmitCPU per additional request — io_uring-style
// doorbell batching. Service order is unchanged (grants are FIFO), so
// coalescing alters CPU cost and submission timing, never which bytes are
// read.
//
// The batcher services requests analytically instead of parking one process
// per outstanding request. Because grants are FIFO and the transfer bus is
// serial, completion times are monotone in submission order, so the
// dispatcher can compute each request's completion with the same recursion
// Device.service performs — slot grant = the completion of the request
// Slots submissions earlier, bus reservation off the device's busFree clock,
// plus the base latency — and a single completer process walks the resulting
// FIFO, firing each request's join event at its computed instant. Modelled
// hardware behaviour is identical to the direct path; host-side, a
// 64-deep device queue costs two processes instead of 64.
//
// The steady state allocates nothing per request: pending requests live in a
// reusable head-compacted slice, multi-page submissions join on one pooled
// event shared by the whole beam (see ReadPages), and joints and events
// recycle through free lists.
//
// A Batcher is bound to one device and must only be used from simulation
// processes of that device's kernel. While it is in use, all reads of the
// device must flow through it (the engine routes every read through the
// batcher in coalesced mode): the analytic slot model and the semaphore the
// direct path uses do not see each other's occupancy.
type Batcher struct {
	d       *Device
	name    string // precomposed dispatcher proc name (concat allocates)
	cplName string // precomposed completer proc name

	pending []batchReq
	head    int // pending[:head] has been dispatched
	running bool

	// Analytic service state: computed completions awaiting the completer,
	// and a ring of the last Slots completion times for the grant recursion.
	completions []completion
	chead       int
	completing  bool
	cpl         completerRunner
	recent      []sim.Time
	ri          int

	joints []*joint

	batches  int64
	requests int64
}

// joint is the shared completion join of one multi-request submission: the
// event fires when its last request finishes servicing. Blocking
// submissions (Read, ReadPages) own a pooled event recycled by finish;
// ReadPagesAsync joins on a caller-owned event and recycles the joint at
// fire time. Single async requests (ReadAsync) carry their event directly
// and need no joint.
type joint struct {
	left  int
	ev    *sim.Event
	owned bool
}

// batchReq is one queued read waiting for dispatch: either a share of a
// joint (blocking submission) or a bare caller-owned event (async).
type batchReq struct {
	page  int64
	bytes int
	j     *joint
	ev    *sim.Event
}

// completion is one serviced request's computed finish time.
type completion struct {
	at sim.Time
	j  *joint
	ev *sim.Event
}

// completerRunner is the process body walking the completion FIFO (a
// distinct Runner type because Batcher.Run is the dispatcher).
type completerRunner struct{ b *Batcher }

func (c *completerRunner) Run(e *sim.Env) { c.b.complete(e) }

// NewBatcher creates a batcher over the device.
func NewBatcher(d *Device) *Batcher {
	b := &Batcher{
		d:       d,
		name:    d.cfg.Name + "/batcher",
		cplName: d.cfg.Name + "/completer",
		recent:  make([]sim.Time, d.cfg.Slots),
	}
	b.cpl.b = b
	return b
}

func (b *Batcher) allocJoint(n int, ev *sim.Event, owned bool) *joint {
	var j *joint
	if l := len(b.joints); l > 0 {
		j = b.joints[l-1]
		b.joints = b.joints[:l-1]
	} else {
		j = &joint{}
	}
	j.left, j.ev, j.owned = n, ev, owned
	return j
}

// enqueue appends one request and ensures the dispatcher is running.
func (b *Batcher) enqueue(req batchReq) {
	b.pending = append(b.pending, req)
	if !b.running {
		b.running = true
		b.d.k.SpawnRunner(b.name, b)
	}
}

// finish blocks until the joint's last request completes, then returns the
// joint and its event to their pools.
func (b *Batcher) finish(e *sim.Env, j *joint) {
	j.ev.Wait(e)
	b.d.k.ReleaseEvent(j.ev)
	j.ev = nil
	b.joints = append(b.joints, j)
}

// Read submits one read request through the coalescer and blocks the calling
// process until the device completes it.
func (b *Batcher) Read(e *sim.Env, page int64, bytes int) {
	if bytes <= 0 {
		panic("ssd: batched read of non-positive size")
	}
	j := b.allocJoint(1, b.d.k.AllocEvent(), true)
	b.enqueue(batchReq{page: page, bytes: bytes, j: j})
	b.finish(e, j)
}

// ReadPages submits one page-sized request per page (a beam) through the
// coalescer and blocks until all of them complete. The whole beam joins on
// one shared event instead of one per page — the beam-read analogue of
// Device.ReadPages.
func (b *Batcher) ReadPages(e *sim.Env, pages []int64) {
	switch len(pages) {
	case 0:
		return
	case 1:
		b.Read(e, pages[0], b.d.cfg.PageSize)
		return
	}
	j := b.allocJoint(len(pages), b.d.k.AllocEvent(), true)
	for _, p := range pages {
		b.enqueue(batchReq{page: p, bytes: b.d.cfg.PageSize, j: j})
	}
	b.finish(e, j)
}

// ReadAsync submits one read without blocking: ev fires when the device
// completes it. The caller owns ev's lifecycle and must not release it
// before it fires — this is how the replay engine issues look-ahead
// prefetches in coalesced mode without a process per speculative read.
func (b *Batcher) ReadAsync(page int64, bytes int, ev *sim.Event) {
	if bytes <= 0 {
		panic("ssd: batched read of non-positive size")
	}
	b.enqueue(batchReq{page: page, bytes: bytes, ev: ev})
}

// ReadPagesAsync is ReadPages without the blocking wait: ev fires when the
// whole beam has completed. The replay engine submits a step's demand beam
// this way so the step's look-ahead prefetches can be enqueued behind it —
// demand transfers keep their place ahead of speculative ones on the bus —
// before the query parks on ev.
func (b *Batcher) ReadPagesAsync(pages []int64, ev *sim.Event) {
	if len(pages) == 0 {
		panic("ssd: async beam of zero pages")
	}
	j := b.allocJoint(len(pages), ev, false)
	for _, p := range pages {
		b.enqueue(batchReq{page: p, bytes: b.d.cfg.PageSize, j: j})
	}
}

// submit computes one request's completion time — the analytic equivalent
// of Device.service: issue-time trace emission and queue-depth accounting,
// FIFO slot grant, serial bus reservation, base read latency.
func (b *Batcher) submit(e *sim.Env, req batchReq) {
	d := b.d
	if d.tracer != nil {
		d.tracer.Emit(e.Now(), trace.Read, req.bytes)
	}
	d.outstanding++
	d.tracer.NoteDepth(e.Now(), d.outstanding)
	grant := e.Now()
	if g := b.recent[b.ri]; g > grant {
		grant = g
	}
	start := grant
	if d.busFree > start {
		start = d.busFree
	}
	busTime := sim.Duration(float64(req.bytes) / d.cfg.BandwidthBps * 1e9)
	done := start.Add(busTime)
	d.busFree = done
	at := done.Add(d.cfg.ReadLatency)
	b.recent[b.ri] = at
	b.ri++
	if b.ri == len(b.recent) {
		b.ri = 0
	}
	b.completions = append(b.completions, completion{at: at, j: req.j, ev: req.ev})
	if !b.completing {
		b.completing = true
		d.k.SpawnRunner(b.cplName, &b.cpl)
	}
}

// complete walks the completion FIFO, sleeping to each request's computed
// finish time (monotone by construction) and firing its joint. Completions
// appended while it sleeps are picked up in order; the queue storage is
// reset — not reallocated — once drained.
func (b *Batcher) complete(e *sim.Env) {
	d := b.d
	for b.chead < len(b.completions) {
		if b.chead >= 4096 {
			// Under continuous load the FIFO never fully drains; slide the
			// unconsumed tail down so the backing array stays bounded.
			n := copy(b.completions, b.completions[b.chead:])
			b.completions = b.completions[:n]
			b.chead = 0
		}
		c := b.completions[b.chead]
		b.chead++
		e.SleepUntil(c.at)
		d.reads++
		d.outstanding--
		d.tracer.NoteDepth(e.Now(), d.outstanding)
		if j := c.j; j != nil {
			j.left--
			if j.left == 0 {
				j.ev.Fire()
				if !j.owned {
					j.ev = nil
					b.joints = append(b.joints, j)
				}
			}
		} else {
			c.ev.Fire()
		}
	}
	b.completions = b.completions[:0]
	b.chead = 0
	b.completing = false
}

// Run is the dispatcher process body (Batcher implements sim.Runner): it
// drains the pending queue in batches of up to Slots requests. Each batch
// charges its amortised submission CPU, then every request's device service
// is computed and queued for the completer; the dispatcher moves on to the
// next batch without waiting for completions, so the device queue actually
// fills. Requests arriving while a batch's CPU charge blocks are picked up
// by later iterations; the queue storage is reset — not reallocated — once
// drained.
func (b *Batcher) Run(e *sim.Env) {
	for b.head < len(b.pending) {
		if b.head >= 4096 {
			// Same tail compaction as the completer: under continuous load
			// the dispatcher may never observe an empty queue.
			n := copy(b.pending, b.pending[b.head:])
			b.pending = b.pending[:n]
			b.head = 0
		}
		n := len(b.pending) - b.head
		if n > b.d.cfg.Slots {
			n = b.d.cfg.Slots
		}
		batch := b.pending[b.head : b.head+n]
		b.head += n
		b.batches++
		b.requests += int64(n)
		if b.d.cpu != nil {
			cost := b.d.cfg.SubmitCPU + sim.Duration(n-1)*b.d.cfg.BatchSubmitCPU
			if cost > 0 {
				b.d.cpu.Use(e, cost)
			}
		}
		for i := range batch {
			b.submit(e, batch[i])
		}
	}
	b.pending = b.pending[:0]
	b.head = 0
	b.running = false
}

// Stats reports the number of dispatched batches and the requests they
// carried; requests/batches is the achieved coalescing factor.
func (b *Batcher) Stats() (batches, requests int64) { return b.batches, b.requests }
