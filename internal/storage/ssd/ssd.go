// Package ssd models a modern NVMe flash SSD inside the discrete-event
// simulation. The model has four calibrated components:
//
//   - a fixed per-request base service latency (flash read/program time plus
//     controller overhead),
//   - a bounded number of internal parallel units ("slots": channels × dies),
//     which caps random IOPS at slots/latency,
//   - a shared transfer bus with a fixed byte bandwidth, which caps large
//     sequential throughput, and
//   - a per-request host CPU submission cost, which makes I/O compete with
//     query compute for cores — the mechanism behind the paper's premise
//     that saturating an NVMe SSD "requires a large amount of CPU
//     resources" (Sec. I, refs [63], [64]).
//
// DefaultConfig is calibrated to the Samsung 990 Pro envelope the paper
// measured with fio (Sec. III-A): ~324 KIOPS from one core, 1.3 MIOPS with
// 64 concurrent 4 KiB requests, and 7.2 GiB/s of 128 KiB sequential reads.
package ssd

import (
	"fmt"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// Config parameterises the device model.
type Config struct {
	// Name identifies the device in reports.
	Name string
	// PageSize is the device's native access granularity in bytes.
	PageSize int
	// ReadLatency is the base service latency of a read request.
	ReadLatency sim.Duration
	// WriteLatency is the base service latency of a write request
	// (lower than reads: writes land in the controller's cache).
	WriteLatency sim.Duration
	// Slots is the device's internal parallelism; at most this many
	// requests are serviced concurrently.
	Slots int
	// BandwidthBps is the shared-bus transfer bandwidth in bytes/second.
	BandwidthBps float64
	// SubmitCPU is the host CPU time consumed to submit and complete one
	// request through the kernel storage stack.
	SubmitCPU sim.Duration
	// BatchSubmitCPU is the marginal host CPU cost of each additional
	// request submitted in one coalesced batch (see Batcher): the first
	// request of a batch pays the full SubmitCPU (syscall + doorbell), the
	// rest only the per-SQE marginal cost. Zero means extra batched
	// submissions are free.
	BatchSubmitCPU sim.Duration
	// WriteBusPenalty scales the bus occupancy of writes, modelling
	// NAND read/write interference (Sec. VIII): a penalty of 3 means one
	// written byte occupies the bus as long as three read bytes.
	WriteBusPenalty float64
}

// DefaultConfig returns the Samsung 990 Pro-like calibration used in all
// experiments.
func DefaultConfig() Config {
	return Config{
		Name:            "sim-990pro",
		PageSize:        4096,
		ReadLatency:     49 * time.Microsecond,
		WriteLatency:    12 * time.Microsecond,
		Slots:           64,
		BandwidthBps:    7.2 * (1 << 30),
		SubmitCPU:       3083 * time.Nanosecond,
		BatchSubmitCPU:  385 * time.Nanosecond,
		WriteBusPenalty: 3,
	}
}

// Device is a simulated NVMe SSD attached to a kernel and (optionally) a CPU
// whose cycles request submission consumes.
type Device struct {
	cfg     Config
	k       *sim.Kernel
	cpu     *sim.CPU // may be nil: submission then costs no CPU
	slots   *sim.Semaphore
	busFree sim.Time
	tracer  *trace.Tracer

	nextPage    int64 // bump allocator for page addresses
	reads       int64
	writes      int64
	outstanding int        // requests submitted and not yet completed
	jobs        []*readJob // beam-read body pool (see ReadPages)
}

// New creates a device. cpu may be nil to model free submission.
func New(k *sim.Kernel, cpu *sim.CPU, cfg Config) *Device {
	if cfg.PageSize <= 0 || cfg.Slots <= 0 || cfg.BandwidthBps <= 0 {
		panic(fmt.Sprintf("ssd: invalid config %+v", cfg))
	}
	return &Device{
		cfg:   cfg,
		k:     k,
		cpu:   cpu,
		slots: sim.NewSemaphore(k, cfg.Name+"/slots", int64(cfg.Slots)),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Attach installs a tracer that observes every request at issue time.
// Passing nil detaches.
func (d *Device) Attach(t *trace.Tracer) { d.tracer = t }

// Tracer returns the attached tracer (nil when none is attached); the replay
// engine uses it to report node-cache hits that never reach the device.
func (d *Device) Tracer() *trace.Tracer { return d.tracer }

// Alloc reserves npages contiguous pages and returns the first page number.
// The device does not store payload bytes — object contents live in the
// simulation's host memory — so allocation only assigns addresses for
// realistic traces.
func (d *Device) Alloc(npages int64) int64 {
	p := d.nextPage
	d.nextPage += npages
	return p
}

// Read performs one read request of the given size, blocking the calling
// process for the full device service time. Page is the starting page
// address (used only for accounting realism).
func (d *Device) Read(e *sim.Env, page int64, bytes int) {
	d.request(e, trace.Read, bytes)
	d.reads++
}

// Write performs one write request of the given size.
func (d *Device) Write(e *sim.Env, page int64, bytes int) {
	d.request(e, trace.Write, bytes)
	d.writes++
}

// readJob is the pooled process body of one beam read (see ReadPages).
type readJob struct {
	d    *Device
	page int64
}

// Run performs the read and returns the job to the device's pool (readJob
// implements sim.Runner).
func (r *readJob) Run(e *sim.Env) {
	r.d.Read(e, r.page, r.d.cfg.PageSize)
	r.d.jobs = append(r.d.jobs, r)
}

// ReadPages issues n page-sized read requests concurrently (a beam), and
// returns when all have completed. This is how DiskANN's beam search fetches
// the W frontier nodes of one iteration in parallel. The fork/join runs on
// pooled groups and runner bodies, so the steady state allocates nothing.
func (d *Device) ReadPages(e *sim.Env, pages []int64) {
	switch len(pages) {
	case 0:
		return
	case 1:
		d.Read(e, pages[0], d.cfg.PageSize)
		return
	}
	g := d.k.AllocGroup()
	for _, p := range pages {
		var j *readJob
		if n := len(d.jobs); n > 0 {
			j = d.jobs[n-1]
			d.jobs = d.jobs[:n-1]
		} else {
			j = &readJob{d: d}
		}
		j.page = p
		g.GoRunner("beam-read", j)
	}
	g.Wait(e)
	d.k.ReleaseGroup(g)
}

// request is the shared single-request path: per-request submission CPU,
// then the device-side service.
func (d *Device) request(e *sim.Env, op trace.Op, bytes int) {
	if bytes <= 0 {
		panic("ssd: request of non-positive size")
	}
	// Host-side submission cost competes for CPU cores.
	if d.cpu != nil && d.cfg.SubmitCPU > 0 {
		d.cpu.Use(e, d.cfg.SubmitCPU)
	}
	d.service(e, op, bytes)
}

// service is the device-side portion of one request — trace emission, queue
// depth accounting, internal-unit and bus contention, base latency — without
// any submission CPU. The Batcher charges one amortised submission cost for
// a whole coalesced batch and routes each request through here.
func (d *Device) service(e *sim.Env, op trace.Op, bytes int) {
	if bytes <= 0 {
		panic("ssd: request of non-positive size")
	}
	if d.tracer != nil {
		d.tracer.Emit(e.Now(), op, bytes)
	}
	d.outstanding++
	d.tracer.NoteDepth(e.Now(), d.outstanding)
	// Device-side service: wait for a free internal unit.
	d.slots.Acquire(e, 1)
	// Reserve the shared bus for the transfer.
	busBytes := float64(bytes)
	base := d.cfg.ReadLatency
	if op == trace.Write {
		busBytes *= d.cfg.WriteBusPenalty
		base = d.cfg.WriteLatency
	}
	busTime := sim.Duration(busBytes / d.cfg.BandwidthBps * 1e9)
	start := e.Now()
	if d.busFree > start {
		start = d.busFree
	}
	done := start.Add(busTime)
	d.busFree = done
	completion := done.Add(base)
	e.SleepUntil(completion)
	d.slots.Release(1)
	d.outstanding--
	d.tracer.NoteDepth(e.Now(), d.outstanding)
}

// QueueDepth returns the number of requests submitted and not yet completed.
func (d *Device) QueueDepth() int { return d.outstanding }

// Stats reports the number of read and write requests serviced.
func (d *Device) Stats() (reads, writes int64) { return d.reads, d.writes }
