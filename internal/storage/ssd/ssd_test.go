package ssd

import (
	"testing"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// calibrate runs a closed-loop fio-like workload: njobs processes each keep
// one request of reqBytes in flight for the given virtual duration, on a CPU
// with the given core count. It returns achieved IOPS and MiB/s.
func calibrate(t *testing.T, cores, njobs, reqBytes int, dur sim.Duration) (iops, mibps float64) {
	t.Helper()
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, cores)
	dev := New(k, cpu, DefaultConfig())
	deadline := sim.Time(dur)
	var ops int64
	for i := 0; i < njobs; i++ {
		k.Spawn("job", func(e *sim.Env) {
			for e.Now() < deadline {
				dev.Read(e, 0, reqBytes)
				ops++
			}
		})
	}
	k.RunAll()
	secs := dur.Seconds()
	return float64(ops) / secs, float64(ops) * float64(reqBytes) / (1 << 20) / secs
}

// The paper's fio calibration (Sec. III-A): 324.3 KIOPS with 4 KiB requests
// on a single core.
func TestCalibrationSingleCore4K(t *testing.T) {
	iops, _ := calibrate(t, 1, 256, 4096, 500*time.Millisecond)
	if iops < 280e3 || iops > 360e3 {
		t.Errorf("single-core 4 KiB IOPS = %.0f, want ≈324K", iops)
	}
}

// 1.3 MIOPS with 64 concurrent 4 KiB requests on four cores.
func TestCalibrationFourCore4K(t *testing.T) {
	iops, _ := calibrate(t, 4, 64, 4096, 500*time.Millisecond)
	if iops < 1.15e6 || iops > 1.45e6 {
		t.Errorf("4-core 64-deep 4 KiB IOPS = %.0f, want ≈1.3M", iops)
	}
}

// 7.2 GiB/s with 128 KiB sequential reads and 32 concurrent threads.
func TestCalibrationSequentialBandwidth(t *testing.T) {
	_, mibps := calibrate(t, 20, 32, 128*1024, 500*time.Millisecond)
	if mibps < 6800 || mibps > 7500 {
		t.Errorf("128 KiB × 32 bandwidth = %.0f MiB/s, want ≈7372 (7.2 GiB/s)", mibps)
	}
}

func TestQD1LatencyBound(t *testing.T) {
	// A single request with an idle device completes in base latency plus
	// bus time; QD1 IOPS must therefore sit near 1/(submit+latency).
	iops, _ := calibrate(t, 1, 1, 4096, 100*time.Millisecond)
	want := 1.0 / (DefaultConfig().SubmitCPU + DefaultConfig().ReadLatency).Seconds()
	if iops < want*0.85 || iops > want*1.1 {
		t.Errorf("QD1 IOPS = %.0f, want ≈%.0f", iops, want)
	}
}

func TestThroughputMonotoneInConcurrency(t *testing.T) {
	prev := 0.0
	for _, jobs := range []int{1, 4, 16, 64} {
		iops, _ := calibrate(t, 8, jobs, 4096, 200*time.Millisecond)
		if iops+1e3 < prev { // allow tiny wiggle
			t.Errorf("IOPS dropped from %.0f to %.0f at %d jobs", prev, iops, jobs)
		}
		prev = iops
	}
}

func TestTracerObservesRequests(t *testing.T) {
	k := sim.NewKernel()
	dev := New(k, nil, DefaultConfig())
	tr := trace.NewTracer(true)
	dev.Attach(tr)
	k.Spawn("p", func(e *sim.Env) {
		dev.Read(e, 0, 4096)
		dev.Write(e, 1, 8192)
	})
	k.RunAll()
	r, w, rb, wb := tr.Totals()
	if r != 1 || w != 1 || rb != 4096 || wb != 8192 {
		t.Errorf("tracer totals = (%d,%d,%d,%d)", r, w, rb, wb)
	}
	recs := tr.Records()
	if len(recs) != 2 || recs[0].Op != trace.Read || recs[1].Op != trace.Write {
		t.Errorf("raw records wrong: %+v", recs)
	}
	reads, writes := dev.Stats()
	if reads != 1 || writes != 1 {
		t.Errorf("device stats = (%d,%d)", reads, writes)
	}
}

func TestReadPagesBeamParallelism(t *testing.T) {
	// W page reads issued as a beam must complete in roughly one service
	// time, not W of them.
	k := sim.NewKernel()
	dev := New(k, nil, DefaultConfig())
	var elapsed sim.Duration
	k.Spawn("p", func(e *sim.Env) {
		start := e.Now()
		dev.ReadPages(e, []int64{0, 1, 2, 3, 4, 5, 6, 7})
		elapsed = e.Now().Sub(start)
	})
	k.RunAll()
	one := DefaultConfig().ReadLatency
	if elapsed < one || elapsed > 2*one {
		t.Errorf("8-wide beam took %v, want ≈%v (one service time)", elapsed, one)
	}
}

func TestReadPagesEmptyAndSingle(t *testing.T) {
	k := sim.NewKernel()
	dev := New(k, nil, DefaultConfig())
	k.Spawn("p", func(e *sim.Env) {
		dev.ReadPages(e, nil)
		if e.Now() != 0 {
			t.Error("empty beam advanced the clock")
		}
		dev.ReadPages(e, []int64{3})
	})
	k.RunAll()
	reads, _ := dev.Stats()
	if reads != 1 {
		t.Errorf("reads = %d, want 1", reads)
	}
}

func TestWriteInterferenceSlowsReads(t *testing.T) {
	// Sustained large writes occupy the shared bus; concurrent large reads
	// must observe reduced bandwidth versus a read-only run.
	run := func(withWrites bool) float64 {
		k := sim.NewKernel()
		dev := New(k, nil, DefaultConfig())
		deadline := sim.Time(200 * time.Millisecond)
		var readBytes int64
		for i := 0; i < 16; i++ {
			k.Spawn("reader", func(e *sim.Env) {
				for e.Now() < deadline {
					dev.Read(e, 0, 128*1024)
					readBytes += 128 * 1024
				}
			})
		}
		if withWrites {
			for i := 0; i < 16; i++ {
				k.Spawn("writer", func(e *sim.Env) {
					for e.Now() < deadline {
						dev.Write(e, 0, 128*1024)
					}
				})
			}
		}
		k.RunAll()
		return float64(readBytes) / (1 << 20) / 0.2
	}
	clean := run(false)
	mixed := run(true)
	if mixed >= clean*0.8 {
		t.Errorf("read bandwidth with writes %.0f MiB/s, without %.0f MiB/s: expected ≥20%% interference", mixed, clean)
	}
}

func TestAllocAddressesDisjoint(t *testing.T) {
	k := sim.NewKernel()
	dev := New(k, nil, DefaultConfig())
	a := dev.Alloc(10)
	b := dev.Alloc(5)
	c := dev.Alloc(1)
	if a != 0 || b != 10 || c != 15 {
		t.Errorf("alloc sequence = %d,%d,%d", a, b, c)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero-slot config")
		}
	}()
	cfg := DefaultConfig()
	cfg.Slots = 0
	New(sim.NewKernel(), nil, cfg)
}
