package ssd

import (
	"testing"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/trace"
)

// runReads issues n concurrent 4 KiB reads through read and returns the
// tracer observing the device plus the CPU's total busy time.
func runReads(t *testing.T, n int, via func(d *Device, b *Batcher) func(e *sim.Env, page int64, bytes int)) (*trace.Tracer, sim.Duration) {
	t.Helper()
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, 8)
	dev := New(k, cpu, DefaultConfig())
	tr := trace.NewTracer(false)
	dev.Attach(tr)
	read := via(dev, NewBatcher(dev))
	for i := 0; i < n; i++ {
		page := int64(i)
		k.Spawn("reader", func(e *sim.Env) { read(e, page, 4096) })
	}
	end := k.RunAll()
	tr.FinishAt(end)
	return tr, cpu.BusyTime()
}

// TestBatcherReadsSameBytes: coalescing changes submission cost and timing,
// never which bytes reach the device.
func TestBatcherReadsSameBytes(t *testing.T) {
	const n = 64
	direct, _ := runReads(t, n, func(d *Device, _ *Batcher) func(*sim.Env, int64, int) {
		return d.Read
	})
	batched, _ := runReads(t, n, func(_ *Device, b *Batcher) func(*sim.Env, int64, int) {
		return b.Read
	})
	dOps, _, dBytes, _ := direct.Totals()
	bOps, _, bBytes, _ := batched.Totals()
	if dOps != bOps || dBytes != bBytes {
		t.Errorf("batched device traffic (%d ops, %d B) differs from direct (%d ops, %d B)",
			bOps, bBytes, dOps, dBytes)
	}
	if bOps != n || bBytes != int64(n*4096) {
		t.Errorf("device saw %d ops %d bytes, want %d ops %d bytes", bOps, bBytes, n, n*4096)
	}
}

// TestBatcherCoalesces: requests outstanding together are dispatched in
// fewer batches than requests, and the stats count every request.
func TestBatcherCoalesces(t *testing.T) {
	const n = 64
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, 8)
	dev := New(k, cpu, DefaultConfig())
	b := NewBatcher(dev)
	for i := 0; i < n; i++ {
		page := int64(i)
		k.Spawn("reader", func(e *sim.Env) { b.Read(e, page, 4096) })
	}
	k.RunAll()
	batches, requests := b.Stats()
	if requests != n {
		t.Errorf("batcher carried %d requests, want %d", requests, n)
	}
	if batches >= requests {
		t.Errorf("%d batches for %d concurrent requests: no coalescing", batches, requests)
	}
	maxPerBatch := int64(dev.Config().Slots)
	if min := (requests + maxPerBatch - 1) / maxPerBatch; batches < min {
		t.Errorf("%d batches exceed the per-batch slot cap (min %d)", batches, min)
	}
}

// TestBatcherAmortizesSubmitCPU: a batch pays SubmitCPU once plus the
// cheaper BatchSubmitCPU per additional request, so total submission CPU
// must drop versus the direct path.
func TestBatcherAmortizesSubmitCPU(t *testing.T) {
	const n = 64
	_, directCPU := runReads(t, n, func(d *Device, _ *Batcher) func(*sim.Env, int64, int) {
		return d.Read
	})
	_, batchedCPU := runReads(t, n, func(_ *Device, b *Batcher) func(*sim.Env, int64, int) {
		return b.Read
	})
	if batchedCPU >= directCPU {
		t.Errorf("batched submission CPU %v not below direct %v", batchedCPU, directCPU)
	}
}

// TestBatcherSequentialRequestsStillComplete: a lone request (nothing to
// coalesce with) must still be serviced — the dispatcher drains and exits.
func TestBatcherSequentialRequestsStillComplete(t *testing.T) {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, 2)
	dev := New(k, cpu, DefaultConfig())
	b := NewBatcher(dev)
	var done int
	k.Spawn("reader", func(e *sim.Env) {
		for i := 0; i < 3; i++ {
			b.Read(e, int64(i), 4096)
			done++
			e.Sleep(time.Millisecond)
		}
	})
	k.RunAll()
	if done != 3 {
		t.Errorf("completed %d sequential batched reads, want 3", done)
	}
	batches, requests := b.Stats()
	if batches != 3 || requests != 3 {
		t.Errorf("sequential reads: %d batches / %d requests, want 3/3", batches, requests)
	}
}
