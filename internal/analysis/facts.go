package analysis

// Cross-package fact propagation: the multi-pass half of annlint. Fact-based
// analyzers (hotalloc, scratchalias, goroleak) summarise every function they
// see — does it allocate, do its parameters escape, does it signal goroutine
// completion — and export those summaries keyed by the function's fully
// qualified name. Because LintPackages analyses packages in dependency order,
// an importing package always finds its dependencies' summaries already in
// the store, so a violation that is only visible through a callee in another
// package (say, a hot search loop calling an allocating helper in
// internal/storage) is still reported, at the call site, with the callee's
// evidence attached.
//
// The design mirrors golang.org/x/tools/go/analysis facts with two
// simplifications the stdlib-only constraint forces: facts live in one
// in-memory store for the whole run (no gob serialisation between
// processes), and they are keyed by qualified name rather than by
// types.Object identity, because the same function is a source-checked
// object in its defining package and an export-data object in its
// importers.

import (
	"go/types"
	"sort"
)

// Facts is the shared fact store of one LintPackages run. Keys are
// namespaced per analyzer, so analyzers cannot observe each other's
// summaries.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	object   string
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]any)} }

func (f *Facts) export(analyzer, object string, v any) {
	f.m[factKey{analyzer, object}] = v
}

func (f *Facts) lookup(analyzer, object string) any {
	return f.m[factKey{analyzer, object}]
}

// FuncKey returns the cross-package identity of a function or method:
// "pkgpath.Name" for package-level functions, "pkgpath.Recv.Name" for
// methods. The key is identical whether fn came from source type-checking or
// from compiler export data, which is what lets facts exported by the
// defining package be found from an importing package's view of the same
// function.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // error.Error and other universe-scope methods
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return key + named.Obj().Name() + "." + fn.Name()
		}
		return key + "?." + fn.Name()
	}
	return key + fn.Name()
}

// ExportFact records an analyzer-scoped summary for fn, visible to later
// passes of the same analyzer over packages that import this one.
func (p *Pass) ExportFact(fn *types.Func, v any) {
	if p.Facts == nil {
		return
	}
	p.Facts.export(p.Analyzer.Name, FuncKey(fn), v)
}

// ImportFact returns the summary a prior pass of this analyzer exported for
// fn, or nil when none exists (an unanalysed function — standard library,
// assembly, or a package outside the loaded set). Callers must treat nil as
// "assume the default", and the default must be the permissive one: facts
// sharpen diagnostics, they never invent them.
func (p *Pass) ImportFact(fn *types.Func) any {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.lookup(p.Analyzer.Name, FuncKey(fn))
}

// topoPackages orders pkgs dependencies-first using their import lists
// (edges outside the given set are ignored). Ties and cycles — which cannot
// occur in a compilable module — resolve in the original order, so the
// result is deterministic.
func topoPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	ordered := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if dep, ok := byPath[imp]; ok && state[dep] == 0 {
				visit(dep)
			}
		}
		state[p] = 2
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}
