package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// MapIter polices Go's randomized map iteration order, the classic way
// nondeterminism leaks into persisted snapshots and merged results:
//
//   - In encoding/persistence code (package internal/binenc and every
//     persist.go under internal/), any `range` over a map is flagged — the
//     iteration order would reach the output bytes, breaking the
//     byte-identical snapshot contract that the scheduler's deterministic
//     merge and the collection cache rely on.
//   - Everywhere else under internal/, a `range` over a map is flagged when
//     the loop body appends to a slice declared outside the loop: the
//     element order of the escaping slice then depends on map hashing. Sort
//     the keys first, or sort the slice immediately after and annotate the
//     loop with //annlint:allow mapiter -- <why>.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag nondeterministic map iteration: any map range in persistence/encoding code, " +
		"and map ranges that append to an escaping slice elsewhere",
	Match: func(path string) bool {
		return hasPathPrefix(path, modulePath+"/internal")
	},
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	encodingPkg := pass.Pkg.Path == modulePath+"/internal/binenc"
	for _, file := range pass.Pkg.Files {
		pos := pass.Pkg.Fset.Position(file.Pos())
		persistFile := filepath.Base(pos.Filename) == "persist.go"
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if encodingPkg || persistFile {
				pass.Reportf(rng.Pos(),
					"map iteration order is randomized and this is persistence/encoding code; "+
						"iterate sorted keys so snapshots stay byte-identical")
				return true
			}
			if target := appendsToOuterSlice(pass.Pkg.Info, rng); target != "" {
				pass.Reportf(rng.Pos(),
					"map iteration appends to %q, which outlives the loop, in nondeterministic order; "+
						"iterate sorted keys or sort the result and annotate", target)
			}
			return true
		})
	}
}

// appendsToOuterSlice reports the name of a slice declared outside rng that
// the loop body grows via `x = append(x, ...)`, or "" if there is none.
// Selector and index targets (o.field, s[i]) always count as escaping —
// they are reachable after the loop by construction.
func appendsToOuterSlice(info *types.Info, rng *ast.RangeStmt) string {
	var found string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fnID, ok := call.Fun.(*ast.Ident)
			if !ok || fnID.Name != "append" {
				continue
			}
			if _, isBuiltin := info.Uses[fnID].(*types.Builtin); !isBuiltin {
				continue
			}
			switch lhs := assign.Lhs[i].(type) {
			case *ast.Ident:
				obj := info.ObjectOf(lhs)
				if obj == nil {
					continue
				}
				// Declared inside the loop body: grows a loop-local
				// scratch slice, no order escapes.
				if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				found = lhs.Name
				return false
			case *ast.SelectorExpr:
				found = lhs.Sel.Name
				return false
			case *ast.IndexExpr:
				found = types.ExprString(lhs)
				return false
			}
		}
		return true
	})
	return found
}
