package analysis

// scratchalias is the use-after-reset detector for the SearchInto /
// ResultInto API. A SearchScratch's buffers are valid only until the next
// query reuses the scratch (the "reset epoch"): any reference that outlives
// the call — returned, stored into caller-visible memory, sent on a
// channel, captured by a goroutine, or passed to a callee whose summary
// says it retains the argument — is a latent data race that the byte-
// identity tests only catch for the configurations they happen to run.
//
// Seeds are selector expressions on values whose named type is a svdbench
// SearchScratch; the scratch *pointer* itself is exempt, because handing
// the whole scratch to the next owner (the BatchRun free list) is the
// intended ownership-transfer idiom. Writes back into scratch-rooted
// destinations are likewise the contract working as designed.
//
// Escape summaries are exported for every function of every loaded package
// (not just where Match reports), which is how a scratch buffer laundered
// through a helper in another package — an appender that returns its
// argument, a recorder that retains a slice — is still caught at the call
// site. A suppressed return (hnsw's searchLayer, which documents that its
// result is scratch-owned) still exports returnsSeed, so the caller's taint
// stays alive past the suppression.

import (
	"go/ast"
	"go/types"
)

// ScratchAlias reports SearchScratch-owned buffers escaping their epoch.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "no SearchScratch-owned buffer may escape its reset epoch (use-after-reset detector)",
	Match: func(pkgPath string) bool {
		return anyPathPrefix(pkgPath,
			modulePath+"/internal/index",
			modulePath+"/internal/vdb",
			modulePath+"/internal/core")
	},
	FactBased: true,
	Run:       runScratchAlias,
}

func runScratchAlias(p *Pass) {
	info := p.Pkg.Info
	seed := func(e ast.Expr) uint32 {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return 0
		}
		if !isScratchType(info.TypeOf(sel.X)) {
			return 0
		}
		if ft := info.TypeOf(e); ft != nil && pointery(ft) {
			return taintSeed
		}
		return 0
	}
	storeOK := func(root ast.Expr) bool {
		return isScratchType(info.TypeOf(root))
	}
	lookup := func(fn *types.Func) *escapeFact {
		f, _ := p.ImportFact(fn).(*escapeFact)
		return f
	}

	var decls []*ast.FuncDecl
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	// Intra-package fixpoint over summaries: a helper later in the file may
	// feed taint into a function earlier in it. Bits only accumulate, so
	// this converges quickly; cross-package summaries are already final
	// because LintPackages runs dependencies first.
	analyze := func(fd *ast.FuncDecl) *funcAnalysis {
		fa := newFuncAnalysis(p, fd, seed, lookup, storeOK)
		if fa != nil {
			fa.run()
		}
		return fa
	}
	for round := 0; round < 8; round++ {
		changed := false
		for _, fd := range decls {
			fa := analyze(fd)
			if fa == nil {
				continue
			}
			fn := info.Defs[fd.Name].(*types.Func)
			fact := fa.fact()
			if old, _ := p.ImportFact(fn).(*escapeFact); old == nil || !fact.equal(old) {
				p.ExportFact(fn, fact)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, fd := range decls {
		fa := analyze(fd)
		if fa == nil {
			continue
		}
		for _, ev := range fa.escapes {
			if ev.bits&taintSeed == 0 {
				continue
			}
			p.Reportf(ev.pos, "scratch-owned buffer %s, outliving its reset epoch", ev.desc)
		}
	}
}

// isScratchType reports whether t (or its pointee) is a named SearchScratch
// type declared in this module.
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SearchScratch" && obj.Pkg() != nil && hasPathPrefix(obj.Pkg().Path(), modulePath)
}
