package analysis

import (
	"strings"
	"testing"
)

// loadSuppressFixture type-checks a small in-tree fixture directory through
// the shared loader.
func loadSuppressFixture(t *testing.T, fixture, asPath string) *Package {
	t.Helper()
	pkg, err := sharedLoader.LoadDir("testdata/src/"+fixture, asPath)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	return pkg
}

// TestSuppressionHygiene: malformed directives — unknown names, missing or
// placeholder justifications, arguments on annlint:hotpath — are themselves
// diagnostics. (A want comment cannot share the directive's line, so this
// test checks parseSuppressions directly, in fixture order.)
func TestSuppressionHygiene(t *testing.T) {
	pkg := loadSuppressFixture(t, "suppress_bad", modulePath+"/internal/util/supfix")
	_, diags := parseSuppressions(pkg, byName(All()))
	wants := []string{
		"unknown annlint directive",
		"annlint:allow needs an analyzer name",
		`annlint:allow names unknown analyzer "nosuch"`,
		"annlint:allow mapiter needs a justification",
		`justification "todo" is empty or a placeholder`,
		"annlint:hotpath takes no arguments",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

// TestPlaceholderJustifications pins the placeholder filter directly: filler
// words and too-short strings are rejected, substantive reasons pass.
func TestPlaceholderJustifications(t *testing.T) {
	for _, j := range []string{"todo", "TODO", "fixme", "ok", "temporary", "needed", "because", "short"} {
		if !placeholderJustification(j) {
			t.Errorf("placeholderJustification(%q) = false, want true", j)
		}
	}
	for _, j := range []string{
		"cap-guarded growth; the buffer is reused at capacity afterwards",
		"error path only; the success path is allocation-free",
	} {
		if placeholderJustification(j) {
			t.Errorf("placeholderJustification(%q) = true, want false", j)
		}
	}
}

// TestListSuppressions: the audit list carries each directive's analyzer and
// justification in file/position order.
func TestListSuppressions(t *testing.T) {
	pkg := loadSuppressFixture(t, "suppress_audit", modulePath+"/internal/util/supaudit")
	got := ListSuppressions(pkg, All())
	if len(got) != 2 {
		t.Fatalf("ListSuppressions returned %d entries, want 2: %+v", len(got), got)
	}
	if got[0].Analyzer != "mapiter" || !strings.Contains(got[0].Justification, "order is restored") {
		t.Errorf("entry 0 = %+v, want the mapiter allow", got[0])
	}
	if got[1].Analyzer != "seededrand" || !strings.Contains(got[1].Justification, "jitter is outside") {
		t.Errorf("entry 1 = %+v, want the seededrand allow", got[1])
	}
	if got[0].Pos.Line >= got[1].Pos.Line {
		t.Errorf("entries not in position order: %d then %d", got[0].Pos.Line, got[1].Pos.Line)
	}
}
