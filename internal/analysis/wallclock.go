package analysis

import (
	"go/ast"
)

// simPurePkgs are the packages whose behavior must be a pure function of
// (dataset seed, config): everything they compute feeds virtual time,
// index structure, or persisted bytes. Wall-clock time in any of them
// silently decalibrates the simulation, so wallclock diagnostics there
// cannot even be suppressed.
var simPurePkgs = []string{
	modulePath + "/internal/sim",
	modulePath + "/internal/storage",
	modulePath + "/internal/index",
	modulePath + "/internal/vdb",
	modulePath + "/internal/vec",
	modulePath + "/internal/binenc",
}

// harnessPkgs are the measurement harness: wall-clock time is legitimate
// there for progress logging and host-side ETA, but only at sites that
// carry an explicit //annlint:allow wallclock directive, so every use is a
// recorded decision.
var harnessPkgs = []string{
	modulePath + "/internal/core",
	modulePath + "/cmd",
}

// wallclockFuncs are the package time functions that read or wait on the
// host clock. Formatting helpers (time.Duration.Round, time.Unix) and the
// duration constants are fine — they are pure.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids host-clock access in simulation-pure packages and
// requires an annotated opt-in for it in the measurement harness.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends in simulation-pure packages; " +
		"the harness may use them only at sites annotated //annlint:allow wallclock",
	Match: func(path string) bool {
		return anyPathPrefix(path, simPurePkgs...) || anyPathPrefix(path, harnessPkgs...)
	},
	NoSuppress: func(path string) bool {
		return anyPathPrefix(path, simPurePkgs...)
	},
	Run: runWallclock,
}

func runWallclock(pass *Pass) {
	simPure := anyPathPrefix(pass.Pkg.Path, simPurePkgs...)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.Pkg.Info, id, "time")
			if fn == nil || !wallclockFuncs[fn.Name()] {
				return true
			}
			if simPure {
				pass.Reportf(id.Pos(),
					"time.%s reads the host clock inside simulation-pure package %s; "+
						"derive timing from sim virtual time instead", fn.Name(), pass.Pkg.Path)
			} else {
				pass.Reportf(id.Pos(),
					"time.%s in the measurement harness needs an explicit opt-in: "+
						"annotate the line with //annlint:allow wallclock -- <why>", fn.Name())
			}
			return true
		})
	}
}
