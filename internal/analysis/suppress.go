package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The suppression directive grammar is
//
//	//annlint:allow <analyzer> -- <justification>
//
// written either as a trailing comment on the offending line or as a
// standalone comment on the line immediately above it. The justification is
// mandatory and must carry real content — empty, too-short, or
// placeholder-word justifications ("todo", "ok", ...) are themselves lint
// errors — so every opt-out is auditable in place (`annlint -suppressions`
// prints the audit). Directives for an analyzer whose NoSuppress covers the
// package (wallclock in simulation-pure code) are refused and reported
// rather than honored.
//
// The second directive,
//
//	//annlint:hotpath
//
// takes no arguments and is written in a function's doc comment: it marks
// the function as a hot-path root whose entire reachable call graph the
// hotalloc analyzer requires to be allocation-free.

const directivePrefix = "//annlint:"

// A directive is one parsed //annlint:allow comment.
type directive struct {
	name          string // analyzer being suppressed
	justification string
	pos           token.Position
}

// minJustification is the shortest trimmed justification accepted; anything
// shorter cannot plausibly explain an exemption.
const minJustification = 10

// placeholderJustifications are filler words that satisfy the grammar but
// record no reason. Compared case-insensitively against the whole trimmed
// justification.
var placeholderJustifications = map[string]bool{
	"todo": true, "tbd": true, "fixme": true, "xxx": true, "wip": true,
	"temp": true, "temporary": true, "placeholder": true, "because": true,
	"reasons": true, "n/a": true, "na": true, "none": true, "ok": true,
	"fine": true, "needed": true, "required": true, "legacy": true,
	"ignore": true, "skip": true, "allow": true, "suppress": true,
}

// placeholderJustification reports whether the trimmed justification is too
// short or a known filler word to count as a recorded reason.
func placeholderJustification(j string) bool {
	return len(j) < minJustification || placeholderJustifications[strings.ToLower(j)]
}

// suppressions indexes the well-formed directives of one package.
type suppressions struct {
	byFile map[string][]directive
}

// parseSuppressions scans every comment of the package and returns the
// directive index plus diagnostics for malformed directives. known maps the
// valid analyzer names.
func parseSuppressions(pkg *Package, known map[string]*Analyzer) (*suppressions, []Diagnostic) {
	sup := &suppressions{byFile: make(map[string][]directive)}
	var diags []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "annlint",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if strings.HasPrefix(rest, "hotpath") {
					if strings.TrimSpace(strings.TrimPrefix(rest, "hotpath")) != "" {
						bad(pos, "annlint:hotpath takes no arguments")
					}
					// Root marking is consumed by hotalloc's own doc-comment
					// scan; nothing to index here.
					continue
				}
				if !strings.HasPrefix(rest, "allow") {
					bad(pos, "unknown annlint directive %q (only annlint:allow and annlint:hotpath exist)", c.Text)
					continue
				}
				body := strings.TrimSpace(strings.TrimPrefix(rest, "allow"))
				name, justification, found := strings.Cut(body, "--")
				name = strings.TrimSpace(name)
				justification = strings.TrimSpace(justification)
				switch {
				case name == "":
					bad(pos, "annlint:allow needs an analyzer name: //annlint:allow <analyzer> -- <justification>")
					continue
				case known[name] == nil:
					bad(pos, "annlint:allow names unknown analyzer %q", name)
					continue
				case !found || justification == "":
					bad(pos, "annlint:allow %s needs a justification: //annlint:allow %s -- <why this site is exempt>", name, name)
					continue
				case placeholderJustification(justification):
					bad(pos, "annlint:allow %s justification %q is empty or a placeholder; record the actual reason this site is exempt", name, justification)
					continue
				}
				sup.byFile[pos.Filename] = append(sup.byFile[pos.Filename], directive{name: name, justification: justification, pos: pos})
			}
		}
	}
	return sup, diags
}

// allowed reports whether a diagnostic of analyzer name at pos is covered by
// a directive on the same line or the line immediately above.
func (s *suppressions) allowed(name string, pos token.Position) bool {
	for _, d := range s.byFile[pos.Filename] {
		if d.name == name && (d.pos.Line == pos.Line || d.pos.Line == pos.Line-1) {
			return true
		}
	}
	return false
}

// A Suppression is one active, well-formed //annlint:allow directive,
// surfaced for the `annlint -suppressions` audit listing.
type Suppression struct {
	Pos           token.Position
	Analyzer      string
	Justification string
}

// ListSuppressions returns every well-formed allow directive of pkg in
// file/position order. Malformed directives are excluded — they are lint
// errors, not suppressions.
func ListSuppressions(pkg *Package, analyzers []*Analyzer) []Suppression {
	sup, _ := parseSuppressions(pkg, byName(analyzers))
	files := make([]string, 0, len(sup.byFile))
	for f := range sup.byFile { //annlint:allow mapiter -- key order is restored by the sort below
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Suppression
	for _, f := range files {
		ds := append([]directive(nil), sup.byFile[f]...)
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].pos.Line != ds[j].pos.Line {
				return ds[i].pos.Line < ds[j].pos.Line
			}
			return ds[i].pos.Column < ds[j].pos.Column
		})
		for _, d := range ds {
			out = append(out, Suppression{Pos: d.pos, Analyzer: d.name, Justification: d.justification})
		}
	}
	return out
}

// refuse returns one diagnostic per directive naming the given analyzer:
// used when the package is outside the analyzer's suppressible scope.
func (s *suppressions) refuse(name, pkgPath string) []Diagnostic {
	var diags []Diagnostic
	files := make([]string, 0, len(s.byFile))
	for f := range s.byFile { //annlint:allow mapiter -- key order is restored by the sort below
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range s.byFile[f] {
			if d.name != name {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "annlint",
				Pos:      d.pos,
				Message: fmt.Sprintf("//annlint:allow %s is refused in simulation-pure package %s; remove the call instead of suppressing it",
					name, pkgPath),
			})
		}
	}
	return diags
}
