package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The suppression directive grammar is
//
//	//annlint:allow <analyzer> -- <justification>
//
// written either as a trailing comment on the offending line or as a
// standalone comment on the line immediately above it. The justification is
// mandatory: an allow without a recorded reason is itself a lint error, so
// every opt-out is auditable in place. Directives for an analyzer whose
// NoSuppress covers the package (wallclock in simulation-pure code) are
// refused and reported rather than honored.

const directivePrefix = "//annlint:"

// A directive is one parsed //annlint:allow comment.
type directive struct {
	name string // analyzer being suppressed
	pos  token.Position
}

// suppressions indexes the well-formed directives of one package.
type suppressions struct {
	byFile map[string][]directive
}

// parseSuppressions scans every comment of the package and returns the
// directive index plus diagnostics for malformed directives. known maps the
// valid analyzer names.
func parseSuppressions(pkg *Package, known map[string]*Analyzer) (*suppressions, []Diagnostic) {
	sup := &suppressions{byFile: make(map[string][]directive)}
	var diags []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "annlint",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if !strings.HasPrefix(rest, "allow") {
					bad(pos, "unknown annlint directive %q (only annlint:allow exists)", c.Text)
					continue
				}
				body := strings.TrimSpace(strings.TrimPrefix(rest, "allow"))
				name, justification, found := strings.Cut(body, "--")
				name = strings.TrimSpace(name)
				justification = strings.TrimSpace(justification)
				switch {
				case name == "":
					bad(pos, "annlint:allow needs an analyzer name: //annlint:allow <analyzer> -- <justification>")
					continue
				case known[name] == nil:
					bad(pos, "annlint:allow names unknown analyzer %q", name)
					continue
				case !found || justification == "":
					bad(pos, "annlint:allow %s needs a justification: //annlint:allow %s -- <why this site is exempt>", name, name)
					continue
				}
				sup.byFile[pos.Filename] = append(sup.byFile[pos.Filename], directive{name: name, pos: pos})
			}
		}
	}
	return sup, diags
}

// allowed reports whether a diagnostic of analyzer name at pos is covered by
// a directive on the same line or the line immediately above.
func (s *suppressions) allowed(name string, pos token.Position) bool {
	for _, d := range s.byFile[pos.Filename] {
		if d.name == name && (d.pos.Line == pos.Line || d.pos.Line == pos.Line-1) {
			return true
		}
	}
	return false
}

// refuse returns one diagnostic per directive naming the given analyzer:
// used when the package is outside the analyzer's suppressible scope.
func (s *suppressions) refuse(name, pkgPath string) []Diagnostic {
	var diags []Diagnostic
	files := make([]string, 0, len(s.byFile))
	for f := range s.byFile { //annlint:allow mapiter -- key order is restored by the sort below
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range s.byFile[f] {
			if d.name != name {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "annlint",
				Pos:      d.pos,
				Message: fmt.Sprintf("//annlint:allow %s is refused in simulation-pure package %s; remove the call instead of suppressing it",
					name, pkgPath),
			})
		}
	}
	return diags
}
