package analysis

// hotalloc statically enforces the PR 7 zero-alloc contract: no heap
// allocation may be reachable from a function whose doc comment carries
// //annlint:hotpath. The AllocsPerRun tests prove specific configurations
// allocation-free at runtime; hotalloc proves the property over the whole
// static call graph, across packages, on every `make check`.
//
// Alloc sites recognised: make, new, address-taken and slice/map composite
// literals, the first append to a nil-origin slice, goroutine spawns,
// capturing closures that escape their statement, and interface conversions
// of non-pointer-shaped concrete values. Amortised idioms are deliberately
// not sites: appending to a parameter, receiver field, or scratch-derived
// buffer reuses caller-provided capacity. Calls into other svdbench
// packages resolve through the callee's exported summary; calls into the
// standard library are assumed allocation-free unless listed in
// allocatingStdlib; dynamic (interface) calls are left to the runtime
// tests. Arguments of panic are exempt — the crash path may allocate.
//
// A site annotated //annlint:allow hotalloc is excluded from the
// function's summary too, so a justified amortised growth path (a
// cap-guarded make) does not re-surface at every caller.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Hotalloc reports heap allocations reachable from //annlint:hotpath roots.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no heap allocation reachable from //annlint:hotpath functions (the zero-alloc search contract)",
	Match: func(pkgPath string) bool {
		return anyPathPrefix(pkgPath,
			modulePath+"/internal/index",
			modulePath+"/internal/vec",
			modulePath+"/internal/storage")
	},
	FactBased: true,
	Run:       runHotalloc,
}

// allocFact is the exported summary: whether calling the function can heap-
// allocate, and the first piece of evidence when it can.
type allocFact struct {
	allocFree bool
	why       string
}

// allocatingStdlib lists standard-library functions that always allocate.
// Everything else outside the module is assumed allocation-free: the list
// sharpens diagnostics for the formatting/conversion helpers that actually
// show up in this codebase; the AllocsPerRun tests backstop the rest.
var allocatingStdlib = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "fmt.Appendf": true,
	"errors.New": true, "errors.Join": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Split": true,
	"strings.Fields": true, "strings.ToLower": true, "strings.ToUpper": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Strings": true, "sort.Ints": true,
	"bytes.Join": true,
}

type allocSite struct {
	pos  token.Pos
	what string
}

type callEdge struct {
	pos token.Pos
	fn  *types.Func
}

type funcAlloc struct {
	decl  *ast.FuncDecl
	fn    *types.Func
	sites []allocSite
	edges []callEdge
	root  bool

	state int // 0 unresolved, 1 resolving, 2 done
	fact  allocFact
}

func runHotalloc(p *Pass) {
	var fns []*funcAlloc
	byObj := make(map[types.Object]*funcAlloc)
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fa := &funcAlloc{decl: fd, fn: fn, root: isHotpathRoot(fd)}
			if fd.Body != nil {
				collectAllocs(p, fd.Body, fa)
			}
			fns = append(fns, fa)
			byObj[fn] = fa
		}
	}

	// calleeFact resolves one call edge to the callee's summary, or nil
	// when the callee is (assumed) allocation-free.
	var resolve func(fa *funcAlloc) allocFact
	calleeFact := func(fn *types.Func) *allocFact {
		if local := byObj[fn]; local != nil {
			if f := resolve(local); !f.allocFree {
				return &f
			}
			return nil
		}
		if fn.Pkg() != nil && hasPathPrefix(fn.Pkg().Path(), modulePath) {
			if f, ok := p.ImportFact(fn).(*allocFact); ok && !f.allocFree {
				return f
			}
			return nil
		}
		if allocatingStdlib[stdlibKey(fn)] {
			return &allocFact{why: "standard-library allocator"}
		}
		return nil
	}
	resolve = func(fa *funcAlloc) allocFact {
		switch fa.state {
		case 2:
			return fa.fact
		case 1:
			return allocFact{allocFree: true} // recursion: sites are attributed where they occur
		}
		fa.state = 1
		fact := allocFact{allocFree: true}
		if len(fa.sites) > 0 {
			s := fa.sites[0]
			fact = allocFact{why: fmt.Sprintf("%s at %s", s.what, shortPos(p, s.pos))}
		} else {
			for _, e := range fa.edges {
				if cf := calleeFact(e.fn); cf != nil {
					fact = allocFact{why: "calls " + e.fn.FullName() + ": " + cf.why}
					break
				}
			}
		}
		fa.state = 2
		fa.fact = fact
		p.ExportFact(fa.fn, &fact)
		return fact
	}
	for _, fa := range fns {
		resolve(fa)
	}

	// Report every site and allocating external edge reachable from a
	// hotpath root, once, attributed to the first root that reaches it.
	reported := make(map[token.Pos]bool)
	var visitHot func(fa *funcAlloc, root string, visited map[*funcAlloc]bool)
	visitHot = func(fa *funcAlloc, root string, visited map[*funcAlloc]bool) {
		if visited[fa] {
			return
		}
		visited[fa] = true
		for _, s := range fa.sites {
			if reported[s.pos] {
				continue
			}
			reported[s.pos] = true
			p.Reportf(s.pos, "%s on the hot path (reachable from //annlint:hotpath %s)", s.what, root)
		}
		for _, e := range fa.edges {
			if local := byObj[e.fn]; local != nil {
				visitHot(local, root, visited)
				continue
			}
			if cf := calleeFact(e.fn); cf != nil && !reported[e.pos] {
				reported[e.pos] = true
				p.Reportf(e.pos, "call to %s allocates (%s) on the hot path (reachable from //annlint:hotpath %s)",
					e.fn.FullName(), cf.why, root)
			}
		}
	}
	for _, fa := range fns {
		if fa.root {
			visitHot(fa, fa.fn.Name(), make(map[*funcAlloc]bool))
		}
	}
}

// isHotpathRoot reports whether the declaration's doc comment marks it as a
// zero-alloc root.
func isHotpathRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//annlint:hotpath" {
			return true
		}
	}
	return false
}

// collectAllocs records the unsuppressed alloc sites and static call edges
// of one function body.
func collectAllocs(p *Pass, body *ast.BlockStmt, fa *funcAlloc) {
	info := p.Pkg.Info

	// Closures that stay within their statement — immediately invoked,
	// passed to a call, deferred, spawned (the go is its own site), or
	// bound to a local variable — do not force their captures to the heap
	// in a way this linter polices.
	safeLit := make(map[*ast.FuncLit]bool)
	markSafe := func(e ast.Expr) {
		if fl, ok := unparen(e).(*ast.FuncLit); ok {
			safeLit[fl] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			markSafe(n.Fun)
			for _, a := range n.Args {
				markSafe(a)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					if _, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						markSafe(n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				markSafe(v)
			}
		}
		return true
	})

	site := func(pos token.Pos, what string) {
		if p.Suppressed(pos) {
			return
		}
		fa.sites = append(fa.sites, allocSite{pos: pos, what: "heap allocation (" + what + ")"})
	}

	nilSlice := make(map[types.Object]bool)
	markNil := func(id *ast.Ident, isNil bool) {
		if obj := info.ObjectOf(id); obj != nil {
			if isNil {
				nilSlice[obj] = true
			} else {
				delete(nilSlice, obj)
			}
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if b := builtinOf(info, n); b != nil {
				switch b.Name() {
				case "panic":
					return false // crash path: arguments exempt
				case "make":
					site(n.Pos(), "make")
				case "new":
					site(n.Pos(), "new")
				case "append":
					if id, ok := unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && nilSlice[obj] {
							site(n.Pos(), "append to a nil-origin slice")
						}
					}
				}
				return true
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				boxCheck(p, info, n.Args[0], info.TypeOf(n.Fun), site)
				return true
			}
			if fn := staticCallee(info, n); fn != nil {
				if !p.Suppressed(n.Pos()) {
					fa.edges = append(fa.edges, callEdge{pos: n.Pos(), fn: fn})
				}
			}
			boxCheckCall(p, info, n, site)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					site(n.Pos(), "composite literal")
					// visit the literal's element expressions but not the
					// literal itself (already accounted for)
					for _, el := range n.X.(*ast.CompositeLit).Elts {
						ast.Inspect(el, walk)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			switch typeUnder(info.TypeOf(n)).(type) {
			case *types.Slice:
				if len(n.Elts) > 0 {
					site(n.Pos(), "composite literal")
				}
			case *types.Map:
				site(n.Pos(), "composite literal")
			}
		case *ast.GoStmt:
			site(n.Pos(), "goroutine spawn")
		case *ast.FuncLit:
			if !safeLit[n] && capturesOuter(info, n) {
				site(n.Pos(), "escaping closure")
			}
		case *ast.AssignStmt:
			trackNilSlices(info, n, nilSlice, markNil, func(pos token.Pos) {
				site(pos, "append to a nil-origin slice")
			})
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					if obj := info.Defs[name]; obj != nil {
						if _, ok := typeUnder(obj.Type()).(*types.Slice); ok {
							nilSlice[obj] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			boxCheckReturn(p, info, fa.decl.Type, n, site)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// trackNilSlices follows nil-origin slices through assignments: the first
// append to one is an allocation with no other visible site.
func trackNilSlices(info *types.Info, n *ast.AssignStmt, nilSlice map[types.Object]bool, markNil func(*ast.Ident, bool), flag func(token.Pos)) {
	if len(n.Lhs) != len(n.Rhs) {
		for _, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				markNil(id, false)
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		rhs := unparen(n.Rhs[i])
		switch r := rhs.(type) {
		case *ast.Ident:
			markNil(id, r.Name == "nil")
		case *ast.CompositeLit:
			_, isSlice := typeUnder(info.TypeOf(r)).(*types.Slice)
			markNil(id, isSlice && len(r.Elts) == 0)
		case *ast.CallExpr:
			if b := builtinOf(info, r); b != nil && b.Name() == "append" && len(r.Args) > 0 {
				if aid, ok := unparen(r.Args[0]).(*ast.Ident); ok {
					if obj := info.ObjectOf(aid); obj != nil && nilSlice[obj] {
						flag(n.Pos())
					}
				}
			}
			markNil(id, false)
		default:
			markNil(id, false)
		}
	}
}

// boxCheckCall flags non-pointer-shaped concrete arguments converted to
// interface parameters: each such conversion heap-allocates the boxed copy.
func boxCheckCall(p *Pass, info *types.Info, call *ast.CallExpr, site func(token.Pos, string)) {
	sig, ok := typeUnder(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(sig.Params().Len() - 1).Type()
			} else if last := sig.Params().At(sig.Params().Len() - 1); last != nil {
				if sl, ok := last.Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			boxCheck(p, info, arg, pt, site)
		}
	}
}

// boxCheckReturn flags concrete values returned through interface-typed
// results of the enclosing declaration.
func boxCheckReturn(p *Pass, info *types.Info, ft *ast.FuncType, ret *ast.ReturnStmt, site func(token.Pos, string)) {
	if ft.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, field := range ft.Results.List {
		t := info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // single call expanding to multiple results
	}
	for i, res := range ret.Results {
		boxCheck(p, info, res, resTypes[i], site)
	}
}

// boxCheck flags expr when assigning it to target requires boxing a
// non-pointer-shaped concrete value into an interface.
func boxCheck(p *Pass, info *types.Info, expr ast.Expr, target types.Type, site func(token.Pos, string)) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() { // constants and nil are interned
		return
	}
	at := tv.Type
	if at == nil || types.IsInterface(at) || pointerShaped(at) {
		return
	}
	site(expr.Pos(), "interface conversion")
}

// pointerShaped reports whether values of t fit the interface data word
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// capturesOuter reports whether the literal references a variable declared
// outside itself (excluding package-level variables, which need no closure
// context).
func capturesOuter(info *types.Info, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.ObjectOf(id).(*types.Var); ok {
			if v.Pos() < fl.Pos() && !isPackageLevel(v) && !v.IsField() {
				found = true
			}
		}
		return true
	})
	return found
}

func builtinOf(info *types.Info, call *ast.CallExpr) *types.Builtin {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b
		}
	}
	return nil
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func stdlibKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func shortPos(p *Pass, pos token.Pos) string {
	position := p.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}
