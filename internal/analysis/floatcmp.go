package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != between computed floating-point values in the
// distance/score kernels (internal/index, internal/vec): two
// mathematically equal distances routinely differ in the last ulp once FMA
// contraction or summation order changes, so exact comparison makes recall
// and tie-breaking silently platform-dependent. Exempt are comparisons
// where either side is a compile-time constant (`d == 0` guards) and
// comparisons where both sides are plain stored values (tie-breaks like
// `all[j].d == all[min].d`, which compare exact bit patterns on purpose).
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between computed float32/float64 distance or score " +
		"expressions; compare stored values or use an epsilon",
	Match: func(path string) bool {
		return hasPathPrefix(path, modulePath+"/internal/index") ||
			path == modulePath+"/internal/vec"
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(info.TypeOf(cmp.X)) || !isFloat(info.TypeOf(cmp.Y)) {
				return true
			}
			if isConstExpr(info, cmp.X) || isConstExpr(info, cmp.Y) {
				return true
			}
			if isStoredValue(cmp.X) && isStoredValue(cmp.Y) {
				return true
			}
			pass.Reportf(cmp.Pos(),
				"computed floating-point values compared with %s; results differ in the last ulp across "+
					"summation orders — compare exact stored values or use an epsilon", cmp.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isStoredValue reports whether e is a plain reference to stored data — an
// identifier, field selection, or index chain with no calls, arithmetic,
// or conversions anywhere inside.
func isStoredValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isStoredValue(v.X)
	case *ast.IndexExpr:
		return isStoredValue(v.X) && isStoredIndex(v.Index)
	case *ast.ParenExpr:
		return isStoredValue(v.X)
	case *ast.StarExpr:
		return isStoredValue(v.X)
	default:
		return false
	}
}

// isStoredIndex accepts the simple subscripts seen in tie-break code:
// identifiers, stored values, and integer literals.
func isStoredIndex(e ast.Expr) bool {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Kind == token.INT
	}
	return isStoredValue(e)
}
