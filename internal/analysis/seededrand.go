package analysis

import (
	"go/ast"
)

// seededRandAllowed are the math/rand package-level names that do not touch
// the global (unseeded or process-wide) source: constructors for explicit
// sources and generators. Everything else at package level — rand.Intn,
// rand.Float64, rand.Shuffle, rand.Seed, ... — draws from shared state and
// breaks (seed, config) reproducibility.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SeededRand forbids the top-level math/rand convenience functions
// everywhere in the module: randomness must flow through a *rand.Rand
// constructed from a config seed, as hnsw/pq/kmeans/diskann already do.
// Methods on *rand.Rand are fine — the seed is explicit at construction.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions (rand.Intn, rand.Float64, rand.Shuffle, ...); " +
		"randomness must come from a *rand.Rand seeded by config",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				fn := pkgFunc(pass.Pkg.Info, id, randPkg)
				if fn == nil || seededRandAllowed[fn.Name()] {
					continue
				}
				pass.Reportf(id.Pos(),
					"rand.%s draws from the global math/rand source, which is not derived from the "+
						"config seed; construct a *rand.Rand with rand.New(rand.NewSource(seed)) and use its methods",
					fn.Name())
			}
			return true
		})
	}
}
