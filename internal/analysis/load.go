package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string   // import path ("svdbench/internal/sim")
	Name    string   // package name ("sim")
	Dir     string   // source directory
	Imports []string // direct imports, for dependency ordering
	// FactsOnly marks a module package loaded only because a requested
	// package depends on it: fact-based analyzers summarise it so
	// cross-package diagnostics in the requested packages stay precise,
	// but no diagnostics are reported for the package itself.
	FactsOnly bool
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, with comments
	Types     *types.Package
	Info      *types.Info
}

// A Loader type-checks module packages from source while resolving their
// imports through compiler export data. The export data comes from
// `go list -export`, which compiles (or reuses from the build cache) every
// dependency — the same strategy x/tools/go/packages uses, reimplemented on
// the stdlib because this environment has no module proxy to fetch x/tools
// from. Loading the whole module costs roughly one cached `go build`.
type Loader struct {
	// Dir is the working directory for go list; any directory inside the
	// module works. Empty means the current directory.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer    // shared gc importer (caches loaded packages)
	// locals are packages this loader already type-checked from source,
	// preferred over export data when a later package imports them. Facts
	// are attached to source-checked functions, so whole-module runs must
	// resolve module imports to the same source-checked packages the facts
	// were computed from; go list -deps emits dependencies first, which
	// guarantees a local entry exists by the time an importer needs it.
	locals map[string]*types.Package
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		locals:  make(map[string]*types.Package),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and returns the matched packages
// type-checked from source, in go list order. Module packages that were
// listed only as dependencies of the patterns are also type-checked — marked
// FactsOnly — so fact-based analyzers can summarise them; `go list -deps`
// emits dependencies before dependents, which keeps the source-first
// importer consistent (a module import always resolves to the already
// source-checked package, never to stale export data).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.DepOnly && !hasPathPrefix(lp.ImportPath, modulePath) {
			continue
		}
		pkg, err := l.check(lp.ImportPath, lp.Name, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = lp.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks the .go files of one directory outside the go list
// package graph — the analysistest fixtures under testdata/, which the go
// tool ignores. asPath becomes the package path. Imports are resolved by
// listing them from the module root, so fixtures may import both the
// standard library and svdbench packages.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loaddir %s: no .go files", dir)
	}
	// Parse first so the fixture's imports are known, then make sure
	// export data exists for each of them before type-checking.
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" {
				continue
			}
			if _, ok := l.exports[path]; ok {
				continue
			}
			// A previously loaded fixture satisfies the import from
			// source; go list would fail on its synthetic path.
			if _, ok := l.locals[path]; ok {
				continue
			}
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		if _, err := l.goList(missing); err != nil {
			return nil, err
		}
	}
	name := files[0].Name.Name
	return l.checkParsed(asPath, name, dir, files)
}

// goList runs `go list -export -json -deps` over patterns, records every
// package's export data file, and returns the listed packages.
func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list -json: %w (stderr: %s)", err, stderr.String())
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range listed {
		if lp.Incomplete || lp.Error != nil {
			msg := "unknown error"
			if lp.Error != nil {
				msg = lp.Error.Err
			}
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, msg)
		}
	}
	return listed, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path, name, dir string, goFiles []string) (*Package, error) {
	files, err := l.parse(dir, goFiles)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(path, name, dir, files)
}

func (l *Loader) checkParsed(path, name, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: sourceFirstImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.locals[path] = tpkg
	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)
	return &Package{
		Path:    path,
		Name:    name,
		Dir:     dir,
		Imports: imports,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// sourceFirstImporter resolves imports to packages this loader already
// type-checked from source, falling back to compiler export data. Facts are
// keyed by qualified name rather than object identity, so the fallback is
// sound even when a fixture sees the export-data view of a module package;
// source-first simply keeps the common whole-module run on one consistent
// set of type objects.
type sourceFirstImporter struct{ l *Loader }

func (s sourceFirstImporter) Import(path string) (*types.Package, error) {
	if tp, ok := s.l.locals[path]; ok {
		return tp, nil
	}
	return s.l.exportImporter().Import(path)
}

// exportImporter returns the shared types.Importer reading the export data
// files recorded by goList. The gc importer handles "unsafe" itself and
// caches packages it has already read, so it must be shared across Check
// calls for type identity and speed.
func (l *Loader) exportImporter() types.Importer {
	if l.imp == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q (not reachable from the loaded patterns)", path)
			}
			return os.Open(file)
		}
		l.imp = importer.ForCompiler(l.fset, "gc", lookup)
	}
	return l.imp
}
