package analysis

import (
	"go/ast"
	"go/types"
)

// CtxProp flags context.Background() and context.TODO() inside internal/core
// functions that already receive a ctx parameter: minting a fresh root
// context there detaches the work from the caller's cancellation, so a
// SIGINT would no longer stop the in-flight experiment cells. The
// context-free backward-compat wrappers (Dataset, Stack, Run) take no ctx
// parameter, so they are naturally exempt.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "flag context.Background()/context.TODO() in functions that already " +
		"receive a context.Context; propagate the parameter instead",
	Match: func(path string) bool {
		return path == modulePath+"/internal/core"
	},
	Run: runCtxProp,
}

func runCtxProp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// ctxDepth counts enclosing functions with a ctx parameter; a
		// closure inside a ctx-taking function still has ctx in scope.
		var walk func(n ast.Node, ctxDepth int)
		walk = func(n ast.Node, ctxDepth int) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch node := m.(type) {
				case *ast.FuncLit:
					walk(node.Body, ctxDepth+hasCtxParam(info, node.Type))
					return false
				case *ast.CallExpr:
					if ctxDepth == 0 {
						return true
					}
					fn := pkgFunc(info, node.Fun, "context")
					if fn == nil {
						return true
					}
					if name := fn.Name(); name == "Background" || name == "TODO" {
						pass.Reportf(node.Pos(),
							"context.%s discards the ctx this function already receives, detaching it "+
								"from cancellation; propagate the parameter", name)
					}
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(fd.Body, hasCtxParam(info, fd.Type))
			}
		}
	}
}

// hasCtxParam reports (as 0/1) whether ft has a context.Context parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) int {
	if ft.Params == nil {
		return 0
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return 1
			}
		}
	}
	return 0
}
