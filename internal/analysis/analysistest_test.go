package analysis

// A minimal analysistest: fixtures live under testdata/src/<name>/ and mark
// each expected diagnostic with a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// on the offending line. runFixture loads the fixture as the given package
// path (so package-scoped analyzers see a realistic import path), runs one
// analyzer through the full suppression pipeline, and requires an exact
// match between produced diagnostics and want expectations.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sharedLoader caches one Loader per test binary: the fixtures share the
// fileset and the go list export-data index, so each extra fixture costs
// only its own parse and type-check. Tests using it must not run parallel.
var sharedLoader = NewLoader("")

func runFixture(t *testing.T, a *Analyzer, fixture, asPath string) {
	t.Helper()
	runFixtureChain(t, a, []fixtureSpec{{fixture, asPath}})
}

// fixtureSpec names one fixture directory and the package path it is loaded
// as.
type fixtureSpec struct {
	fixture string
	asPath  string
}

// runFixtureChain loads a dependency-ordered chain of fixtures (earlier
// entries may be imported by later ones via their asPath) and runs the
// analyzer over all of them with a shared fact store, checking want
// expectations across every package.
func runFixtureChain(t *testing.T, a *Analyzer, specs []fixtureSpec) {
	t.Helper()
	pkgs := make([]*Package, len(specs))
	asPaths := make([]string, len(specs))
	for i, s := range specs {
		pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", s.fixture), s.asPath)
		if err != nil {
			t.Fatalf("load fixture %s: %v", s.fixture, err)
		}
		pkgs[i] = pkg
		asPaths[i] = s.asPath
	}
	got := RunForTestPackages(pkgs, a, asPaths)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for i, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, expr := range parseWantPatterns(t, specs[i].fixture, pos.Line, c.Text[idx+len("// want "):]) {
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", specs[i].fixture, pos.Line, expr, err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range got {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
		}
	}
}

// parseWantPatterns splits the payload of a want comment into its quoted
// regexps.
func parseWantPatterns(t *testing.T, fixture string, line int, payload string) []string {
	t.Helper()
	var out []string
	rest := strings.TrimSpace(payload)
	for rest != "" {
		if rest[0] != '"' {
			t.Fatalf("%s:%d: want payload must be quoted regexps, got %q", fixture, line, rest)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '"' && rest[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern in %q", fixture, line, rest)
		}
		expr, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", fixture, line, rest[:end+1], err)
		}
		out = append(out, expr)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}
