package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotallocGuardsScratchContract proves the analyzer guards the
// zero-alloc search contract on the real tree, not just on fixtures: a
// verbatim copy of internal/index/flat lints clean, and stripping its
// hotalloc allow annotations — the static-analysis equivalent of
// re-introducing a per-query allocation where the scratch is reused today —
// produces hot-path diagnostics.
func TestHotallocGuardsScratchContract(t *testing.T) {
	asPath := modulePath + "/internal/index/flat"

	load := func(t *testing.T, strip bool) *Package {
		t.Helper()
		src := filepath.Join("..", "index", "flat")
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if strip {
				lines := strings.Split(string(data), "\n")
				for i, line := range lines {
					if idx := strings.Index(line, "//annlint:allow hotalloc"); idx >= 0 {
						lines[i] = strings.TrimRight(line[:idx], " \t")
					}
				}
				data = []byte(strings.Join(lines, "\n"))
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// A fresh loader so the copy does not shadow the real package in the
		// shared loader's source registry.
		pkg, err := NewLoader("").LoadDir(dir, asPath)
		if err != nil {
			t.Fatalf("load copied flat: %v", err)
		}
		return pkg
	}

	if diags := RunForTest(load(t, false), Hotalloc, asPath); len(diags) != 0 {
		t.Fatalf("verbatim copy of internal/index/flat is not clean:\n%v", diags)
	}

	diags := RunForTest(load(t, true), Hotalloc, asPath)
	if len(diags) == 0 {
		t.Fatal("stripping the hotalloc annotations produced no diagnostics; the analyzer does not guard the scratch contract")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "on the hot path") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestHotallocGuardsPageSearchContract extends the real-tree guard to the
// page-node layout: a verbatim copy of internal/index/diskann lints clean,
// and stripping only page.go's allow annotations (the lazy layout
// materialisation and the cap-guarded scratch growth on the page search
// path) fires hot-path diagnostics — so the page search's zero-alloc
// contract cannot be silently weakened.
func TestHotallocGuardsPageSearchContract(t *testing.T) {
	asPath := modulePath + "/internal/index/diskann"

	load := func(t *testing.T, strip bool) *Package {
		t.Helper()
		src := filepath.Join("..", "index", "diskann")
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if strip && name == "page.go" {
				lines := strings.Split(string(data), "\n")
				for i, line := range lines {
					if idx := strings.Index(line, "//annlint:allow hotalloc"); idx >= 0 {
						lines[i] = strings.TrimRight(line[:idx], " \t")
					}
				}
				data = []byte(strings.Join(lines, "\n"))
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		pkg, err := NewLoader("").LoadDir(dir, asPath)
		if err != nil {
			t.Fatalf("load copied diskann: %v", err)
		}
		return pkg
	}

	if diags := RunForTest(load(t, false), Hotalloc, asPath); len(diags) != 0 {
		t.Fatalf("verbatim copy of internal/index/diskann is not clean:\n%v", diags)
	}

	diags := RunForTest(load(t, true), Hotalloc, asPath)
	if len(diags) == 0 {
		t.Fatal("stripping page.go's hotalloc annotations produced no diagnostics; the analyzer does not guard the page search contract")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "on the hot path") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
