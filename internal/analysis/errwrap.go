package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// classifiedPkgs are the packages whose errors reach annbench's exit-code
// classification (0 ok / 1 internal / 2 usage). A root error minted there
// with bad-parameter phrasing but no sentinel in its chain makes annbench
// report a typo as a harness bug.
var classifiedPkgs = []string{
	modulePath + "/internal/core",
	modulePath + "/internal/vdb",
	modulePath + "/cmd/annbench",
}

// badParamRe matches message phrasing that announces a caller mistake.
var badParamRe = regexp.MustCompile(`(?i)\b(unknown|invalid|unsupported|malformed|bad|want|must|missing|required|negative|non-positive|out of range)\b`)

// ErrWrap enforces the error-hygiene rules that keep sentinel chains
// intact:
//
//  1. An error value passed to fmt.Errorf must be formatted with %w, not
//     %v/%s — otherwise errors.Is can no longer see the sentinel.
//  2. Comparing an error to a sentinel with == or != should be errors.Is,
//     which unwraps.
//  3. In the packages feeding annbench's exit-code classification, a
//     fmt.Errorf whose message announces a bad parameter (unknown/invalid/
//     want/...) but wraps nothing creates an unclassifiable root error;
//     wrap vdb.ErrBadParams or a more specific sentinel.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "require %w for wrapped errors and errors.Is for sentinel comparisons, " +
		"and flag bad-parameter root errors that bypass the exit-code sentinels",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) {
	info := pass.Pkg.Info
	classified := anyPathPrefix(pass.Pkg.Path, classifiedPkgs...)
	for _, file := range pass.Pkg.Files {
		// Rules 1 and 3 need the enclosing function's signature; visit
		// each function body separately, skipping nested literals (they
		// are visited on their own).
		enclosingFuncs(file, func(ft *ast.FuncType, body *ast.BlockStmt) {
			returnsErr := funcReturnsError(info, ft)
			ast.Inspect(body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					checkErrorf(pass, call, classified && returnsErr)
				}
				return true
			})
		})
		// Rule 2 is position-independent.
		ast.Inspect(file, func(n ast.Node) bool {
			if cmp, ok := n.(*ast.BinaryExpr); ok {
				checkSentinelCompare(pass, cmp)
			}
			return true
		})
	}
}

// checkErrorf applies rules 1 and 3 to one call, if it is fmt.Errorf with a
// constant format string.
func checkErrorf(pass *Pass, call *ast.CallExpr, classifyRoots bool) {
	info := pass.Pkg.Info
	fn := pkgFunc(info, call.Fun, "fmt")
	if fn == nil || fn.Name() != "Errorf" || len(call.Args) == 0 {
		return
	}
	format, ok := constantString(info, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes; too rare to model
	}
	args := call.Args[1:]
	wrapped := false
	for i, v := range verbs {
		if i >= len(args) {
			break // malformed call; go vet's printf check owns that
		}
		if v == 'w' {
			wrapped = true
			continue
		}
		if v == '*' || v == 'T' || v == 'p' {
			// %T/%p format the type or pointer of an error on purpose;
			// wrapping is not what those sites mean.
			continue
		}
		if isErrorType(info.TypeOf(args[i])) {
			pass.Reportf(args[i].Pos(),
				"error value formatted with %%%c loses its sentinel chain; use %%w so errors.Is keeps working", v)
		}
	}
	if classifyRoots && !wrapped && badParamRe.MatchString(format) {
		pass.Reportf(call.Pos(),
			"bad-parameter message creates a root error that annbench classifies as an internal failure "+
				"(exit 1, not 2); wrap a sentinel with %%w (e.g. fmt.Errorf(\"%%w: ...\", vdb.ErrBadParams)) "+
				"or annotate with //annlint:allow errwrap -- <why>")
	}
}

// checkSentinelCompare applies rule 2: err ==/!= ErrSomething.
func checkSentinelCompare(pass *Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
		errSide, sentinelSide := pair[0], pair[1]
		if !isErrorType(info.TypeOf(errSide)) {
			continue
		}
		if name, ok := sentinelVar(info, sentinelSide); ok {
			pass.Reportf(cmp.Pos(),
				"comparing an error to sentinel %s with %s misses wrapped chains; use errors.Is", name, cmp.Op)
			return
		}
	}
}

// sentinelVar reports whether expr names a package-level error variable
// following the ErrXxx convention.
func sentinelVar(info *types.Info, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	name := v.Name()
	if len(name) < 4 || !strings.HasPrefix(name, "Err") || name[3] < 'A' || name[3] > 'Z' {
		return "", false
	}
	return name, isErrorType(v.Type())
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil || t == types.Typ[types.UntypedNil] {
		return false
	}
	return types.Implements(t, errIface)
}

// funcReturnsError reports whether ft's results include an error.
func funcReturnsError(info *types.Info, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if isErrorType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// constantString evaluates expr to a compile-time string, if it is one.
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the arg-consuming conversions of a printf format in
// order: one rune per consumed argument, '*' for dynamic width/precision
// arguments. ok is false for formats with explicit argument indexes.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	spec:
		for i < len(format) {
			switch c := format[i]; {
			case c == '%':
				break spec
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '.' || (c >= '0' && c <= '9'):
				i++
			case c == '*':
				verbs = append(verbs, '*')
				i++
			case c == '[':
				return nil, false
			default:
				verbs = append(verbs, rune(c))
				break spec
			}
		}
	}
	return verbs, true
}
