// Fixture: heap allocations reachable from //annlint:hotpath roots, both
// directly and through intra-package call edges.
package hotalloc_bad

// helper allocates; Search reaches the site through its call edge, so the
// diagnostic anchors here, at the allocation itself.
func helper(n int) []int {
	return make([]int, n) // want "heap allocation \\(make\\) on the hot path \\(reachable from //annlint:hotpath Search\\)"
}

//annlint:hotpath
func Search(q []float32, k int) []int {
	buf := make([]int, k) // want "heap allocation \\(make\\) on the hot path"
	_ = buf
	return helper(k)
}

//annlint:hotpath
func Box(v int) any {
	return v // want "heap allocation \\(interface conversion\\) on the hot path"
}

//annlint:hotpath
func Launch(f func()) {
	go f() // want "heap allocation \\(goroutine spawn\\) on the hot path"
}

// notHot allocates but is unreachable from any hotpath root: no diagnostic.
func notHot() []int {
	return make([]int, 8)
}
