// Fixture: error-hygiene violations, loaded as a path under
// svdbench/internal/core so the exit-code classification rule applies.
package errwrap_bad

import (
	"errors"
	"fmt"
)

var ErrBadInput = errors.New("bad input")

// An error formatted with %v loses the sentinel chain.
func Wrapv(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want "error value formatted with %v loses its sentinel chain"
}

func Wraps(err error) error {
	return fmt.Errorf("stage failed: %s", err) // want "error value formatted with %s loses its sentinel chain"
}

// Comparing to a sentinel with == misses wrapped chains.
func IsBad(err error) bool {
	return err == ErrBadInput // want "use errors.Is"
}

func IsNotBad(err error) bool {
	return ErrBadInput != err // want "use errors.Is"
}

// A bad-parameter message minted as a root error: annbench would exit 1
// (internal) instead of 2 (usage).
func Lookup(name string) error {
	return fmt.Errorf("unknown engine %q", name) // want "bad-parameter message creates a root error"
}

func Validate(dim int) error {
	if dim <= 0 {
		return fmt.Errorf("invalid dimension %d", dim) // want "bad-parameter message creates a root error"
	}
	return nil
}
