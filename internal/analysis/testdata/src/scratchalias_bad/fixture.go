// Fixture: scratch-owned buffers escaping their reset epoch through every
// escape kind — return, package variable, caller-visible store, channel
// send, and goroutine capture.
package scratchalias_bad

type SearchScratch struct {
	IDs   []int32
	Dists []float32
}

var sink []int32

func Leak(scr *SearchScratch) []int32 {
	return scr.IDs // want "scratch-owned buffer returned to the caller"
}

func Stash(scr *SearchScratch) {
	sink = scr.IDs // want "scratch-owned buffer stored into a package variable"
}

type holder struct {
	ids []int32
}

func (h *holder) Keep(scr *SearchScratch) {
	h.ids = scr.IDs // want "scratch-owned buffer stored into caller-visible memory"
}

func Send(scr *SearchScratch, ch chan []float32) {
	ch <- scr.Dists // want "scratch-owned buffer sent on a channel"
}

func Background(scr *SearchScratch) {
	ids := scr.IDs
	go func() { // want "scratch-owned buffer captured by a goroutine"
		sink = ids // want "scratch-owned buffer stored into a package variable"
	}()
}
