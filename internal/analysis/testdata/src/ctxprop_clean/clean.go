// Fixture: legitimate context roots — nothing fires.
package ctxprop_clean

import "context"

// The backward-compat wrapper pattern: no ctx parameter, so minting the
// root context is the whole point.
func Run(step func(context.Context) error) error {
	return step(context.Background())
}

// Propagating the parameter is the fix ctxprop asks for.
func RunContext(ctx context.Context, step func(context.Context) error) error {
	return step(ctx)
}

// Deriving from the parameter is fine too.
func WithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// The annotated exception records its reason.
func Detached(ctx context.Context, audit func(context.Context)) {
	audit(context.Background()) //annlint:allow ctxprop -- audit trail must outlive the cancelled run
}
