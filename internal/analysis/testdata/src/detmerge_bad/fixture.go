// Fixture: goroutines merging results through shared mutation — appends to
// a captured slice and writes to a captured map — whose final order depends
// on scheduling.
package detmerge_bad

import "sync"

func Gather(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			out = append(out, it) // want "goroutine appends to captured slice out"
		}(it)
	}
	wg.Wait()
	return out
}

func Tally(items []string) map[string]int {
	m := map[string]int{}
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it string) {
			defer wg.Done()
			m[it] = len(it) // want "goroutine writes captured map m"
		}(it)
	}
	wg.Wait()
	return m
}
