// Fixture: the exempt comparisons — constants and exact stored values.
package floatcmp_clean

type scored struct {
	d float64
	c int32
}

// Guarding against a constant is exact by construction.
func IsZero(norm float64) bool {
	return norm == 0
}

func IsUnit(norm float64) bool {
	return norm != 1.0
}

// Tie-breaking on stored values compares exact bit patterns on purpose —
// the kmeans assignment loop does exactly this.
func Less(all []scored, j, min int) bool {
	return all[j].d == all[min].d && all[j].c < all[min].c
}

// Integer comparisons are out of scope.
func SameCount(a, b int) bool {
	return a == b
}

// An annotated computed comparison records why exactness is wanted.
func Converged(prev, next float64) bool {
	return prev*0.5 == next*0.5 //annlint:allow floatcmp -- fixed-point iteration stops only on exact convergence
}
