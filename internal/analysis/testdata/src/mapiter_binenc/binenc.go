// Fixture: loaded as svdbench/internal/binenc — in the encoding package any
// map range fires regardless of file name.
package mapiter_binenc

func Encode(m map[string]int, put func(string, int)) {
	for k, v := range m { // want "persistence/encoding code"
		put(k, v)
	}
}
