// Fixture: seeded randomness through an explicit *rand.Rand — the pattern
// hnsw/pq/kmeans/diskann use. Nothing fires, including the annotated site.
package seededrand_clean

import "math/rand"

func Pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func Shuffled(seed int64, xs []int) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func Annotated() int {
	return rand.Intn(6) //annlint:allow seededrand -- demo dice roll, result is never measured
}
