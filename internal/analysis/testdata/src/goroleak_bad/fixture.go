// Fixture: goroutines with no completion signal, spawned as a literal and
// as a named function whose (lack of a) join is known through its fact.
package goroleak_bad

var counter int

func Spawn() {
	go func() { // want "goroutine has no completion signal"
		counter++
	}()
}

func work() {
	counter++
}

func SpawnNamed() {
	go work() // want "goroutine runs .*\\.work, which has no completion signal"
}
