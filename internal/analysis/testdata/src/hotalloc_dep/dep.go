// Fixture dependency: exports one allocating and one allocation-free
// function. Importing fixtures see only this package's exported facts.
package hotalloc_dep

func Alloc(n int) []int {
	return make([]int, n)
}

func Fill(dst []int, v int) {
	for i := range dst {
		dst[i] = v
	}
}
