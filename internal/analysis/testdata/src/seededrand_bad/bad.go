// Fixture: global math/rand draws — every one bypasses the config seed.
package seededrand_bad

import "math/rand"

func Pick(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from the global math/rand source"
}

func Jitter() float64 {
	return rand.Float64() // want "rand.Float64 draws from the global math/rand source"
}

func Mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global math/rand source"
}

// Passing the function as a value is just as global.
var intn func(int) int = rand.Intn // want "rand.Intn draws from the global math/rand source"
