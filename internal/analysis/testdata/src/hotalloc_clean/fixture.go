// Fixture: hot-path functions that stay within the zero-alloc contract —
// buffer reuse, cap-guarded growth behind a justified allow, and allocations
// confined to panic arguments.
package hotalloc_clean

import "fmt"

//annlint:hotpath
func Fill(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

//annlint:hotpath
func Grow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //annlint:allow hotalloc -- cap-guarded growth; callers reuse the buffer at capacity afterwards
	}
	return buf[:n]
}

//annlint:hotpath
func Check(n int) {
	if n < 0 {
		// Allocations feeding a panic are exempt: the query is already dead.
		panic(fmt.Sprintf("bad n %d", n))
	}
}

//annlint:hotpath
func Chain(dst []float32) {
	Fill(dst, 1) // allocation-free callee: no edge diagnostic
}
