// Fixture: deterministic merges — each goroutine owns out[i] by index, and
// shared structures are only written after the join.
package detmerge_clean

import "sync"

func Gather(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			out[i] = it * 2
		}(i, it)
	}
	wg.Wait()
	return out
}

func Tally(items []string) map[string]int {
	lens := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it string) {
			defer wg.Done()
			lens[i] = len(it)
		}(i, it)
	}
	wg.Wait()
	// The map is written after the join, in input order: deterministic.
	m := map[string]int{}
	for i, it := range items {
		m[it] = lens[i]
	}
	return m
}
