// Fixture: two well-formed allow directives for the -suppressions audit
// listing.
package suppress_audit

import "math/rand"

func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//annlint:allow mapiter -- key order is restored by the caller's sort
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Jitter() float64 {
	//annlint:allow seededrand -- jitter is outside the simulated clock, so an unseeded source is fine here
	return rand.Float64()
}
