// Fixture: legitimate scratch use — reads, in-place reuse, and copying out
// into caller-owned memory all stay within the reset epoch.
package scratchalias_clean

type SearchScratch struct {
	IDs   []int32
	Dists []float32
}

// CopyOut copies values out of the scratch; the backing array never leaves.
func CopyOut(scr *SearchScratch, dst []int32) []int32 {
	dst = append(dst[:0], scr.IDs...)
	return dst
}

// Top reads a scalar out of a scratch buffer.
func Top(scr *SearchScratch) int32 {
	return scr.IDs[0]
}

// Reuse stores back into the scratch itself — the ownership the analyzer
// protects.
func Reuse(scr *SearchScratch) {
	scr.IDs = scr.IDs[:0]
}

// Fill grows a scratch buffer in place across iterations.
func Fill(scr *SearchScratch, n int) {
	for i := 0; i < n; i++ {
		scr.IDs = append(scr.IDs, int32(i))
	}
}
