// Fixture: deterministic patterns that must stay silent.
package mapiter_clean

import "sort"

// Ranging a slice is ordered.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Aggregation into a scalar or another map is order-independent.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Appending to a slice declared inside the loop body never escapes.
func PerKey(m map[string][]int, use func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		use(doubled)
	}
}

// The sorted-keys idiom: annotated because the order is restored below.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //annlint:allow mapiter -- key order is restored by the sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
