// Fixture: exact equality between computed floats — differs in the last
// ulp across summation orders.
package floatcmp_bad

func dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func SameDistance(q, a, b []float32) bool {
	return dot(q, a) == dot(q, b) // want "computed floating-point values compared with =="
}

func Different(x, y, z float64) bool {
	return x+y != z // want "computed floating-point values compared with !="
}

func Converted(n int, f float64) bool {
	return float64(n) == f // want "computed floating-point values compared with =="
}
