// Fixture: every way an annlint directive can be malformed, in order —
// unknown directive, allow without a name, allow naming an unknown
// analyzer, allow without a justification, allow with a placeholder
// justification, and hotpath with arguments.
package suppress_bad

func Collect(m map[string]int) []string {
	var out []string

	//annlint:frobnicate
	x := 1
	_ = x

	//annlint:allow
	y := 2
	_ = y

	//annlint:allow nosuch -- a perfectly substantive justification
	z := 3
	_ = z

	//annlint:allow mapiter
	for k := range m {
		out = append(out, k)
	}

	//annlint:allow mapiter -- todo
	for k := range m {
		out = append(out, k)
	}

	return out
}

//annlint:hotpath with arguments
func Hot() {}
