// Fixture: wallclock inside the measurement harness (loaded as a path
// under svdbench/cmd). Unannotated reads fire; annotated ones with a
// justification pass; an annotation without justification is malformed.
package wallclock_harness

import "time"

func Unannotated() time.Time {
	return time.Now() // want "needs an explicit opt-in"
}

func Annotated() time.Time {
	return time.Now() //annlint:allow wallclock -- host-side progress timing for the log
}

func AnnotatedAbove() time.Duration {
	start := time.Now() //annlint:allow wallclock -- host-side progress timing for the log
	//annlint:allow wallclock -- ETA estimate shown to the operator
	return time.Since(start)
}

func MissingJustification() time.Time {
	return time.Now() //annlint:allow wallclock // want "needs a justification" "needs an explicit opt-in"
}

func WrongName() time.Time {
	return time.Now() //annlint:allow wallcluck -- typo in the name // want "unknown analyzer" "needs an explicit opt-in"
}
