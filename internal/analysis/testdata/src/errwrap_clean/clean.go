// Fixture: sound error hygiene — loaded under svdbench/internal/core like
// the bad twin, nothing fires.
package errwrap_clean

import (
	"errors"
	"fmt"
)

var ErrBadInput = errors.New("bad input")

// %w keeps the chain.
func Wrap(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

// Wrapping the sentinel classifies the bad parameter.
func Lookup(name string) error {
	return fmt.Errorf("%w: unknown engine %q", ErrBadInput, name)
}

// errors.Is sees through wrapping.
func IsBad(err error) bool {
	return errors.Is(err, ErrBadInput)
}

// Nil checks are not sentinel comparisons.
func Failed(err error) bool {
	return err != nil
}

// A message without bad-parameter phrasing may stay a root error.
func Compute() error {
	return fmt.Errorf("simulation diverged after %d steps", 7)
}

// Non-error values may use any verb.
func Describe(name string) error {
	return fmt.Errorf("engine %s: %v queries/s", name, 1200)
}

// An annotated root error is a recorded decision.
func Corrupt(path string) error {
	return fmt.Errorf("snapshot %q: bad magic", path) //annlint:allow errwrap -- corrupt cache bytes are internal, not caller parameters
}

// %T formats the error's type on purpose — no wrapping intended.
func TypeOf(err error) error {
	return fmt.Errorf("unexpected error type %T", err)
}
