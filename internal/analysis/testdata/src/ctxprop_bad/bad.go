// Fixture: fresh root contexts minted by functions that already receive a
// ctx — the work detaches from the caller's cancellation.
package ctxprop_bad

import "context"

func Run(ctx context.Context, step func(context.Context) error) error {
	return step(context.Background()) // want "context.Background discards the ctx"
}

func Todo(ctx context.Context, step func(context.Context) error) error {
	return step(context.TODO()) // want "context.TODO discards the ctx"
}

// A closure inside a ctx-taking function still has ctx in scope.
func Spawn(ctx context.Context, go_ func(func())) {
	go_(func() {
		_ = context.Background() // want "context.Background discards the ctx"
	})
}
