// Fixture: simulation-pure code that uses the time package only for pure
// duration arithmetic — nothing fires.
package wallclock_clean

import "time"

const Budget = 30 * time.Microsecond

func Scale(d time.Duration, n int) time.Duration {
	return d.Round(time.Millisecond) * time.Duration(n)
}

func Stamp(sec int64) time.Time {
	return time.Unix(sec, 0)
}
