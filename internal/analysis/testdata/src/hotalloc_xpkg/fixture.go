// Fixture: cross-package fact propagation. The violation is only visible
// through hotalloc_dep's exported summary — this package contains no
// allocation of its own.
package hotalloc_xpkg

import "svdbench/internal/index/hotalloc_dep"

//annlint:hotpath
func Hot(n int, dst []int) []int {
	hotalloc_dep.Fill(dst, n) // allocation-free by its fact: no diagnostic
	return hotalloc_dep.Alloc(n) // want "call to svdbench/internal/index/hotalloc_dep.Alloc allocates .* on the hot path"
}
