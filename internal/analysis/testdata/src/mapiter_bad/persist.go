package mapiter_bad

// In a persist.go file any map range fires, append or not: the iteration
// order would reach the snapshot bytes.
func WriteCounts(m map[int32]int64, emit func(int32, int64)) {
	for id, n := range m { // want "persistence/encoding code"
		emit(id, n)
	}
}
