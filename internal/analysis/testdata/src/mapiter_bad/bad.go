// Fixture: map iteration whose order escapes through an appended slice.
package mapiter_bad

type Registry struct {
	names []string
}

func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to \"out\""
		out = append(out, k)
	}
	return out
}

func (r *Registry) Fill(m map[string]int) {
	for k := range m { // want "map iteration appends to \"names\""
		r.names = append(r.names, k)
	}
}
