// Fixture: every goroutine carries a join signal — WaitGroup.Done, channel
// close, send, receive, or a named callee that joins by its fact.
package goroleak_clean

import "sync"

func SpawnJoined(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func SpawnClose(done chan struct{}) {
	go func() {
		close(done)
	}()
}

func SpawnSend(ch chan int) {
	go func() {
		ch <- 1
	}()
}

func SpawnReceive(ch chan int) {
	go func() {
		<-ch
	}()
}

func SpawnRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func drain(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	<-ch
}

func SpawnNamedJoined(ch chan int, wg *sync.WaitGroup) {
	wg.Add(1)
	go drain(ch, wg)
}
