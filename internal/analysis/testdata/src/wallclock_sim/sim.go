// Fixture: wallclock inside a simulation-pure package (loaded as a path
// under svdbench/internal/sim). Every host-clock read fires, and even an
// annotated opt-out is refused.
package wallclock_sim

import "time"

func Tick() time.Duration {
	start := time.Now() // want "time.Now reads the host clock inside simulation-pure package"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock inside simulation-pure package"
	return time.Since(start) // want "time.Since reads the host clock inside simulation-pure package"
}

func Annotated() time.Time {
	return time.Now() //annlint:allow wallclock -- trying to opt out anyway // want "time.Now reads the host clock" "refused in simulation-pure package"
}

// Pure time arithmetic stays silent.
func Pure(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) + 2*time.Second
}
