package analysis

import (
	"strings"
	"testing"
)

// Each analyzer must fire on its failing fixture (every finding pinned by a
// want comment), stay silent on its clean fixture, and honor suppressions —
// the clean fixtures each contain one annotated site.

func TestWallclockSimPure(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_sim", modulePath+"/internal/sim/fixture")
}

func TestWallclockHarness(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_harness", modulePath+"/cmd/fixture")
}

func TestWallclockClean(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_clean", modulePath+"/internal/vec/fixture")
}

func TestSeededRandBad(t *testing.T) {
	runFixture(t, SeededRand, "seededrand_bad", modulePath+"/internal/index/srfix")
}

func TestSeededRandClean(t *testing.T) {
	runFixture(t, SeededRand, "seededrand_clean", modulePath+"/internal/index/srclean")
}

func TestMapIterBad(t *testing.T) {
	runFixture(t, MapIter, "mapiter_bad", modulePath+"/internal/util/mifix")
}

func TestMapIterBinenc(t *testing.T) {
	runFixture(t, MapIter, "mapiter_binenc", modulePath+"/internal/binenc")
}

func TestMapIterClean(t *testing.T) {
	runFixture(t, MapIter, "mapiter_clean", modulePath+"/internal/util/miclean")
}

func TestErrWrapBad(t *testing.T) {
	runFixture(t, ErrWrap, "errwrap_bad", modulePath+"/internal/core/ewfix")
}

func TestErrWrapClean(t *testing.T) {
	runFixture(t, ErrWrap, "errwrap_clean", modulePath+"/internal/core/ewclean")
}

// Outside the exit-code classification packages the bad-parameter rule is
// off, but the %v-wrapping and ==-sentinel rules still apply.
func TestErrWrapRootErrorsOnlyInClassifiedPackages(t *testing.T) {
	pkg, err := sharedLoader.LoadDir("testdata/src/errwrap_bad", modulePath+"/internal/vec/ewfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunForTest(pkg, ErrWrap, pkg.Path)
	for _, d := range diags {
		if strings.Contains(d.Message, "bad-parameter message") {
			t.Errorf("bad-parameter rule fired outside classified packages: %s", d)
		}
	}
	if len(diags) != 4 { // Wrapv, Wraps, IsBad, IsNotBad
		t.Errorf("got %d diagnostics, want 4 (the non-classification rules):\n%v", len(diags), diags)
	}
}

func TestCtxPropBad(t *testing.T) {
	runFixture(t, CtxProp, "ctxprop_bad", modulePath+"/internal/core/cpfix")
}

func TestCtxPropClean(t *testing.T) {
	runFixture(t, CtxProp, "ctxprop_clean", modulePath+"/internal/core/cpclean")
}

func TestFloatCmpBad(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp_bad", modulePath+"/internal/index/fcfix")
}

func TestFloatCmpClean(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp_clean", modulePath+"/internal/index/fcclean")
}

func TestSuiteNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces (directive grammar)", a.Name)
		}
	}
	if len(seen) != 6 {
		t.Errorf("suite has %d analyzers, want 6", len(seen))
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"100%% done %v", "v", true},
		{"%w: %q", "wq", true},
		{"%+8.3f", "f", true},
		{"%*d", "*d", true},
		{"%.*f", "*f", true},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.verbs, c.ok)
		}
	}
}

// The scope tables must track the packages they police: a rename or move
// should fail loudly here, not silently stop linting.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		match    bool
	}{
		{Wallclock, modulePath + "/internal/sim", true},
		{Wallclock, modulePath + "/internal/storage/ssd", true},
		{Wallclock, modulePath + "/internal/index/hnsw", true},
		{Wallclock, modulePath + "/internal/core", true},
		{Wallclock, modulePath + "/cmd/annbench", true},
		{Wallclock, modulePath + "/examples/rag", false},
		{MapIter, modulePath + "/internal/trace", true},
		{MapIter, modulePath + "/cmd/annbench", false},
		{CtxProp, modulePath + "/internal/core", true},
		{CtxProp, modulePath + "/internal/vdb", false},
		{FloatCmp, modulePath + "/internal/index/kmeans", true},
		{FloatCmp, modulePath + "/internal/vec", true},
		{FloatCmp, modulePath + "/internal/core", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Match(c.path); got != c.match {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.match)
		}
	}
	if !Wallclock.NoSuppress(modulePath+"/internal/vdb") || Wallclock.NoSuppress(modulePath+"/internal/core") {
		t.Error("wallclock suppression scope wrong: sim-pure must refuse, harness must accept")
	}
}
