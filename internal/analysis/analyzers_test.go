package analysis

import (
	"strings"
	"testing"
)

// Each analyzer must fire on its failing fixture (every finding pinned by a
// want comment), stay silent on its clean fixture, and honor suppressions —
// the clean fixtures each contain one annotated site.

func TestWallclockSimPure(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_sim", modulePath+"/internal/sim/fixture")
}

func TestWallclockHarness(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_harness", modulePath+"/cmd/fixture")
}

func TestWallclockClean(t *testing.T) {
	runFixture(t, Wallclock, "wallclock_clean", modulePath+"/internal/vec/fixture")
}

func TestSeededRandBad(t *testing.T) {
	runFixture(t, SeededRand, "seededrand_bad", modulePath+"/internal/index/srfix")
}

func TestSeededRandClean(t *testing.T) {
	runFixture(t, SeededRand, "seededrand_clean", modulePath+"/internal/index/srclean")
}

func TestMapIterBad(t *testing.T) {
	runFixture(t, MapIter, "mapiter_bad", modulePath+"/internal/util/mifix")
}

func TestMapIterBinenc(t *testing.T) {
	runFixture(t, MapIter, "mapiter_binenc", modulePath+"/internal/binenc")
}

func TestMapIterClean(t *testing.T) {
	runFixture(t, MapIter, "mapiter_clean", modulePath+"/internal/util/miclean")
}

func TestErrWrapBad(t *testing.T) {
	runFixture(t, ErrWrap, "errwrap_bad", modulePath+"/internal/core/ewfix")
}

func TestErrWrapClean(t *testing.T) {
	runFixture(t, ErrWrap, "errwrap_clean", modulePath+"/internal/core/ewclean")
}

// Outside the exit-code classification packages the bad-parameter rule is
// off, but the %v-wrapping and ==-sentinel rules still apply.
func TestErrWrapRootErrorsOnlyInClassifiedPackages(t *testing.T) {
	pkg, err := sharedLoader.LoadDir("testdata/src/errwrap_bad", modulePath+"/internal/vec/ewfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunForTest(pkg, ErrWrap, pkg.Path)
	for _, d := range diags {
		if strings.Contains(d.Message, "bad-parameter message") {
			t.Errorf("bad-parameter rule fired outside classified packages: %s", d)
		}
	}
	if len(diags) != 4 { // Wrapv, Wraps, IsBad, IsNotBad
		t.Errorf("got %d diagnostics, want 4 (the non-classification rules):\n%v", len(diags), diags)
	}
}

func TestCtxPropBad(t *testing.T) {
	runFixture(t, CtxProp, "ctxprop_bad", modulePath+"/internal/core/cpfix")
}

func TestCtxPropClean(t *testing.T) {
	runFixture(t, CtxProp, "ctxprop_clean", modulePath+"/internal/core/cpclean")
}

func TestFloatCmpBad(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp_bad", modulePath+"/internal/index/fcfix")
}

func TestFloatCmpClean(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp_clean", modulePath+"/internal/index/fcclean")
}

func TestHotallocBad(t *testing.T) {
	runFixture(t, Hotalloc, "hotalloc_bad", modulePath+"/internal/index/hafix")
}

func TestHotallocClean(t *testing.T) {
	runFixture(t, Hotalloc, "hotalloc_clean", modulePath+"/internal/index/haclean")
}

// TestHotallocCrossPackage proves fact propagation: the importer package
// contains no allocation of its own; the diagnostic exists only because the
// dependency's exported summary says its function allocates.
func TestHotallocCrossPackage(t *testing.T) {
	runFixtureChain(t, Hotalloc, []fixtureSpec{
		{"hotalloc_dep", modulePath + "/internal/index/hotalloc_dep"},
		{"hotalloc_xpkg", modulePath + "/internal/index/hotalloc_xpkg"},
	})
}

func TestScratchAliasBad(t *testing.T) {
	runFixture(t, ScratchAlias, "scratchalias_bad", modulePath+"/internal/index/safix")
}

func TestScratchAliasClean(t *testing.T) {
	runFixture(t, ScratchAlias, "scratchalias_clean", modulePath+"/internal/index/saclean")
}

func TestGoroLeakBad(t *testing.T) {
	runFixture(t, GoroLeak, "goroleak_bad", modulePath+"/internal/core/glfix")
}

func TestGoroLeakClean(t *testing.T) {
	runFixture(t, GoroLeak, "goroleak_clean", modulePath+"/internal/core/glclean")
}

func TestDetMergeBad(t *testing.T) {
	runFixture(t, DetMerge, "detmerge_bad", modulePath+"/internal/core/dmfix")
}

func TestDetMergeClean(t *testing.T) {
	runFixture(t, DetMerge, "detmerge_clean", modulePath+"/internal/core/dmclean")
}

func TestSuiteNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces (directive grammar)", a.Name)
		}
	}
	if len(seen) != 10 {
		t.Errorf("suite has %d analyzers, want 10", len(seen))
	}
	fast, deep := Fast(), Deep()
	if len(fast)+len(deep) != len(All()) {
		t.Errorf("fast (%d) + deep (%d) analyzers don't partition the suite (%d)", len(fast), len(deep), len(All()))
	}
	for _, a := range fast {
		if a.FactBased {
			t.Errorf("fact-based analyzer %q in the fast set", a.Name)
		}
	}
	for _, a := range deep {
		if !a.FactBased {
			t.Errorf("AST-only analyzer %q in the deep set", a.Name)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"100%% done %v", "v", true},
		{"%w: %q", "wq", true},
		{"%+8.3f", "f", true},
		{"%*d", "*d", true},
		{"%.*f", "*f", true},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.verbs, c.ok)
		}
	}
}

// The scope tables must track the packages they police: a rename or move
// should fail loudly here, not silently stop linting.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		match    bool
	}{
		{Wallclock, modulePath + "/internal/sim", true},
		{Wallclock, modulePath + "/internal/storage/ssd", true},
		{Wallclock, modulePath + "/internal/index/hnsw", true},
		{Wallclock, modulePath + "/internal/core", true},
		{Wallclock, modulePath + "/cmd/annbench", true},
		{Wallclock, modulePath + "/examples/rag", false},
		{MapIter, modulePath + "/internal/trace", true},
		{MapIter, modulePath + "/cmd/annbench", false},
		{CtxProp, modulePath + "/internal/core", true},
		{CtxProp, modulePath + "/internal/vdb", false},
		{FloatCmp, modulePath + "/internal/index/kmeans", true},
		{FloatCmp, modulePath + "/internal/vec", true},
		{FloatCmp, modulePath + "/internal/core", false},
		{Hotalloc, modulePath + "/internal/index/diskann", true},
		{Hotalloc, modulePath + "/internal/vec", true},
		{Hotalloc, modulePath + "/internal/storage/nodecache", true},
		{Hotalloc, modulePath + "/internal/core", false},
		{ScratchAlias, modulePath + "/internal/index/hnsw", true},
		{ScratchAlias, modulePath + "/internal/vdb", true},
		{ScratchAlias, modulePath + "/internal/core", true},
		{ScratchAlias, modulePath + "/internal/vec", false},
		{GoroLeak, modulePath + "/internal/core", true},
		{GoroLeak, modulePath + "/internal/vdb", true},
		{GoroLeak, modulePath + "/internal/index", true},
		{GoroLeak, modulePath + "/internal/storage/ssd", true},
		{GoroLeak, modulePath + "/internal/vec", false},
		{DetMerge, modulePath + "/internal/core", true},
		{DetMerge, modulePath + "/internal/index/diskann", true},
		{DetMerge, modulePath + "/internal/storage", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Match(c.path); got != c.match {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.match)
		}
	}
	if !Wallclock.NoSuppress(modulePath+"/internal/vdb") || Wallclock.NoSuppress(modulePath+"/internal/core") {
		t.Error("wallclock suppression scope wrong: sim-pure must refuse, harness must accept")
	}
}
