// Package analysis is annlint: a suite of domain-specific static analyzers
// that mechanically enforce the simulator's determinism, seeding, and
// error-hygiene invariants. The whole credibility of the reproduction rests
// on properties the compiler cannot see — simulated results must be a pure
// function of (dataset seed, config), persisted snapshots must be
// byte-identical across runs, and sentinel errors must survive wrapping so
// annbench's exit-code classification works. This package encodes those
// reviewer-head rules as machine-checked diagnostics.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can be ported to the real framework and
// `go vet -vettool` once that dependency is available; the container this
// repo grows in has no module proxy, so the driver scaffolding here is a
// self-contained stdlib implementation.
//
// See DESIGN.md "Static analysis & determinism conventions" for the list of
// simulation-pure packages and the //annlint:allow directive grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// modulePath is the import-path root of the policed module. The analyzers
// are domain-specific by design: their package scoping is expressed as
// svdbench import paths, not configuration.
const modulePath = "svdbench"

// An Analyzer describes one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //annlint:allow directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Match reports whether the analyzer polices the package with the
	// given import path. A nil Match polices every package of the module.
	Match func(pkgPath string) bool

	// NoSuppress reports whether //annlint:allow directives for this
	// analyzer are refused in the given package. Used by wallclock: the
	// simulation-pure packages may never opt into wall-clock time, not
	// even with a justification.
	NoSuppress func(pkgPath string) bool

	// Run inspects the package and reports diagnostics through the pass.
	Run func(*Pass)
}

// A Pass connects one Analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full annlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		SeededRand,
		MapIter,
		ErrWrap,
		CtxProp,
		FloatCmp,
	}
}

// byName maps analyzer names for directive validation.
func byName(analyzers []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a
	}
	return m
}

// Lint runs every matching analyzer over pkg, applies the //annlint:allow
// suppression directives, and returns the surviving diagnostics sorted by
// position. Malformed or refused directives surface as diagnostics of the
// pseudo-analyzer "annlint".
func Lint(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := byName(analyzers)
	sup, diags := parseSuppressions(pkg, known)

	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		if a.NoSuppress != nil && a.NoSuppress(pkg.Path) {
			diags = append(diags, sup.refuse(a.Name, pkg.Path)...)
		}
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if a.NoSuppress == nil || !a.NoSuppress(pkg.Path) {
				if sup.allowed(a.Name, d.Pos) {
					continue
				}
			}
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags
}

// RunForTest executes a single analyzer over pkg, bypassing Match so
// fixtures with synthetic import paths still exercise package-scoped
// analyzers, but honoring suppressions so fixtures can prove the
// //annlint:allow directive works. asPath overrides the package path seen
// by NoSuppress.
func RunForTest(pkg *Package, a *Analyzer, asPath string) []Diagnostic {
	if asPath == "" {
		asPath = pkg.Path
	}
	sup, diags := parseSuppressions(pkg, byName([]*Analyzer{a}))
	if a.NoSuppress != nil && a.NoSuppress(asPath) {
		diags = append(diags, sup.refuse(a.Name, asPath)...)
	}
	pass := &Pass{Analyzer: a, Pkg: pkg}
	a.Run(pass)
	for _, d := range pass.diags {
		if a.NoSuppress == nil || !a.NoSuppress(asPath) {
			if sup.allowed(a.Name, d.Pos) {
				continue
			}
		}
		diags = append(diags, d)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// hasPathPrefix reports whether path is prefix or lives below it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// anyPathPrefix reports whether path matches any of the prefixes.
func anyPathPrefix(path string, prefixes ...string) bool {
	for _, p := range prefixes {
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

// pkgFunc resolves expr (an identifier or selector used as a function) to a
// package-level *types.Func declared in pkgPath, or nil. Methods do not
// qualify: a *rand.Rand method is seeded and fine where the package-level
// rand.Intn is not.
func pkgFunc(info *types.Info, expr ast.Expr, pkgPath string) *types.Func {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// enclosingFuncs walks file and calls fn for every function declaration and
// literal together with its body. Convenience for analyzers that need the
// enclosing signature (errwrap, ctxprop).
func enclosingFuncs(file *ast.File, fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Type, d.Body)
			}
		case *ast.FuncLit:
			fn(d.Type, d.Body)
		}
		return true
	})
}
