// Package analysis is annlint: a suite of domain-specific static analyzers
// that mechanically enforce the simulator's determinism, seeding, and
// error-hygiene invariants. The whole credibility of the reproduction rests
// on properties the compiler cannot see — simulated results must be a pure
// function of (dataset seed, config), persisted snapshots must be
// byte-identical across runs, and sentinel errors must survive wrapping so
// annbench's exit-code classification works. This package encodes those
// reviewer-head rules as machine-checked diagnostics.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can be ported to the real framework and
// `go vet -vettool` once that dependency is available; the container this
// repo grows in has no module proxy, so the driver scaffolding here is a
// self-contained stdlib implementation.
//
// See DESIGN.md "Static analysis & determinism conventions" for the list of
// simulation-pure packages and the //annlint:allow directive grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// modulePath is the import-path root of the policed module. The analyzers
// are domain-specific by design: their package scoping is expressed as
// svdbench import paths, not configuration.
const modulePath = "svdbench"

// An Analyzer describes one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //annlint:allow directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Match reports whether the analyzer polices the package with the
	// given import path. A nil Match polices every package of the module.
	Match func(pkgPath string) bool

	// NoSuppress reports whether //annlint:allow directives for this
	// analyzer are refused in the given package. Used by wallclock: the
	// simulation-pure packages may never opt into wall-clock time, not
	// even with a justification.
	NoSuppress func(pkgPath string) bool

	// FactBased marks analyzers that export function summaries consumed
	// by later passes over importing packages. LintPackages runs them
	// over every loaded package in dependency order — including packages
	// their Match rejects and FactsOnly dependencies, where they compute
	// facts without reporting.
	FactBased bool

	// Run inspects the package and reports diagnostics through the pass.
	Run func(*Pass)
}

// A Pass connects one Analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Facts is the run-wide fact store shared by every pass of a
	// fact-based analyzer. Nil for plain AST analyzers.
	Facts *Facts

	// Reporting is false when this pass exists only to compute facts
	// (FactsOnly dependency, or a package the analyzer's Match rejects
	// in a multi-package run). Reportf is a no-op then.
	Reporting bool

	sup   *suppressions
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if !p.Reporting {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether an //annlint:allow directive for this pass's
// analyzer covers pos. Fact computation consults it so a deliberately
// allowed site also drops out of the function's exported summary — without
// this, a suppressed allocation would re-surface as a diagnostic at every
// cross-package caller.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.sup != nil && p.sup.allowed(p.Analyzer.Name, p.Pkg.Fset.Position(pos))
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full annlint suite in stable order: the six single-pass
// AST analyzers from PR 2, then the four fact-based concurrency/hot-path
// analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		SeededRand,
		MapIter,
		ErrWrap,
		CtxProp,
		FloatCmp,
		Hotalloc,
		ScratchAlias,
		GoroLeak,
		DetMerge,
	}
}

// Fast returns only the single-pass AST analyzers (make lint-fast).
func Fast() []*Analyzer {
	var out []*Analyzer
	for _, a := range All() {
		if !a.FactBased {
			out = append(out, a)
		}
	}
	return out
}

// Deep returns only the fact-based multi-pass analyzers (make lint-deep).
func Deep() []*Analyzer {
	var out []*Analyzer
	for _, a := range All() {
		if a.FactBased {
			out = append(out, a)
		}
	}
	return out
}

// byName maps analyzer names for directive validation.
func byName(analyzers []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a
	}
	return m
}

// Lint runs every matching analyzer over one package. Kept for single-
// package callers; fact-based analyzers see only this package's own facts,
// so cross-package diagnostics need LintPackages.
func Lint(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return LintPackages([]*Package{pkg}, analyzers)
}

// LintPackages is the multi-pass driver: it orders pkgs dependencies-first,
// runs fact-based analyzers over every package in that order (computing
// summaries even where Match rejects or the package is FactsOnly) and AST
// analyzers over the matching non-FactsOnly packages, applies the
// //annlint:allow suppression directives, and returns the surviving
// diagnostics sorted by position. Malformed or refused directives surface as
// diagnostics of the pseudo-analyzer "annlint".
func LintPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// Directives are validated against the full suite, not the subset being
	// run: an //annlint:allow wallclock must stay well-formed during a
	// -deep run that doesn't include wallclock.
	known := byName(append(All(), analyzers...))
	ordered := topoPackages(pkgs)
	sups := make(map[*Package]*suppressions, len(ordered))
	var diags []Diagnostic
	for _, pkg := range ordered {
		sup, sdiags := parseSuppressions(pkg, known)
		sups[pkg] = sup
		if !pkg.FactsOnly {
			diags = append(diags, sdiags...)
		}
	}
	facts := NewFacts()
	for _, a := range analyzers {
		for _, pkg := range ordered {
			matched := a.Match == nil || a.Match(pkg.Path)
			reporting := matched && !pkg.FactsOnly
			if !reporting && !a.FactBased {
				continue
			}
			if reporting && a.NoSuppress != nil && a.NoSuppress(pkg.Path) {
				diags = append(diags, sups[pkg].refuse(a.Name, pkg.Path)...)
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Reporting: reporting, sup: sups[pkg]}
			if a.FactBased {
				pass.Facts = facts
			}
			a.Run(pass)
			diags = append(diags, pass.surviving(pkg.Path)...)
		}
	}
	sortDiagnostics(diags)
	return diags
}

// surviving filters the pass's diagnostics through the package's allow
// directives (unless the analyzer refuses suppression for asPath).
func (p *Pass) surviving(asPath string) []Diagnostic {
	a := p.Analyzer
	suppressible := a.NoSuppress == nil || !a.NoSuppress(asPath)
	var out []Diagnostic
	for _, d := range p.diags {
		if suppressible && p.sup != nil && p.sup.allowed(a.Name, d.Pos) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// RunForTest executes a single analyzer over pkg, bypassing Match so
// fixtures with synthetic import paths still exercise package-scoped
// analyzers, but honoring suppressions so fixtures can prove the
// //annlint:allow directive works. asPath overrides the package path seen
// by NoSuppress.
func RunForTest(pkg *Package, a *Analyzer, asPath string) []Diagnostic {
	return RunForTestPackages([]*Package{pkg}, a, []string{asPath})
}

// RunForTestPackages executes one analyzer over a dependency-ordered chain
// of fixture packages with a shared fact store, so tests can prove a
// violation that is only visible through an imported package's summary.
// Every pass reports; asPaths (parallel to pkgs, "" meaning the package's
// own path) override the path seen by NoSuppress. Diagnostics from all
// packages are returned together.
func RunForTestPackages(pkgs []*Package, a *Analyzer, asPaths []string) []Diagnostic {
	facts := NewFacts()
	known := byName(append(All(), a))
	var diags []Diagnostic
	for i, pkg := range pkgs {
		asPath := ""
		if i < len(asPaths) {
			asPath = asPaths[i]
		}
		if asPath == "" {
			asPath = pkg.Path
		}
		sup, sdiags := parseSuppressions(pkg, known)
		diags = append(diags, sdiags...)
		if a.NoSuppress != nil && a.NoSuppress(asPath) {
			diags = append(diags, sup.refuse(a.Name, asPath)...)
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, Reporting: true, sup: sup}
		if a.FactBased {
			pass.Facts = facts
		}
		a.Run(pass)
		diags = append(diags, pass.surviving(asPath)...)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// hasPathPrefix reports whether path is prefix or lives below it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// anyPathPrefix reports whether path matches any of the prefixes.
func anyPathPrefix(path string, prefixes ...string) bool {
	for _, p := range prefixes {
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

// pkgFunc resolves expr (an identifier or selector used as a function) to a
// package-level *types.Func declared in pkgPath, or nil. Methods do not
// qualify: a *rand.Rand method is seeded and fine where the package-level
// rand.Intn is not.
func pkgFunc(info *types.Info, expr ast.Expr, pkgPath string) *types.Func {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// enclosingFuncs walks file and calls fn for every function declaration and
// literal together with its body. Convenience for analyzers that need the
// enclosing signature (errwrap, ctxprop).
func enclosingFuncs(file *ast.File, fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Type, d.Body)
			}
		case *ast.FuncLit:
			fn(d.Type, d.Body)
		}
		return true
	})
}
