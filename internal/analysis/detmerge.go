package analysis

// detmerge polices the invariant behind byte-identical results at any
// worker count: concurrent producers write their results by index into a
// preallocated slice (`out[i] = ...`), and the merge happens after the
// join, in index order. A goroutine that appends to a slice or writes a map
// captured from the enclosing scope produces arrival-order results — the
// classic nondeterministic merge — even when a mutex makes it race-free.
//
// The check is syntactic and local: inside a `go func(){...}` body, flag
// appends to captured slices and writes to captured maps. Index-ordered
// writes to captured slices are the blessed pattern and stay silent;
// captured scalars are the race detector's department.

import (
	"go/ast"
	"go/types"
)

// DetMerge reports arrival-order merges in spawned goroutines.
var DetMerge = &Analyzer{
	Name: "detmerge",
	Doc:  "concurrent results must merge index-ordered, not by shared append or map write",
	Match: func(pkgPath string) bool {
		return anyPathPrefix(pkgPath,
			modulePath+"/internal/core",
			modulePath+"/internal/vdb",
			modulePath+"/internal/index")
	},
	Run: runDetMerge,
}

func runDetMerge(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			captured := func(id *ast.Ident) bool {
				v, ok := info.ObjectOf(id).(*types.Var)
				return ok && v.Pos() < fl.Pos() && !v.IsField()
			}
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if len(as.Lhs) != len(as.Rhs) && len(as.Rhs) != 1 {
					return true
				}
				for i, lhs := range as.Lhs {
					// m[k] = v on a captured map: iteration/arrival order
					// leaks into the merged result.
					if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
						if id, ok := unparen(ix.X).(*ast.Ident); ok && captured(id) {
							if _, isMap := typeUnder(info.TypeOf(ix.X)).(*types.Map); isMap {
								p.Reportf(lhs.Pos(), "goroutine writes captured map %s; merge deterministically after the join instead", id.Name)
							}
						}
						continue
					}
					// x = append(x, ...) on a captured slice: results land
					// in arrival order.
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok || !captured(id) {
						continue
					}
					rhs := as.Rhs[0]
					if len(as.Lhs) == len(as.Rhs) {
						rhs = as.Rhs[i]
					}
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if b := builtinOf(info, call); b == nil || b.Name() != "append" {
						continue
					}
					p.Reportf(as.Pos(), "goroutine appends to captured slice %s; write out[i] by index and merge after the join instead", id.Name)
				}
				return true
			})
			return true
		})
	}
}
