package analysis

// defuse.go is the lightweight SSA-ish def-use layer under the fact-based
// analyzers: a flow-insensitive, intra-function taint engine. Each function
// parameter (and the receiver) gets an identity bit; expressions evaluate to
// the union of the bits of the values they can alias; assignment propagates
// bits through locals to a fixpoint; and a final pass records *escape
// events* — places where a tainted reference outlives the call: returns,
// stores reachable from a parameter or package variable, channel sends, and
// goroutine captures. The events double as the function's exported summary
// (escapeFact), which is how taint crosses package boundaries: a call to a
// summarised function propagates the taint of exactly the arguments the
// callee's summary says flow to its result, and raises an event for the
// arguments the summary says the callee retains.
//
// The engine is deliberately alias-imprecise (one bit per variable, no
// field sensitivity beyond the root) and resolves only static calls;
// unknown callees — standard library, interface methods — are assumed to
// neither retain nor return their arguments. Facts sharpen diagnostics,
// they never invent them; the dynamic AllocsPerRun/race layer backstops
// what the summaries cannot see.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Taint bits. Bit 0 is the receiver, bits 1..30 the parameters in order
// (functions with more parameters share the last bit — imprecise, still
// sound for a linter), bit 31 seeds injected by the analyzer, e.g.
// scratch-owned buffers in scratchalias.
const (
	taintRecv    uint32 = 1 << 0
	taintSeed    uint32 = 1 << 31
	maxTaintBits        = 30
)

func taintParam(i int) uint32 {
	if i >= maxTaintBits {
		i = maxTaintBits - 1
	}
	return 1 << uint(i+1)
}

// escapeKind classifies how a tainted value left the function.
type escapeKind int

const (
	escapeReturn escapeKind = iota // returned to the caller
	escapeStore                    // stored into caller-visible memory
	escapeSend                     // sent on a channel
	escapeGo                       // captured or passed by a spawned goroutine
	escapeCall                     // passed to a callee whose summary retains it
)

// An escapeEvent is one sink occurrence with the taint bits that reached it.
type escapeEvent struct {
	pos  token.Pos
	bits uint32
	kind escapeKind
	desc string
}

// Per-parameter escape flags of the exported summary.
const (
	escReturn uint8 = 1 << iota // flows to a result value
	escStore                    // retained past the call (store/send/go)
)

// escapeFact is the cross-package summary of one function: for the receiver
// and each parameter, whether it escapes via return or via a store, and
// whether any result value aliases seed-tainted (scratch-owned) memory.
type escapeFact struct {
	recv        uint8
	params      []uint8
	returnsSeed bool
}

func (a *escapeFact) equal(b *escapeFact) bool {
	if b == nil || a.recv != b.recv || a.returnsSeed != b.returnsSeed || len(a.params) != len(b.params) {
		return false
	}
	for i := range a.params {
		if a.params[i] != b.params[i] {
			return false
		}
	}
	return true
}

// funcAnalysis is the taint state of one function under analysis.
type funcAnalysis struct {
	pass *Pass
	sig  *types.Signature
	body *ast.BlockStmt

	// seed injects analyzer-specific taint for an expression (0 = none).
	seed func(ast.Expr) uint32
	// lookup resolves a static callee's escape summary (nil = unknown,
	// assume it neither retains nor returns its arguments).
	lookup func(*types.Func) *escapeFact
	// storeOK reports whether a store whose destination is rooted at this
	// expression is exempt (scratchalias: writing back into the scratch).
	storeOK func(ast.Expr) bool

	taint   map[types.Object]uint32 // accumulated bits per local/param
	idBits  map[types.Object]uint32 // identity bit of each param/recv
	escapes []escapeEvent
	litEnds [][2]token.Pos // FuncLit ranges, for return classification
	changed bool
}

// newFuncAnalysis prepares the engine for one declared function. Returns nil
// for body-less declarations (assembly stubs).
func newFuncAnalysis(p *Pass, decl *ast.FuncDecl, seed func(ast.Expr) uint32, lookup func(*types.Func) *escapeFact, storeOK func(ast.Expr) bool) *funcAnalysis {
	if decl.Body == nil {
		return nil
	}
	fn, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	f := &funcAnalysis{
		pass:    p,
		sig:     sig,
		body:    decl.Body,
		seed:    seed,
		lookup:  lookup,
		storeOK: storeOK,
		taint:   make(map[types.Object]uint32),
		idBits:  make(map[types.Object]uint32),
	}
	if r := sig.Recv(); r != nil {
		f.idBits[r] = taintRecv
		f.taint[r] = taintRecv
	}
	for i := 0; i < sig.Params().Len(); i++ {
		v := sig.Params().At(i)
		f.idBits[v] = taintParam(i)
		f.taint[v] = taintParam(i)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			f.litEnds = append(f.litEnds, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	return f
}

// run propagates taint to a fixpoint, then records escape events.
func (f *funcAnalysis) run() {
	for i := 0; i < 2*maxTaintBits; i++ { // bits only accumulate; bounded
		f.changed = false
		f.walk(false)
		if !f.changed {
			break
		}
	}
	f.walk(true)
}

// fact condenses the recorded events into the exported summary.
func (f *funcAnalysis) fact() *escapeFact {
	ef := &escapeFact{params: make([]uint8, f.sig.Params().Len())}
	for _, ev := range f.escapes {
		flag := escStore
		if ev.kind == escapeReturn {
			flag = escReturn
			if ev.bits&taintSeed != 0 {
				ef.returnsSeed = true
			}
		}
		if ev.bits&taintRecv != 0 {
			ef.recv |= flag
		}
		for i := range ef.params {
			if ev.bits&taintParam(i) != 0 {
				ef.params[i] |= flag
			}
		}
	}
	return ef
}

func (f *funcAnalysis) inLit(pos token.Pos) bool {
	for _, r := range f.litEnds {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func (f *funcAnalysis) update(obj types.Object, bits uint32) {
	if obj == nil || bits == 0 {
		return
	}
	if f.taint[obj]&bits != bits {
		f.taint[obj] |= bits
		f.changed = true
	}
}

func (f *funcAnalysis) event(pos token.Pos, bits uint32, kind escapeKind, desc string) {
	if bits == 0 {
		return
	}
	f.escapes = append(f.escapes, escapeEvent{pos: pos, bits: bits, kind: kind, desc: desc})
}

// walk makes one pass over the body: propagation always, sinks when record.
func (f *funcAnalysis) walk(record bool) {
	info := f.pass.Pkg.Info
	ast.Inspect(f.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					f.store(n.Lhs[i], n.Rhs[i], f.exprTaint(n.Rhs[i]), record)
				}
			} else if len(n.Rhs) == 1 {
				bits := f.exprTaint(n.Rhs[0])
				for _, lhs := range n.Lhs {
					f.store(lhs, n.Rhs[0], bits, record)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == len(n.Names) {
				for i, name := range n.Names {
					f.update(info.Defs[name], f.exprTaint(n.Values[i]))
				}
			} else if len(n.Values) == 1 {
				bits := f.exprTaint(n.Values[0])
				for _, name := range n.Names {
					f.update(info.Defs[name], bits)
				}
			}
		case *ast.RangeStmt:
			bits := f.exprTaint(n.X)
			if bits != 0 && n.Value != nil {
				if id, ok := unparen(n.Value).(*ast.Ident); ok && id.Name != "_" {
					f.update(info.ObjectOf(id), bits)
				}
			}
		case *ast.SendStmt:
			if record {
				if t := info.TypeOf(n.Value); t != nil && pointery(t) {
					f.event(n.Arrow, f.exprTaint(n.Value), escapeSend, "sent on a channel")
				}
			}
		case *ast.ReturnStmt:
			if record && !f.inLit(n.Pos()) {
				for _, res := range n.Results {
					if t := info.TypeOf(res); t != nil && pointery(t) {
						f.event(n.Pos(), f.exprTaint(res), escapeReturn, "returned to the caller")
					}
				}
			}
		case *ast.GoStmt:
			if record {
				f.goSinks(n)
			}
		case *ast.CallExpr:
			if record {
				f.callSinks(n)
			}
		}
		return true
	})
}

// store handles one assignment of bits into lhs: a plain identifier
// accumulates the bits; a path rooted at a parameter, receiver, or package
// variable is an escape; a path rooted at a local taints the local (the
// container now holds the reference).
func (f *funcAnalysis) store(lhs, val ast.Expr, bits uint32, record bool) {
	if bits == 0 {
		return
	}
	info := f.pass.Pkg.Info
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj != nil && isPackageLevel(obj) {
			if record {
				f.event(lhs.Pos(), bits, escapeStore, "stored into a package variable")
			}
			return
		}
		f.update(obj, bits)
		return
	}
	if t := info.TypeOf(val); t == nil || !pointery(t) {
		return // copying a scalar out of tainted memory is not an alias
	}
	root := rootExpr(lhs)
	if f.storeOK != nil && f.storeOK(root) {
		return
	}
	rid, ok := root.(*ast.Ident)
	if !ok {
		if record {
			f.event(lhs.Pos(), bits, escapeStore, "stored into caller-visible memory")
		}
		return
	}
	obj := info.ObjectOf(rid)
	switch {
	case obj == nil:
		return
	case f.idBits[obj] != 0: // rooted at a parameter or the receiver
		if record {
			f.event(lhs.Pos(), bits&^f.idBits[obj], escapeStore, "stored into caller-visible memory")
		}
	case isPackageLevel(obj):
		if record {
			f.event(lhs.Pos(), bits, escapeStore, "stored into a package variable")
		}
	default:
		f.update(obj, bits) // local container now aliases the value
	}
}

// goSinks flags tainted references handed to a spawned goroutine, which may
// still hold them after the spawner's epoch ends.
func (f *funcAnalysis) goSinks(g *ast.GoStmt) {
	info := f.pass.Pkg.Info
	for _, arg := range g.Call.Args {
		if t := info.TypeOf(arg); t != nil && pointery(t) {
			f.event(g.Pos(), f.exprTaint(arg), escapeGo, "passed to a goroutine")
		}
	}
	if fl, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		f.event(g.Pos(), f.freeVarTaint(fl), escapeGo, "captured by a goroutine")
	}
}

// callSinks raises events for arguments passed to callees whose summary says
// they retain them.
func (f *funcAnalysis) callSinks(call *ast.CallExpr) {
	fn := staticCallee(f.pass.Pkg.Info, call)
	if fn == nil || f.lookup == nil {
		return
	}
	fact := f.lookup(fn)
	if fact == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil && fact.recv&escStore != 0 {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			f.event(call.Pos(), f.exprTaint(sel.X), escapeCall,
				"passed to "+fn.FullName()+" which retains its receiver")
		}
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= len(fact.params) {
			pi = len(fact.params) - 1
		}
		if pi < 0 || pi >= len(fact.params) || fact.params[pi]&escStore == 0 {
			continue
		}
		f.event(arg.Pos(), f.exprTaint(arg), escapeCall,
			"passed to "+fn.FullName()+" which retains it")
	}
}

// exprTaint evaluates the taint bits an expression's value can alias. A
// value of a non-pointery type cannot alias anything, whatever it was
// computed from — copying a scalar out of tainted memory launders it.
func (f *funcAnalysis) exprTaint(e ast.Expr) uint32 {
	if e == nil {
		return 0
	}
	info := f.pass.Pkg.Info
	if t := info.TypeOf(e); t != nil {
		if _, isTuple := t.(*types.Tuple); !isTuple && !pointery(t) {
			return 0
		}
	}
	var bits uint32
	if f.seed != nil {
		bits = f.seed(e)
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			bits |= f.taint[obj]
		}
	case *ast.ParenExpr:
		bits |= f.exprTaint(e.X)
	case *ast.SelectorExpr:
		bits |= f.exprTaint(e.X)
	case *ast.IndexExpr:
		bits |= f.exprTaint(e.X)
	case *ast.IndexListExpr:
		bits |= f.exprTaint(e.X)
	case *ast.SliceExpr:
		bits |= f.exprTaint(e.X)
	case *ast.StarExpr:
		bits |= f.exprTaint(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			bits |= f.exprTaint(e.X)
		}
	case *ast.CallExpr:
		bits |= f.callTaint(e)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			bits |= f.exprTaint(el)
		}
	case *ast.TypeAssertExpr:
		bits |= f.exprTaint(e.X)
	case *ast.FuncLit:
		bits |= f.freeVarTaint(e)
	}
	return bits
}

// callTaint evaluates what a call's results can alias: conversions and
// append pass their operands through; summarised callees pass through
// exactly the arguments their summary marks escReturn (plus the seed bit
// when the summary returns seed-tainted memory); unknown callees are
// assumed to return fresh values.
func (f *funcAnalysis) callTaint(call *ast.CallExpr) uint32 {
	info := f.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return f.exprTaint(call.Args[0])
		}
		return 0
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				bits := f.exprTaint(call.Args[0])
				for i, a := range call.Args[1:] {
					t := info.TypeOf(a)
					if t == nil || !pointery(t) {
						continue
					}
					// append(dst, src...) copies src's elements: only
					// pointery elements can smuggle src's backing array
					// into dst.
					if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
						if sl, ok := t.Underlying().(*types.Slice); ok && !pointery(sl.Elem()) {
							continue
						}
					}
					bits |= f.exprTaint(a)
				}
				return bits
			}
			return 0
		}
	}
	fn := staticCallee(info, call)
	if fn == nil || f.lookup == nil {
		return 0
	}
	fact := f.lookup(fn)
	if fact == nil {
		return 0
	}
	var bits uint32
	if fact.returnsSeed {
		bits |= taintSeed
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return bits
	}
	if sig.Recv() != nil && fact.recv&escReturn != 0 {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			bits |= f.exprTaint(sel.X)
		}
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= len(fact.params) {
			pi = len(fact.params) - 1
		}
		if pi >= 0 && pi < len(fact.params) && fact.params[pi]&escReturn != 0 {
			bits |= f.exprTaint(arg)
		}
	}
	return bits
}

// freeVarTaint unions the taint of every pointer-carrying variable a
// function literal references from an enclosing scope.
func (f *funcAnalysis) freeVarTaint(fl *ast.FuncLit) uint32 {
	info := f.pass.Pkg.Info
	var bits uint32
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok && v.Pos() < fl.Pos() && pointery(v.Type()) {
			bits |= f.taint[obj] | f.seedOf(id)
		}
		return true
	})
	return bits
}

func (f *funcAnalysis) seedOf(e ast.Expr) uint32 {
	if f.seed == nil {
		return 0
	}
	return f.seed(e)
}

// pointery reports whether values of type t carry a reference to memory a
// holder could alias: pointers, slices, maps, channels, funcs, interfaces,
// and aggregates containing any of those. Strings are immutable and do not
// count.
func pointery(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointery(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return pointery(u.Elem())
	}
	return false
}

// staticCallee resolves a call to the *types.Func it statically invokes:
// package functions, qualified functions, and concrete methods. Interface
// methods and func-typed values return nil (dynamic dispatch).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // func-typed field: dynamic
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return nil // dynamic dispatch
				}
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified package function
		}
	}
	return nil
}

// rootExpr peels selectors, indexing, slicing, and dereferences down to the
// base expression an assignment destination is rooted at.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
