package analysis

// goroleak requires every goroutine spawned in the harness's concurrent
// layers to have a matched completion signal: a WaitGroup.Done, a channel
// close or send, a receive/range that terminates on close, or a
// context-cancel exit. The scheduler's determinism argument (byte-identical
// merges at any worker count) assumes every worker is joined before results
// are read; a fire-and-forget goroutine breaks that silently and only shows
// up as a flaky race or a leaked worker under load.
//
// The check is structural, not a liveness proof: the spawned body (or the
// named function it calls, through its exported summary) must *contain* a
// completion signal on some path. Goroutines whose body calls only unknown
// or dynamic code are not flagged — summaries sharpen diagnostics, they
// never invent them; the race detector backstops the rest.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak reports goroutines with no visible completion signal.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine needs a matched WaitGroup.Done/channel-close/context-cancel exit path",
	Match: func(pkgPath string) bool {
		return anyPathPrefix(pkgPath,
			modulePath+"/internal/core",
			modulePath+"/internal/vdb",
			modulePath+"/internal/index",
			modulePath+"/internal/storage")
	},
	FactBased: true,
	Run:       runGoroLeak,
}

// joinFact records whether calling the function reaches a completion signal.
type joinFact struct{ joins bool }

func runGoroLeak(p *Pass) {
	info := p.Pkg.Info
	var decls []*ast.FuncDecl
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	lookup := func(fn *types.Func) bool {
		f, _ := p.ImportFact(fn).(*joinFact)
		return f != nil && f.joins
	}

	// Intra-package fixpoint: joins-ness flows through local call chains.
	for round := 0; round < 8; round++ {
		changed := false
		for _, fd := range decls {
			fn := info.Defs[fd.Name].(*types.Func)
			joins := bodyJoins(info, fd.Body, lookup)
			if old, _ := p.ImportFact(fn).(*joinFact); old == nil || old.joins != joins {
				p.ExportFact(fn, &joinFact{joins: joins})
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
				if !bodyJoins(info, fl.Body, lookup) {
					p.Reportf(g.Pos(), "goroutine has no completion signal (WaitGroup.Done, channel close/send/receive, or context-cancel exit)")
				}
				return true
			}
			if fn := staticCallee(info, g.Call); fn != nil {
				if f, ok := p.ImportFact(fn).(*joinFact); ok && !f.joins {
					p.Reportf(g.Pos(), "goroutine runs %s, which has no completion signal (WaitGroup.Done, channel close/send/receive, or context-cancel exit)", fn.FullName())
				}
			}
			return true
		})
	}
}

// bodyJoins reports whether the body contains a completion signal: a
// sync.WaitGroup.Done call, a channel close, send, receive, or range, or a
// static call to a function whose summary joins.
func bodyJoins(info *types.Info, body ast.Node, joins func(*types.Func) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if b := builtinOf(info, n); b != nil {
				if b.Name() == "close" {
					found = true
				}
				return true
			}
			if fn := staticCallee(info, n); fn != nil {
				if isWaitGroupDone(fn) || joins(fn) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isWaitGroupDone(fn *types.Func) bool {
	return fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}
