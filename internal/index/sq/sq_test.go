package sq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"svdbench/internal/vec"
)

func randMatrix(n, dim int, seed int64) *vec.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
	}
	return m
}

func TestTrainEmptyFails(t *testing.T) {
	if _, err := Train(vec.NewMatrix(0, 4)); err == nil {
		t.Error("empty training accepted")
	}
}

func TestRoundTripWithinBound(t *testing.T) {
	m := randMatrix(500, 16, 1)
	q, err := Train(m)
	if err != nil {
		t.Fatal(err)
	}
	bound := q.MaxErrorBound()
	for i := 0; i < 50; i++ {
		v := m.Row(i)
		rec := q.Decode(q.Encode(v))
		for j := range v {
			if d := math.Abs(float64(v[j] - rec[j])); d > float64(bound[j])+1e-6 {
				t.Fatalf("row %d dim %d error %v exceeds bound %v", i, j, d, bound[j])
			}
		}
	}
}

func TestExtremesClamp(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{0, 0}, {1, 10}})
	q, _ := Train(m)
	// Values outside the trained range must clamp, not wrap.
	code := q.Encode([]float32{-5, 100})
	if code[0] != 0 || code[1] != 255 {
		t.Errorf("clamped code = %v", code)
	}
}

func TestConstantDimensionSafe(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{3, 1}, {3, 2}})
	q, _ := Train(m) // first dim has zero range
	code := q.Encode([]float32{3, 1.5})
	rec := q.Decode(code)
	if math.IsNaN(float64(rec[0])) || math.Abs(float64(rec[0]-3)) > 1e-5 {
		t.Errorf("constant dim decoded to %v", rec[0])
	}
}

func TestDistanceL2SqMatchesDecoded(t *testing.T) {
	m := randMatrix(200, 8, 2)
	q, _ := Train(m)
	codes := q.EncodeAll(m)
	query := m.Row(0)
	for i := 0; i < 20; i++ {
		fast := q.DistanceAt(query, codes, i)
		slow := vec.L2Sq(query, q.Decode(codes[i*q.Dim():(i+1)*q.Dim()]))
		if math.Abs(float64(fast-slow)) > 1e-3 {
			t.Fatalf("row %d: fast %v vs slow %v", i, fast, slow)
		}
	}
}

// Property: quantised distances preserve the near-vs-far ordering.
func TestPropertyOrderingPreserved(t *testing.T) {
	m := randMatrix(300, 16, 3)
	q, _ := Train(m)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := m.Row(r.Intn(m.Len()))
		near := vec.Clone(base)
		for j := range near {
			near[j] += float32(r.NormFloat64() * 0.01)
		}
		far := vec.Clone(base)
		for j := range far {
			far[j] += float32(r.NormFloat64() * 2)
		}
		dn := q.DistanceL2Sq(base, q.Encode(near))
		df := q.DistanceL2Sq(base, q.Encode(far))
		return dn < df
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodePanicsOnWrongDim(t *testing.T) {
	m := randMatrix(10, 4, 4)
	q, _ := Train(m)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong dim")
		}
	}()
	q.Encode(make([]float32, 2))
}

func TestMemoryBytes(t *testing.T) {
	m := randMatrix(10, 4, 5)
	q, _ := Train(m)
	if q.MemoryBytes() != 32 {
		t.Errorf("memory = %d, want 32", q.MemoryBytes())
	}
}
