package sq

import (
	"bytes"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
)

func TestQuantizerPersistRoundTrip(t *testing.T) {
	m := randMatrix(200, 16, 9)
	orig, err := Train(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuantizer(binenc.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if !reflect.DeepEqual(orig.Encode(m.Row(i)), got.Encode(m.Row(i))) {
			t.Fatalf("row %d codes differ after round trip", i)
		}
	}
	if got.Dim() != orig.Dim() {
		t.Error("dim mismatch")
	}
}

func TestReadQuantizerRejectsGarbage(t *testing.T) {
	if _, err := ReadQuantizer(binenc.NewReader(bytes.NewReader([]byte("x")))); err == nil {
		t.Error("garbage accepted")
	}
	// Dim inconsistent with slice lengths.
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	w.Int(8)
	w.F32s(make([]float32, 4)) // min too short
	w.F32s(make([]float32, 8))
	w.Flush()
	if _, err := ReadQuantizer(binenc.NewReader(&buf)); err == nil {
		t.Error("inconsistent header accepted")
	}
}
