// Package sq implements scalar quantisation: each float32 dimension is
// linearly mapped to an int8 using per-dimension min/max learned from
// training data. LanceDB's HNSW runs over scalar-quantised vectors in the
// paper's setup; the codec costs accuracy (O-3) in exchange for 4× less
// memory.
package sq

import (
	"fmt"

	"svdbench/internal/vec"
)

// Quantizer holds the per-dimension affine mapping.
type Quantizer struct {
	dim   int
	min   []float32
	scale []float32 // (max-min)/255 per dimension
}

// Train learns per-dimension ranges from the training rows.
func Train(training *vec.Matrix) (*Quantizer, error) {
	if training.Len() == 0 {
		return nil, fmt.Errorf("sq: empty training set")
	}
	dim := training.Dim
	q := &Quantizer{
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
	}
	maxv := make([]float32, dim)
	copy(q.min, training.Row(0))
	copy(maxv, training.Row(0))
	for i := 1; i < training.Len(); i++ {
		row := training.Row(i)
		for j, v := range row {
			if v < q.min[j] {
				q.min[j] = v
			}
			if v > maxv[j] {
				maxv[j] = v
			}
		}
	}
	for j := range q.scale {
		r := maxv[j] - q.min[j]
		if r <= 0 {
			r = 1
		}
		q.scale[j] = r / 255
	}
	return q, nil
}

// Dim returns the trained dimensionality.
func (q *Quantizer) Dim() int { return q.dim }

// Encode quantises v to one byte per dimension.
func (q *Quantizer) Encode(v []float32) []byte {
	if len(v) != q.dim {
		panic(fmt.Sprintf("sq: encode dim %d, want %d", len(v), q.dim))
	}
	code := make([]byte, q.dim)
	for j, x := range v {
		t := (x - q.min[j]) / q.scale[j]
		switch {
		case t <= 0:
			code[j] = 0
		case t >= 255:
			code[j] = 255
		default:
			code[j] = byte(t + 0.5)
		}
	}
	return code
}

// EncodeAll quantises every row into a packed n×dim byte array.
func (q *Quantizer) EncodeAll(data *vec.Matrix) []byte {
	n := data.Len()
	codes := make([]byte, n*q.dim)
	for i := 0; i < n; i++ {
		copy(codes[i*q.dim:], q.Encode(data.Row(i)))
	}
	return codes
}

// Decode reconstructs the approximate vector of a code.
func (q *Quantizer) Decode(code []byte) []float32 {
	v := make([]float32, q.dim)
	for j, c := range code {
		v[j] = q.min[j] + float32(c)*q.scale[j]
	}
	return v
}

// DistanceL2Sq computes squared Euclidean distance between a full-precision
// query and a code without materialising the decoded vector.
func (q *Quantizer) DistanceL2Sq(query []float32, code []byte) float32 {
	var s float32
	for j, c := range code {
		d := query[j] - (q.min[j] + float32(c)*q.scale[j])
		s += d * d
	}
	return s
}

// DistanceAt scores code i inside a packed code array.
func (q *Quantizer) DistanceAt(query []float32, codes []byte, i int) float32 {
	return q.DistanceL2Sq(query, codes[i*q.dim:(i+1)*q.dim])
}

// MemoryBytes reports the codec's parameter footprint.
func (q *Quantizer) MemoryBytes() int64 { return int64(q.dim) * 8 }

// MaxErrorBound returns the worst-case per-dimension reconstruction error
// (half a quantisation step), useful for accuracy reasoning in tests.
func (q *Quantizer) MaxErrorBound() []float32 {
	out := make([]float32, q.dim)
	for j := range out {
		out[j] = q.scale[j] / 2
	}
	return out
}
