package sq

import (
	"fmt"

	"svdbench/internal/binenc"
)

// WriteTo serialises the trained quantiser.
func (q *Quantizer) WriteTo(w *binenc.Writer) {
	w.Int(q.dim)
	w.F32s(q.min)
	w.F32s(q.scale)
}

// ReadQuantizer deserialises a quantiser written with WriteTo.
func ReadQuantizer(r *binenc.Reader) (*Quantizer, error) {
	q := &Quantizer{dim: r.Int()}
	q.min = r.F32s()
	q.scale = r.F32s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if q.dim <= 0 || len(q.min) != q.dim || len(q.scale) != q.dim {
		return nil, fmt.Errorf("sq: corrupt quantiser (dim=%d min=%d scale=%d)", q.dim, len(q.min), len(q.scale))
	}
	return q, nil
}
