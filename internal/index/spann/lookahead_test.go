package spann

import (
	"context"
	"reflect"
	"testing"

	"svdbench/internal/index"
)

func recordOne(ix *Index, q []float32, opts index.SearchOptions) (index.Result, index.Profile) {
	var prof index.Profile
	opts.Recorder = &prof
	res := ix.Search(q, 10, opts)
	return res, prof
}

// TestLookAheadResultsAndDemandIdentical: look-ahead over the posting probe
// sequence may only change when pages are read — results, demand stats and
// recorded steps modulo Prefetch are byte-identical at every depth.
func TestLookAheadResultsAndDemandIdentical(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	base := index.SearchOptions{NProbe: 8}
	totalPrefetch := 0
	for _, la := range []int{1, 2, 8} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			q := ds.Queries.Row(qi)
			want, wantProf := recordOne(ix, q, base)
			got, gotProf := recordOne(ix, q, base.With(index.WithLookAhead(la)))
			if !reflect.DeepEqual(want.IDs, got.IDs) || !reflect.DeepEqual(want.Dists, got.Dists) {
				t.Fatalf("la=%d query=%d: look-ahead changed the results", la, qi)
			}
			gs := got.Stats
			totalPrefetch += gs.PrefetchPages
			if gs.PrefetchUsed > gs.PrefetchPages {
				t.Fatalf("la=%d query=%d: prefetch used %d exceeds issued %d", la, qi, gs.PrefetchUsed, gs.PrefetchPages)
			}
			gs.PrefetchPages, gs.PrefetchUsed = 0, 0
			if gs != want.Stats {
				t.Fatalf("la=%d query=%d: demand stats differ: %+v vs %+v", la, qi, got.Stats, want.Stats)
			}
			if len(wantProf.Steps) != len(gotProf.Steps) {
				t.Fatalf("la=%d query=%d: step count %d vs %d", la, qi, len(wantProf.Steps), len(gotProf.Steps))
			}
			for i := range gotProf.Steps {
				s := gotProf.Steps[i]
				s.Prefetch = nil
				if !reflect.DeepEqual(wantProf.Steps[i], s) {
					t.Fatalf("la=%d query=%d step %d differs beyond Prefetch", la, qi, i)
				}
			}
		}
	}
	if totalPrefetch == 0 {
		t.Error("no query at any depth issued a prefetch")
	}
}

// TestLookAheadFullyUsedWithoutCache: SPANN's probe order is fixed after
// centroid navigation, so without a cache every prefetched posting is later
// demanded — the wasted-prefetch ratio is exactly zero.
func TestLookAheadFullyUsedWithoutCache(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	opts := index.SearchOptions{NProbe: 8}.With(index.WithLookAhead(4))
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		s := ix.Search(ds.Queries.Row(qi), 10, opts).Stats
		if s.PrefetchPages == 0 {
			t.Fatalf("query %d issued no prefetch at nprobe=8, la=4", qi)
		}
		if s.PrefetchUsed != s.PrefetchPages {
			t.Fatalf("query %d wasted prefetch (%d used of %d) despite a fixed probe order",
				qi, s.PrefetchUsed, s.PrefetchPages)
		}
	}
}

// TestLookAheadPrefetchRunsContiguous: recorded speculative runs carry the
// posting's contiguous layout so replay issues one large read per posting.
func TestLookAheadPrefetchRunsContiguous(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	opts := index.SearchOptions{NProbe: 8}.With(index.WithLookAhead(2))
	runs := 0
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		_, prof := recordOne(ix, ds.Queries.Row(qi), opts)
		for _, st := range prof.Steps {
			for _, pf := range st.Prefetch {
				runs++
				if !pf.Contiguous {
					t.Fatalf("query %d recorded a non-contiguous posting prefetch", qi)
				}
				if len(pf.Pages) == 0 {
					t.Fatalf("query %d recorded an empty prefetch run", qi)
				}
			}
		}
	}
	if runs == 0 {
		t.Error("no prefetch runs recorded")
	}
}

// TestSearchBatchMatchesSearch: the Searcher implementation must agree with
// a sequential Search loop at every concurrency.
func TestSearchBatchMatchesSearch(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	var _ index.Searcher = ix
	queries := make([][]float32, ds.Queries.Len())
	for qi := range queries {
		queries[qi] = ds.Queries.Row(qi)
	}
	for _, qc := range []int{1, 4} {
		opts := index.SearchOptions{NProbe: 8}.With(
			index.WithQueryConcurrency(qc), index.WithLookAhead(2))
		batch := ix.SearchBatch(context.Background(), queries, 10, opts)
		for qi, q := range queries {
			if !reflect.DeepEqual(batch[qi], ix.Search(q, 10, opts)) {
				t.Fatalf("qc=%d query=%d: batch result differs from Search", qc, qi)
			}
		}
	}
}
