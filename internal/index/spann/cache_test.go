package spann

import (
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// cachedNProbe drives every cache test at a probe count that touches
// several postings per query.
const cachedNProbe = 8

func spannCacheOpts(policy string, nodes int) index.SearchOptions {
	return index.SearchOptions{NProbe: cachedNProbe, NodeCacheNodes: nodes, NodeCachePolicy: policy}
}

// TestCacheResultsIdentical: the posting cache absorbs reads and must never
// change which postings are probed or what they return.
func TestCacheResultsIdentical(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	base := index.SearchOptions{NProbe: cachedNProbe}
	for _, policy := range []string{index.NodeCacheStatic, index.NodeCacheLRU} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			want := ix.Search(ds.Queries.Row(qi), 10, base)
			got := ix.Search(ds.Queries.Row(qi), 10, spannCacheOpts(policy, 16))
			if !reflect.DeepEqual(want.IDs, got.IDs) || !reflect.DeepEqual(want.Dists, got.Dists) {
				t.Fatalf("policy=%s query=%d: cached results differ from uncached", policy, qi)
			}
		}
	}
}

// TestCachePageConservation: PagesRead+CachePages must equal the uncached
// PagesRead for every query, and the recorded profile must agree.
func TestCachePageConservation(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	base := index.SearchOptions{NProbe: cachedNProbe}
	for _, policy := range []string{index.NodeCacheStatic, index.NodeCacheLRU} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			want := ix.Search(ds.Queries.Row(qi), 10, base)
			var prof index.Profile
			opts := spannCacheOpts(policy, 8)
			opts.Recorder = &prof
			got := ix.Search(ds.Queries.Row(qi), 10, opts)
			if got.Stats.PagesRead+got.Stats.CachePages != want.Stats.PagesRead {
				t.Fatalf("policy=%s query=%d: read %d + cached %d != uncached %d",
					policy, qi, got.Stats.PagesRead, got.Stats.CachePages, want.Stats.PagesRead)
			}
			if prof.TotalPages() != got.Stats.PagesRead || prof.TotalCachePages() != got.Stats.CachePages {
				t.Fatalf("policy=%s query=%d: profile (%d,%d) != stats (%d,%d)", policy, qi,
					prof.TotalPages(), prof.TotalCachePages(), got.Stats.PagesRead, got.Stats.CachePages)
			}
		}
	}
}

// TestStaticCacheStrictlyReducesReads: warming the postings nearest the
// navigator entry guarantees hits, so device reads strictly drop.
func TestStaticCacheStrictlyReducesReads(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	base := index.SearchOptions{NProbe: cachedNProbe}
	opts := spannCacheOpts(index.NodeCacheStatic, cachedNProbe)
	var baseReads, cachedReads, cachedPages int
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		baseReads += ix.Search(ds.Queries.Row(qi), 10, base).Stats.PagesRead
		res := ix.Search(ds.Queries.Row(qi), 10, opts)
		cachedReads += res.Stats.PagesRead
		cachedPages += res.Stats.CachePages
	}
	if cachedReads >= baseReads {
		t.Errorf("cached reads %d not strictly below uncached %d", cachedReads, baseReads)
	}
	if cachedPages == 0 {
		t.Error("static posting cache absorbed no pages")
	}
}

// TestCacheWarmPostingsOrdered: the warm set is unique, capped, and ordered
// by centroid distance from the navigator entry.
func TestCacheWarmPostingsOrdered(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	warm := ix.CacheWarmPostings(ix.Postings() + 10)
	if len(warm) == 0 || len(warm) > ix.Postings() {
		t.Fatalf("warm set size %d, want 1..%d", len(warm), ix.Postings())
	}
	seen := map[int32]bool{}
	for _, p := range warm {
		if p < 0 || int(p) >= ix.Postings() {
			t.Fatalf("warm posting %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("warm posting %d duplicated", p)
		}
		seen[p] = true
	}
	small := ix.CacheWarmPostings(3)
	if len(small) != 3 {
		t.Fatalf("capped warm set size %d, want 3", len(small))
	}
	if !reflect.DeepEqual(small, warm[:3]) {
		t.Errorf("capped warm set %v is not a prefix of the full ordering %v", small, warm[:3])
	}
}

// TestCacheSnapshotCounts: counters surface through CacheSnapshot and obey
// hits+misses == touches.
func TestCacheSnapshotCounts(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	opts := spannCacheOpts(index.NodeCacheLRU, 8)
	if _, ok := ix.CacheSnapshot(opts); ok {
		t.Fatal("snapshot reported before any search created the cache")
	}
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.Search(ds.Queries.Row(qi), 10, opts)
	}
	snap, ok := ix.CacheSnapshot(opts)
	if !ok {
		t.Fatal("no snapshot after cached searches")
	}
	if snap.Hits+snap.Misses != snap.Touches() {
		t.Errorf("hits %d + misses %d != touches %d", snap.Hits, snap.Misses, snap.Touches())
	}
	if snap.Touches() == 0 {
		t.Error("cache saw no traffic")
	}
}
