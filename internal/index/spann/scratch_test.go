package spann

import (
	"context"
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// TestScratchReuseIdentity: one scratch and one dst reused across every
// query must reproduce the fresh-scratch search exactly — ids, distances,
// stats, and the full recorded execution (the navigator shares the scratch).
func TestScratchReuseIdentity(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{})
	opts := index.SearchOptions{NProbe: 6, LookAhead: 2}
	scr := index.NewSearchScratch()
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		q := ds.Queries.Row(qi)
		base, baseProf := recordOne(ix, q, opts)
		var prof index.Profile
		o := opts
		o.Recorder = &prof
		o.Scratch = scr
		ix.SearchInto(q, 10, o, &dst)
		if !reflect.DeepEqual(base.IDs, dst.IDs) || !reflect.DeepEqual(base.Dists, dst.Dists) {
			t.Fatalf("query %d: reused scratch changed results", qi)
		}
		if base.Stats != dst.Stats {
			t.Fatalf("query %d: stats differ: %+v vs %+v", qi, base.Stats, dst.Stats)
		}
		if !reflect.DeepEqual(baseProf.Steps, prof.Steps) {
			t.Fatalf("query %d: recorded execution differs under scratch reuse", qi)
		}
	}
}

// TestSearchBatchMatchesSequential: the batch driver threads one scratch per
// worker; results must match single-query searches at any concurrency.
func TestSearchBatchMatchesSequential(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{})
	opts := index.SearchOptions{NProbe: 6}
	queries := make([][]float32, ds.Queries.Len())
	want := make([]index.Result, len(queries))
	for qi := range queries {
		queries[qi] = ds.Queries.Row(qi)
		want[qi] = ix.Search(queries[qi], 10, opts)
	}
	for _, workers := range []int{1, 4} {
		got := ix.SearchBatch(context.Background(), queries, 10,
			opts.With(index.WithQueryConcurrency(workers)))
		for qi := range queries {
			if !reflect.DeepEqual(want[qi].IDs, got[qi].IDs) ||
				!reflect.DeepEqual(want[qi].Dists, got[qi].Dists) ||
				want[qi].Stats != got[qi].Stats {
				t.Fatalf("workers=%d query %d: batch result differs", workers, qi)
			}
		}
	}
}

// TestSearchSteadyStateZeroAlloc pins the tentpole: with a reused scratch
// and dst, no recorder and no posting cache, a steady-state SPANN query —
// including its in-memory HNSW navigation — performs zero heap allocations.
func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{})
	opts := index.SearchOptions{NProbe: 6, Scratch: index.NewSearchScratch()}
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state search allocates %.1f times per query, want 0", allocs)
	}
}

// TestSearchCachedSteadyStateZeroAlloc extends the zero-alloc pin to the
// posting-cache path: the cache is keyed by a comparable struct, so a
// static-cache steady-state query allocates nothing either. (A formatted
// string key would allocate on every lookup, cache hit or not — this test
// is the regression guard for that.)
func TestSearchCachedSteadyStateZeroAlloc(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	opts := spannCacheOpts(index.NodeCacheStatic, 64)
	opts.Scratch = index.NewSearchScratch()
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("cached steady-state search allocates %.1f times per query, want 0", allocs)
	}
}
