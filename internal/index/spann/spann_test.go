package spann

import (
	"testing"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "spann-test", N: 2000, Dim: 32, NumQueries: 40,
		Clusters: 16, Seed: 13, Metric: vec.Cosine, GroundK: 10,
	})
}

func build(t *testing.T, ds *dataset.Dataset, cfg Config) *Index {
	t.Helper()
	cfg.Metric = ds.Spec.Metric
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ix, err := Build(ds.Vectors, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	return ix
}

func searchAll(ds *dataset.Dataset, ix *Index, k, nprobe int) [][]int32 {
	out := make([][]int32, ds.Queries.Len())
	for qi := range out {
		out[qi] = ix.Search(ds.Queries.Row(qi), k, index.SearchOptions{NProbe: nprobe}).IDs
	}
	return out
}

func TestRecallReasonable(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	r := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 8), ds.GroundTruth, 10)
	if r < 0.7 {
		t.Errorf("recall@10 with nprobe=8 = %v, want ≥0.7", r)
	}
}

func TestRecallGrowsWithNProbe(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	low := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 1), ds.GroundTruth, 10)
	high := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 16), ds.GroundTruth, 10)
	if high < low {
		t.Errorf("recall fell from %v to %v as nprobe grew", low, high)
	}
	// Probing every posting is exhaustive up to centroid navigation.
	all := dataset.MeanRecallAtK(searchAll(ds, ix, 10, ix.Postings()), ds.GroundTruth, 10)
	if all < 0.99 {
		t.Errorf("nprobe=all recall = %v, want ≈1", all)
	}
}

func TestReplicationAmplifiesSpace(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64, Replicas: 8, ReplicaEps: 0.3})
	amp := ix.SpaceAmplification()
	if amp <= 1 {
		t.Errorf("space amplification = %v, want >1 (closure replication)", amp)
	}
	if amp > 8 {
		t.Errorf("space amplification = %v exceeds the replica cap", amp)
	}
	none := build(t, ds, Config{PostingSize: 64, Replicas: 1})
	if none.SpaceAmplification() != 1 {
		t.Errorf("replicas=1 amplification = %v, want exactly 1", none.SpaceAmplification())
	}
}

func TestProbesIssueContiguousMultiPageReads(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	var p index.Profile
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{NProbe: 4, Recorder: &p})
	if res.Stats.PagesRead == 0 {
		t.Fatal("no I/O recorded")
	}
	ioSteps := 0
	for _, s := range p.Steps {
		if len(s.Pages) == 0 {
			continue
		}
		ioSteps++
		for i := 1; i < len(s.Pages); i++ {
			if s.Pages[i] != s.Pages[i-1]+1 {
				t.Fatalf("posting pages not contiguous: %v", s.Pages)
			}
		}
	}
	if ioSteps != 4 {
		t.Errorf("io steps = %d, want one per probe (4)", ioSteps)
	}
	// SPANN's point: far fewer, larger requests than DiskANN's per-node
	// fetches. A 64-vector posting of 32-d floats is ≥2 pages.
	if res.Stats.PagesRead < ioSteps {
		t.Errorf("pages %d below probe count %d", res.Stats.PagesRead, ioSteps)
	}
}

func TestNoDuplicateResults(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64, Replicas: 8, ReplicaEps: 0.5})
	for qi := 0; qi < 10; qi++ {
		res := ix.Search(ds.Queries.Row(qi), 10, index.SearchOptions{NProbe: 8})
		seen := map[int32]bool{}
		for _, id := range res.IDs {
			if seen[id] {
				t.Fatalf("duplicate id %d in results (replication leaked)", id)
			}
			seen[id] = true
		}
	}
}

func TestMemoryFarBelowStorage(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	if ix.MemoryBytes() >= ix.StorageBytes() {
		t.Errorf("memory %d not below storage %d", ix.MemoryBytes(), ix.StorageBytes())
	}
}

func TestFilterRespected(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{NProbe: 8, Filter: func(id int32) bool { return id%2 == 0 }})
	for _, id := range res.IDs {
		if id%2 != 0 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 8), nil, Config{}); err == nil {
		t.Error("empty build accepted")
	}
}

func TestMetadata(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{PostingSize: 64})
	if ix.Name() != "SPANN" || ix.Len() != 2000 || ix.Metric() != vec.Cosine {
		t.Error("metadata wrong")
	}
	if ix.Postings() == 0 {
		t.Error("no postings")
	}
}
