// Package spann implements a SPANN-style storage-based cluster index (Chen
// et al., NeurIPS 2021), the other disk-resident index family the paper
// discusses (Sec. II-B and ref [30]): centroids stay in memory — navigated
// by a small in-memory HNSW graph — while posting lists (the cluster
// members' full vectors) live contiguously on the SSD.
//
// SPANN's contrast with DiskANN is exactly the paper's storage-layout
// dichotomy:
//
//   - cluster-based postings match the SSD's access granularity: one probe
//     reads a handful of *contiguous* pages instead of DiskANN's dependent
//     chains of 4 KiB random reads, and
//   - boundary vectors are replicated into up to Replicas closest clusters
//     (the closure rule), trading space amplification — up to 8× in the
//     original system — for single-probe recall.
//
// The extD experiment compares the two systems' performance and I/O
// characteristics head-to-head.
package spann

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"svdbench/internal/index"
	"svdbench/internal/index/hnsw"
	"svdbench/internal/index/kmeans"
	"svdbench/internal/storage/nodecache"
	"svdbench/internal/vec"
)

// Config controls construction.
type Config struct {
	// PostingSize is the target vectors per posting list (default 128).
	PostingSize int
	// Replicas caps how many clusters one vector may join (default 4).
	Replicas int
	// ReplicaEps is the closure slack: a vector joins every cluster whose
	// centroid is within (1+ReplicaEps)× the distance of its nearest
	// centroid (default 0.15).
	ReplicaEps float64
	// Metric is the query distance.
	Metric vec.Metric
	// Seed drives clustering.
	Seed int64
	// PageSize is the storage page size (default 4096).
	PageSize int
}

// Index is a built SPANN-style index.
type Index struct {
	cfg       Config
	data      *vec.Matrix
	ids       []int32
	centroids *vec.Matrix
	navigator *hnsw.Index // in-memory centroid graph
	postings  [][]int32   // rows per posting list
	pages     [][]int64   // storage pages per posting list
	replicas  int64       // total posting entries (≥ n)
	cost      index.CostModel
	scorer    *index.Scorer

	// nodeCaches holds one posting cache per (policy, capacity) requested
	// through search options; a "node" here is one posting list, SPANN's
	// unit of storage access.
	cacheMu    sync.Mutex
	nodeCaches map[cacheID]*nodecache.Cache
}

// Build clusters the data into page-friendly postings with boundary
// replication and an in-memory centroid navigator.
func Build(data *vec.Matrix, ids []int32, cfg Config) (*Index, error) {
	n := data.Len()
	if n == 0 {
		return nil, fmt.Errorf("spann: empty data")
	}
	if cfg.PostingSize <= 0 {
		cfg.PostingSize = 128
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 4
	}
	if cfg.ReplicaEps <= 0 {
		cfg.ReplicaEps = 0.15
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	k := (n + cfg.PostingSize - 1) / cfg.PostingSize
	if k < 1 {
		k = 1
	}
	res := kmeans.Run(data, kmeans.Config{K: k, Seed: cfg.Seed, MaxIter: 12})
	ix := &Index{
		cfg:       cfg,
		data:      data,
		ids:       ids,
		centroids: res.Centroids,
		postings:  make([][]int32, res.Centroids.Len()),
		cost:      index.DefaultCostModel(),
		scorer:    index.NewScorer(data, cfg.Metric),
	}
	// Closure assignment with replication: join every centroid within
	// (1+eps) of the nearest, up to Replicas.
	nc := ix.centroids.Len()
	maxProbe := cfg.Replicas
	if maxProbe > nc {
		maxProbe = nc
	}
	for row := 0; row < n; row++ {
		v := data.Row(row)
		near := kmeans.NearestN(ix.centroids, v, maxProbe) // ascending by distance
		d0 := vec.L2Sq(v, ix.centroids.Row(near[0]))
		limit := float32((1 + cfg.ReplicaEps) * (1 + cfg.ReplicaEps) * float64(d0))
		for i, c := range near {
			if i > 0 && vec.L2Sq(v, ix.centroids.Row(c)) > limit {
				break // near is sorted: everything further is outside too
			}
			ix.postings[c] = append(ix.postings[c], int32(row))
			ix.replicas++
		}
	}
	// Navigate centroids with a small memory HNSW (the original uses an
	// SPTAG tree+graph; any memory ANN over centroids serves the role).
	nav, err := hnsw.Build(ix.centroids, nil, hnsw.Config{
		M: 8, EfConstruction: 80, Metric: cfg.Metric, Seed: cfg.Seed + 3,
	})
	if err != nil {
		return nil, fmt.Errorf("spann: centroid navigator: %w", err)
	}
	ix.navigator = nav
	return ix, nil
}

// AssignPages lays each posting list out on contiguous storage pages.
func (ix *Index) AssignPages(alloc func(npages int64) int64) {
	entry := int64(ix.data.Dim)*4 + 8 // full vector + id
	ix.pages = make([][]int64, len(ix.postings))
	for c, list := range ix.postings {
		bytes := int64(len(list)) * entry
		npages := (bytes + int64(ix.cfg.PageSize) - 1) / int64(ix.cfg.PageSize)
		if npages == 0 {
			continue
		}
		first := alloc(npages)
		pages := make([]int64, npages)
		for i := range pages {
			pages[i] = first + int64(i)
		}
		ix.pages[c] = pages
	}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "SPANN" }

// Metric implements index.Index.
func (ix *Index) Metric() vec.Metric { return ix.cfg.Metric }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.data.Len() }

// Postings returns the number of posting lists.
func (ix *Index) Postings() int { return len(ix.postings) }

// SpaceAmplification reports total posting entries divided by the vector
// count — SPANN's replication cost (up to 8× in the original paper).
func (ix *Index) SpaceAmplification() float64 {
	return float64(ix.replicas) / float64(ix.data.Len())
}

// MemoryBytes implements index.SizeReporter: centroids plus the navigator.
func (ix *Index) MemoryBytes() int64 {
	cb := int64(ix.centroids.Len()) * int64(ix.centroids.Dim) * 4
	return cb + ix.navigator.MemoryBytes()
}

// StorageBytes implements index.SizeReporter.
func (ix *Index) StorageBytes() int64 {
	var total int64
	for _, pages := range ix.pages {
		total += int64(len(pages)) * int64(ix.cfg.PageSize)
	}
	return total
}

// CacheWarmPostings returns up to n posting ids ordered by centroid
// distance from the navigator's entry point (ties broken by id) — the warm
// set of a static node cache. It is SPANN's analogue of DiskANN's BFS from
// the medoid: every query descends the navigator from the same entry, so
// the postings around it are touched most. Postings with no assigned pages
// are skipped; they would occupy capacity without saving any I/O.
func (ix *Index) CacheWarmPostings(n int) []int32 {
	nc := ix.centroids.Len()
	if n > nc {
		n = nc
	}
	if n <= 0 {
		return nil
	}
	entry := ix.navigator.Entry()
	if entry < 0 {
		return nil
	}
	ev := ix.centroids.Row(int(entry))
	type cand struct {
		id int32
		d  float32
	}
	cands := make([]cand, 0, nc)
	for c := 0; c < nc; c++ {
		if ix.pages != nil && len(ix.pages[c]) == 0 {
			continue
		}
		cands = append(cands, cand{id: int32(c), d: vec.L2Sq(ev, ix.centroids.Row(c))})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// cacheID is the comparable cache identity of one option set. A struct key
// keeps the per-query cache lookup allocation-free (a formatted string key
// would allocate on every search, including cache hits).
type cacheID struct {
	policy nodecache.Policy
	nodes  int
}

// nodeCacheFor returns (creating on first use) the posting cache the
// options select, or nil when caching is disabled.
func (ix *Index) nodeCacheFor(opts index.SearchOptions) *nodecache.Cache {
	if opts.NodeCacheNodes <= 0 {
		return nil
	}
	policy, err := nodecache.ParsePolicy(opts.NodeCachePolicy)
	if err != nil {
		panic(err.Error())
	}
	key := cacheID{policy: policy, nodes: opts.NodeCacheNodes}
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	if c, ok := ix.nodeCaches[key]; ok {
		return c
	}
	c := nodecache.New(nodecache.Config{
		Capacity: opts.NodeCacheNodes,
		Policy:   policy,
		PageSize: ix.cfg.PageSize,
		Seed:     ix.cfg.Seed,
	})
	if policy == nodecache.PolicyStatic {
		c.Warm(ix.CacheWarmPostings(opts.NodeCacheNodes), func(p int32) int { return len(ix.pages[p]) }) //annlint:allow hotalloc -- warm posting set is computed once when the cache is first built
	}
	if ix.nodeCaches == nil {
		ix.nodeCaches = map[cacheID]*nodecache.Cache{} //annlint:allow hotalloc -- lazy one-time init of the per-index cache table
	}
	ix.nodeCaches[key] = c
	return c
}

// CacheSnapshot reports the counters of the posting cache the options
// select, or ok=false when no search has instantiated it yet.
func (ix *Index) CacheSnapshot(opts index.SearchOptions) (nodecache.Snapshot, bool) {
	if opts.NodeCacheNodes <= 0 {
		return nodecache.Snapshot{}, false
	}
	policy, err := nodecache.ParsePolicy(opts.NodeCachePolicy)
	if err != nil {
		return nodecache.Snapshot{}, false
	}
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	c, ok := ix.nodeCaches[cacheID{policy: policy, nodes: opts.NodeCacheNodes}]
	if !ok {
		return nodecache.Snapshot{}, false
	}
	return c.Snapshot(), true
}

// Search implements index.Index: navigate centroids in memory, read the
// NProbe closest posting lists from storage (each one a contiguous
// multi-page request), and scan them with full-precision distances.
func (ix *Index) Search(q []float32, k int, opts index.SearchOptions) index.Result {
	var r index.Result
	ix.SearchInto(q, k, opts, &r)
	return r
}

// SearchInto implements index.SearcherInto: the probe sequence of Search
// writing into a caller-owned Result. The navigator shares the scratch (its
// fields are fully consumed before the posting scan reuses them), posting
// rows are batch-scored, and the dedup/in-flight maps become epoch sets, so
// with a reused scratch and dst the steady-state path (no recorder, no
// posting cache) performs no allocations per query. Results, Stats and the
// recorded execution are byte-identical to the allocating implementation.
//
//annlint:hotpath
func (ix *Index) SearchInto(q []float32, k int, opts index.SearchOptions, dst *index.Result) {
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = 4
	}
	if nprobe > len(ix.postings) {
		nprobe = len(ix.postings)
	}
	rec := opts.Recorder
	stats := index.Stats{}
	cache := ix.nodeCacheFor(opts)
	scr := index.ScratchFor(opts)

	// In-memory centroid navigation (its compute is charged through the
	// navigator's own recorder into ours).
	navOpts := index.SearchOptions{EfSearch: nprobe * 2, Recorder: rec, Scratch: scr}
	ix.navigator.SearchInto(q, nprobe, navOpts, &scr.Nav)
	nav := &scr.Nav
	stats.DistComps += nav.Stats.DistComps
	stats.Hops += nav.Stats.Hops

	qs := ix.scorer.Query(q)
	heap := &scr.Bounded
	heap.Reset()
	// Look-ahead: the probe order is fully known after navigation, so the
	// search can issue posting j+1..j+la's contiguous reads alongside probe
	// j's demand read — they complete in the background while probe j's
	// vectors are scanned. nextPF tracks the first posting not yet
	// considered for prefetch; selection only peeks at the cache (Contains)
	// and charges no CPU, keeping the demand execution byte-identical to
	// LookAhead==0.
	la := opts.LookAhead
	var inFlight *index.EpochSet
	nextPF := 1
	if la > 0 {
		inFlight = &scr.InFlight
		inFlight.Begin(len(ix.postings))
	}
	// Replication surfaces the same row through several postings; score
	// each row once so copies cannot crowd distinct ids out of the top-k.
	// (The navigator is done with scr.Visited; a new epoch repurposes it.)
	scored := &scr.Visited
	scored.Begin(ix.data.Len())
	for j, c := range nav.IDs {
		if la > 0 {
			for ; nextPF < len(nav.IDs) && nextPF <= j+la; nextPF++ {
				pc := nav.IDs[nextPF]
				if ix.pages == nil || len(ix.pages[pc]) == 0 || inFlight.Contains(pc) {
					continue
				}
				if cache != nil && cache.Contains(pc) {
					continue
				}
				inFlight.Add(pc)
				stats.PrefetchPages += len(ix.pages[pc])
				rec.AddPrefetch(index.PrefetchRun{Pages: ix.pages[pc], Contiguous: true})
			}
		}
		list := ix.postings[c]
		if ix.pages != nil && len(ix.pages[c]) > 0 {
			if cache != nil && cache.Touch(c, len(ix.pages[c])) {
				// Cached posting: charge the in-memory hit cost
				// instead of the contiguous device read.
				stats.CachePages += len(ix.pages[c])
				rec.AddCPU(cache.HitCost(len(ix.pages[c])))
				rec.AddCacheHit(len(ix.pages[c]))
			} else {
				if la > 0 && inFlight.Contains(c) {
					// A look-ahead already issued this posting's read;
					// the demand joins it at replay. Demand accounting
					// is invariant under look-ahead.
					stats.PrefetchUsed += len(ix.pages[c])
					inFlight.Remove(c)
				}
				// One posting probe = one contiguous multi-page read.
				rec.AddContiguousIO(ix.pages[c])
				stats.PagesRead += len(ix.pages[c])
			}
		}
		// Gather the rows this probe actually scores (unseen and unfiltered),
		// batch-score them, then push in gathered order — the same distances
		// and heap-operation sequence as per-row scoring.
		scr.IDs = scr.IDs[:0]
		for _, row := range list {
			if scored.Contains(row) {
				continue
			}
			scored.Add(row)
			if opts.Filter != nil && !opts.Filter(ix.extID(row)) {
				continue
			}
			scr.IDs = append(scr.IDs, row)
		}
		if cap(scr.Dists) < len(scr.IDs) {
			scr.Dists = make([]float32, len(scr.IDs)) //annlint:allow hotalloc -- cap-guarded growth of the scratch gather buffer; steady state reuses its capacity
		}
		dists := scr.Dists[:len(scr.IDs)]
		qs.DistBatch(scr.IDs, dists)
		for i, row := range scr.IDs {
			stats.DistComps++
			heap.PushBounded(index.Neighbor{ID: ix.extID(row), Dist: dists[i]}, k)
		}
		rec.AddCPU(ix.cost.Dist(ix.data.Dim, len(list)) + ix.cost.Heap(len(list)))
	}
	rec.Flush()
	scr.Neighbors = heap.DrainAscending(scr.Neighbors[:0])
	index.ResultInto(scr.Neighbors, k, stats, dst)
}

func (ix *Index) extID(row int32) int32 {
	if ix.ids != nil {
		return ix.ids[row]
	}
	return row
}

// SearchBatch implements index.Searcher over the shared batch driver: every
// query runs the same probe sequence as Search, with per-query recorders
// resolved through opts.RecorderFor.
func (ix *Index) SearchBatch(ctx context.Context, queries [][]float32, k int, opts index.SearchOptions) []index.Result {
	return index.BatchRun(ctx, len(queries), opts, func(qi int, o index.SearchOptions) index.Result {
		return ix.Search(queries[qi], k, o)
	})
}

var _ index.Index = (*Index)(nil)
var _ index.Searcher = (*Index)(nil)
var _ index.SearcherInto = (*Index)(nil)
var _ index.SizeReporter = (*Index)(nil)
