package index

import "testing"

func TestNewSearchOptions(t *testing.T) {
	o := NewSearchOptions(WithNProbe(32), WithEfSearch(128), WithSearchList(100), WithBeamWidth(4))
	if o.NProbe != 32 || o.EfSearch != 128 || o.SearchList != 100 || o.BeamWidth != 4 {
		t.Errorf("options not applied: %+v", o)
	}
}

func TestSearchOptionsWithIsCopy(t *testing.T) {
	base := NewSearchOptions(WithSearchList(10))
	mod := base.With(WithSearchList(100))
	if base.SearchList != 10 {
		t.Errorf("receiver mutated: %+v", base)
	}
	if mod.SearchList != 100 {
		t.Errorf("copy missing option: %+v", mod)
	}
}

func TestWithNodeCacheOptions(t *testing.T) {
	o := NewSearchOptions(WithNodeCacheNodes(500), WithNodeCachePolicy(NodeCacheStatic))
	if o.NodeCacheNodes != 500 || o.NodeCachePolicy != NodeCacheStatic {
		t.Errorf("cache options not applied: %+v", o)
	}
}

func TestNodeCacheMutable(t *testing.T) {
	cases := []struct {
		nodes  int
		policy string
		want   bool
	}{
		{0, "", false},               // disabled
		{0, NodeCacheLRU, false},     // disabled regardless of policy
		{10, NodeCacheStatic, false}, // static never mutates
		{10, NodeCacheLRU, true},     // LRU evolves across queries
		{10, "", true},               // empty policy defaults to LRU
	}
	for _, c := range cases {
		o := SearchOptions{NodeCacheNodes: c.nodes, NodeCachePolicy: c.policy}
		if got := o.NodeCacheMutable(); got != c.want {
			t.Errorf("NodeCacheMutable(nodes=%d, policy=%q) = %v, want %v", c.nodes, c.policy, got, c.want)
		}
	}
}

func TestWithFilter(t *testing.T) {
	o := NewSearchOptions(WithFilter(func(id int32) bool { return id%2 == 0 }))
	if o.Filter == nil || !o.Filter(2) || o.Filter(3) {
		t.Error("filter option not applied")
	}
	if cleared := o.With(WithFilter(nil)); cleared.Filter != nil {
		t.Error("nil filter should clear")
	}
}
