package index

import "testing"

func TestNewSearchOptions(t *testing.T) {
	o := NewSearchOptions(WithNProbe(32), WithEfSearch(128), WithSearchList(100), WithBeamWidth(4))
	if o.NProbe != 32 || o.EfSearch != 128 || o.SearchList != 100 || o.BeamWidth != 4 {
		t.Errorf("options not applied: %+v", o)
	}
}

func TestSearchOptionsWithIsCopy(t *testing.T) {
	base := NewSearchOptions(WithSearchList(10))
	mod := base.With(WithSearchList(100))
	if base.SearchList != 10 {
		t.Errorf("receiver mutated: %+v", base)
	}
	if mod.SearchList != 100 {
		t.Errorf("copy missing option: %+v", mod)
	}
}

func TestWithFilter(t *testing.T) {
	o := NewSearchOptions(WithFilter(func(id int32) bool { return id%2 == 0 }))
	if o.Filter == nil || !o.Filter(2) || o.Filter(3) {
		t.Error("filter option not applied")
	}
	if cleared := o.With(WithFilter(nil)); cleared.Filter != nil {
		t.Error("nil filter should clear")
	}
}
