package flat

import (
	"reflect"
	"testing"

	"svdbench/internal/index"
	"svdbench/internal/vec"
)

// TestScratchReuseIdentity: the batched unfiltered scan with a reused
// scratch must match the fresh-scratch search exactly for every metric.
func TestScratchReuseIdentity(t *testing.T) {
	for _, metric := range []vec.Metric{vec.L2, vec.IP, vec.Cosine} {
		ds := testData()
		ix := New(ds.Vectors, metric, nil)
		scr := index.NewSearchScratch()
		var dst index.Result
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			q := ds.Queries.Row(qi)
			base := ix.Search(q, 10, index.SearchOptions{})
			ix.SearchInto(q, 10, index.SearchOptions{Scratch: scr}, &dst)
			if !reflect.DeepEqual(base.IDs, dst.IDs) || !reflect.DeepEqual(base.Dists, dst.Dists) ||
				base.Stats != dst.Stats {
				t.Fatalf("metric %v query %d: reused scratch changed results", metric, qi)
			}
		}
	}
}

// TestSearchSteadyStateZeroAlloc: the unfiltered scan with a reused scratch
// and dst performs zero heap allocations per query.
func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, vec.Cosine, nil)
	opts := index.SearchOptions{Scratch: index.NewSearchScratch()}
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state scan allocates %.1f times per query, want 0", allocs)
	}
}
