// Package flat implements the exact brute-force index: every query scans all
// vectors. It is the accuracy baseline (recall 1.0 by construction) and the
// reference the paper's recall@10 numbers are measured against.
package flat

import (
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

// Index is a brute-force scan over a vector matrix.
type Index struct {
	data   *vec.Matrix
	metric vec.Metric
	cost   index.CostModel
	// ids maps matrix rows to external ids (nil means identity).
	ids []int32
}

// New creates a flat index over data. ids, when non-nil, maps rows to
// external ids.
func New(data *vec.Matrix, metric vec.Metric, ids []int32) *Index {
	return &Index{data: data, metric: metric, cost: index.DefaultCostModel(), ids: ids}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "FLAT" }

// Metric implements index.Index.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.data.Len() }

// MemoryBytes implements index.SizeReporter.
func (ix *Index) MemoryBytes() int64 {
	return int64(ix.data.Len()) * int64(ix.data.Dim) * 4
}

// StorageBytes implements index.SizeReporter.
func (ix *Index) StorageBytes() int64 { return 0 }

// scanChunk is the row batch of the unfiltered scan: the distance buffer
// lives in the scratch and each chunk is one batch-kernel call.
const scanChunk = 256

// Search implements index.Index with an exact scan.
func (ix *Index) Search(q []float32, k int, opts index.SearchOptions) index.Result {
	var r index.Result
	ix.SearchInto(q, k, opts, &r)
	return r
}

// SearchInto implements index.SearcherInto: the exact scan writing into a
// caller-owned Result. Unfiltered scans run through the batch distance
// kernel over the contiguous matrix (bit-identical to per-row vec.Distance);
// with a reused scratch and dst the steady-state path performs no
// allocations per query.
//
//annlint:hotpath
func (ix *Index) SearchInto(q []float32, k int, opts index.SearchOptions, dst *index.Result) {
	scr := index.ScratchFor(opts)
	heap := &scr.Bounded
	heap.Reset()
	n := ix.data.Len()
	comps := 0
	if opts.Filter == nil && n > 0 {
		raw := ix.data.Raw()
		dim := ix.data.Dim
		if cap(scr.Dists) < scanChunk {
			scr.Dists = make([]float32, scanChunk) //annlint:allow hotalloc -- cap-guarded growth of the scratch gather buffer; steady state reuses its capacity
		}
		for lo := 0; lo < n; lo += scanChunk {
			cn := n - lo
			if cn > scanChunk {
				cn = scanChunk
			}
			buf := scr.Dists[:cn]
			vec.DistanceBatch(ix.metric, q, raw[lo*dim:(lo+cn)*dim], buf)
			for i := 0; i < cn; i++ {
				id := int32(lo + i)
				if ix.ids != nil {
					id = ix.ids[lo+i]
				}
				heap.PushBounded(index.Neighbor{ID: id, Dist: buf[i]}, k)
			}
		}
		comps = n
	} else {
		for i := 0; i < n; i++ {
			id := int32(i)
			if ix.ids != nil {
				id = ix.ids[i]
			}
			if opts.Filter != nil && !opts.Filter(id) {
				continue
			}
			d := vec.Distance(ix.metric, q, ix.data.Row(i))
			comps++
			heap.PushBounded(index.Neighbor{ID: id, Dist: d}, k)
		}
	}
	stats := index.Stats{DistComps: comps}
	opts.Recorder.AddCPU(ix.cost.Dist(ix.data.Dim, comps) + ix.cost.Heap(comps))
	opts.Recorder.Flush()
	scr.Neighbors = heap.DrainAscending(scr.Neighbors[:0])
	index.ResultInto(scr.Neighbors, k, stats, dst)
}

var _ index.Index = (*Index)(nil)
var _ index.SearcherInto = (*Index)(nil)
var _ index.SizeReporter = (*Index)(nil)
