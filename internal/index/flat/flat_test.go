package flat

import (
	"testing"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func testData() *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "flat-test", N: 400, Dim: 24, NumQueries: 25,
		Clusters: 8, Seed: 3, Metric: vec.Cosine, GroundK: 10,
	})
}

func TestExactRecall(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, ds.Spec.Metric, nil)
	results := make([][]int32, ds.Queries.Len())
	for qi := range results {
		res := ix.Search(ds.Queries.Row(qi), 10, index.SearchOptions{})
		results[qi] = res.IDs
	}
	if r := dataset.MeanRecallAtK(results, ds.GroundTruth, 10); r != 1 {
		t.Errorf("flat recall = %v, want exactly 1", r)
	}
}

func TestStatsCountScan(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, ds.Spec.Metric, nil)
	res := ix.Search(ds.Queries.Row(0), 5, index.SearchOptions{})
	if res.Stats.DistComps != 400 {
		t.Errorf("dist comps = %d, want 400", res.Stats.DistComps)
	}
	if len(res.IDs) != 5 {
		t.Errorf("got %d ids", len(res.IDs))
	}
}

func TestProfileRecorded(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, ds.Spec.Metric, nil)
	var p index.Profile
	ix.Search(ds.Queries.Row(0), 5, index.SearchOptions{Recorder: &p})
	if p.TotalCPU() <= 0 {
		t.Error("no CPU recorded")
	}
	if p.TotalPages() != 0 {
		t.Error("memory index recorded I/O")
	}
}

func TestFilter(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, ds.Spec.Metric, nil)
	res := ix.Search(ds.Queries.Row(0), 5, index.SearchOptions{
		Filter: func(id int32) bool { return id%2 == 0 },
	})
	for _, id := range res.IDs {
		if id%2 != 0 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestExternalIDs(t *testing.T) {
	ds := testData()
	ids := make([]int32, ds.Vectors.Len())
	for i := range ids {
		ids[i] = int32(i) + 1000
	}
	ix := New(ds.Vectors, ds.Spec.Metric, ids)
	res := ix.Search(ds.Queries.Row(0), 3, index.SearchOptions{})
	for _, id := range res.IDs {
		if id < 1000 {
			t.Fatalf("external id mapping lost: %d", id)
		}
	}
}

func TestSizeReporting(t *testing.T) {
	ds := testData()
	ix := New(ds.Vectors, ds.Spec.Metric, nil)
	if ix.MemoryBytes() != 400*24*4 {
		t.Errorf("memory = %d", ix.MemoryBytes())
	}
	if ix.StorageBytes() != 0 {
		t.Errorf("storage = %d", ix.StorageBytes())
	}
	if ix.Name() != "FLAT" || ix.Len() != 400 {
		t.Error("metadata wrong")
	}
}
