package index

// SearchScratch is the reusable per-searcher workspace of the zero-alloc
// search hot path. Every index family's SearchInto draws its heaps, visited
// sets and candidate buffers from here instead of allocating per query, so a
// searcher that reuses one scratch (and one Result) across queries reaches a
// steady state of 0 allocations per query — pinned by AllocsPerRun tests in
// the diskann and spann packages.
//
// A scratch is NOT safe for concurrent use: it is owned by exactly one
// goroutine at a time. BatchRun maintains a free list of one scratch per
// worker and threads them through SearchOptions.Scratch. Determinism is
// unaffected by reuse — scratch contents never influence results, only where
// intermediate state lives — which is why no sync.Pool appears here: a pool
// would add scheduler-dependent reuse patterns for no benefit.
//
// Fields are shared across phases of one search and across index families,
// which is sound because their uses are disjoint in time: for example SPANN
// runs its HNSW navigator (Frontier/Results/Visited/Neighbors) to completion
// before its posting scan touches Visited (dedup), Bounded and Dists.
type SearchScratch struct {
	// Visited marks nodes seen this query: HNSW's visited set, DiskANN's
	// candidate-list membership, SPANN's scored-row dedup.
	Visited EpochSet
	// InFlight marks nodes/postings with a speculative read issued by
	// look-ahead and not yet demanded.
	InFlight EpochSet
	// Frontier is the expansion min-heap of graph searches.
	Frontier MinHeap
	// Results is the ef-bounded working set of HNSW's layer search.
	Results MaxHeap
	// Bounded is the k-bounded result heap of the outer search.
	Bounded MaxHeap
	// Cands is DiskANN's L-bounded candidate list.
	Cands []BeamEntry
	// Beam holds the candidate-list positions fetched this hop.
	Beam []int
	// Pages collects the demand page batch of one hop.
	Pages []int64
	// PF collects one speculative (look-ahead) page run.
	PF []int64
	// Table is DiskANN's per-query PQ lookup table.
	Table []float32
	// IDs and Dists are paired gather buffers for batch scoring.
	IDs   []int32
	Dists []float32
	// Neighbors receives drained heap contents (ascending order).
	Neighbors []Neighbor
	// Nav holds SPANN's centroid-navigation result between queries.
	Nav Result
}

// NewSearchScratch returns an empty scratch; buffers grow on first use and
// are retained across queries.
func NewSearchScratch() *SearchScratch { return &SearchScratch{} }

// scratchOr returns opts.Scratch, or a fresh scratch when the caller did not
// provide one (the single-shot Search path).
func (o SearchOptions) scratchOr() *SearchScratch {
	if o.Scratch != nil {
		return o.Scratch
	}
	return NewSearchScratch() //annlint:allow hotalloc -- single-shot Search without a caller scratch; batch and steady-state paths always pass a reused scratch
}

// ScratchFor resolves the scratch an index's SearchInto should use. Exposed
// for index implementations in sub-packages.
func ScratchFor(o SearchOptions) *SearchScratch { return o.scratchOr() }

// BeamEntry is one candidate-list slot of a storage-based beam search: a
// node with its steering (PQ) distance and whether its page has been fetched
// and expanded.
type BeamEntry struct {
	ID      int32
	Dist    float32
	Visited bool
}

// EpochSet is a set of small-integer ids with O(1) clear: membership is
// "stamp equals current epoch", so Begin starts a fresh set by bumping the
// epoch instead of zeroing the array — the trick that replaces the per-query
// make([]bool, N) / map[int32]bool of the pre-scratch search loops.
type EpochSet struct {
	stamps []uint32
	epoch  uint32
}

// Begin starts a new (empty) set over ids [0, n). The stamp array grows to n
// on demand and is retained; on epoch wrap-around it is cleared so stale
// stamps from 2^32 queries ago cannot alias.
func (s *EpochSet) Begin(n int) {
	if len(s.stamps) < n {
		s.stamps = make([]uint32, n) //annlint:allow hotalloc -- stamp array grows once to the index size and is retained across queries
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

// Contains reports whether id is in the set.
func (s *EpochSet) Contains(id int32) bool { return s.stamps[id] == s.epoch }

// Add inserts id.
func (s *EpochSet) Add(id int32) { s.stamps[id] = s.epoch }

// Remove deletes id. (Stamp 0 is never a live epoch: Begin skips it on
// wrap-around.)
func (s *EpochSet) Remove(id int32) { s.stamps[id] = 0 }

// SearcherInto is implemented by indexes whose search can write its result
// into a caller-owned Result, reusing dst's buffers: the zero-allocation
// steady-state query path. Search(q, k, opts) is always equivalent to
// SearchInto(q, k, opts, &fresh).
type SearcherInto interface {
	SearchInto(q []float32, k int, opts SearchOptions, dst *Result)
}
