package index

// Neighbor is a candidate vector with its distance to the query.
type Neighbor struct {
	ID   int32
	Dist float32
}

// neighborLess orders neighbours by distance, breaking ties by id so search
// results are deterministic.
func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// MinHeap is a binary min-heap of neighbours (closest on top), used as the
// expansion frontier in graph searches.
type MinHeap struct{ a []Neighbor }

// Len returns the heap size.
func (h *MinHeap) Len() int { return len(h.a) }

// Push inserts n.
func (h *MinHeap) Push(n Neighbor) {
	h.a = append(h.a, n)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !neighborLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// Pop removes and returns the closest neighbour. It panics on an empty heap.
func (h *MinHeap) Pop() Neighbor {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && neighborLess(h.a[l], h.a[small]) {
			small = l
		}
		if r < last && neighborLess(h.a[r], h.a[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// Peek returns the closest neighbour without removing it.
func (h *MinHeap) Peek() Neighbor { return h.a[0] }

// Reset empties the heap, keeping its storage.
func (h *MinHeap) Reset() { h.a = h.a[:0] }

// MaxHeap is a binary max-heap of neighbours (farthest on top), used as the
// bounded result set: when full, the farthest candidate is evicted first.
type MaxHeap struct{ a []Neighbor }

// Len returns the heap size.
func (h *MaxHeap) Len() int { return len(h.a) }

// Push inserts n.
func (h *MaxHeap) Push(n Neighbor) {
	h.a = append(h.a, n)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !neighborLess(h.a[p], h.a[i]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// Pop removes and returns the farthest neighbour. It panics on an empty
// heap.
func (h *MaxHeap) Pop() Neighbor {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && neighborLess(h.a[big], h.a[l]) {
			big = l
		}
		if r < last && neighborLess(h.a[big], h.a[r]) {
			big = r
		}
		if big == i {
			break
		}
		h.a[i], h.a[big] = h.a[big], h.a[i]
		i = big
	}
	return top
}

// Peek returns the farthest neighbour without removing it.
func (h *MaxHeap) Peek() Neighbor { return h.a[0] }

// Reset empties the heap, keeping its storage.
func (h *MaxHeap) Reset() { h.a = h.a[:0] }

// PushBounded inserts n keeping at most k elements: when full, n replaces
// the farthest element only if closer. It reports whether n was kept.
func (h *MaxHeap) PushBounded(n Neighbor, k int) bool {
	if len(h.a) < k {
		h.Push(n)
		return true
	}
	if neighborLess(n, h.a[0]) {
		h.Pop()
		h.Push(n)
		return true
	}
	return false
}

// SortedAscending drains the heap and returns neighbours from closest to
// farthest. The heap is empty afterwards.
func (h *MaxHeap) SortedAscending() []Neighbor {
	out := make([]Neighbor, len(h.a))
	for i := len(h.a) - 1; i >= 0; i-- {
		out[i] = h.Pop()
	}
	return out
}

// DrainAscending appends the heap's neighbours, closest first, to dst and
// returns the extended slice. The heap is empty afterwards. With a dst of
// sufficient capacity this is the allocation-free form of SortedAscending.
func (h *MaxHeap) DrainAscending(dst []Neighbor) []Neighbor {
	n := len(h.a)
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{})
	}
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = h.Pop()
	}
	return dst
}

// ResultFromNeighbors converts an ascending neighbour list into a Result,
// truncated to k.
func ResultFromNeighbors(ns []Neighbor, k int, stats Stats) Result {
	var r Result
	ResultInto(ns, k, stats, &r)
	return r
}

// ResultInto writes an ascending neighbour list, truncated to k, into dst,
// reusing dst's id/distance buffers (the zero-allocation form of
// ResultFromNeighbors).
func ResultInto(ns []Neighbor, k int, stats Stats, dst *Result) {
	if k > len(ns) {
		k = len(ns)
	}
	if dst.IDs == nil {
		// non-nil even at k==0, like ResultFromNeighbors
		dst.IDs = make([]int32, 0, k) //annlint:allow hotalloc -- first-call growth of a caller-owned buffer, reused on every later call
	}
	if dst.Dists == nil {
		dst.Dists = make([]float32, 0, k) //annlint:allow hotalloc -- first-call growth of a caller-owned buffer, reused on every later call
	}
	dst.IDs = dst.IDs[:0]
	dst.Dists = dst.Dists[:0]
	for i := 0; i < k; i++ {
		dst.IDs = append(dst.IDs, ns[i].ID)
		dst.Dists = append(dst.Dists, ns[i].Dist)
	}
	dst.Stats = stats
}
