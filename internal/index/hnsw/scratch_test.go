package hnsw

import (
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// TestScratchReuseIdentity: one scratch and one dst reused across every
// query must reproduce the fresh-scratch search exactly — ids, distances,
// stats, and the recorded execution.
func TestScratchReuseIdentity(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scr := index.NewSearchScratch()
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		q := ds.Queries.Row(qi)
		var baseProf, prof index.Profile
		base := ix.Search(q, 10, index.SearchOptions{EfSearch: 40, Recorder: &baseProf})
		ix.SearchInto(q, 10, index.SearchOptions{EfSearch: 40, Recorder: &prof, Scratch: scr}, &dst)
		if !reflect.DeepEqual(base.IDs, dst.IDs) || !reflect.DeepEqual(base.Dists, dst.Dists) {
			t.Fatalf("query %d: reused scratch changed results", qi)
		}
		if base.Stats != dst.Stats {
			t.Fatalf("query %d: stats differ: %+v vs %+v", qi, base.Stats, dst.Stats)
		}
		if !reflect.DeepEqual(baseProf.Steps, prof.Steps) {
			t.Fatalf("query %d: recorded execution differs under scratch reuse", qi)
		}
	}
}

// TestSearchSteadyStateZeroAlloc: with a reused scratch and dst and no
// recorder, a steady-state in-memory HNSW query performs zero heap
// allocations.
func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := index.SearchOptions{EfSearch: 40, Scratch: index.NewSearchScratch()}
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state search allocates %.1f times per query, want 0", allocs)
	}
}
