package hnsw

import (
	"fmt"
	"math"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/index/sq"
	"svdbench/internal/vec"
)

const persistMagic = "HNSW0001"

// WriteTo serialises the graph structure (links, levels, entry point) and,
// for the SQ variant, the codec and codes. Vector data is not written: it is
// re-derivable from the dataset and supplied again at load time.
func (ix *Index) WriteTo(w *binenc.Writer) {
	w.Magic(persistMagic)
	w.Int(ix.cfg.M)
	w.Int(ix.cfg.EfConstruction)
	w.Int(int(ix.cfg.Metric))
	w.I64(ix.cfg.Seed)
	quantized := 0
	if ix.cfg.ScalarQuantize {
		quantized = 1
	}
	w.Int(quantized)
	w.Int(ix.data.Len())
	w.Ints(ix.levels)
	w.I32(ix.entry)
	w.Int(ix.maxLevel)
	for _, perLevel := range ix.links {
		w.Int(len(perLevel))
		for _, l := range perLevel {
			w.I32s(l)
		}
	}
	if ix.cfg.ScalarQuantize {
		ix.quantizer.WriteTo(w)
		w.Bytes(ix.codes)
	}
}

// ReadFrom deserialises an index written with WriteTo, re-binding it to the
// vector data (and optional external ids) it was built over.
func ReadFrom(r *binenc.Reader, data *vec.Matrix, ids []int32) (*Index, error) {
	r.Magic(persistMagic)
	cfg := Config{
		M:              r.Int(),
		EfConstruction: r.Int(),
		Metric:         vec.Metric(r.Int()),
		Seed:           r.I64(),
	}
	cfg.ScalarQuantize = r.Int() == 1
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != data.Len() {
		return nil, fmt.Errorf("hnsw: persisted index has %d nodes, data has %d", n, data.Len())
	}
	ix := &Index{
		cfg:    cfg,
		data:   data,
		ids:    ids,
		levels: r.Ints(),
		entry:  r.I32(),
		cost:   index.DefaultCostModel(),
		scorer: index.NewScorer(data, cfg.Metric),
	}
	ix.maxLevel = r.Int()
	ix.mult = 1 / math.Log(float64(cfg.M))
	ix.links = make([][][]int32, n)
	for i := 0; i < n; i++ {
		nl := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if nl < 0 || nl > 64 {
			return nil, fmt.Errorf("hnsw: node %d has %d levels", i, nl)
		}
		ix.links[i] = make([][]int32, nl)
		for l := 0; l < nl; l++ {
			ix.links[i][l] = r.I32s()
		}
	}
	if cfg.ScalarQuantize {
		q, err := sq.ReadQuantizer(r)
		if err != nil {
			return nil, fmt.Errorf("hnsw: %w", err)
		}
		ix.quantizer = q
		ix.codes = r.Bytes()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(ix.levels) != n || int(ix.entry) >= n {
		return nil, fmt.Errorf("hnsw: corrupt persisted index")
	}
	return ix, nil
}
