// Package hnsw implements the Hierarchical Navigable Small World graph index
// (Malkov & Yashunin, TPAMI 2020), the memory-based graph index used by
// Milvus, Qdrant, Weaviate and LanceDB in the paper.
//
// The implementation is the complete algorithm: exponentially sampled layer
// levels, greedy descent through upper layers, efConstruction-bounded
// candidate search during insertion, and the distance-based heuristic
// neighbour selection of the original paper (Algorithm 4). An optional
// scalar-quantised variant evaluates distances over int8 codes, matching
// LanceDB's HNSW-SQ configuration (and its accuracy penalty, O-3).
package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"svdbench/internal/index"
	"svdbench/internal/index/sq"
	"svdbench/internal/vec"
)

// Config controls construction.
type Config struct {
	// M is the maximum out-degree of upper layers; layer 0 allows 2M.
	// The paper fixes M=16 (Sec. III-C).
	M int
	// EfConstruction bounds the candidate list during insertion; the
	// paper fixes 200.
	EfConstruction int
	// Metric is the query distance.
	Metric vec.Metric
	// Seed drives level sampling.
	Seed int64
	// ScalarQuantize stores int8 codes and evaluates distances over them
	// (LanceDB's HNSW-SQ).
	ScalarQuantize bool
}

// Index is a built HNSW graph.
type Index struct {
	cfg      Config
	data     *vec.Matrix
	ids      []int32
	links    [][][]int32 // links[node][level] = neighbour rows
	levels   []int
	entry    int32
	maxLevel int
	mult     float64
	cost     index.CostModel
	scorer   *index.Scorer

	quantizer *sq.Quantizer
	codes     []byte
}

// Build inserts every row of data into a fresh graph. ids, when non-nil,
// maps rows to external ids.
func Build(data *vec.Matrix, ids []int32, cfg Config) (*Index, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("hnsw: empty data")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = 200
	}
	ix := &Index{
		cfg:      cfg,
		data:     data,
		ids:      ids,
		links:    make([][][]int32, data.Len()),
		levels:   make([]int, data.Len()),
		entry:    -1,
		maxLevel: -1,
		mult:     1 / math.Log(float64(cfg.M)),
		cost:     index.DefaultCostModel(),
		scorer:   index.NewScorer(data, cfg.Metric),
	}
	n := data.Len()
	if cfg.ScalarQuantize {
		q, err := sq.Train(data)
		if err != nil {
			return nil, fmt.Errorf("hnsw: train sq: %w", err)
		}
		ix.quantizer = q
		ix.codes = q.EncodeAll(data)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	// Pre-sample levels so the batched build stays deterministic.
	for row := range ix.levels {
		ix.levels[row] = ix.randomLevel(r)
	}
	// Batched construction: candidate searches run in parallel against the
	// frozen graph, links are applied serially. Batch sizes grow from 1 so
	// the early graph (where every insertion changes everything) is built
	// like the sequential algorithm. Each worker owns one search scratch for
	// the whole build; the sequential path reuses seqScratch across batches.
	workers := runtime.GOMAXPROCS(0)
	seqScratch := index.NewSearchScratch()
	workScratch := make([]*index.SearchScratch, workers)
	for w := range workScratch {
		workScratch[w] = index.NewSearchScratch()
	}
	lo, batch := 0, 1
	for lo < n {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		plans := make([][][]index.Neighbor, hi-lo)
		if hi-lo == 1 || workers == 1 {
			for i := lo; i < hi; i++ {
				plans[i-lo] = ix.planInsert(int32(i), seqScratch)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (hi - lo + workers - 1) / workers
			for w := 0; w < workers; w++ {
				s, e := lo+w*chunk, lo+(w+1)*chunk
				if e > hi {
					e = hi
				}
				if s >= e {
					break
				}
				wg.Add(1)
				go func(s, e int, scr *index.SearchScratch) {
					defer wg.Done()
					for i := s; i < e; i++ {
						plans[i-lo] = ix.planInsert(int32(i), scr)
					}
				}(s, e, workScratch[w])
			}
			wg.Wait()
		}
		for i := lo; i < hi; i++ {
			ix.applyInsert(int32(i), plans[i-lo])
		}
		lo = hi
		if batch < 64 {
			batch *= 2
		}
	}
	return ix, nil
}

// planInsert computes, against the frozen graph, the selected neighbours of
// one row per layer (nil for the very first node). scr is the calling
// worker's scratch.
func (ix *Index) planInsert(row int32, scr *index.SearchScratch) [][]index.Neighbor {
	if ix.entry < 0 || ix.entry == row {
		return nil
	}
	level := ix.levels[row]
	q := ix.rowQuery(row)
	ep := ix.entry
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(q, ep, l)
	}
	top := level
	if top > ix.maxLevel {
		top = ix.maxLevel
	}
	selected := make([][]index.Neighbor, top+1)
	eps := []index.Neighbor{{ID: ep, Dist: ix.dist(q, ep)}}
	for l := top; l >= 0; l-- {
		found := ix.searchLayer(q, eps, ix.cfg.EfConstruction, l, nil, nil, scr)
		selected[l] = ix.selectHeuristic(found, ix.cfg.M)
		eps = found
	}
	return selected
}

// applyInsert links one planned row into the graph.
func (ix *Index) applyInsert(row int32, selected [][]index.Neighbor) {
	level := ix.levels[row]
	ix.links[row] = make([][]int32, level+1)
	if ix.entry < 0 {
		ix.entry = row
		ix.maxLevel = level
		return
	}
	for l := len(selected) - 1; l >= 0; l-- {
		ix.links[row][l] = make([]int32, 0, len(selected[l]))
		for _, n := range selected[l] {
			ix.links[row][l] = append(ix.links[row][l], n.ID)
			ix.linkBack(n.ID, row, l)
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = row
	}
}

// dist computes the index's working distance between a prepared query and a
// stored row (quantised when the SQ variant is enabled).
func (ix *Index) dist(q index.QueryScorer, row int32) float32 {
	if ix.quantizer != nil {
		return ix.quantizer.DistanceAt(q.Vector(), ix.codes, int(row))
	}
	return q.Dist(int(row))
}

// rowQuery prepares stored row i as a query, reusing its cached norm.
func (ix *Index) rowQuery(i int32) index.QueryScorer {
	return ix.scorer.QueryRow(int(i))
}

// randomLevel samples the insertion level with the standard exponential
// distribution.
func (ix *Index) randomLevel(r *rand.Rand) int {
	return int(-math.Log(1-r.Float64()) * ix.mult)
}

// maxDegree is the degree cap of a layer.
func (ix *Index) maxDegree(level int) int {
	if level == 0 {
		return 2 * ix.cfg.M
	}
	return ix.cfg.M
}

// linkBack adds a reverse edge from node to target and re-prunes node's
// neighbour list if it exceeds the layer cap.
func (ix *Index) linkBack(node, target int32, level int) {
	nl := append(ix.links[node][level], target)
	cap := ix.maxDegree(level)
	if len(nl) <= cap {
		ix.links[node][level] = nl
		return
	}
	v := ix.rowQuery(node)
	cands := make([]index.Neighbor, 0, len(nl))
	for _, nb := range nl {
		cands = append(cands, index.Neighbor{ID: nb, Dist: ix.dist(v, nb)})
	}
	sortNeighbors(cands)
	pruned := ix.selectHeuristic(cands, cap)
	out := make([]int32, 0, len(pruned))
	for _, n := range pruned {
		out = append(out, n.ID)
	}
	ix.links[node][level] = out
}

// selectHeuristic is HNSW's Algorithm 4: scan candidates closest-first and
// keep one only if it is closer to the query than to every already-kept
// neighbour, which spreads edges across directions.
func (ix *Index) selectHeuristic(cands []index.Neighbor, m int) []index.Neighbor {
	out := make([]index.Neighbor, 0, m)
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		keep := true
		cv := ix.rowQuery(c.ID)
		for _, s := range out {
			if ix.dist(cv, s.ID) < c.Dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		}
	}
	// Backfill with the closest remaining candidates if the heuristic was
	// too aggressive (keeps graphs connected on clustered data).
	if len(out) < m {
		have := make(map[int32]bool, len(out))
		for _, s := range out {
			have[s.ID] = true
		}
		for _, c := range cands {
			if len(out) >= m {
				break
			}
			if !have[c.ID] {
				out = append(out, c)
				have[c.ID] = true
			}
		}
		sortNeighbors(out)
	}
	return out
}

// greedyClosest walks one layer greedily to the locally closest node.
func (ix *Index) greedyClosest(q index.QueryScorer, ep int32, level int) int32 {
	cur := ep
	curD := ix.dist(q, cur)
	for {
		improved := false
		for _, nb := range ix.neighbors(cur, level) {
			if d := ix.dist(q, nb); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (ix *Index) neighbors(node int32, level int) []int32 {
	if level >= len(ix.links[node]) {
		return nil
	}
	return ix.links[node][level]
}

// searchLayer is HNSW's Algorithm 2: best-first expansion bounded by ef.
// stats and rec may be nil during construction. It returns the ef closest
// nodes, ascending by distance.
//
// All working state lives in scr: heaps, the epoch-stamped visited set, the
// gather buffers of the batched neighbour scoring, and the returned slice
// itself (scr.Neighbors — consumed by the caller before the next searchLayer
// call on the same scratch, which is safe because the entry points eps are
// fully read into the heaps before the drain overwrites the buffer).
func (ix *Index) searchLayer(q index.QueryScorer, eps []index.Neighbor, ef, level int, stats *index.Stats, rec *index.Profile, scr *index.SearchScratch) []index.Neighbor {
	scr.Visited.Begin(ix.data.Len())
	frontier, results := &scr.Frontier, &scr.Results
	frontier.Reset()
	results.Reset()
	for _, ep := range eps {
		if scr.Visited.Contains(ep.ID) {
			continue
		}
		scr.Visited.Add(ep.ID)
		frontier.Push(ep)
		results.PushBounded(ep, ef)
	}
	for frontier.Len() > 0 {
		cur := frontier.Pop()
		if results.Len() >= ef && cur.Dist > results.Peek().Dist {
			break
		}
		nbs := ix.neighbors(cur.ID, level)
		// Gather this hop's unvisited neighbours, then score them in one
		// batch. Marking order, distance values and the push sequence are
		// identical to the per-neighbour loop, so results and recorded
		// costs are unchanged.
		scr.IDs = scr.IDs[:0]
		for _, nb := range nbs {
			if scr.Visited.Contains(nb) {
				continue
			}
			scr.Visited.Add(nb)
			scr.IDs = append(scr.IDs, nb)
		}
		comps := len(scr.IDs)
		if cap(scr.Dists) < comps {
			scr.Dists = make([]float32, comps) //annlint:allow hotalloc -- cap-guarded growth of the scratch gather buffer; steady state reuses its capacity
		}
		dists := scr.Dists[:comps]
		if ix.quantizer != nil {
			for i, nb := range scr.IDs {
				dists[i] = ix.quantizer.DistanceAt(q.Vector(), ix.codes, int(nb))
			}
		} else {
			q.DistBatch(scr.IDs, dists)
		}
		for i, nb := range scr.IDs {
			d := dists[i]
			if results.Len() < ef || d < results.Peek().Dist {
				frontier.Push(index.Neighbor{ID: nb, Dist: d})
				results.PushBounded(index.Neighbor{ID: nb, Dist: d}, ef)
			}
		}
		if stats != nil {
			stats.Hops++
			if ix.quantizer != nil {
				stats.PQComps += comps
			} else {
				stats.DistComps += comps
			}
		}
		rec.AddCPU(ix.cost.Dist(ix.data.Dim, comps) + ix.cost.Heap(comps+2))
	}
	scr.Neighbors = results.DrainAscending(scr.Neighbors[:0])
	// The returned slice is scr.Neighbors itself: valid only until the next
	// operation touching scr, and every caller drains or copies it before
	// that. Documented contract, not a leak.
	return scr.Neighbors //annlint:allow scratchalias -- returns scr.Neighbors by contract; callers consume it before the scratch is reused
}

// Search implements index.Index: greedy descent through upper layers, then
// an efSearch-bounded layer-0 expansion.
func (ix *Index) Search(q []float32, k int, opts index.SearchOptions) index.Result {
	var r index.Result
	ix.SearchInto(q, k, opts, &r)
	return r
}

// SearchInto implements index.SearcherInto: Search writing into a
// caller-owned Result. With a reused scratch and dst the steady-state path
// performs no allocations.
//
//annlint:hotpath
func (ix *Index) SearchInto(q []float32, k int, opts index.SearchOptions, dst *index.Result) {
	scr := index.ScratchFor(opts)
	ef := opts.EfSearch
	if ef < k {
		ef = k
	}
	stats := index.Stats{}
	rec := opts.Recorder
	qs := ix.scorer.Query(q)
	ep := ix.entry
	epD := ix.dist(qs, ep)
	stats.DistComps++
	for l := ix.maxLevel; l >= 1; l-- {
		for {
			improved := false
			for _, nb := range ix.neighbors(ep, l) {
				d := ix.dist(qs, nb)
				stats.DistComps++
				if d < epD {
					ep, epD = nb, d
					improved = true
				}
			}
			stats.Hops++
			if !improved {
				break
			}
		}
	}
	rec.AddCPU(ix.cost.Dist(ix.data.Dim, stats.DistComps))
	eps := [1]index.Neighbor{{ID: ep, Dist: epD}}
	found := ix.searchLayer(qs, eps[:], ef, 0, &stats, rec, scr)
	rec.Flush()
	// Apply filter and map to external ids, compacting in place (found
	// aliases scr.Neighbors; the write index never passes the read index).
	w := 0
	for _, n := range found {
		id := ix.extID(n.ID)
		if opts.Filter != nil && !opts.Filter(id) {
			continue
		}
		found[w] = index.Neighbor{ID: id, Dist: n.Dist}
		w++
		if w == k {
			break
		}
	}
	if ix.quantizer != nil {
		stats.PQComps += stats.DistComps
		stats.DistComps = 0
	}
	index.ResultInto(found[:w], k, stats, dst)
}

func (ix *Index) extID(row int32) int32 {
	if ix.ids != nil {
		return ix.ids[row]
	}
	return row
}

// Name implements index.Index.
func (ix *Index) Name() string {
	if ix.cfg.ScalarQuantize {
		return "HNSW_SQ"
	}
	return "HNSW"
}

// Metric implements index.Index.
func (ix *Index) Metric() vec.Metric { return ix.cfg.Metric }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.data.Len() }

// MaxLevel returns the top layer of the graph.
func (ix *Index) MaxLevel() int { return ix.maxLevel }

// Entry returns the row every search descends from (the top-layer entry
// point), or -1 for an empty graph. SPANN uses it to warm its static node
// cache with the postings nearest the navigator's entry.
func (ix *Index) Entry() int32 { return ix.entry }

// MemoryBytes implements index.SizeReporter.
func (ix *Index) MemoryBytes() int64 {
	var linkBytes int64
	for _, perLevel := range ix.links {
		for _, l := range perLevel {
			linkBytes += int64(len(l)) * 4
		}
	}
	vecBytes := int64(ix.data.Len()) * int64(ix.data.Dim) * 4
	if ix.quantizer != nil {
		vecBytes = int64(len(ix.codes)) + ix.quantizer.MemoryBytes()
	}
	return linkBytes + vecBytes
}

// StorageBytes implements index.SizeReporter.
func (ix *Index) StorageBytes() int64 { return 0 }

// Degree returns the out-degree of a node at a level (for tests).
func (ix *Index) Degree(row int32, level int) int { return len(ix.neighbors(row, level)) }

func sortNeighbors(ns []index.Neighbor) {
	// Insertion sort: candidate lists are short and mostly sorted.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && lessNeighbor(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func lessNeighbor(a, b index.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

var _ index.Index = (*Index)(nil)
var _ index.SearcherInto = (*Index)(nil)
var _ index.SizeReporter = (*Index)(nil)
