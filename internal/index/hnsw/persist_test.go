package hnsw

import (
	"bytes"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func roundTrip(t *testing.T, cfg Config) {
	t.Helper()
	ds := dataset.Generate(dataset.Spec{
		Name: "hnsw-persist", N: 500, Dim: 24, NumQueries: 10,
		Clusters: 8, Seed: 31, Metric: vec.Cosine, GroundK: 10,
	})
	cfg.Metric = ds.Spec.Metric
	orig, err := Build(ds.Vectors, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(binenc.NewReader(&buf), ds.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := orig.Search(q, 5, index.SearchOptions{EfSearch: 30})
		b := got.Search(q, 5, index.SearchOptions{EfSearch: 30})
		if !reflect.DeepEqual(a.IDs, b.IDs) {
			t.Fatalf("query %d: %v vs %v", qi, a.IDs, b.IDs)
		}
	}
	if got.MaxLevel() != orig.MaxLevel() {
		t.Errorf("max level %d vs %d", got.MaxLevel(), orig.MaxLevel())
	}
}

func TestPersistRoundTrip(t *testing.T) {
	roundTrip(t, Config{M: 8, EfConstruction: 60, Seed: 5})
}

func TestPersistRoundTripSQ(t *testing.T) {
	roundTrip(t, Config{M: 8, EfConstruction: 60, Seed: 5, ScalarQuantize: true})
}

func TestPersistRejectsWrongData(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "hnsw-persist2", N: 200, Dim: 16, NumQueries: 5,
		Clusters: 4, Seed: 32, Metric: vec.Cosine, GroundK: 5,
	})
	ix, _ := Build(ds.Vectors, nil, Config{M: 8, Metric: ds.Spec.Metric, Seed: 1})
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	ix.WriteTo(w)
	w.Flush()
	// Wrong row count must be rejected.
	if _, err := ReadFrom(binenc.NewReader(&buf), vec.NewMatrix(100, 16), nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	r := binenc.NewReader(bytes.NewReader([]byte("garbage garbage garbage")))
	if _, err := ReadFrom(r, vec.NewMatrix(1, 4), nil); err == nil {
		t.Error("garbage accepted")
	}
}

// TestSnapshotByteIdentical is the behavioral property the mapiter analyzer
// guards: two independent builds from the same (seed, config) must persist
// to exactly the same bytes, or the scheduler's deterministic merge and the
// collection cache break.
func TestSnapshotByteIdentical(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "hnsw-det", N: 500, Dim: 24, NumQueries: 10,
		Clusters: 8, Seed: 31, Metric: vec.Cosine, GroundK: 10,
	})
	snap := func() []byte {
		ix, err := Build(ds.Vectors, nil, Config{M: 8, EfConstruction: 60, Seed: 5, Metric: ds.Spec.Metric})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := binenc.NewWriter(&buf)
		ix.WriteTo(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("two builds from the same seed persisted different bytes (%d vs %d)", len(a), len(b))
	}
}
