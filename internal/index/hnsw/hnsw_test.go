package hnsw

import (
	"testing"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "hnsw-test", N: 2000, Dim: 32, NumQueries: 40,
		Clusters: 16, Seed: 9, Metric: vec.Cosine, GroundK: 10,
	})
}

func searchAll(ds *dataset.Dataset, ix *Index, k, ef int) [][]int32 {
	out := make([][]int32, ds.Queries.Len())
	for qi := range out {
		out[qi] = ix.Search(ds.Queries.Row(qi), k, index.SearchOptions{EfSearch: ef}).IDs
	}
	return out
}

func TestHighRecall(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 200, Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 100), ds.GroundTruth, 10)
	if r < 0.95 {
		t.Errorf("recall@10 with ef=100 = %v, want ≥0.95", r)
	}
}

func TestRecallImprovesWithEf(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 200, Metric: ds.Spec.Metric, Seed: 1})
	low := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 10), ds.GroundTruth, 10)
	high := dataset.MeanRecallAtK(searchAll(ds, ix, 10, 200), ds.GroundTruth, 10)
	if high < low {
		t.Errorf("recall fell from %v to %v as ef grew", low, high)
	}
	if high < 0.97 {
		t.Errorf("ef=200 recall = %v, want near-exact", high)
	}
}

func TestWorkGrowsWithEf(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 200, Metric: ds.Spec.Metric, Seed: 1})
	q := ds.Queries.Row(0)
	small := ix.Search(q, 10, index.SearchOptions{EfSearch: 10}).Stats
	big := ix.Search(q, 10, index.SearchOptions{EfSearch: 100}).Stats
	if big.DistComps <= small.DistComps {
		t.Errorf("dist comps did not grow with ef: %d vs %d", small.DistComps, big.DistComps)
	}
}

func TestDegreeBounds(t *testing.T) {
	ds := testData(t)
	cfg := Config{M: 8, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1}
	ix, _ := Build(ds.Vectors, nil, cfg)
	for row := int32(0); row < int32(ds.Vectors.Len()); row++ {
		for level := 0; level <= ix.levels[row]; level++ {
			d := ix.Degree(row, level)
			limit := cfg.M
			if level == 0 {
				limit = 2 * cfg.M
			}
			if d > limit {
				t.Fatalf("node %d level %d degree %d exceeds %d", row, level, d, limit)
			}
		}
	}
}

func TestEfSearchBelowKClamped(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{EfSearch: 1})
	if len(res.IDs) != 10 {
		t.Errorf("got %d results with ef<k, want 10", len(res.IDs))
	}
}

func TestProfileRecordsHops(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	var p index.Profile
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{EfSearch: 50, Recorder: &p})
	// A memory-based index has no I/O boundaries, so all compute coalesces
	// into a single uninterrupted burst.
	if len(p.Steps) != 1 {
		t.Errorf("profile has %d steps, want 1 coalesced compute step", len(p.Steps))
	}
	if p.TotalCPU() <= 0 || p.TotalPages() != 0 {
		t.Error("memory index profile wrong")
	}
	if res.Stats.Hops == 0 {
		t.Error("no hops counted")
	}
}

func TestScalarQuantizedVariant(t *testing.T) {
	ds := testData(t)
	full, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 200, Metric: ds.Spec.Metric, Seed: 1})
	sqix, err := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 200, Metric: ds.Spec.Metric, Seed: 1, ScalarQuantize: true})
	if err != nil {
		t.Fatal(err)
	}
	if sqix.Name() != "HNSW_SQ" {
		t.Errorf("name = %s", sqix.Name())
	}
	rFull := dataset.MeanRecallAtK(searchAll(ds, full, 10, 50), ds.GroundTruth, 10)
	rSQ := dataset.MeanRecallAtK(searchAll(ds, sqix, 10, 50), ds.GroundTruth, 10)
	if rSQ < 0.5 {
		t.Errorf("SQ recall = %v, unusably low", rSQ)
	}
	if rSQ > rFull+0.01 {
		t.Errorf("SQ recall %v above full-precision %v", rSQ, rFull)
	}
	// Quantised variant keeps a smaller vector footprint.
	if sqix.MemoryBytes() >= full.MemoryBytes() {
		t.Errorf("SQ memory %d not below full %d", sqix.MemoryBytes(), full.MemoryBytes())
	}
	res := sqix.Search(ds.Queries.Row(0), 5, index.SearchOptions{EfSearch: 30})
	if res.Stats.PQComps == 0 || res.Stats.DistComps != 0 {
		t.Errorf("SQ stats = %+v, want compressed comps only", res.Stats)
	}
}

func TestFilterRespected(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{EfSearch: 100, Filter: func(id int32) bool { return id%3 == 0 }})
	for _, id := range res.IDs {
		if id%3 != 0 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestExternalIDs(t *testing.T) {
	ds := testData(t)
	ids := make([]int32, ds.Vectors.Len())
	for i := range ids {
		ids[i] = int32(i) * 2
	}
	ix, _ := Build(ds.Vectors, ids, Config{M: 16, EfConstruction: 100, Metric: ds.Spec.Metric, Seed: 1})
	res := ix.Search(ds.Queries.Row(0), 5, index.SearchOptions{EfSearch: 20})
	for _, id := range res.IDs {
		if id%2 != 0 {
			t.Fatalf("external id %d not even", id)
		}
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 8), nil, Config{}); err == nil {
		t.Error("empty build accepted")
	}
}

func TestSingleVector(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{1, 0}})
	ix, err := Build(m, nil, Config{M: 4, Metric: vec.L2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Search([]float32{0.9, 0}, 1, index.SearchOptions{EfSearch: 5})
	if len(res.IDs) != 1 || res.IDs[0] != 0 {
		t.Errorf("single-vector search = %+v", res.IDs)
	}
}

func TestBuildDeterministic(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "det", N: 300, Dim: 16, NumQueries: 5, Clusters: 4, Seed: 2, Metric: vec.Cosine, GroundK: 5,
	})
	a, _ := Build(ds.Vectors, nil, Config{M: 8, EfConstruction: 50, Metric: ds.Spec.Metric, Seed: 3})
	b, _ := Build(ds.Vectors, nil, Config{M: 8, EfConstruction: 50, Metric: ds.Spec.Metric, Seed: 3})
	ra := a.Search(ds.Queries.Row(0), 5, index.SearchOptions{EfSearch: 20})
	rb := b.Search(ds.Queries.Row(0), 5, index.SearchOptions{EfSearch: 20})
	for i := range ra.IDs {
		if ra.IDs[i] != rb.IDs[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}
