package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"svdbench/internal/vec"
)

func randMatrix(n, dim int, seed int64) *vec.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
	}
	return m
}

// Property: the scorer matches vec.Distance for every metric.
func TestPropertyScorerMatchesVecDistance(t *testing.T) {
	m := randMatrix(50, 24, 1)
	for _, metric := range []vec.Metric{vec.L2, vec.IP, vec.Cosine} {
		s := NewScorer(m, metric)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			q := make([]float32, 24)
			for j := range q {
				q[j] = float32(r.NormFloat64())
			}
			qs := s.Query(q)
			i := r.Intn(m.Len())
			got := float64(qs.Dist(i))
			want := float64(vec.Distance(metric, q, m.Row(i)))
			return math.Abs(got-want) <= 1e-4*(1+math.Abs(want))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", metric, err)
		}
	}
}

func TestQueryRowUsesCachedNorm(t *testing.T) {
	m := randMatrix(10, 8, 2)
	s := NewScorer(m, vec.Cosine)
	for i := 0; i < 10; i++ {
		qs := s.QueryRow(i)
		if d := qs.Dist(i); math.Abs(float64(d)) > 1e-5 {
			t.Errorf("self cosine distance of row %d = %v", i, d)
		}
	}
}

func TestRowDistSymmetric(t *testing.T) {
	m := randMatrix(20, 8, 3)
	s := NewScorer(m, vec.Cosine)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			a, b := s.RowDist(i, j), s.RowDist(j, i)
			if math.Abs(float64(a-b)) > 1e-5 {
				t.Fatalf("RowDist(%d,%d)=%v != RowDist(%d,%d)=%v", i, j, a, j, i, b)
			}
		}
	}
}

func TestScorerZeroVectorCosine(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{0, 0}, {1, 0}})
	s := NewScorer(m, vec.Cosine)
	qs := s.Query([]float32{1, 0})
	if d := qs.Dist(0); d != 1 {
		t.Errorf("distance to zero vector = %v, want 1", d)
	}
	zq := s.Query([]float32{0, 0})
	if d := zq.Dist(1); d != 1 {
		t.Errorf("zero query distance = %v, want 1", d)
	}
}

func TestScorerVector(t *testing.T) {
	m := randMatrix(3, 4, 4)
	s := NewScorer(m, vec.L2)
	q := []float32{1, 2, 3, 4}
	if got := s.Query(q).Vector(); &got[0] != &q[0] {
		t.Error("Vector() must alias the query")
	}
	if s.Metric() != vec.L2 {
		t.Error("metric accessor wrong")
	}
}

func TestScorerUnknownMetricPanics(t *testing.T) {
	m := randMatrix(3, 4, 5)
	s := NewScorer(m, vec.Metric(99))
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown metric")
		}
	}()
	s.Query(make([]float32, 4)).Dist(0)
}
