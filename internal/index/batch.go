// Batch-first search execution core. SearchBatch is the primary entry point
// of the redesigned search API: the collection layer, RecordQueries and the
// experiment scheduler all route through it, and the single-query Search
// remains as the one-element special case. Results are byte-identical to
// calling Search per query in order — batching changes scheduling, never
// answers.
package index

import (
	"context"
	"sync"
)

// DefaultQueryConcurrency is the batch fan-out used when
// SearchOptions.QueryConcurrency is zero.
const DefaultQueryConcurrency = 8

// Searcher is a batch-capable index: the pipelined execution core behind the
// storage-based engines. SearchBatch answers every query of the batch,
// running up to SearchOptions.QueryConcurrency queries concurrently (host
// goroutines; recording against a mutable node cache forces sequential
// order). Per-query execution profiles are captured through
// SearchOptions.RecorderFor.
type Searcher interface {
	Index
	// SearchBatch returns one Result per query, in query order, each
	// byte-identical to Search(queries[i], k, opts) issued sequentially.
	// A cancelled ctx stops scheduling new queries; unstarted queries
	// return zero Results.
	SearchBatch(ctx context.Context, queries [][]float32, k int, opts SearchOptions) []Result
}

// SearchBatchOf runs a batch against any index: a Searcher's own SearchBatch
// when implemented, otherwise the generic BatchRun driver over Search. This
// is the routing point for layers (collection, recorder, scheduler) that
// hold a plain Index.
func SearchBatchOf(ctx context.Context, ix Index, queries [][]float32, k int, opts SearchOptions) []Result {
	if s, ok := ix.(Searcher); ok {
		return s.SearchBatch(ctx, queries, k, opts)
	}
	return BatchRun(ctx, len(queries), opts, func(qi int, o SearchOptions) Result {
		return ix.Search(queries[qi], k, o)
	})
}

// BatchRun is the shared batch driver Searcher implementations build on: it
// invokes search(qi, opts) once per query with the per-query recorder
// resolved, bounded by the options' query concurrency. When the options
// select a mutable node cache (LRU), queries run strictly sequentially in
// query order so the recorded executions do not depend on host goroutine
// interleaving — the same discipline vdb.Collection.RecordQueries always
// applied.
//
// Each concurrent worker slot owns one SearchScratch, handed to queries
// through a free-list channel, so the heaps and visited sets of the search
// hot path are allocated workers times per batch instead of once per query.
// Scratch identity never influences results (only where intermediate state
// lives), so the nondeterministic query→scratch pairing is harmless.
func BatchRun(ctx context.Context, n int, opts SearchOptions, search func(qi int, opts SearchOptions) Result) []Result {
	out := make([]Result, n)
	if n == 0 {
		return out
	}
	qOpts := func(qi int) SearchOptions {
		o := opts
		o.RecorderFor = nil
		if opts.RecorderFor != nil {
			o.Recorder = opts.RecorderFor(qi)
		}
		return o
	}
	workers := opts.QueryConcurrency
	if workers <= 0 {
		workers = DefaultQueryConcurrency
	}
	if opts.NodeCacheMutable() {
		workers = 1
	}
	if workers == 1 {
		scr := opts.Scratch
		if scr == nil {
			scr = NewSearchScratch()
		}
		for qi := 0; qi < n; qi++ {
			if ctx.Err() != nil {
				return out
			}
			o := qOpts(qi)
			o.Scratch = scr
			out[qi] = search(qi, o)
		}
		return out
	}
	free := make(chan *SearchScratch, workers)
	for i := 0; i < workers; i++ {
		if i == 0 && opts.Scratch != nil {
			free <- opts.Scratch
			continue
		}
		free <- NewSearchScratch()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for qi := 0; qi < n; qi++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			o := qOpts(qi)
			o.Scratch = <-free
			out[qi] = search(qi, o)
			free <- o.Scratch
		}(qi)
	}
	wg.Wait()
	return out
}
