package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCostModelArithmetic(t *testing.T) {
	c := DefaultCostModel()
	one := c.Dist(768, 1)
	want := time.Duration((c.DistFixedPs + 768*c.DistPerDimPs) / 1000)
	if one != want {
		t.Errorf("Dist(768,1) = %v, want %v", one, want)
	}
	if one < 200*time.Nanosecond || one > 300*time.Nanosecond {
		t.Errorf("768-d distance costs %v, expected a few hundred ns", one)
	}
	if got := c.Dist(768, 1000); got < 999*one || got > 1001*one {
		t.Errorf("Dist not ~linear in count: %v vs 1000×%v", got, one)
	}
	if c.PQ(96, 1) <= 0 || c.PQ(96, 2) < c.PQ(96, 1) {
		t.Error("PQ cost not increasing")
	}
	if c.Heap(4) != 4*time.Duration(c.HeapOpPs)/1000 {
		t.Error("Heap cost wrong")
	}
}

func TestProfileRecording(t *testing.T) {
	var p Profile
	p.AddCPU(100 * time.Nanosecond)
	p.AddIO([]int64{1, 2})
	p.AddCPU(50 * time.Nanosecond)
	p.Flush()
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(p.Steps))
	}
	if p.Steps[0].CPU != 100*time.Nanosecond || len(p.Steps[0].Pages) != 2 {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	if p.Steps[1].CPU != 50*time.Nanosecond || len(p.Steps[1].Pages) != 0 {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	if p.TotalCPU() != 150*time.Nanosecond {
		t.Errorf("total CPU = %v", p.TotalCPU())
	}
	if p.TotalPages() != 2 {
		t.Errorf("total pages = %d", p.TotalPages())
	}
}

func TestProfileNilSafe(t *testing.T) {
	var p *Profile
	p.AddCPU(time.Nanosecond) // must not panic
	p.AddIO([]int64{1})
	p.Flush()
}

func TestProfileIOCopiesPages(t *testing.T) {
	var p Profile
	pages := []int64{1, 2, 3}
	p.AddIO(pages)
	pages[0] = 99
	if p.Steps[0].Pages[0] != 1 {
		t.Error("AddIO must copy the page slice")
	}
}

func TestProfileFlushEmptyNoStep(t *testing.T) {
	var p Profile
	p.Flush()
	if len(p.Steps) != 0 {
		t.Error("flush of empty profile added a step")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{DistComps: 1, PQComps: 2, Hops: 3, PagesRead: 4}
	a.Add(Stats{DistComps: 10, PQComps: 20, Hops: 30, PagesRead: 40})
	if a != (Stats{DistComps: 11, PQComps: 22, Hops: 33, PagesRead: 44}) {
		t.Errorf("stats add = %+v", a)
	}
}

func TestMinHeapOrdering(t *testing.T) {
	var h MinHeap
	for _, d := range []float32{5, 1, 3, 2, 4} {
		h.Push(Neighbor{ID: int32(d), Dist: d})
	}
	for want := float32(1); want <= 5; want++ {
		if got := h.Pop().Dist; got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
	if h.Len() != 0 {
		t.Error("heap not empty")
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	var h MaxHeap
	for _, d := range []float32{5, 1, 3, 2, 4} {
		h.Push(Neighbor{ID: int32(d), Dist: d})
	}
	for want := float32(5); want >= 1; want-- {
		if got := h.Pop().Dist; got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
}

func TestHeapTieBreakByID(t *testing.T) {
	var h MinHeap
	h.Push(Neighbor{ID: 7, Dist: 1})
	h.Push(Neighbor{ID: 3, Dist: 1})
	if h.Pop().ID != 3 {
		t.Error("min-heap tie must pop lower id first")
	}
	var m MaxHeap
	m.Push(Neighbor{ID: 7, Dist: 1})
	m.Push(Neighbor{ID: 3, Dist: 1})
	if m.Pop().ID != 7 {
		t.Error("max-heap tie must pop higher id first")
	}
}

func TestPushBounded(t *testing.T) {
	var h MaxHeap
	for d := float32(1); d <= 5; d++ {
		h.PushBounded(Neighbor{ID: int32(d), Dist: d}, 3)
	}
	if h.Len() != 3 {
		t.Fatalf("len = %d, want 3", h.Len())
	}
	if h.Peek().Dist != 3 {
		t.Errorf("worst kept = %v, want 3", h.Peek().Dist)
	}
	if h.PushBounded(Neighbor{ID: 99, Dist: 100}, 3) {
		t.Error("worse candidate accepted into full heap")
	}
	if !h.PushBounded(Neighbor{ID: 0, Dist: 0.5}, 3) {
		t.Error("better candidate rejected")
	}
}

func TestSortedAscending(t *testing.T) {
	var h MaxHeap
	for _, d := range []float32{3, 1, 2} {
		h.Push(Neighbor{ID: int32(d), Dist: d})
	}
	out := h.SortedAscending()
	if len(out) != 3 || out[0].Dist != 1 || out[2].Dist != 3 {
		t.Errorf("sorted = %v", out)
	}
}

// Property: MinHeap pops in globally sorted order for random inputs.
func TestPropertyMinHeapSortsRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		var h MinHeap
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = r.Float32()
			h.Push(Neighbor{ID: int32(i), Dist: vals[i]})
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, want := range vals {
			if h.Pop().Dist != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: PushBounded keeps exactly the k smallest distances.
func TestPropertyPushBoundedKeepsKSmallest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(100)
		k := 1 + r.Intn(5)
		var h MaxHeap
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = r.Float32()
			h.PushBounded(Neighbor{ID: int32(i), Dist: vals[i]}, k)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		got := h.SortedAscending()
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i].Dist != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResultFromNeighbors(t *testing.T) {
	ns := []Neighbor{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	r := ResultFromNeighbors(ns, 2, Stats{DistComps: 9})
	if len(r.IDs) != 2 || r.IDs[0] != 1 || r.Dists[1] != 0.2 || r.Stats.DistComps != 9 {
		t.Errorf("result = %+v", r)
	}
	r = ResultFromNeighbors(ns, 10, Stats{})
	if len(r.IDs) != 3 {
		t.Errorf("overlong k not clamped: %d", len(r.IDs))
	}
}

func TestHeapReset(t *testing.T) {
	var h MinHeap
	h.Push(Neighbor{1, 1})
	h.Reset()
	if h.Len() != 0 {
		t.Error("reset failed")
	}
	var m MaxHeap
	m.Push(Neighbor{1, 1})
	m.Reset()
	if m.Len() != 0 {
		t.Error("reset failed")
	}
}
