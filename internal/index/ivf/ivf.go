// Package ivf implements the inverted-file (cluster-based) index family of
// the paper's Sec. II-B: vectors are k-means clustered into nlist cells; a
// query compares against all centroids, picks the nprobe closest cells, and
// scans their members exhaustively.
//
// Two variants are provided, matching the benchmarked systems:
//
//   - IVF_FLAT (memory-based, Milvus): cells hold full-precision vectors in
//     memory.
//   - IVF_PQ (storage-based, LanceDB): cells hold product-quantised codes in
//     cluster-contiguous storage pages; probing a cell reads its pages from
//     the device, and scoring uses the ADC table (no re-ranking, which is why
//     the paper's LanceDB-IVF accuracy tops out at 0.64–0.73, Tab. II).
package ivf

import (
	"fmt"
	"math"

	"svdbench/internal/index"
	"svdbench/internal/index/kmeans"
	"svdbench/internal/index/pq"
	"svdbench/internal/vec"
)

// Config controls index construction.
type Config struct {
	// NList is the number of clusters; the paper follows the faiss rule
	// nlist = 4·√n (Sec. III-C). Zero applies that rule.
	NList int
	// Metric is the query distance.
	Metric vec.Metric
	// Seed drives k-means.
	Seed int64
	// PQ enables the product-quantised storage variant with PQM
	// sub-quantizers (dim/8 when zero).
	PQ  bool
	PQM int
	// PageSize is the storage page size for the PQ variant (4096 when
	// zero).
	PageSize int
}

// DefaultNList returns the faiss-recommended 4·√n used throughout the paper.
func DefaultNList(n int) int {
	if n <= 0 {
		return 1
	}
	return int(4 * math.Sqrt(float64(n)))
}

// Index is a built IVF index.
type Index struct {
	cfg       Config
	data      *vec.Matrix
	ids       []int32
	centroids *vec.Matrix
	lists     [][]int32 // row indexes per cell
	cost      index.CostModel

	// PQ variant state.
	quantizer *pq.Quantizer
	codes     []byte    // packed n×m codes, indexed by row
	listPages [][]int64 // storage pages per cell
	codeBytes int64
}

// Build clusters data and constructs the index. ids, when non-nil, maps rows
// to external ids.
func Build(data *vec.Matrix, ids []int32, cfg Config) (*Index, error) {
	n := data.Len()
	if n == 0 {
		return nil, fmt.Errorf("ivf: empty data")
	}
	if cfg.NList <= 0 {
		cfg.NList = DefaultNList(n)
	}
	if cfg.NList > n {
		cfg.NList = n
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	res := kmeans.Run(data, kmeans.Config{K: cfg.NList, Seed: cfg.Seed, MaxIter: 12})
	ix := &Index{
		cfg:       cfg,
		data:      data,
		ids:       ids,
		centroids: res.Centroids,
		lists:     make([][]int32, res.Centroids.Len()),
		cost:      index.DefaultCostModel(),
	}
	for row, c := range res.Assign {
		ix.lists[c] = append(ix.lists[c], int32(row))
	}
	if cfg.PQ {
		m := cfg.PQM
		if m <= 0 {
			m = data.Dim / 8
		}
		q, err := pq.Train(data, m, cfg.Seed+1)
		if err != nil {
			return nil, fmt.Errorf("ivf: train pq: %w", err)
		}
		ix.quantizer = q
		ix.codes = q.EncodeAll(data)
	}
	return ix, nil
}

// AssignPages lays the PQ posting lists out on storage, allocating
// cluster-contiguous pages from alloc (typically ssd.Device.Alloc). It must
// be called once before searching the PQ variant under an engine that issues
// I/O.
func (ix *Index) AssignPages(alloc func(npages int64) int64) {
	if ix.quantizer == nil {
		return
	}
	entry := ix.entryBytes()
	ix.listPages = make([][]int64, len(ix.lists))
	for c, list := range ix.lists {
		bytes := int64(len(list)) * entry
		npages := (bytes + int64(ix.cfg.PageSize) - 1) / int64(ix.cfg.PageSize)
		if npages == 0 {
			continue
		}
		first := alloc(npages)
		pages := make([]int64, npages)
		for i := range pages {
			pages[i] = first + int64(i)
		}
		ix.listPages[c] = pages
		ix.codeBytes += npages * int64(ix.cfg.PageSize)
	}
}

// entryBytes is the storage footprint of one posting-list entry: the PQ code
// plus an 8-byte row id.
func (ix *Index) entryBytes() int64 { return int64(ix.quantizer.M()) + 8 }

// Name implements index.Index.
func (ix *Index) Name() string {
	if ix.cfg.PQ {
		return "IVF_PQ"
	}
	return "IVF_FLAT"
}

// Metric implements index.Index.
func (ix *Index) Metric() vec.Metric { return ix.cfg.Metric }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.data.Len() }

// NList returns the number of cells.
func (ix *Index) NList() int { return len(ix.lists) }

// MemoryBytes implements index.SizeReporter.
func (ix *Index) MemoryBytes() int64 {
	mem := int64(ix.centroids.Len()) * int64(ix.centroids.Dim) * 4
	if ix.cfg.PQ {
		mem += ix.quantizer.MemoryBytes()
		return mem
	}
	mem += int64(ix.data.Len()) * int64(ix.data.Dim) * 4
	return mem
}

// StorageBytes implements index.SizeReporter.
func (ix *Index) StorageBytes() int64 { return ix.codeBytes }

// Search implements index.Index.
func (ix *Index) Search(q []float32, k int, opts index.SearchOptions) index.Result {
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	rec := opts.Recorder
	// Coarse quantisation: compare against every centroid.
	cells := kmeans.NearestN(ix.centroids, q, nprobe)
	stats := index.Stats{DistComps: ix.centroids.Len()}
	rec.AddCPU(ix.cost.Dist(ix.data.Dim, ix.centroids.Len()))

	var heap index.MaxHeap
	if ix.cfg.PQ {
		ix.scanPQ(q, k, cells, opts, &heap, &stats, rec)
	} else {
		ix.scanFlat(q, k, cells, opts, &heap, &stats, rec)
	}
	rec.Flush()
	return index.ResultFromNeighbors(heap.SortedAscending(), k, stats)
}

func (ix *Index) scanFlat(q []float32, k int, cells []int, opts index.SearchOptions, heap *index.MaxHeap, stats *index.Stats, rec *index.Profile) {
	for _, c := range cells {
		list := ix.lists[c]
		for _, row := range list {
			id := ix.extID(row)
			if opts.Filter != nil && !opts.Filter(id) {
				continue
			}
			d := vec.Distance(ix.cfg.Metric, q, ix.data.Row(int(row)))
			stats.DistComps++
			heap.PushBounded(index.Neighbor{ID: id, Dist: d}, k)
		}
		rec.AddCPU(ix.cost.Dist(ix.data.Dim, len(list)) + ix.cost.Heap(len(list)))
	}
}

func (ix *Index) scanPQ(q []float32, k int, cells []int, opts index.SearchOptions, heap *index.MaxHeap, stats *index.Stats, rec *index.Profile) {
	table := ix.quantizer.BuildTable(q)
	// Table construction scans all sub-space centroids once.
	rec.AddCPU(ix.cost.Dist(ix.data.Dim, 256/4+1))
	m := ix.quantizer.M()
	for _, c := range cells {
		list := ix.lists[c]
		// Posting list I/O: the cell's pages are read as one sequential
		// request before scanning.
		if ix.listPages != nil && len(ix.listPages[c]) > 0 {
			rec.AddContiguousIO(ix.listPages[c])
			stats.PagesRead += len(ix.listPages[c])
		}
		for _, row := range list {
			id := ix.extID(row)
			if opts.Filter != nil && !opts.Filter(id) {
				continue
			}
			d := table.DistanceAt(ix.codes, m, int(row))
			stats.PQComps++
			heap.PushBounded(index.Neighbor{ID: id, Dist: d}, k)
		}
		rec.AddCPU(ix.cost.PQ(m, len(list)) + ix.cost.Heap(len(list)))
	}
}

func (ix *Index) extID(row int32) int32 {
	if ix.ids != nil {
		return ix.ids[row]
	}
	return row
}

var _ index.Index = (*Index)(nil)
var _ index.SizeReporter = (*Index)(nil)
