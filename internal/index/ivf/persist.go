package ivf

import (
	"fmt"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/index/pq"
	"svdbench/internal/vec"
)

const persistMagic = "IVFX0001"

// WriteTo serialises the centroids, posting lists, and (for the PQ variant)
// the codec and codes. Full-precision vectors are re-supplied at load time.
func (ix *Index) WriteTo(w *binenc.Writer) {
	w.Magic(persistMagic)
	w.Int(ix.cfg.NList)
	w.Int(int(ix.cfg.Metric))
	w.I64(ix.cfg.Seed)
	pqFlag := 0
	if ix.cfg.PQ {
		pqFlag = 1
	}
	w.Int(pqFlag)
	w.Int(ix.cfg.PQM)
	w.Int(ix.cfg.PageSize)
	w.Int(ix.data.Len())
	w.Int(ix.centroids.Dim)
	w.F32s(ix.centroids.Raw())
	w.Int(len(ix.lists))
	for _, list := range ix.lists {
		w.I32s(list)
	}
	if ix.cfg.PQ {
		ix.quantizer.WriteTo(w)
		w.Bytes(ix.codes)
	}
}

// ReadFrom deserialises an index written with WriteTo, re-binding it to its
// vector data (and optional external ids).
func ReadFrom(r *binenc.Reader, data *vec.Matrix, ids []int32) (*Index, error) {
	r.Magic(persistMagic)
	cfg := Config{
		NList:  r.Int(),
		Metric: vec.Metric(r.Int()),
		Seed:   r.I64(),
	}
	cfg.PQ = r.Int() == 1
	cfg.PQM = r.Int()
	cfg.PageSize = r.Int()
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != data.Len() {
		return nil, fmt.Errorf("ivf: persisted index has %d rows, data has %d", n, data.Len())
	}
	cdim := r.Int()
	raw := r.F32s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if cdim <= 0 || len(raw)%cdim != 0 {
		return nil, fmt.Errorf("ivf: corrupt centroid block")
	}
	centroids := vec.NewMatrix(len(raw)/cdim, cdim)
	copy(centroids.Raw(), raw)
	ix := &Index{
		cfg:       cfg,
		data:      data,
		ids:       ids,
		centroids: centroids,
		cost:      index.DefaultCostModel(),
	}
	nlists := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nlists != centroids.Len() {
		return nil, fmt.Errorf("ivf: %d lists for %d centroids", nlists, centroids.Len())
	}
	ix.lists = make([][]int32, nlists)
	total := 0
	for c := 0; c < nlists; c++ {
		ix.lists[c] = r.I32s()
		total += len(ix.lists[c])
	}
	if cfg.PQ {
		q, err := pq.ReadQuantizer(r)
		if err != nil {
			return nil, fmt.Errorf("ivf: %w", err)
		}
		ix.quantizer = q
		ix.codes = r.Bytes()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if total != n {
		return nil, fmt.Errorf("ivf: lists cover %d rows, want %d", total, n)
	}
	return ix, nil
}
