package ivf

import (
	"bytes"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func persistRoundTrip(t *testing.T, cfg Config) {
	t.Helper()
	ds := testData(t)
	cfg.Metric = ds.Spec.Metric
	cfg.Seed = 1
	orig, err := Build(ds.Vectors, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(binenc.NewReader(&buf), ds.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NList() != orig.NList() {
		t.Errorf("nlist %d vs %d", got.NList(), orig.NList())
	}
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := orig.Search(q, 10, index.SearchOptions{NProbe: 8})
		b := got.Search(q, 10, index.SearchOptions{NProbe: 8})
		if !reflect.DeepEqual(a.IDs, b.IDs) {
			t.Fatalf("query %d: %v vs %v", qi, a.IDs, b.IDs)
		}
	}
}

func TestPersistRoundTripFlat(t *testing.T) {
	persistRoundTrip(t, Config{})
}

func TestPersistRoundTripPQ(t *testing.T) {
	persistRoundTrip(t, Config{PQ: true, PQM: 8})
}

func TestPersistRejectsGarbage(t *testing.T) {
	r := binenc.NewReader(bytes.NewReader([]byte("IVFXGARBAGEGARBAGE")))
	if _, err := ReadFrom(r, vec.NewMatrix(1, 4), nil); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPersistRejectsWrongData(t *testing.T) {
	ds := testData(t)
	orig, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	w.Flush()
	if _, err := ReadFrom(binenc.NewReader(&buf), vec.NewMatrix(3, 32), nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

// TestSnapshotByteIdentical is the behavioral property the mapiter analyzer
// guards: two independent builds from the same (seed, config) must persist
// to exactly the same bytes, or the scheduler's deterministic merge and the
// collection cache break.
func TestSnapshotByteIdentical(t *testing.T) {
	ds := testData(t)
	snap := func() []byte {
		ix, err := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1, PQ: true, PQM: 8})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := binenc.NewWriter(&buf)
		ix.WriteTo(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("two builds from the same seed persisted different bytes (%d vs %d)", len(a), len(b))
	}
}
