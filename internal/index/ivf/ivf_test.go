package ivf

import (
	"testing"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "ivf-test", N: 2000, Dim: 32, NumQueries: 40,
		Clusters: 16, Seed: 5, Metric: vec.Cosine, GroundK: 10,
	})
}

func searchAll(ds *dataset.Dataset, ix *Index, k int, opts index.SearchOptions) [][]int32 {
	out := make([][]int32, ds.Queries.Len())
	for qi := range out {
		out[qi] = ix.Search(ds.Queries.Row(qi), k, opts).IDs
	}
	return out
}

func TestFlatRecallReasonable(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Probing every cell is an exact scan.
	all := searchAll(ds, ix, 10, index.SearchOptions{NProbe: ix.NList()})
	if r := dataset.MeanRecallAtK(all, ds.GroundTruth, 10); r < 0.999 {
		t.Errorf("nprobe=nlist recall = %v, want 1.0", r)
	}
	// Modest nprobe must reach usable recall on clustered data; the
	// harness tunes nprobe per dataset to hit 0.9 like the paper does.
	some := searchAll(ds, ix, 10, index.SearchOptions{NProbe: 16})
	if r := dataset.MeanRecallAtK(some, ds.GroundTruth, 10); r < 0.65 {
		t.Errorf("nprobe=16 recall = %v, want ≥0.65", r)
	}
	more := searchAll(ds, ix, 10, index.SearchOptions{NProbe: 48})
	if r := dataset.MeanRecallAtK(more, ds.GroundTruth, 10); r < 0.85 {
		t.Errorf("nprobe=48 recall = %v, want ≥0.85", r)
	}
}

func TestRecallMonotoneInNProbe(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	prev := -1.0
	for _, np := range []int{1, 4, 16, 64} {
		r := dataset.MeanRecallAtK(searchAll(ds, ix, 10, index.SearchOptions{NProbe: np}), ds.GroundTruth, 10)
		if r < prev-0.02 { // tiny non-monotonicity tolerated
			t.Errorf("recall dropped from %v to %v at nprobe=%d", prev, r, np)
		}
		prev = r
	}
}

func TestDefaultNListRule(t *testing.T) {
	if got := DefaultNList(1_000_000); got != 4000 {
		t.Errorf("4·√1M = %d, want 4000", got)
	}
	if got := DefaultNList(0); got != 1 {
		t.Errorf("DefaultNList(0) = %d", got)
	}
}

func TestStatsAndProfile(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	var p index.Profile
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{NProbe: 4, Recorder: &p})
	if res.Stats.DistComps <= ix.NList() {
		t.Errorf("dist comps = %d, want more than centroid count %d", res.Stats.DistComps, ix.NList())
	}
	if p.TotalCPU() <= 0 {
		t.Error("no CPU recorded")
	}
	if p.TotalPages() != 0 {
		t.Error("IVF_FLAT is memory-based but recorded I/O")
	}
}

func TestPQVariantIssuesIO(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1, PQ: true, PQM: 8})
	if err != nil {
		t.Fatal(err)
	}
	var next int64
	ix.AssignPages(func(n int64) int64 {
		p := next
		next += n
		return p
	})
	var p index.Profile
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{NProbe: 4, Recorder: &p})
	if res.Stats.PagesRead == 0 || p.TotalPages() == 0 {
		t.Error("PQ variant issued no I/O")
	}
	if res.Stats.PQComps == 0 {
		t.Error("no PQ comparisons counted")
	}
	if ix.StorageBytes() == 0 {
		t.Error("no storage accounted")
	}
	if ix.Name() != "IVF_PQ" {
		t.Errorf("name = %s", ix.Name())
	}
}

func TestPQRecallLowerThanFlat(t *testing.T) {
	ds := testData(t)
	flat, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	pqix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1, PQ: true, PQM: 4})
	rFlat := dataset.MeanRecallAtK(searchAll(ds, flat, 10, index.SearchOptions{NProbe: 16}), ds.GroundTruth, 10)
	rPQ := dataset.MeanRecallAtK(searchAll(ds, pqix, 10, index.SearchOptions{NProbe: 16}), ds.GroundTruth, 10)
	if rPQ >= rFlat {
		t.Errorf("PQ recall %v not below flat recall %v (quantisation must cost accuracy)", rPQ, rFlat)
	}
	if rPQ < 0.2 {
		t.Errorf("PQ recall %v unusably low", rPQ)
	}
}

func TestFilterRespected(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{
		NProbe: ix.NList(),
		Filter: func(id int32) bool { return id < 1000 },
	})
	for _, id := range res.IDs {
		if id >= 1000 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 8), nil, Config{}); err == nil {
		t.Error("empty build accepted")
	}
}

func TestListsCoverAllRows(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	seen := make([]bool, ds.Vectors.Len())
	for _, list := range ix.lists {
		for _, row := range list {
			if seen[row] {
				t.Fatalf("row %d in two cells", row)
			}
			seen[row] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("row %d in no cell", i)
		}
	}
}

func TestNProbeDefaultsToOne(t *testing.T) {
	ds := testData(t)
	ix, _ := Build(ds.Vectors, nil, Config{Metric: ds.Spec.Metric, Seed: 1})
	res := ix.Search(ds.Queries.Row(0), 5, index.SearchOptions{})
	if len(res.IDs) == 0 {
		t.Error("nprobe=0 returned nothing")
	}
}
