package pq

import (
	"fmt"

	"svdbench/internal/binenc"
	"svdbench/internal/vec"
)

// WriteTo serialises the trained quantiser.
func (q *Quantizer) WriteTo(w *binenc.Writer) {
	w.Int(q.dim)
	w.Int(q.m)
	w.Int(q.subDim)
	w.Int(q.ksub)
	for _, cb := range q.codebooks {
		w.F32s(cb.Raw())
	}
}

// ReadQuantizer deserialises a quantiser written with WriteTo.
func ReadQuantizer(r *binenc.Reader) (*Quantizer, error) {
	q := &Quantizer{
		dim:    r.Int(),
		m:      r.Int(),
		subDim: r.Int(),
		ksub:   r.Int(),
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if q.m <= 0 || q.subDim <= 0 || q.dim != q.m*q.subDim || q.ksub <= 0 || q.ksub > centroidsPerSub {
		return nil, fmt.Errorf("pq: corrupt quantiser header %+v", q)
	}
	q.codebooks = make([]*vec.Matrix, q.m)
	for s := 0; s < q.m; s++ {
		raw := r.F32s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(raw) != q.ksub*q.subDim {
			return nil, fmt.Errorf("pq: codebook %d has %d floats, want %d", s, len(raw), q.ksub*q.subDim)
		}
		cb := vec.NewMatrix(q.ksub, q.subDim)
		copy(cb.Raw(), raw)
		q.codebooks[s] = cb
	}
	return q, nil
}
