// Package pq implements product quantisation (Jégou et al., TPAMI 2011), the
// compression codec DiskANN keeps in memory to steer its graph traversal and
// LanceDB applies to its IVF posting lists.
//
// A d-dimensional vector is split into M contiguous sub-vectors; each
// sub-vector is quantised to one of 256 centroids learned with k-means,
// giving an M-byte code. Asymmetric distance computation (ADC) against a
// query builds one 256-entry lookup table per sub-space and then scores any
// code with M table lookups.
package pq

import (
	"fmt"
	"math/rand"

	"svdbench/internal/index/kmeans"
	"svdbench/internal/vec"
)

// Codebook size per sub-space; one code byte indexes it.
const centroidsPerSub = 256

// Quantizer is a trained product quantiser.
type Quantizer struct {
	dim    int
	m      int // sub-quantizer count
	subDim int
	ksub   int // centroids per sub-space (256, or fewer for tiny training sets)
	// codebooks[s] is the ksub×subDim centroid matrix of sub-space s.
	codebooks []*vec.Matrix
}

// Train learns a quantiser with m sub-spaces from the training rows. dim
// must be divisible by m.
func Train(training *vec.Matrix, m int, seed int64) (*Quantizer, error) {
	dim := training.Dim
	if m <= 0 || dim%m != 0 {
		return nil, fmt.Errorf("pq: dim %d not divisible by m %d", dim, m)
	}
	if training.Len() == 0 {
		return nil, fmt.Errorf("pq: empty training set")
	}
	subDim := dim / m
	q := &Quantizer{dim: dim, m: m, subDim: subDim, codebooks: make([]*vec.Matrix, m)}
	n := training.Len()
	// Cap the k-means training sample to keep construction tractable.
	sample := n
	if sample > 20_000 {
		sample = 20_000
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(n)[:sample]
	for s := 0; s < m; s++ {
		sub := vec.NewMatrix(sample, subDim)
		for i, row := range idx {
			copy(sub.Row(i), training.Row(row)[s*subDim:(s+1)*subDim])
		}
		res := kmeans.Run(sub, kmeans.Config{K: centroidsPerSub, MaxIter: 8, Seed: seed + int64(s)})
		q.codebooks[s] = res.Centroids
	}
	q.ksub = q.codebooks[0].Len()
	return q, nil
}

// M returns the number of sub-quantizers (bytes per code).
func (q *Quantizer) M() int { return q.m }

// Dim returns the vector dimensionality the quantiser was trained for.
func (q *Quantizer) Dim() int { return q.dim }

// Encode quantises v into an m-byte code.
func (q *Quantizer) Encode(v []float32) []byte {
	if len(v) != q.dim {
		panic(fmt.Sprintf("pq: encode dim %d, want %d", len(v), q.dim))
	}
	code := make([]byte, q.m)
	for s := 0; s < q.m; s++ {
		sub := v[s*q.subDim : (s+1)*q.subDim]
		code[s] = byte(kmeans.Nearest(q.codebooks[s], sub))
	}
	return code
}

// EncodeAll quantises every row of data into a packed n×m code array.
func (q *Quantizer) EncodeAll(data *vec.Matrix) []byte {
	n := data.Len()
	codes := make([]byte, n*q.m)
	for i := 0; i < n; i++ {
		copy(codes[i*q.m:], q.Encode(data.Row(i)))
	}
	return codes
}

// Decode reconstructs the approximate vector of a code.
func (q *Quantizer) Decode(code []byte) []float32 {
	v := make([]float32, q.dim)
	for s := 0; s < q.m; s++ {
		copy(v[s*q.subDim:(s+1)*q.subDim], q.codebooks[s].Row(int(code[s])))
	}
	return v
}

// Table is a per-query ADC lookup table: Table[s*256+c] is the squared
// distance between the query's sub-vector s and centroid c.
type Table []float32

// BuildTable computes the ADC table for query under squared Euclidean
// distance. (Cosine queries must be normalised first; squared Euclidean on
// normalised vectors ranks identically to cosine distance.)
func (q *Quantizer) BuildTable(query []float32) Table {
	return q.BuildTableInto(query, nil)
}

// BuildTableInto computes the ADC table for query into t, reusing t's
// storage when its capacity suffices (the zero-allocation form of
// BuildTable). Each codebook is one contiguous centroid matrix, so the
// 256 sub-distances per sub-space are scored with one batch-kernel call;
// every entry is bit-identical to the per-centroid scalar loop. Entries past
// ksub (under-trained codebooks) are never read — code bytes always index a
// trained centroid — so stale values there are harmless.
//
//annlint:hotpath
func (q *Quantizer) BuildTableInto(query []float32, t Table) Table {
	if len(query) != q.dim {
		panic(fmt.Sprintf("pq: table dim %d, want %d", len(query), q.dim))
	}
	need := q.m * centroidsPerSub
	if cap(t) < need {
		t = make(Table, need) //annlint:allow hotalloc -- cap-guarded growth; the table is reused at capacity on every later query
	}
	t = t[:need]
	for s := 0; s < q.m; s++ {
		sub := query[s*q.subDim : (s+1)*q.subDim]
		cb := q.codebooks[s]
		base := s * centroidsPerSub
		vec.L2SqBatch(sub, cb.Raw(), t[base:base+q.ksub])
	}
	return t
}

// Distance scores one code against the table: the sum of M lookups.
func (t Table) Distance(code []byte) float32 {
	var d float32
	for s, c := range code {
		d += t[s*centroidsPerSub+int(c)]
	}
	return d
}

// DistanceAt scores code i inside a packed code array with stride m.
//
//annlint:hotpath
func (t Table) DistanceAt(codes []byte, m, i int) float32 {
	return t.Distance(codes[i*m : (i+1)*m])
}

// MemoryBytes reports the quantiser's codebook footprint.
func (q *Quantizer) MemoryBytes() int64 {
	return int64(q.m) * int64(q.ksub) * int64(q.subDim) * 4
}
