package pq

import (
	"bytes"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
)

func TestQuantizerPersistRoundTrip(t *testing.T) {
	m := randMatrix(400, 32, 77)
	orig, err := Train(m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuantizer(binenc.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != orig.M() || got.Dim() != orig.Dim() {
		t.Errorf("shape mismatch: %d/%d vs %d/%d", got.M(), got.Dim(), orig.M(), orig.Dim())
	}
	for i := 0; i < 20; i++ {
		a, b := orig.Encode(m.Row(i)), got.Encode(m.Row(i))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("row %d codes differ after round trip", i)
		}
	}
	// ADC tables must be identical.
	ta := orig.BuildTable(m.Row(0))
	tb := got.BuildTable(m.Row(0))
	if !reflect.DeepEqual(ta, tb) {
		t.Error("ADC tables differ after round trip")
	}
}

func TestReadQuantizerRejectsGarbage(t *testing.T) {
	if _, err := ReadQuantizer(binenc.NewReader(bytes.NewReader([]byte("nope")))); err == nil {
		t.Error("garbage accepted")
	}
	// Header with inconsistent dims.
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	w.Int(16) // dim
	w.Int(3)  // m (16 % 3 != 0 → dim != m*subDim)
	w.Int(4)  // subDim
	w.Int(10) // ksub
	w.Flush()
	if _, err := ReadQuantizer(binenc.NewReader(&buf)); err == nil {
		t.Error("inconsistent header accepted")
	}
}
