package pq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"svdbench/internal/vec"
)

func randMatrix(n, dim int, seed int64) *vec.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		vec.Normalize(row)
	}
	return m
}

func TestTrainRejectsBadArgs(t *testing.T) {
	m := randMatrix(10, 16, 1)
	if _, err := Train(m, 5, 1); err == nil {
		t.Error("dim 16 with m=5 accepted")
	}
	if _, err := Train(vec.NewMatrix(0, 16), 4, 1); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestEncodeDecodeReducesError(t *testing.T) {
	m := randMatrix(800, 32, 2)
	q, err := Train(m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error must be far below the vector norm (≈1).
	var errSum float64
	for i := 0; i < 100; i++ {
		v := m.Row(i)
		rec := q.Decode(q.Encode(v))
		errSum += math.Sqrt(float64(vec.L2Sq(v, rec)))
	}
	mean := errSum / 100
	if mean > 0.6 {
		t.Errorf("mean reconstruction error %.3f too high", mean)
	}
}

func TestCodeShape(t *testing.T) {
	m := randMatrix(300, 16, 3)
	q, _ := Train(m, 4, 1)
	code := q.Encode(m.Row(0))
	if len(code) != 4 {
		t.Errorf("code length = %d, want 4", len(code))
	}
	all := q.EncodeAll(m)
	if len(all) != 300*4 {
		t.Errorf("EncodeAll length = %d", len(all))
	}
	if q.M() != 4 || q.Dim() != 16 {
		t.Errorf("M=%d Dim=%d", q.M(), q.Dim())
	}
}

func TestADCMatchesDecodedDistance(t *testing.T) {
	m := randMatrix(400, 24, 4)
	q, _ := Train(m, 6, 1)
	query := m.Row(0)
	table := q.BuildTable(query)
	for i := 10; i < 20; i++ {
		code := q.Encode(m.Row(i))
		adc := table.Distance(code)
		exact := vec.L2Sq(query, q.Decode(code))
		if math.Abs(float64(adc-exact)) > 1e-3 {
			t.Fatalf("row %d: ADC %v vs decoded %v", i, adc, exact)
		}
	}
}

func TestDistanceAtMatchesDistance(t *testing.T) {
	m := randMatrix(100, 16, 5)
	q, _ := Train(m, 4, 1)
	codes := q.EncodeAll(m)
	table := q.BuildTable(m.Row(0))
	for i := 0; i < 10; i++ {
		a := table.DistanceAt(codes, q.M(), i)
		b := table.Distance(codes[i*q.M() : (i+1)*q.M()])
		if a != b {
			t.Fatalf("row %d: DistanceAt %v vs Distance %v", i, a, b)
		}
	}
}

// Property: ADC distance correlates with true distance well enough that the
// nearest of {near duplicate, random far vector} is always ranked first.
func TestPropertyADCRanksNearVsFar(t *testing.T) {
	m := randMatrix(600, 32, 6)
	q, _ := Train(m, 8, 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := m.Row(r.Intn(m.Len()))
		near := vec.Clone(base)
		for j := range near {
			near[j] += float32(r.NormFloat64() * 0.01)
		}
		far := make([]float32, len(base))
		for j := range far {
			far[j] = float32(r.NormFloat64())
		}
		vec.Normalize(far)
		table := q.BuildTable(base)
		return table.Distance(q.Encode(near)) < table.Distance(q.Encode(far))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	m := randMatrix(200, 16, 7)
	a, _ := Train(m, 4, 42)
	b, _ := Train(m, 4, 42)
	va := a.Encode(m.Row(5))
	vb := b.Encode(m.Row(5))
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed produced different codes")
		}
	}
}

func TestEncodePanicsOnWrongDim(t *testing.T) {
	m := randMatrix(100, 16, 8)
	q, _ := Train(m, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong dim")
		}
	}()
	q.Encode(make([]float32, 8))
}

func TestMemoryBytes(t *testing.T) {
	m := randMatrix(400, 16, 9)
	q, _ := Train(m, 4, 1)
	want := int64(4) * 256 * 4 * 4 // m × 256 × subDim × sizeof(float32)
	if q.MemoryBytes() != want {
		t.Errorf("memory = %d, want %d", q.MemoryBytes(), want)
	}
}
