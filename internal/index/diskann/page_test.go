package diskann

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
	"svdbench/internal/dataset"
	"svdbench/internal/index"
)

// pageOpts is the standard page-layout variant of uncachedOpts.
func pageOpts() index.SearchOptions {
	return uncachedOpts().With(index.WithLayout(index.LayoutPage))
}

// sharedPaged returns the shared test index with storage assigned, so page
// addresses exist for both layouts.
func sharedPaged(t *testing.T) (*dataset.Dataset, *Index) {
	t.Helper()
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	return ds, ix
}

func TestPageCapacityByDimension(t *testing.T) {
	// Budget: 4096 − 16 header − 48·4 adjacency = 3888 B for members of
	// 4 B id + dim B SQ8 code each.
	cases := []struct {
		dim, capacity, groups int
	}{
		{768, 5, 1},
		{1536, 2, 1},
		{32, 108, 1},
	}
	for _, c := range cases {
		if got := pageCapacity(c.dim, 4096); got != c.capacity {
			t.Errorf("dim %d: capacity %d, want %d", c.dim, got, c.capacity)
		}
		if got := pagesPerGroupFor(c.dim, 4096); got != c.groups {
			t.Errorf("dim %d: pages/group %d, want %d", c.dim, got, c.groups)
		}
	}
	// A dimensionality too large for one page spills into a multi-page group
	// rather than underflowing capacity.
	if got := pageCapacity(8192, 4096); got != 1 {
		t.Errorf("8192-d capacity %d, want floor 1", got)
	}
	if got := pagesPerGroupFor(8192, 4096); got != 3 {
		// 16 + 192 + (4+8192) = 8404 B → 3 pages.
		t.Errorf("8192-d pages/group %d, want 3", got)
	}
}

// TestPagePackingPartition: the packer produces an exact partition of the
// node rows — anchor first, capacity respected, adjacency in range — and the
// entry group holds the medoid.
func TestPagePackingPartition(t *testing.T) {
	_, ix := shared(t)
	pl := ix.pageLayoutFor()
	capacity := ix.PageCapacity()
	seen := make([]int32, ix.Len())
	for i := range seen {
		seen[i] = -1
	}
	for p, members := range pl.members {
		if len(members) == 0 || len(members) > capacity {
			t.Fatalf("group %d holds %d members, capacity %d", p, len(members), capacity)
		}
		if members[0] != pl.anchors[p] {
			t.Fatalf("group %d anchor %d is not its first member %d", p, pl.anchors[p], members[0])
		}
		for _, row := range members {
			if seen[row] >= 0 {
				t.Fatalf("row %d in groups %d and %d", row, seen[row], p)
			}
			seen[row] = int32(p)
			if pl.pageOf[row] != int32(p) {
				t.Fatalf("pageOf[%d] = %d, want %d", row, pl.pageOf[row], p)
			}
		}
		if len(pl.adj[p]) > pageDegree {
			t.Fatalf("group %d degree %d exceeds %d", p, len(pl.adj[p]), pageDegree)
		}
		for _, q := range pl.adj[p] {
			if q < 0 || int(q) >= pl.pages() || int(q) == p {
				t.Fatalf("group %d has out-of-range edge %d", p, q)
			}
		}
	}
	for row, p := range seen {
		if p < 0 {
			t.Fatalf("row %d unassigned", row)
		}
	}
	if pl.pageOf[ix.Medoid()] != pl.entry {
		t.Fatalf("entry %d does not hold medoid", pl.entry)
	}
}

// TestPageLayoutSeedStable: packing is a pure function of the build config —
// two builds from the same seed produce identical layouts, and a different
// seed produces a different one (the tie-breaking is seeded, not incidental).
func TestPageLayoutSeedStable(t *testing.T) {
	ds := testData(t)
	a := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Layout: index.LayoutPage})
	b := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Layout: index.LayoutPage})
	if !reflect.DeepEqual(a.pageLay.members, b.pageLay.members) ||
		!reflect.DeepEqual(a.pageLay.adj, b.pageLay.adj) {
		t.Fatal("same-seed builds produced different page layouts")
	}
	c := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Seed: 2, Layout: index.LayoutPage})
	if reflect.DeepEqual(a.pageLay.members, c.pageLay.members) {
		t.Fatal("different seeds produced identical page layouts (tie-breaking not seeded)")
	}
}

// TestPageSearchRecallAtEqualSearchList is the cross-layout identity check:
// at equal search_list the page layout must be at least as accurate as the
// ID layout minus tolerance — one page fetch re-ranks several co-located
// nodes, so recall can only benefit at the same candidate-list bound.
func TestPageSearchRecallAtEqualSearchList(t *testing.T) {
	ds, ix := sharedPaged(t)
	idRecall := dataset.MeanRecallAtK(searchAll(ds, ix, 10, uncachedOpts()), ds.GroundTruth, 10)
	pageRecall := dataset.MeanRecallAtK(searchAll(ds, ix, 10, pageOpts()), ds.GroundTruth, 10)
	if pageRecall < idRecall-0.02 {
		t.Errorf("page recall %v below id recall %v - 0.02 at equal search_list", pageRecall, idRecall)
	}
}

// TestPageSearchDeterministic: repeated searches return identical results.
func TestPageSearchDeterministic(t *testing.T) {
	ds, ix := sharedPaged(t)
	for qi := 0; qi < 5; qi++ {
		q := ds.Queries.Row(qi)
		a := ix.Search(q, 10, pageOpts())
		b := ix.Search(q, 10, pageOpts())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: page search not deterministic", qi)
		}
	}
}

// TestPageLazyEqualsEager: an index built with the ID layout and switched to
// the page layout per query must produce exactly the searches of an index
// built with Layout=page (the lazy pack is the eager pack).
func TestPageLazyEqualsEager(t *testing.T) {
	ds := testData(t)
	lazy := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8})
	eager := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Layout: index.LayoutPage})
	var next int64
	lazy.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	next = 0
	eager.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	opts := pageOpts()
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := lazy.Search(q, 10, opts)
		b := eager.Search(q, 10, opts) // eager default layout is page anyway
		c := eager.Search(q, 10, uncachedOpts())
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(b, c) {
			t.Fatalf("query %d: lazy/eager/default-dispatch page searches differ", qi)
		}
	}
}

// TestPageSearchCutsDeviceReads is the index-level acceptance shape: at a
// page candidate list sized to match the ID layout's recall, the page layout
// reads substantially fewer pages per query.
func TestPageSearchCutsDeviceReads(t *testing.T) {
	ds, ix := sharedPaged(t)
	idOpts := uncachedOpts()
	idRecall := dataset.MeanRecallAtK(searchAll(ds, ix, 10, idOpts), ds.GroundTruth, 10)

	// Smallest page-list L whose recall is within 0.005 of the ID layout.
	pOpts := pageOpts()
	for L := 1; ; L++ {
		pOpts.SearchList = L
		r := dataset.MeanRecallAtK(searchAll(ds, ix, 10, pOpts), ds.GroundTruth, 10)
		if r >= idRecall-0.005 || L >= idOpts.SearchList {
			break
		}
	}
	var idPages, pagePages int
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		q := ds.Queries.Row(qi)
		idPages += ix.Search(q, 10, idOpts).Stats.PagesRead
		pagePages += ix.Search(q, 10, pOpts).Stats.PagesRead
	}
	if float64(pagePages) > 0.7*float64(idPages) {
		t.Errorf("page layout read %d pages vs id %d — less than 30%% reduction at matched recall", pagePages, idPages)
	}
}

// TestPageProfileInterleavesComputeAndIO mirrors the node-layout profile
// test: recorded I/O equals demand stats and one I/O step per hop.
func TestPageProfileInterleavesComputeAndIO(t *testing.T) {
	ds, ix := sharedPaged(t)
	res, prof := recordOne(ix, ds.Queries.Row(0), pageOpts())
	if prof.TotalPages() == 0 {
		t.Fatal("no I/O recorded")
	}
	if prof.TotalPages() != res.Stats.PagesRead {
		t.Errorf("profile pages %d != stats pages %d", prof.TotalPages(), res.Stats.PagesRead)
	}
	ioSteps := 0
	for _, s := range prof.Steps {
		if len(s.Pages) > 0 {
			ioSteps++
			if len(s.Pages) > 4*ix.PagesPerGroup() {
				t.Errorf("beam step fetched %d pages, exceeds W×pages/group", len(s.Pages))
			}
		}
	}
	if ioSteps != res.Stats.Hops {
		t.Errorf("io steps %d != hops %d", ioSteps, res.Stats.Hops)
	}
}

// TestPageLookAheadResultsAndDemandIdentical: the look-ahead invariant holds
// on the page path too — speculation changes when pages are read, never what
// the search returns or demands.
func TestPageLookAheadResultsAndDemandIdentical(t *testing.T) {
	ds, ix := sharedPaged(t)
	base := pageOpts()
	for _, la := range []int{1, 2, 8} {
		for qi := 0; qi < 10; qi++ {
			q := ds.Queries.Row(qi)
			want, wantProf := recordOne(ix, q, base)
			got, gotProf := recordOne(ix, q, base.With(index.WithLookAhead(la)))
			if !reflect.DeepEqual(want.IDs, got.IDs) || !reflect.DeepEqual(want.Dists, got.Dists) {
				t.Fatalf("la=%d query %d: results changed", la, qi)
			}
			ws, gs := want.Stats, got.Stats
			gs.PrefetchPages, gs.PrefetchUsed = 0, 0
			if ws != gs {
				t.Fatalf("la=%d query %d: demand stats changed: %+v vs %+v", la, qi, ws, gs)
			}
			if got.Stats.PrefetchUsed > got.Stats.PrefetchPages {
				t.Fatalf("la=%d query %d: used %d > issued %d", la, qi, got.Stats.PrefetchUsed, got.Stats.PrefetchPages)
			}
			if len(wantProf.Steps) != len(gotProf.Steps) {
				t.Fatalf("la=%d query %d: step count changed", la, qi)
			}
			for si := range wantProf.Steps {
				w, g := wantProf.Steps[si], gotProf.Steps[si]
				g.Prefetch = nil
				w.Prefetch = nil
				if !reflect.DeepEqual(w, g) {
					t.Fatalf("la=%d query %d step %d: demand step changed", la, qi, si)
				}
			}
		}
	}
}

// TestPageCacheResultsIdenticalAndReducesReads: the node cache composes with
// the page layout — results stay byte-identical while a static page cache
// absorbs device reads.
func TestPageCacheResultsIdenticalAndReducesReads(t *testing.T) {
	ds, ix := sharedPaged(t)
	base := pageOpts()
	cached := cachedOpts(index.NodeCacheStatic, 8).With(index.WithLayout(index.LayoutPage))
	var basePages, cachedPages, cacheHits int
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		q := ds.Queries.Row(qi)
		a := ix.Search(q, 10, base)
		b := ix.Search(q, 10, cached)
		if !reflect.DeepEqual(a.IDs, b.IDs) || !reflect.DeepEqual(a.Dists, b.Dists) {
			t.Fatalf("query %d: cached page search changed results", qi)
		}
		if b.Stats.PagesRead+b.Stats.CachePages != a.Stats.PagesRead {
			t.Fatalf("query %d: page conservation violated: %d+%d != %d",
				qi, b.Stats.PagesRead, b.Stats.CachePages, a.Stats.PagesRead)
		}
		basePages += a.Stats.PagesRead
		cachedPages += b.Stats.PagesRead
		cacheHits += b.Stats.CachePages
	}
	if cacheHits == 0 {
		t.Error("static page cache absorbed nothing")
	}
	if cachedPages >= basePages {
		t.Errorf("cached reads %d not below uncached %d", cachedPages, basePages)
	}
}

// TestPageSearchBatchMatchesSearch: the batch driver serves the page layout
// identically at any concurrency.
func TestPageSearchBatchMatchesSearch(t *testing.T) {
	ds, ix := sharedPaged(t)
	opts := pageOpts()
	queries := make([][]float32, ds.Queries.Len())
	want := make([]index.Result, len(queries))
	for qi := range queries {
		queries[qi] = ds.Queries.Row(qi)
		want[qi] = ix.Search(queries[qi], 10, opts)
	}
	for _, workers := range []int{1, 4} {
		got := ix.SearchBatch(context.Background(), queries, 10,
			opts.With(index.WithQueryConcurrency(workers)))
		for qi := range queries {
			if !reflect.DeepEqual(want[qi], got[qi]) {
				t.Fatalf("workers=%d query %d: batch result differs", workers, qi)
			}
		}
	}
}

// TestPageSearchSteadyStateZeroAlloc pins the page path to the zero-alloc
// contract: with a reused scratch and dst, a steady-state page-layout query
// performs no heap allocations.
func TestPageSearchSteadyStateZeroAlloc(t *testing.T) {
	ds, ix := sharedPaged(t)
	opts := pageOpts()
	opts.Scratch = index.NewSearchScratch()
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state page search allocates %.1f times per query, want 0", allocs)
	}
}

// TestPageSearchCachedSteadyStateZeroAlloc extends the pin to the cached
// page path (comparable cache keys, layout included).
func TestPageSearchCachedSteadyStateZeroAlloc(t *testing.T) {
	ds, ix := sharedPaged(t)
	opts := cachedOpts(index.NodeCacheStatic, 16).With(index.WithLayout(index.LayoutPage))
	opts.Scratch = index.NewSearchScratch()
	var dst index.Result
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		ix.SearchInto(ds.Queries.Row(qi), 10, opts, &dst)
	}
	qi := 0
	allocs := testing.AllocsPerRun(20, func() {
		ix.SearchInto(ds.Queries.Row(qi%ds.Queries.Len()), 10, opts, &dst)
		qi++
	})
	if allocs != 0 {
		t.Fatalf("cached steady-state page search allocates %.1f times per query, want 0", allocs)
	}
}

// pagePersistBytes serialises ix and returns the framing bytes.
func pagePersistBytes(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	ix.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPagePersistRoundTripByteIdentical is the round-trip property: pack →
// persist → reload → persist reproduces the file byte for byte, and the
// reloaded index searches identically.
func TestPagePersistRoundTripByteIdentical(t *testing.T) {
	ds := testData(t)
	orig := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Layout: index.LayoutPage})
	first := pagePersistBytes(t, orig)
	if !bytes.HasPrefix(first, []byte(persistMagicV2)) {
		t.Fatalf("page-layout index persisted with magic %q", first[:8])
	}
	got, err := ReadFrom(binenc.NewReader(bytes.NewReader(first)), ds.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	second := pagePersistBytes(t, got)
	if !bytes.Equal(first, second) {
		t.Fatal("persist → reload → persist is not byte-identical")
	}
	if !reflect.DeepEqual(orig.pageLay, got.pageLay) {
		t.Fatal("reloaded page layout differs")
	}
	var next int64
	orig.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	next = 0
	got.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := orig.Search(q, 10, index.SearchOptions{SearchList: 20, BeamWidth: 4})
		b := got.Search(q, 10, index.SearchOptions{SearchList: 20, BeamWidth: 4})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: reloaded page index searches differently", qi)
		}
	}
}

// TestPagePersistV1StillLoads: indexes persisted before the page layout
// existed (VAMA0001) load unchanged and default to the ID layout.
func TestPagePersistV1StillLoads(t *testing.T) {
	ds, orig := shared(t)
	raw := pagePersistBytes(t, orig)
	if !bytes.HasPrefix(raw, []byte(persistMagic)) {
		t.Fatalf("id-layout index persisted with magic %q", raw[:8])
	}
	got, err := ReadFrom(binenc.NewReader(bytes.NewReader(raw)), ds.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.cfg.Layout != "" {
		t.Errorf("v1 load set layout %q", got.cfg.Layout)
	}
}

// TestPagePersistCorruptionReturnsSentinel: every corruption of the page
// directory — truncation included — surfaces as a wrapped ErrCorruptLayout,
// never a panic.
func TestPagePersistCorruptionReturnsSentinel(t *testing.T) {
	ds := testData(t)
	orig := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8, Layout: index.LayoutPage})
	raw := pagePersistBytes(t, orig)

	// The directory starts after the v1 body; locate it by serialising the
	// same index as v1 and measuring the shared prefix length.
	v1 := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8})
	dirStart := len(pagePersistBytes(t, v1))

	check := func(name string, data []byte) {
		t.Helper()
		_, err := ReadFrom(binenc.NewReader(bytes.NewReader(data)), ds.Vectors, nil)
		if err == nil {
			t.Fatalf("%s: corrupt layout accepted", name)
		}
		if !errors.Is(err, ErrCorruptLayout) {
			t.Fatalf("%s: error %v does not wrap ErrCorruptLayout", name, err)
		}
	}

	// Truncations at and after the directory boundary.
	check("truncated-at-directory", raw[:dirStart])
	check("truncated-mid-directory", raw[:dirStart+(len(raw)-dirStart)/2])
	check("truncated-last-byte", raw[:len(raw)-1])

	// Flipped directory bytes: group counts, member rows, adjacency. A flip
	// may still parse structurally (an in-range adjacency edge), but every
	// failure it does cause must carry the sentinel.
	detected := 0
	for off := dirStart; off < len(raw) && off < dirStart+256; off += 7 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		_, err := ReadFrom(binenc.NewReader(bytes.NewReader(mut)), ds.Vectors, nil)
		if err != nil {
			if !errors.Is(err, ErrCorruptLayout) {
				t.Fatalf("offset %d: error %v does not wrap ErrCorruptLayout", off, err)
			}
			detected++
		}
	}
	if detected == 0 {
		t.Error("no byte flip in the directory produced ErrCorruptLayout")
	}
}
