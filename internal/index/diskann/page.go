package diskann

import (
	"math/rand"
	"slices"

	"svdbench/internal/index"
	"svdbench/internal/index/pq"
)

// Page-node layout (index.LayoutPage): the PageANN-style co-design that makes
// the 4 KiB page — not the node — the logical graph unit. Build groups each
// node with its nearest graph neighbours into page-nodes; search beam-walks
// the page graph and scores *every* resident node a fetched page contains, so
// the bytes a read returns stop being wasted (the paper's O-15 observation is
// exactly that the node-per-page layout wastes them).
//
// The modelled on-page framing sets the byte budget (the simulator moves page
// addresses, not payload bytes, so the budget is the honesty contract — see
// DESIGN.md "Page-node layout"):
//
//	header      16 B   page id, member count, adjacency length, version
//	adjacency   pageDegree × 4 B  inter-page edges embedded in the header
//	members     capacity × (4 B id + dim B SQ8 code)
//
// so capacity = (PageSize − 16 − pageDegree·4) / (4 + dim): 5 members at
// 768-d, 2 at 1536-d. Traversal steering needs no representative bytes in the
// header at all: a page is priced at the best in-memory PQ distance among its
// residents, using the same RAM-resident compressed vectors the node layout
// navigates with.
const (
	pageHeaderBytes = 16
	// pageDegree caps the inter-page adjacency embedded in a page header;
	// matching Vamana's default R keeps the page graph as navigable as the
	// node graph it is built from.
	pageDegree    = 48
	memberIDBytes = 4
)

// pageCapacity returns how many member nodes fit one page group.
func pageCapacity(dim, pageSize int) int {
	c := (pageSize - pageHeaderBytes - pageDegree*4) / (memberIDBytes + dim)
	if c < 1 {
		c = 1
	}
	return c
}

// pagesPerGroupFor returns the page footprint of one full group: 1 whenever
// at least one member fits the budget, ceil(groupBytes/pageSize) for
// dimensionalities so large even a single member overflows a page.
func pagesPerGroupFor(dim, pageSize int) int {
	bytes := pageHeaderBytes + pageDegree*4 + pageCapacity(dim, pageSize)*(memberIDBytes+dim)
	return (bytes + pageSize - 1) / pageSize
}

// pageLayout is the materialised page-node graph of one index: a partition of
// the node rows into page groups plus the inter-page topology embedded in the
// page headers. It is deterministic given the build config (seeded packing,
// strict tie-breaking) and is persisted verbatim by the VAMA0002 framing.
type pageLayout struct {
	// pageOf maps a node row to the page group holding it.
	pageOf []int32
	// members lists each group's resident node rows, anchor first, then in
	// the order the greedy packer admitted them.
	members [][]int32
	// anchors is members[p][0], kept flat for the search hot path.
	anchors []int32
	// adj is the inter-page adjacency (≤ pageDegree entries per group).
	adj [][]int32
	// entry is the group holding the medoid, the traversal entry point.
	entry int32
}

// pages returns the number of page groups.
func (pl *pageLayout) pages() int { return len(pl.members) }

// buildPageLayout greedily packs the graph into page groups. Nodes are
// visited in a seeded permutation; each unassigned node anchors a new group
// and pulls in its nearest unassigned graph neighbours (expanding the
// candidate pool through admitted members' edges) until the page is full.
// Ties break on ascending row id, so the layout is a pure function of the
// build seed.
func (ix *Index) buildPageLayout() *pageLayout {
	n := ix.data.Len()
	capacity := pageCapacity(ix.data.Dim, ix.cfg.PageSize)
	pl := &pageLayout{pageOf: make([]int32, n)}
	for i := range pl.pageOf {
		pl.pageOf[i] = -1
	}
	// Seed offset keeps the packing permutation independent of the build
	// permutation drawn from the same config seed.
	r := rand.New(rand.NewSource(ix.cfg.Seed + 101))
	order := r.Perm(n)

	// pooled marks pool membership per group: pooled[c] == current group id.
	pooled := make([]int32, n)
	for i := range pooled {
		pooled[i] = -1
	}
	pool := make([]int32, 0, 4*ix.cfg.R)
	for _, u := range order {
		if pl.pageOf[u] >= 0 {
			continue
		}
		pid := int32(len(pl.members))
		group := make([]int32, 1, capacity)
		group[0] = int32(u)
		pl.pageOf[u] = pid
		av := ix.scorer.QueryRow(u)
		pool = pool[:0]
		admit := func(m int32) {
			for _, t := range ix.graph[m] {
				if pl.pageOf[t] < 0 && pooled[t] != pid {
					pooled[t] = pid
					pool = append(pool, t)
				}
			}
		}
		admit(int32(u))
		for len(group) < capacity {
			// Nearest unassigned pool candidate by (distance to the anchor,
			// row id); assigned entries are compacted away as we scan.
			best, bestD := int32(-1), float32(0)
			kept := pool[:0]
			for _, c := range pool {
				if pl.pageOf[c] >= 0 {
					continue
				}
				kept = append(kept, c)
				d := av.Dist(int(c))
				if best < 0 || d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
			pool = kept
			if best < 0 {
				break
			}
			pl.pageOf[best] = pid
			group = append(group, best)
			admit(best)
		}
		pl.members = append(pl.members, group)
		pl.anchors = append(pl.anchors, int32(u))
	}
	pl.entry = pl.pageOf[ix.medoid]
	pl.buildAdjacency(ix)
	return pl
}

// pageCand is one candidate inter-page edge during adjacency construction.
type pageCand struct {
	pid int32
	d   float32
}

// buildAdjacency derives the inter-page topology: group p links to the pages
// holding its members' out-edge targets, ranked by the anchor's distance to
// the nearest such target and capped at pageDegree. Deduplication uses a
// stamp array (never map iteration), so the edge order is deterministic.
func (pl *pageLayout) buildAdjacency(ix *Index) {
	np := pl.pages()
	pl.adj = make([][]int32, np)
	slot := make([]int32, np) // slot[q]-1 indexes cands while stamp[q] == p
	stamp := make([]int32, np)
	for i := range stamp {
		stamp[i] = -1
	}
	cands := make([]pageCand, 0, 4*pageDegree)
	for p := 0; p < np; p++ {
		av := ix.scorer.QueryRow(int(pl.anchors[p]))
		cands = cands[:0]
		for _, m := range pl.members[p] {
			for _, t := range ix.graph[m] {
				q := pl.pageOf[t]
				if int(q) == p {
					continue
				}
				d := av.Dist(int(t))
				if stamp[q] == int32(p) {
					if i := slot[q] - 1; d < cands[i].d {
						cands[i].d = d
					}
					continue
				}
				stamp[q] = int32(p)
				slot[q] = int32(len(cands) + 1)
				cands = append(cands, pageCand{pid: q, d: d})
			}
		}
		slices.SortFunc(cands, func(a, b pageCand) int {
			if a.d != b.d {
				if a.d < b.d {
					return -1
				}
				return 1
			}
			if a.pid != b.pid {
				if a.pid < b.pid {
					return -1
				}
				return 1
			}
			return 0
		})
		deg := len(cands)
		if deg > pageDegree {
			deg = pageDegree
		}
		edges := make([]int32, deg)
		for i := 0; i < deg; i++ {
			edges[i] = cands[i].pid
		}
		pl.adj[p] = edges
	}
}

// appendGroupPages appends the storage pages of one page group to dst, the
// allocation-free page-layout analogue of appendNodePages.
func (ix *Index) appendGroupPages(dst []int64, pid int32) []int64 {
	first := ix.pageBase + int64(pid)*int64(ix.pagesPerGroup)
	for i := 0; i < ix.pagesPerGroup; i++ {
		dst = append(dst, first+int64(i))
	}
	return dst
}

// cacheWarmPages returns up to n page groups in breadth-first order over the
// inter-page adjacency from the entry group — the page-layout warm set of a
// static node cache, mirroring CacheWarmNodes.
func (ix *Index) cacheWarmPages(pl *pageLayout, n int) []int32 {
	if n > pl.pages() {
		n = pl.pages()
	}
	if n <= 0 {
		return nil
	}
	visited := make([]bool, pl.pages())
	queue := make([]int32, 0, n)
	queue = append(queue, pl.entry)
	visited[pl.entry] = true
	out := make([]int32, 0, n)
	for len(queue) > 0 && len(out) < n {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nb := range pl.adj[cur] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// searchPageInto is the page-layout beam search: identical in structure to
// the node-layout SearchInto, but the candidate list, beam, cache and
// look-ahead all operate on page groups, and every member a fetched page
// contains is batch-scored exactly (full-precision re-rank semantics). The
// candidate list bound L counts pages, floored at ceil(k/capacity) so the
// result set can always fill — a page list of 3 covers ~15 nodes at 768-d,
// which is where the device-read savings at equal recall come from.
//
//annlint:hotpath
func (ix *Index) searchPageInto(q []float32, k int, opts index.SearchOptions, dst *index.Result) {
	pl := ix.pageLayoutFor() //annlint:allow hotalloc -- one-time deterministic page packing on first page-layout search; every later query reuses the materialised layout
	capacity := pageCapacity(ix.data.Dim, ix.cfg.PageSize)
	L := opts.SearchList
	if minL := (k + capacity - 1) / capacity; L < minL {
		L = minL
	}
	if L < 1 {
		L = 1
	}
	W := opts.BeamWidth
	if W <= 0 {
		W = 4
	}
	rec := opts.Recorder
	stats := index.Stats{}
	cache := ix.nodeCacheFor(opts)
	la := opts.LookAhead
	scr := index.ScratchFor(opts)
	inList := &scr.Visited
	inList.Begin(pl.pages())
	var inFlight *index.EpochSet
	if la > 0 {
		inFlight = &scr.InFlight
		inFlight.Begin(pl.pages())
	}

	qs := ix.scorer.Query(q)
	scr.Table = ix.quantizer.BuildTableInto(q, scr.Table)
	table := pq.Table(scr.Table)
	rec.AddCPU(ix.cost.Dist(ix.data.Dim, 256))
	m := ix.quantizer.M()

	cands := scr.Cands[:0]
	pqThisIter := 0
	// Steering: a page is priced at the best in-memory PQ distance among its
	// residents. The per-node compressed vectors are the same RAM-resident PQ
	// state the node layout navigates with, so page routing costs zero extra
	// page bytes — just capacity× the PQ lookups, which the cost model
	// charges below.
	push := func(pid int32) {
		if inList.Contains(pid) {
			return
		}
		inList.Add(pid)
		members := pl.members[pid]
		d := table.DistanceAt(ix.codes, m, int(members[0]))
		for _, row := range members[1:] {
			if md := table.DistanceAt(ix.codes, m, int(row)); md < d {
				d = md
			}
		}
		stats.PQComps += len(members)
		pqThisIter += len(members)
		cands = append(cands, index.BeamEntry{ID: pid, Dist: d})
	}
	push(pl.entry)

	exact := &scr.Bounded
	exact.Reset()
	beam := scr.Beam[:0]
	pages := scr.Pages[:0]
	ppg := ix.pagesPerGroup
	for {
		slices.SortFunc(cands, func(a, b index.BeamEntry) int {
			if a.Dist != b.Dist {
				if a.Dist < b.Dist {
					return -1
				}
				return 1
			}
			if a.ID != b.ID {
				if a.ID < b.ID {
					return -1
				}
				return 1
			}
			return 0
		})
		if len(cands) > L {
			for _, c := range cands[L:] {
				inList.Remove(c.ID)
			}
			cands = cands[:L]
		}
		beam = beam[:0]
		for i := range cands {
			if !cands[i].Visited {
				beam = append(beam, i)
				if len(beam) == W {
					break
				}
			}
		}
		if len(beam) == 0 {
			break
		}
		stats.Hops++
		pages = pages[:0]
		cachedPages := 0
		for _, bi := range beam {
			pid := cands[bi].ID
			if cache != nil && cache.Touch(pid, ppg) {
				cachedPages += ppg
				continue
			}
			if la > 0 && inFlight.Contains(pid) {
				stats.PrefetchUsed += ppg
				inFlight.Remove(pid)
			}
			pages = ix.appendGroupPages(pages, pid)
		}
		stats.PagesRead += len(pages)
		stats.CachePages += cachedPages
		rec.AddCPU(ix.cost.Heap(len(cands)))
		if cachedPages > 0 {
			rec.AddCPU(cache.HitCost(cachedPages))
			rec.AddCacheHit(cachedPages)
		}
		if la > 0 {
			picked := 0
			for i := beam[len(beam)-1] + 1; i < len(cands) && picked < la; i++ {
				pid := cands[i].ID
				if cands[i].Visited || inFlight.Contains(pid) {
					continue
				}
				if cache != nil && cache.Contains(pid) {
					continue
				}
				inFlight.Add(pid)
				scr.PF = ix.appendGroupPages(scr.PF[:0], pid)
				stats.PrefetchPages += len(scr.PF)
				rec.AddPrefetch(index.PrefetchRun{Pages: scr.PF})
				picked++
			}
		}
		rec.AddIO(pages)
		// Expand each fetched page: every resident member is batch-scored
		// exactly (this is the co-design's payoff — one read, capacity
		// re-ranked nodes), then the page's embedded adjacency feeds the
		// candidate list.
		scr.IDs = scr.IDs[:0]
		for _, bi := range beam {
			for _, row := range pl.members[cands[bi].ID] {
				scr.IDs = append(scr.IDs, row)
			}
		}
		if cap(scr.Dists) < len(scr.IDs) {
			scr.Dists = make([]float32, len(scr.IDs)) //annlint:allow hotalloc -- cap-guarded growth of the scratch gather buffer; steady state reuses its capacity
		}
		memberDists := scr.Dists[:len(scr.IDs)]
		qs.DistBatch(scr.IDs, memberDists)
		pqThisIter = 0
		j := 0
		for _, bi := range beam {
			cands[bi].Visited = true
			pid := cands[bi].ID
			for _, row := range pl.members[pid] {
				ed := memberDists[j]
				j++
				stats.DistComps++
				extID := ix.extID(row)
				if opts.Filter == nil || opts.Filter(extID) {
					exact.PushBounded(index.Neighbor{ID: extID, Dist: ed}, k)
				}
			}
			for _, nb := range pl.adj[pid] {
				push(nb)
			}
		}
		rec.AddCPU(ix.cost.Dist(ix.data.Dim, len(scr.IDs)) + ix.cost.PQ(m, pqThisIter))
	}
	rec.Flush()
	scr.Cands, scr.Beam, scr.Pages = cands, beam, pages
	scr.Neighbors = exact.DrainAscending(scr.Neighbors[:0])
	index.ResultInto(scr.Neighbors, k, stats, dst)
}
