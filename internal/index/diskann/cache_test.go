package diskann

import (
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// cachedOpts returns the shared test search options with a node cache.
func cachedOpts(policy string, nodes int) index.SearchOptions {
	return index.SearchOptions{SearchList: 20, BeamWidth: 4, NodeCacheNodes: nodes, NodeCachePolicy: policy}
}

func uncachedOpts() index.SearchOptions {
	return index.SearchOptions{SearchList: 20, BeamWidth: 4}
}

// TestCacheResultsIdentical is the recall-regression guard: enabling the
// node cache (either policy) must leave every result id and distance
// byte-identical — the cache absorbs reads, never alters the frontier.
func TestCacheResultsIdentical(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	for _, policy := range []string{index.NodeCacheStatic, index.NodeCacheLRU} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			base := ix.Search(ds.Queries.Row(qi), 10, uncachedOpts())
			got := ix.Search(ds.Queries.Row(qi), 10, cachedOpts(policy, 64))
			if !reflect.DeepEqual(base.IDs, got.IDs) || !reflect.DeepEqual(base.Dists, got.Dists) {
				t.Fatalf("policy=%s query=%d: cached results differ from uncached", policy, qi)
			}
		}
	}
}

// TestCachePageConservation checks the invariant PagesRead+CachePages ==
// uncached PagesRead, per query, in both the stats and the recorded profile.
func TestCachePageConservation(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	for _, policy := range []string{index.NodeCacheStatic, index.NodeCacheLRU} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			base := ix.Search(ds.Queries.Row(qi), 10, uncachedOpts())
			var prof index.Profile
			opts := cachedOpts(policy, 32)
			opts.Recorder = &prof
			got := ix.Search(ds.Queries.Row(qi), 10, opts)
			if got.Stats.PagesRead+got.Stats.CachePages != base.Stats.PagesRead {
				t.Fatalf("policy=%s query=%d: read %d + cached %d != uncached %d",
					policy, qi, got.Stats.PagesRead, got.Stats.CachePages, base.Stats.PagesRead)
			}
			if prof.TotalPages() != got.Stats.PagesRead || prof.TotalCachePages() != got.Stats.CachePages {
				t.Fatalf("policy=%s query=%d: profile (%d,%d) != stats (%d,%d)", policy, qi,
					prof.TotalPages(), prof.TotalCachePages(), got.Stats.PagesRead, got.Stats.CachePages)
			}
		}
	}
}

// TestStaticCacheStrictlyReducesReads is the acceptance criterion: a static
// cache of at least beam-width nodes always absorbs the medoid (BFS warms it
// first, every search touches it first), so device reads strictly drop.
func TestStaticCacheStrictlyReducesReads(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	opts := cachedOpts(index.NodeCacheStatic, uncachedOpts().BeamWidth)
	var baseReads, cachedReads, cachedPages int
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		baseReads += ix.Search(ds.Queries.Row(qi), 10, uncachedOpts()).Stats.PagesRead
		res := ix.Search(ds.Queries.Row(qi), 10, opts)
		cachedReads += res.Stats.PagesRead
		cachedPages += res.Stats.CachePages
	}
	if cachedReads >= baseReads {
		t.Errorf("cached reads %d not strictly below uncached %d", cachedReads, baseReads)
	}
	if cachedPages == 0 {
		t.Error("static cache with capacity ≥ beam width absorbed no pages")
	}
}

// TestCacheWarmNodesBFS checks the warm set: the medoid leads, rows are
// unique and valid, and the set is capped at the requested size.
func TestCacheWarmNodesBFS(t *testing.T) {
	_, ix := shared(t)
	for _, n := range []int{1, 7, 100, ix.Len() + 50} {
		warm := ix.CacheWarmNodes(n)
		want := n
		if want > ix.Len() {
			want = ix.Len()
		}
		if len(warm) != want {
			t.Fatalf("n=%d: warm set has %d nodes, want %d", n, len(warm), want)
		}
		if warm[0] != ix.Medoid() {
			t.Fatalf("n=%d: warm set starts at %d, want medoid %d", n, warm[0], ix.Medoid())
		}
		seen := map[int32]bool{}
		for _, r := range warm {
			if r < 0 || int(r) >= ix.Len() {
				t.Fatalf("n=%d: warm row %d out of range", n, r)
			}
			if seen[r] {
				t.Fatalf("n=%d: warm row %d duplicated", n, r)
			}
			seen[r] = true
		}
	}
}

// TestCacheSnapshotCounts checks the surfaced counters: touches equal
// hits+misses and a warmed static cache registers hits.
func TestCacheSnapshotCounts(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, Config{R: 32, LBuild: 64, PQM: 8})
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	opts := cachedOpts(index.NodeCacheStatic, 64)
	if _, ok := ix.CacheSnapshot(opts); ok {
		t.Fatal("snapshot reported before any search created the cache")
	}
	for qi := 0; qi < 10; qi++ {
		ix.Search(ds.Queries.Row(qi), 10, opts)
	}
	snap, ok := ix.CacheSnapshot(opts)
	if !ok {
		t.Fatal("no snapshot after cached searches")
	}
	if snap.Hits == 0 {
		t.Error("warmed static cache saw no hits")
	}
	if snap.Hits+snap.Misses != snap.Touches() {
		t.Errorf("hits %d + misses %d != touches %d", snap.Hits, snap.Misses, snap.Touches())
	}
	if snap.BytesSaved == 0 {
		t.Error("hits saved no bytes")
	}
}

// TestCacheBadPolicyPanics: an unknown policy is a programming error, caught
// at the first cached search.
func TestCacheBadPolicyPanics(t *testing.T) {
	ds, ix := shared(t)
	defer func() {
		if recover() == nil {
			t.Error("search with unknown cache policy did not panic")
		}
	}()
	ix.Search(ds.Queries.Row(0), 10, cachedOpts("clock", 8))
}
