// Package diskann implements the DiskANN storage-based graph index
// (Subramanya et al., NeurIPS 2019) as deployed in Milvus: a Vamana
// proximity graph whose nodes — full-precision vector plus adjacency list —
// live in fixed-size storage pages, with product-quantised vectors kept in
// memory to steer the traversal.
//
// Search uses beam search (Sec. II-B of the paper): each iteration takes the
// W closest unvisited candidates from the L-bounded candidate list
// (search_list), fetches their pages from the device in parallel, scores
// their neighbours with in-memory PQ distances, and re-ranks fetched nodes
// with exact distances computed from the fetched full-precision vectors.
// Every fetch is ceil(nodeBytes/4096) separate 4 KiB page requests, which is
// why the paper observes >99.99 % 4 KiB I/O (O-15): 768-d nodes fit one
// page, 1536-d nodes span two.
package diskann

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"

	"svdbench/internal/index"
	"svdbench/internal/index/pq"
	"svdbench/internal/storage/nodecache"
	"svdbench/internal/vec"
)

// Config controls construction.
type Config struct {
	// R is the maximum graph degree (Vamana's R, default 48).
	R int
	// LBuild is the construction candidate list size (default 100).
	LBuild int
	// Alpha is the RobustPrune distance slack of the second pass
	// (default 1.2; the first pass always uses 1.0).
	Alpha float64
	// Metric is the query distance.
	Metric vec.Metric
	// Seed drives insertion order and PQ training.
	Seed int64
	// PQM is the number of in-memory PQ sub-quantizers (default dim/8).
	PQM int
	// PageSize is the storage page size (default 4096).
	PageSize int
	// Layout selects the default on-disk layout searches use:
	// index.LayoutID (node-per-page-slot, the default when empty) or
	// index.LayoutPage (page-node co-design; the layout is packed eagerly
	// at build time and persisted). Search options override per query.
	Layout string
}

// Index is a built DiskANN index.
type Index struct {
	cfg    Config
	data   *vec.Matrix
	ids    []int32
	graph  [][]int32
	medoid int32
	cost   index.CostModel
	scorer *index.Scorer

	quantizer *pq.Quantizer
	codes     []byte

	basePage     int64
	pagesPerNode int

	// Page-node layout state: the page region is reserved by AssignPages
	// unconditionally (so a layout materialised lazily on a loaded index
	// has addresses), while the layout itself is packed eagerly when built
	// with Config.Layout == index.LayoutPage and lazily on the first
	// page-layout search otherwise.
	pageBase      int64
	pagesPerGroup int
	pageMu        sync.Mutex
	pageLay       *pageLayout

	// nodeCaches holds one node cache per (policy, capacity) requested
	// through search options, created lazily on first use. Static caches
	// are BFS-warmed at creation; LRU caches start cold and evolve across
	// the queries recorded against them.
	cacheMu    sync.Mutex
	nodeCaches map[cacheID]*nodecache.Cache
}

// Build constructs the Vamana graph with the standard two passes and trains
// the in-memory PQ codes. ids, when non-nil, maps rows to external ids.
func Build(data *vec.Matrix, ids []int32, cfg Config) (*Index, error) {
	n := data.Len()
	if n == 0 {
		return nil, fmt.Errorf("diskann: empty data")
	}
	if cfg.R <= 0 {
		cfg.R = 48
	}
	if cfg.LBuild <= 0 {
		cfg.LBuild = 100
	}
	if cfg.Alpha <= 1 {
		cfg.Alpha = 1.2
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.PQM <= 0 {
		cfg.PQM = data.Dim / 8
		if cfg.PQM == 0 {
			cfg.PQM = 1
		}
	}
	for data.Dim%cfg.PQM != 0 {
		cfg.PQM--
	}
	ix := &Index{
		cfg:    cfg,
		data:   data,
		ids:    ids,
		graph:  make([][]int32, n),
		cost:   index.DefaultCostModel(),
		scorer: index.NewScorer(data, cfg.Metric),
	}
	ix.pagesPerNode = (data.Dim*4 + 4 + cfg.R*4 + cfg.PageSize - 1) / cfg.PageSize
	ix.pagesPerGroup = pagesPerGroupFor(data.Dim, cfg.PageSize)

	q, err := pq.Train(data, cfg.PQM, cfg.Seed+7)
	if err != nil {
		return nil, fmt.Errorf("diskann: train pq: %w", err)
	}
	ix.quantizer = q
	ix.codes = q.EncodeAll(data)

	ix.medoid = ix.computeMedoid()
	r := rand.New(rand.NewSource(cfg.Seed))
	// The standard DiskANN build: incremental insertion over a random
	// permutation with alpha 1.0, then a refinement pass over the complete
	// graph with the configured alpha, then a final prune of any node left
	// in the degree-overflow band. The incremental pass maintains global
	// connectivity by construction: every node links onto the search path
	// from the medoid, and reverse edges are patched in immediately.
	// Within a pass, nodes are processed in deterministic batches: the
	// expensive searches and prunes run in parallel against the frozen
	// graph, and the resulting edits are applied serially (the batch
	// construction scheme of ParlayANN).
	order := r.Perm(n)
	ix.buildPass(order, 1.0, true)
	ix.buildPass(order, cfg.Alpha, false)
	for node := range ix.graph {
		if len(ix.graph[node]) > cfg.R {
			ix.pruneNode(int32(node), cfg.Alpha)
		}
	}
	switch cfg.Layout {
	case "", index.LayoutID:
	case index.LayoutPage:
		ix.pageLay = ix.buildPageLayout()
	default:
		return nil, fmt.Errorf("diskann: unknown layout %q", cfg.Layout)
	}
	return ix, nil
}

// buildPass runs one Vamana pass over the given node order. During the
// incremental (first) pass batch sizes grow from 1 so the early graph —
// where every insertion changes everything — is built like the sequential
// algorithm.
func (ix *Index) buildPass(order []int, alpha float64, growing bool) {
	workers := runtime.GOMAXPROCS(0)
	type result struct {
		node   int32
		pruned []int32
	}
	const maxBatch = 64
	results := make([]result, maxBatch)
	batch := maxBatch
	if growing {
		batch = 1
	}
	for lo := 0; lo < len(order); {
		hi := lo + batch
		if hi > len(order) {
			hi = len(order)
		}
		n := hi - lo
		// Parallel phase: search + prune against the frozen graph.
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			s, e := w*chunk, (w+1)*chunk
			if e > n {
				e = n
			}
			if s >= e {
				break
			}
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				for i := s; i < e; i++ {
					p := int32(order[lo+i])
					q := ix.scorer.QueryRow(int(p))
					visited := ix.greedySearchBuild(q, ix.cfg.LBuild, p)
					results[i] = result{node: p, pruned: ix.robustPruneCands(p, visited, alpha)}
				}
			}(s, e)
		}
		wg.Wait()
		// Serial phase: apply edits and reverse edges.
		for i := 0; i < n; i++ {
			res := results[i]
			ix.graph[res.node] = res.pruned
			for _, nb := range res.pruned {
				ix.addEdge(nb, res.node, alpha)
			}
		}
		lo = hi
		if growing && batch < maxBatch {
			batch *= 2
		}
	}
}

// computeMedoid returns the row closest to the dataset mean.
func (ix *Index) computeMedoid() int32 {
	mean := make([]float32, ix.data.Dim)
	n := ix.data.Len()
	for i := 0; i < n; i++ {
		vec.Add(mean, ix.data.Row(i))
	}
	vec.Scale(mean, 1/float32(n))
	best, bestD := int32(0), float32(math.Inf(1))
	for i := 0; i < n; i++ {
		if d := vec.L2Sq(mean, ix.data.Row(i)); d < bestD {
			best, bestD = int32(i), d
		}
	}
	return best
}

// addEdge inserts an edge from→to. To keep construction tractable the
// degree is allowed to overflow to 2R before a robust prune compacts it back
// to R (the batched reverse-edge pruning used by production Vamana builds);
// a final prune pass at the end of Build enforces the bound everywhere.
func (ix *Index) addEdge(from, to int32, alpha float64) {
	for _, e := range ix.graph[from] {
		if e == to {
			return
		}
	}
	ix.graph[from] = append(ix.graph[from], to)
	if len(ix.graph[from]) > 2*ix.cfg.R {
		ix.pruneNode(from, alpha)
	}
}

// pruneNode robust-prunes a node's current neighbour list back to R.
func (ix *Index) pruneNode(node int32, alpha float64) {
	v := ix.scorer.QueryRow(int(node))
	cands := make([]index.Neighbor, 0, len(ix.graph[node]))
	for _, e := range ix.graph[node] {
		cands = append(cands, index.Neighbor{ID: e, Dist: v.Dist(int(e))})
	}
	ix.graph[node] = ix.robustPruneCands(node, cands, alpha)
}

// greedySearchBuild is the construction-time full-precision greedy search;
// it returns the visited set as neighbours of q (excluding skip).
func (ix *Index) greedySearchBuild(q index.QueryScorer, L int, skip int32) []index.Neighbor {
	visited := map[int32]float32{}
	var frontier index.MinHeap
	var results index.MaxHeap
	start := ix.medoid
	d := q.Dist(int(start))
	frontier.Push(index.Neighbor{ID: start, Dist: d})
	visited[start] = d
	results.PushBounded(index.Neighbor{ID: start, Dist: d}, L)
	for frontier.Len() > 0 {
		cur := frontier.Pop()
		if results.Len() >= L && cur.Dist > results.Peek().Dist {
			break
		}
		for _, nb := range ix.graph[cur.ID] {
			if _, ok := visited[nb]; ok {
				continue
			}
			nd := q.Dist(int(nb))
			visited[nb] = nd
			if results.Len() < L || nd < results.Peek().Dist {
				frontier.Push(index.Neighbor{ID: nb, Dist: nd})
				results.PushBounded(index.Neighbor{ID: nb, Dist: nd}, L)
			}
		}
	}
	out := make([]index.Neighbor, 0, len(visited))
	for id, dist := range visited { //annlint:allow mapiter -- fully ordered by the (Dist, ID) sort below
		if id == skip {
			continue
		}
		out = append(out, index.Neighbor{ID: id, Dist: dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// maxOcclusion caps the candidate list RobustPrune scans, like DiskANN's
// occlude-list limit: pruning quality saturates well below it while cost is
// quadratic in the list length.
const maxOcclusion = 256

// occlusionAlpha converts the configured alpha to the working distance
// domain: L2 and cosine working distances are squared Euclidean (cosine
// distance on normalised vectors is L2²/2), so the RobustPrune condition
// alpha·d(s,c) ≤ d(p,c) on true distances becomes alpha²·d²(s,c) ≤ d²(p,c).
func (ix *Index) occlusionAlpha(alpha float64) float64 {
	if ix.cfg.Metric == vec.IP {
		return alpha
	}
	return alpha * alpha
}

// robustPruneCands implements Vamana's RobustPrune over a candidate set.
func (ix *Index) robustPruneCands(p int32, cands []index.Neighbor, alpha float64) []int32 {
	alpha = ix.occlusionAlpha(alpha)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Dist != cands[j].Dist {
			return cands[i].Dist < cands[j].Dist
		}
		return cands[i].ID < cands[j].ID
	})
	if len(cands) > maxOcclusion {
		cands = cands[:maxOcclusion]
	}
	out := make([]int32, 0, ix.cfg.R)
	removed := make([]bool, len(cands))
	for i := 0; i < len(cands) && len(out) < ix.cfg.R; i++ {
		if removed[i] {
			continue
		}
		star := cands[i]
		if star.ID == p {
			continue
		}
		out = append(out, star.ID)
		sv := ix.scorer.QueryRow(int(star.ID))
		for j := i + 1; j < len(cands); j++ {
			if removed[j] {
				continue
			}
			dStarC := sv.Dist(int(cands[j].ID))
			if alpha*float64(dStarC) <= float64(cands[j].Dist) {
				removed[j] = true
			}
		}
	}
	return out
}

// AssignPages lays the graph out on storage: node i occupies pagesPerNode
// consecutive pages starting at base+i·pagesPerNode. A second region is
// always reserved for the page-node layout (group g occupies pagesPerGroup
// consecutive pages from pageBase; group count never exceeds the node
// count), so a page layout materialised after loading still has addresses.
func (ix *Index) AssignPages(alloc func(npages int64) int64) {
	ix.basePage = alloc(int64(ix.data.Len()) * int64(ix.pagesPerNode))
	ix.pageBase = alloc(int64(ix.data.Len()) * int64(ix.pagesPerGroup))
}

// nodePages returns the storage pages of one node.
func (ix *Index) nodePages(row int32) []int64 {
	return ix.appendNodePages(nil, row)
}

// appendNodePages appends the storage pages of one node to dst, the
// allocation-free form of nodePages for the search hot path.
func (ix *Index) appendNodePages(dst []int64, row int32) []int64 {
	first := ix.basePage + int64(row)*int64(ix.pagesPerNode)
	for i := 0; i < ix.pagesPerNode; i++ {
		dst = append(dst, first+int64(i))
	}
	return dst
}

// PagesPerNode reports the node footprint in pages (1 for 768-d, 2 for
// 1536-d at R=48).
func (ix *Index) PagesPerNode() int { return ix.pagesPerNode }

// PagesPerGroup reports the footprint of one page-node group in pages (1
// whenever a member fits the page budget at all).
func (ix *Index) PagesPerGroup() int { return ix.pagesPerGroup }

// PageCapacity reports how many member nodes one page group holds (5 at
// 768-d, 2 at 1536-d with the default 4 KiB pages).
func (ix *Index) PageCapacity() int { return pageCapacity(ix.data.Dim, ix.cfg.PageSize) }

// PageGroups reports the number of page groups of the page-node layout,
// materialising it on first use.
func (ix *Index) PageGroups() int { return ix.pageLayoutFor().pages() }

// PageEntry reports the page group holding the medoid, materialising the
// layout on first use (for tests).
func (ix *Index) PageEntry() int32 { return ix.pageLayoutFor().entry }

// layoutFor resolves the effective layout of one search: an explicit option
// wins, then the layout the index was built with, then index.LayoutID.
func (ix *Index) layoutFor(opts index.SearchOptions) string {
	if opts.Layout != "" {
		return opts.Layout
	}
	if ix.cfg.Layout != "" {
		return ix.cfg.Layout
	}
	return index.LayoutID
}

// pageLayoutFor returns the page-node layout, packing it on first use. The
// pack is deterministic (seeded permutation, strict tie-breaks), so a lazy
// layout on a loaded index equals the eagerly built one.
func (ix *Index) pageLayoutFor() *pageLayout {
	ix.pageMu.Lock()
	defer ix.pageMu.Unlock()
	if ix.pageLay == nil {
		ix.pageLay = ix.buildPageLayout()
	}
	return ix.pageLay
}

// Medoid returns the traversal entry point.
func (ix *Index) Medoid() int32 { return ix.medoid }

// Name implements index.Index.
func (ix *Index) Name() string { return "DISKANN" }

// Metric implements index.Index.
func (ix *Index) Metric() vec.Metric { return ix.cfg.Metric }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.data.Len() }

// MemoryBytes implements index.SizeReporter: only PQ codes and codebooks
// stay resident.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.codes)) + ix.quantizer.MemoryBytes()
}

// StorageBytes implements index.SizeReporter.
func (ix *Index) StorageBytes() int64 {
	return int64(ix.data.Len()) * int64(ix.pagesPerNode) * int64(ix.cfg.PageSize)
}

// Degree returns the out-degree of a node (for tests).
func (ix *Index) Degree(row int32) int { return len(ix.graph[row]) }

// CacheWarmNodes returns up to n node rows in breadth-first order from the
// medoid — the warm set of a static node cache, mirroring real DiskANN's
// num_nodes_to_cache: the nodes every beam search crosses first are the
// nodes worth pinning. The order is deterministic (adjacency lists are
// deterministic given the build seed).
func (ix *Index) CacheWarmNodes(n int) []int32 {
	if n > ix.data.Len() {
		n = ix.data.Len()
	}
	if n <= 0 {
		return nil
	}
	visited := make([]bool, ix.data.Len())
	queue := make([]int32, 0, n)
	queue = append(queue, ix.medoid)
	visited[ix.medoid] = true
	out := make([]int32, 0, n)
	for len(queue) > 0 && len(out) < n {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nb := range ix.graph[cur] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// cacheID is the comparable cache identity of one option set. A struct key
// keeps the per-query cache lookup allocation-free (a formatted string key
// would allocate on every search, including cache hits).
type cacheID struct {
	policy nodecache.Policy
	nodes  int
	// layout separates the node-keyed caches of the ID layout from the
	// page-group-keyed caches of the page layout; ids from the two key
	// spaces must never share a cache.
	layout string
}

// nodeCacheFor returns (creating and, for the static policy, BFS-warming on
// first use) the node cache selected by the options, or nil when caching is
// disabled. An unknown policy name panics: the harness layers validate user
// input before it reaches a Search call.
func (ix *Index) nodeCacheFor(opts index.SearchOptions) *nodecache.Cache {
	if opts.NodeCacheNodes <= 0 {
		return nil
	}
	policy, err := nodecache.ParsePolicy(opts.NodeCachePolicy)
	if err != nil {
		panic(err.Error())
	}
	layout := ix.layoutFor(opts)
	key := cacheID{policy: policy, nodes: opts.NodeCacheNodes, layout: layout}
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	if c, ok := ix.nodeCaches[key]; ok {
		return c
	}
	c := nodecache.New(nodecache.Config{
		Capacity: opts.NodeCacheNodes,
		Policy:   policy,
		PageSize: ix.cfg.PageSize,
		Seed:     ix.cfg.Seed,
	})
	if policy == nodecache.PolicyStatic {
		// The warm set mirrors the traversal's unit: node rows BFS-walked
		// from the medoid for the ID layout, page groups BFS-walked over
		// the inter-page adjacency for the page layout.
		if layout == index.LayoutPage {
			pl := ix.pageLayoutFor()                                                                        //annlint:allow hotalloc -- one-time deterministic page packing, shared with the search path and amortised across every query
			c.Warm(ix.cacheWarmPages(pl, opts.NodeCacheNodes), func(int32) int { return ix.pagesPerGroup }) //annlint:allow hotalloc -- BFS warm set is computed once when the cache is first built
		} else {
			c.Warm(ix.CacheWarmNodes(opts.NodeCacheNodes), func(int32) int { return ix.pagesPerNode }) //annlint:allow hotalloc -- BFS warm set is computed once when the cache is first built
		}
	}
	if ix.nodeCaches == nil {
		ix.nodeCaches = map[cacheID]*nodecache.Cache{} //annlint:allow hotalloc -- lazy one-time init of the per-index cache table
	}
	ix.nodeCaches[key] = c
	return c
}

// CacheSnapshot reports the counters of the node cache the options select,
// or ok=false when no search has instantiated it yet.
func (ix *Index) CacheSnapshot(opts index.SearchOptions) (nodecache.Snapshot, bool) {
	if opts.NodeCacheNodes <= 0 {
		return nodecache.Snapshot{}, false
	}
	policy, err := nodecache.ParsePolicy(opts.NodeCachePolicy)
	if err != nil {
		return nodecache.Snapshot{}, false
	}
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	c, ok := ix.nodeCaches[cacheID{policy: policy, nodes: opts.NodeCacheNodes, layout: ix.layoutFor(opts)}]
	if !ok {
		return nodecache.Snapshot{}, false
	}
	return c.Snapshot(), true
}

// Search implements index.Index with DiskANN beam search.
func (ix *Index) Search(q []float32, k int, opts index.SearchOptions) index.Result {
	var r index.Result
	ix.SearchInto(q, k, opts, &r)
	return r
}

// SearchInto implements index.SearcherInto: the beam search writing into a
// caller-owned Result. All per-query state — candidate list, PQ lookup
// table, heaps, membership/in-flight sets, beam and page buffers — lives in
// the options' scratch, so with a reused scratch and dst the steady-state
// path (no recorder, no node cache) performs no allocations per query.
// Results, Stats and the recorded execution are byte-identical to the
// pre-scratch allocating implementation.
//
//annlint:hotpath
func (ix *Index) SearchInto(q []float32, k int, opts index.SearchOptions, dst *index.Result) {
	switch ix.layoutFor(opts) {
	case index.LayoutID:
	case index.LayoutPage:
		ix.searchPageInto(q, k, opts, dst)
		return
	default:
		panic(fmt.Sprintf("diskann: unknown layout %q", ix.layoutFor(opts)))
	}
	L := opts.SearchList
	if L < k {
		L = k
	}
	if L < 1 {
		L = 1
	}
	W := opts.BeamWidth
	if W <= 0 {
		W = 4
	}
	rec := opts.Recorder
	stats := index.Stats{}
	cache := ix.nodeCacheFor(opts)
	la := opts.LookAhead
	scr := index.ScratchFor(opts)
	// inList tracks candidate-list membership; inFlight tracks nodes whose
	// pages a prior hop speculatively issued and no hop has demanded yet (a
	// later demand joins the in-flight read at replay instead of issuing a
	// duplicate).
	inList := &scr.Visited
	inList.Begin(ix.data.Len())
	var inFlight *index.EpochSet
	if la > 0 {
		inFlight = &scr.InFlight
		inFlight.Begin(ix.data.Len())
	}

	qs := ix.scorer.Query(q)
	scr.Table = ix.quantizer.BuildTableInto(q, scr.Table)
	table := pq.Table(scr.Table)
	// Table construction cost: 256 sub-distance rows over the full dim.
	rec.AddCPU(ix.cost.Dist(ix.data.Dim, 256))
	m := ix.quantizer.M()

	cands := scr.Cands[:0]
	pqThisIter := 0
	push := func(id int32) {
		if inList.Contains(id) {
			return
		}
		inList.Add(id)
		d := table.DistanceAt(ix.codes, m, int(id))
		stats.PQComps++
		pqThisIter++
		cands = append(cands, index.BeamEntry{ID: id, Dist: d})
	}
	push(ix.medoid)

	exact := &scr.Bounded // re-ranked results by full-precision distance
	exact.Reset()
	beam := scr.Beam[:0]
	pages := scr.Pages[:0]
	for {
		// Pick the W closest unvisited candidates. The comparator is a
		// strict total order (ids are unique in the list), so the sorted
		// permutation is algorithm-independent — switching from sort.Slice
		// changed no recorded execution.
		slices.SortFunc(cands, func(a, b index.BeamEntry) int {
			if a.Dist != b.Dist {
				if a.Dist < b.Dist {
					return -1
				}
				return 1
			}
			if a.ID != b.ID {
				if a.ID < b.ID {
					return -1
				}
				return 1
			}
			return 0
		})
		if len(cands) > L {
			for _, c := range cands[L:] {
				inList.Remove(c.ID)
			}
			cands = cands[:L]
		}
		beam = beam[:0]
		for i := range cands {
			if !cands[i].Visited {
				beam = append(beam, i)
				if len(beam) == W {
					break
				}
			}
		}
		if len(beam) == 0 {
			break
		}
		stats.Hops++
		// Fetch the beam from storage (one parallel batch), routing each
		// node through the node cache first: a hit serves the node's pages
		// at in-memory cost instead of issuing device reads.
		pages = pages[:0]
		cachedPages := 0
		for _, bi := range beam {
			id := cands[bi].ID
			if cache != nil && cache.Touch(id, ix.pagesPerNode) {
				cachedPages += ix.pagesPerNode
				continue
			}
			if la > 0 && inFlight.Contains(id) {
				// Pages still count in PagesRead — demand accounting is
				// invariant under look-ahead.
				stats.PrefetchUsed += ix.pagesPerNode
				inFlight.Remove(id)
			}
			pages = ix.appendNodePages(pages, id)
		}
		stats.PagesRead += len(pages)
		stats.CachePages += cachedPages
		rec.AddCPU(ix.cost.Heap(len(cands)))
		if cachedPages > 0 {
			rec.AddCPU(cache.HitCost(cachedPages))
			rec.AddCacheHit(cachedPages)
		}
		// Look-ahead: speculatively issue the pages of the next la unvisited
		// candidates beyond the beam alongside this hop's demand I/O. The
		// scan only peeks (Contains, not Touch) and charges no CPU, so the
		// recorded demand execution stays byte-identical to LookAhead==0.
		if la > 0 {
			picked := 0
			for i := beam[len(beam)-1] + 1; i < len(cands) && picked < la; i++ {
				id := cands[i].ID
				if cands[i].Visited || inFlight.Contains(id) {
					continue
				}
				if cache != nil && cache.Contains(id) {
					continue
				}
				inFlight.Add(id)
				scr.PF = ix.appendNodePages(scr.PF[:0], id)
				stats.PrefetchPages += len(scr.PF)
				rec.AddPrefetch(index.PrefetchRun{Pages: scr.PF})
				picked++
			}
		}
		rec.AddIO(pages)
		// Expand each fetched node: exact re-rank plus PQ-scored neighbour
		// insertion. The beam's exact distances are batch-scored up front
		// (bit-identical to per-node calls); push order is unchanged.
		scr.IDs = scr.IDs[:0]
		for _, bi := range beam {
			scr.IDs = append(scr.IDs, cands[bi].ID)
		}
		if cap(scr.Dists) < len(scr.IDs) {
			scr.Dists = make([]float32, len(scr.IDs)) //annlint:allow hotalloc -- cap-guarded growth of the scratch gather buffer; steady state reuses its capacity
		}
		beamDists := scr.Dists[:len(scr.IDs)]
		qs.DistBatch(scr.IDs, beamDists)
		pqThisIter = 0
		for j, bi := range beam {
			cands[bi].Visited = true
			id := cands[bi].ID
			ed := beamDists[j]
			stats.DistComps++
			extID := ix.extID(id)
			if opts.Filter == nil || opts.Filter(extID) {
				exact.PushBounded(index.Neighbor{ID: extID, Dist: ed}, k)
			}
			for _, nb := range ix.graph[id] {
				push(nb)
			}
		}
		rec.AddCPU(ix.cost.Dist(ix.data.Dim, len(beam)) + ix.cost.PQ(m, pqThisIter))
	}
	rec.Flush()
	scr.Cands, scr.Beam, scr.Pages = cands, beam, pages
	scr.Neighbors = exact.DrainAscending(scr.Neighbors[:0])
	index.ResultInto(scr.Neighbors, k, stats, dst)
}

func (ix *Index) extID(row int32) int32 {
	if ix.ids != nil {
		return ix.ids[row]
	}
	return row
}

// SearchBatch implements index.Searcher over the shared batch driver: every
// query runs the same beam search as Search, with per-query recorders
// resolved through opts.RecorderFor.
func (ix *Index) SearchBatch(ctx context.Context, queries [][]float32, k int, opts index.SearchOptions) []index.Result {
	return index.BatchRun(ctx, len(queries), opts, func(qi int, o index.SearchOptions) index.Result {
		return ix.Search(queries[qi], k, o)
	})
}

var _ index.Index = (*Index)(nil)
var _ index.Searcher = (*Index)(nil)
var _ index.SearcherInto = (*Index)(nil)
var _ index.SizeReporter = (*Index)(nil)
