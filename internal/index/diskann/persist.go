package diskann

import (
	"errors"
	"fmt"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/index/pq"
	"svdbench/internal/vec"
)

// Versioned on-disk framings: VAMA0001 is the original node-layout format;
// VAMA0002 appends the page-node layout directory (member lists, inter-page
// adjacency, entry group) after the v1 body and is written exactly when the
// index was built with Config.Layout == index.LayoutPage. Readers accept
// both, so collections persisted before the page layout existed still load.
const (
	persistMagic   = "VAMA0001"
	persistMagicV2 = "VAMA0002"
)

// ErrCorruptLayout marks a persisted page-layout directory that fails
// validation (truncated, out-of-range members or adjacency, or a partition
// that does not cover the node set). Callers match it with errors.Is.
var ErrCorruptLayout = errors.New("diskann: corrupt page layout")

// WriteTo serialises the Vamana graph, the medoid, and the in-memory PQ
// state. Full-precision vectors are not written: they are re-derivable from
// the dataset and supplied again at load time (on a real deployment they
// live in the on-SSD node pages). Page-layout indexes additionally persist
// their page directory, so pack → persist → reload → persist is
// byte-identical.
func (ix *Index) WriteTo(w *binenc.Writer) {
	magic := persistMagic
	if ix.cfg.Layout == index.LayoutPage {
		magic = persistMagicV2
	}
	w.Magic(magic)
	w.Int(ix.cfg.R)
	w.Int(ix.cfg.LBuild)
	w.F64(ix.cfg.Alpha)
	w.Int(int(ix.cfg.Metric))
	w.I64(ix.cfg.Seed)
	w.Int(ix.cfg.PQM)
	w.Int(ix.cfg.PageSize)
	w.Int(ix.data.Len())
	w.I32(ix.medoid)
	for _, nbrs := range ix.graph {
		w.I32s(nbrs)
	}
	ix.quantizer.WriteTo(w)
	w.Bytes(ix.codes)
	if magic == persistMagicV2 {
		pl := ix.pageLayoutFor()
		w.Int(pl.pages())
		w.I32(pl.entry)
		for p := 0; p < pl.pages(); p++ {
			w.I32s(pl.members[p])
			w.I32s(pl.adj[p])
		}
	}
}

// ReadFrom deserialises an index written with WriteTo, re-binding it to the
// vector data (and optional external ids) it was built over.
func ReadFrom(r *binenc.Reader, data *vec.Matrix, ids []int32) (*Index, error) {
	magic := r.MagicOneOf(persistMagic, persistMagicV2)
	cfg := Config{
		R:        r.Int(),
		LBuild:   r.Int(),
		Alpha:    r.F64(),
		Metric:   vec.Metric(r.Int()),
		Seed:     r.I64(),
		PQM:      r.Int(),
		PageSize: r.Int(),
	}
	if magic == persistMagicV2 {
		cfg.Layout = index.LayoutPage
	}
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != data.Len() {
		return nil, fmt.Errorf("diskann: persisted index has %d nodes, data has %d", n, data.Len())
	}
	if cfg.R <= 0 || cfg.PageSize <= 0 {
		return nil, fmt.Errorf("diskann: corrupt persisted config %+v", cfg)
	}
	ix := &Index{
		cfg:    cfg,
		data:   data,
		ids:    ids,
		medoid: r.I32(),
		cost:   index.DefaultCostModel(),
		scorer: index.NewScorer(data, cfg.Metric),
	}
	ix.pagesPerNode = (data.Dim*4 + 4 + cfg.R*4 + cfg.PageSize - 1) / cfg.PageSize
	ix.pagesPerGroup = pagesPerGroupFor(data.Dim, cfg.PageSize)
	ix.graph = make([][]int32, n)
	for i := 0; i < n; i++ {
		ix.graph[i] = r.I32s()
	}
	q, err := pq.ReadQuantizer(r)
	if err != nil {
		return nil, fmt.Errorf("diskann: %w", err)
	}
	ix.quantizer = q
	ix.codes = r.Bytes()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if int(ix.medoid) >= n || len(ix.codes) != n*q.M() {
		return nil, fmt.Errorf("diskann: corrupt persisted index")
	}
	if magic == persistMagicV2 {
		pl, err := readPageLayout(r, ix, n)
		if err != nil {
			return nil, err
		}
		ix.pageLay = pl
	}
	return ix, nil
}

// readPageLayout decodes and validates the v2 page directory. Every failure
// — including a short read mid-directory — wraps ErrCorruptLayout rather
// than panicking, so a damaged file is an error the caller can classify.
func readPageLayout(r *binenc.Reader, ix *Index, n int) (*pageLayout, error) {
	np := r.Int()
	entry := r.I32()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: directory header: %w", ErrCorruptLayout, r.Err())
	}
	if np < 1 || np > n {
		return nil, fmt.Errorf("%w: %d page groups over %d nodes", ErrCorruptLayout, np, n)
	}
	capacity := pageCapacity(ix.data.Dim, ix.cfg.PageSize)
	pl := &pageLayout{
		pageOf:  make([]int32, n),
		members: make([][]int32, np),
		anchors: make([]int32, np),
		adj:     make([][]int32, np),
		entry:   entry,
	}
	for i := range pl.pageOf {
		pl.pageOf[i] = -1
	}
	for p := 0; p < np; p++ {
		members := r.I32s()
		adj := r.I32s()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: group %d: %w", ErrCorruptLayout, p, r.Err())
		}
		if len(members) < 1 || len(members) > capacity {
			return nil, fmt.Errorf("%w: group %d holds %d members (capacity %d)", ErrCorruptLayout, p, len(members), capacity)
		}
		for _, row := range members {
			if row < 0 || int(row) >= n {
				return nil, fmt.Errorf("%w: group %d member row %d out of range", ErrCorruptLayout, p, row)
			}
			if pl.pageOf[row] >= 0 {
				return nil, fmt.Errorf("%w: node row %d assigned to groups %d and %d", ErrCorruptLayout, row, pl.pageOf[row], p)
			}
			pl.pageOf[row] = int32(p)
		}
		if len(adj) > pageDegree {
			return nil, fmt.Errorf("%w: group %d has %d inter-page edges (cap %d)", ErrCorruptLayout, p, len(adj), pageDegree)
		}
		for _, q := range adj {
			if q < 0 || int(q) >= np || int(q) == p {
				return nil, fmt.Errorf("%w: group %d inter-page edge to %d out of range", ErrCorruptLayout, p, q)
			}
		}
		pl.members[p] = members
		pl.anchors[p] = members[0]
		pl.adj[p] = adj
	}
	for row, p := range pl.pageOf {
		if p < 0 {
			return nil, fmt.Errorf("%w: node row %d belongs to no page group", ErrCorruptLayout, row)
		}
	}
	if entry < 0 || int(entry) >= np || pl.pageOf[ix.medoid] != entry {
		return nil, fmt.Errorf("%w: entry group %d does not hold the medoid", ErrCorruptLayout, entry)
	}
	return pl, nil
}
