package diskann

import (
	"fmt"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/index/pq"
	"svdbench/internal/vec"
)

const persistMagic = "VAMA0001"

// WriteTo serialises the Vamana graph, the medoid, and the in-memory PQ
// state. Full-precision vectors are not written: they are re-derivable from
// the dataset and supplied again at load time (on a real deployment they
// live in the on-SSD node pages).
func (ix *Index) WriteTo(w *binenc.Writer) {
	w.Magic(persistMagic)
	w.Int(ix.cfg.R)
	w.Int(ix.cfg.LBuild)
	w.F64(ix.cfg.Alpha)
	w.Int(int(ix.cfg.Metric))
	w.I64(ix.cfg.Seed)
	w.Int(ix.cfg.PQM)
	w.Int(ix.cfg.PageSize)
	w.Int(ix.data.Len())
	w.I32(ix.medoid)
	for _, nbrs := range ix.graph {
		w.I32s(nbrs)
	}
	ix.quantizer.WriteTo(w)
	w.Bytes(ix.codes)
}

// ReadFrom deserialises an index written with WriteTo, re-binding it to the
// vector data (and optional external ids) it was built over.
func ReadFrom(r *binenc.Reader, data *vec.Matrix, ids []int32) (*Index, error) {
	r.Magic(persistMagic)
	cfg := Config{
		R:        r.Int(),
		LBuild:   r.Int(),
		Alpha:    r.F64(),
		Metric:   vec.Metric(r.Int()),
		Seed:     r.I64(),
		PQM:      r.Int(),
		PageSize: r.Int(),
	}
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != data.Len() {
		return nil, fmt.Errorf("diskann: persisted index has %d nodes, data has %d", n, data.Len())
	}
	if cfg.R <= 0 || cfg.PageSize <= 0 {
		return nil, fmt.Errorf("diskann: corrupt persisted config %+v", cfg)
	}
	ix := &Index{
		cfg:    cfg,
		data:   data,
		ids:    ids,
		medoid: r.I32(),
		cost:   index.DefaultCostModel(),
		scorer: index.NewScorer(data, cfg.Metric),
	}
	ix.pagesPerNode = (data.Dim*4 + 4 + cfg.R*4 + cfg.PageSize - 1) / cfg.PageSize
	ix.graph = make([][]int32, n)
	for i := 0; i < n; i++ {
		ix.graph[i] = r.I32s()
	}
	q, err := pq.ReadQuantizer(r)
	if err != nil {
		return nil, fmt.Errorf("diskann: %w", err)
	}
	ix.quantizer = q
	ix.codes = r.Bytes()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if int(ix.medoid) >= n || len(ix.codes) != n*q.M() {
		return nil, fmt.Errorf("diskann: corrupt persisted index")
	}
	return ix, nil
}
