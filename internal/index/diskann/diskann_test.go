package diskann

import (
	"sync"
	"testing"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "diskann-test", N: 1500, Dim: 32, NumQueries: 40,
		Clusters: 16, Seed: 11, Metric: vec.Cosine, GroundK: 10,
	})
}

func build(t *testing.T, ds *dataset.Dataset, cfg Config) *Index {
	t.Helper()
	cfg.Metric = ds.Spec.Metric
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ix, err := Build(ds.Vectors, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// sharedIndex caches the standard test index: most tests search it
// read-only, so one build serves them all.
var sharedOnce sync.Once
var sharedIx *Index
var sharedDS *dataset.Dataset

func shared(t *testing.T) (*dataset.Dataset, *Index) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedDS = dataset.Generate(dataset.Spec{
			Name: "diskann-test", N: 1500, Dim: 32, NumQueries: 40,
			Clusters: 16, Seed: 11, Metric: vec.Cosine, GroundK: 10,
		})
		ix, err := Build(sharedDS.Vectors, nil, Config{R: 32, LBuild: 64, PQM: 8, Metric: vec.Cosine, Seed: 1})
		if err != nil {
			panic(err)
		}
		sharedIx = ix
	})
	return sharedDS, sharedIx
}

func searchAll(ds *dataset.Dataset, ix *Index, k int, opts index.SearchOptions) [][]int32 {
	out := make([][]int32, ds.Queries.Len())
	for qi := range out {
		out[qi] = ix.Search(ds.Queries.Row(qi), k, opts).IDs
	}
	return out
}

func TestRecallAtModestSearchList(t *testing.T) {
	ds, ix := shared(t)
	r := dataset.MeanRecallAtK(searchAll(ds, ix, 10, index.SearchOptions{SearchList: 20, BeamWidth: 4}), ds.GroundTruth, 10)
	// The paper's Tab. II reports DiskANN reaching ≥0.93 at search_list=10;
	// with re-ranking recall is high even at small L.
	if r < 0.85 {
		t.Errorf("recall@10 with L=20 = %v, want ≥0.85", r)
	}
}

func TestRecallGrowsWithSearchList(t *testing.T) {
	ds, ix := shared(t)
	low := dataset.MeanRecallAtK(searchAll(ds, ix, 10, index.SearchOptions{SearchList: 10, BeamWidth: 4}), ds.GroundTruth, 10)
	high := dataset.MeanRecallAtK(searchAll(ds, ix, 10, index.SearchOptions{SearchList: 100, BeamWidth: 4}), ds.GroundTruth, 10)
	if high+0.02 < low {
		t.Errorf("recall fell from %v to %v as search_list grew (Fig. 9 shape violated)", low, high)
	}
	if high < 0.9 {
		t.Errorf("L=100 recall = %v, want ≥0.9", high)
	}
}

func TestIOGrowsWithSearchList(t *testing.T) {
	ds, ix := shared(t)
	q := ds.Queries.Row(0)
	small := ix.Search(q, 10, index.SearchOptions{SearchList: 10, BeamWidth: 4}).Stats
	big := ix.Search(q, 10, index.SearchOptions{SearchList: 100, BeamWidth: 4}).Stats
	if big.PagesRead <= small.PagesRead {
		t.Errorf("pages read did not grow with search_list: %d vs %d (O-20 shape violated)", small.PagesRead, big.PagesRead)
	}
}

func TestDegreeBounded(t *testing.T) {
	ds := testData(t)
	cfg := Config{R: 24, LBuild: 48, PQM: 8}
	ix := build(t, ds, cfg)
	for row := int32(0); row < int32(ds.Vectors.Len()); row++ {
		if d := ix.Degree(row); d > cfg.R {
			t.Fatalf("node %d degree %d exceeds R=%d", row, d, cfg.R)
		}
	}
}

func TestPagesPerNodeByDimension(t *testing.T) {
	// 768-d at R=48: 3072+4+192 = 3268 B → one 4 KiB page.
	ds768 := dataset.Generate(dataset.Spec{Name: "d768", N: 300, Dim: 768, NumQueries: 2, Clusters: 4, Seed: 1, Metric: vec.Cosine, GroundK: 5})
	ix768, err := Build(ds768.Vectors, nil, Config{Metric: vec.Cosine, Seed: 1, PQM: 96, LBuild: 32, R: 48})
	if err != nil {
		t.Fatal(err)
	}
	if ix768.PagesPerNode() != 1 {
		t.Errorf("768-d pages/node = %d, want 1", ix768.PagesPerNode())
	}
	// 1536-d: 6144+4+192 = 6340 B → two pages.
	ds1536 := dataset.Generate(dataset.Spec{Name: "d1536", N: 300, Dim: 1536, NumQueries: 2, Clusters: 4, Seed: 1, Metric: vec.Cosine, GroundK: 5})
	ix1536, err := Build(ds1536.Vectors, nil, Config{Metric: vec.Cosine, Seed: 1, PQM: 192, LBuild: 32, R: 48})
	if err != nil {
		t.Fatal(err)
	}
	if ix1536.PagesPerNode() != 2 {
		t.Errorf("1536-d pages/node = %d, want 2", ix1536.PagesPerNode())
	}
}

func TestProfileInterleavesComputeAndIO(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	var p index.Profile
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{SearchList: 20, BeamWidth: 4, Recorder: &p})
	if p.TotalPages() == 0 {
		t.Fatal("no I/O recorded")
	}
	if p.TotalPages() != res.Stats.PagesRead {
		t.Errorf("profile pages %d != stats pages %d", p.TotalPages(), res.Stats.PagesRead)
	}
	ioSteps := 0
	for _, s := range p.Steps {
		if len(s.Pages) > 0 {
			ioSteps++
			if len(s.Pages) > 4*ix.PagesPerNode() {
				t.Errorf("beam step fetched %d pages, exceeds W×pages/node", len(s.Pages))
			}
		}
	}
	if ioSteps != res.Stats.Hops {
		t.Errorf("io steps %d != hops %d", ioSteps, res.Stats.Hops)
	}
}

func TestBeamWidthReducesHops(t *testing.T) {
	ds, ix := shared(t)
	q := ds.Queries.Row(0)
	w1 := ix.Search(q, 10, index.SearchOptions{SearchList: 50, BeamWidth: 1}).Stats
	w8 := ix.Search(q, 10, index.SearchOptions{SearchList: 50, BeamWidth: 8}).Stats
	if w8.Hops >= w1.Hops {
		t.Errorf("hops with W=8 (%d) not below W=1 (%d)", w8.Hops, w1.Hops)
	}
}

func TestBestFirstIsBeamWidthOne(t *testing.T) {
	// W=1 degenerates to best-first search (Sec. II-B): every hop fetches
	// exactly pagesPerNode pages.
	ds, ix := shared(t)
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{SearchList: 20, BeamWidth: 1})
	if res.Stats.PagesRead != res.Stats.Hops*ix.PagesPerNode() {
		t.Errorf("W=1: pages %d != hops %d", res.Stats.PagesRead, res.Stats.Hops)
	}
}

func TestStatsCountBothDistanceKinds(t *testing.T) {
	ds, ix := shared(t)
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{SearchList: 20, BeamWidth: 4})
	if res.Stats.PQComps == 0 {
		t.Error("no PQ comparisons")
	}
	if res.Stats.DistComps == 0 {
		t.Error("no exact re-rank comparisons")
	}
	if res.Stats.DistComps > res.Stats.PQComps {
		t.Error("exact comps should be far fewer than PQ comps")
	}
}

func TestMemoryFarBelowStorage(t *testing.T) {
	_, ix := shared(t)
	if ix.MemoryBytes() >= ix.StorageBytes() {
		t.Errorf("memory %d not below storage %d — DiskANN's point is a small resident set", ix.MemoryBytes(), ix.StorageBytes())
	}
}

func TestFilterRespected(t *testing.T) {
	ds, ix := shared(t)
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{SearchList: 50, BeamWidth: 4, Filter: func(id int32) bool { return id%2 == 1 }})
	for _, id := range res.IDs {
		if id%2 != 1 {
			t.Fatalf("filter leaked id %d", id)
		}
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 8), nil, Config{}); err == nil {
		t.Error("empty build accepted")
	}
}

func TestSearchListBelowKClamped(t *testing.T) {
	ds, ix := shared(t)
	res := ix.Search(ds.Queries.Row(0), 10, index.SearchOptions{SearchList: 1, BeamWidth: 2})
	if len(res.IDs) != 10 {
		t.Errorf("got %d results with L<k", len(res.IDs))
	}
}
