package diskann

import (
	"context"
	"reflect"
	"testing"

	"svdbench/internal/index"
)

// recordOne searches one query with a profile recorder attached.
func recordOne(ix *Index, q []float32, opts index.SearchOptions) (index.Result, index.Profile) {
	var prof index.Profile
	opts.Recorder = &prof
	res := ix.Search(q, 10, opts)
	return res, prof
}

// TestLookAheadResultsAndDemandIdentical is the pipeline's core invariant
// at the index layer: look-ahead may only change when pages are read. The
// result ids/distances, the demand statistics, and every recorded step
// modulo its Prefetch field must be byte-identical to the synchronous
// search at any depth.
func TestLookAheadResultsAndDemandIdentical(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	totalPrefetch := 0
	for _, la := range []int{1, 2, 8} {
		for qi := 0; qi < ds.Queries.Len(); qi++ {
			q := ds.Queries.Row(qi)
			base, baseProf := recordOne(ix, q, uncachedOpts())
			got, gotProf := recordOne(ix, q, uncachedOpts().With(index.WithLookAhead(la)))
			if !reflect.DeepEqual(base.IDs, got.IDs) || !reflect.DeepEqual(base.Dists, got.Dists) {
				t.Fatalf("la=%d query=%d: look-ahead changed the results", la, qi)
			}
			gs := got.Stats
			totalPrefetch += gs.PrefetchPages
			if gs.PrefetchUsed > gs.PrefetchPages {
				t.Fatalf("la=%d query=%d: prefetch used %d exceeds issued %d", la, qi, gs.PrefetchUsed, gs.PrefetchPages)
			}
			gs.PrefetchPages, gs.PrefetchUsed = 0, 0
			if gs != base.Stats {
				t.Fatalf("la=%d query=%d: demand stats differ: %+v vs %+v", la, qi, got.Stats, base.Stats)
			}
			if len(baseProf.Steps) != len(gotProf.Steps) {
				t.Fatalf("la=%d query=%d: step count %d vs %d", la, qi, len(baseProf.Steps), len(gotProf.Steps))
			}
			for i := range gotProf.Steps {
				s := gotProf.Steps[i]
				s.Prefetch = nil
				if !reflect.DeepEqual(baseProf.Steps[i], s) {
					t.Fatalf("la=%d query=%d step %d differs beyond Prefetch:\nbase: %+v\nla:   %+v",
						la, qi, i, baseProf.Steps[i], gotProf.Steps[i])
				}
			}
		}
	}
	if totalPrefetch == 0 {
		t.Error("no query at any depth issued a prefetch")
	}
}

// TestLookAheadSkipsCachedNodes: speculation must not prefetch pages the
// node cache already holds — Contains peeks without touching, so checking
// eligibility cannot perturb the cache state either.
func TestLookAheadSkipsCachedNodes(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	// Cache every node: nothing is left to prefetch.
	opts := cachedOpts(index.NodeCacheStatic, ix.Len()).With(index.WithLookAhead(4))
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		res := ix.Search(ds.Queries.Row(qi), 10, opts)
		if res.Stats.PrefetchPages != 0 {
			t.Fatalf("query %d prefetched %d pages with a fully cached index", qi, res.Stats.PrefetchPages)
		}
	}
}

// TestSearchBatchMatchesSearch: the Searcher implementation must agree with
// a sequential Search loop at every concurrency.
func TestSearchBatchMatchesSearch(t *testing.T) {
	ds, ix := shared(t)
	var next int64
	ix.AssignPages(func(n int64) int64 { p := next; next += n; return p })
	var _ index.Searcher = ix
	queries := make([][]float32, ds.Queries.Len())
	for qi := range queries {
		queries[qi] = ds.Queries.Row(qi)
	}
	for _, qc := range []int{1, 4} {
		opts := uncachedOpts().With(index.WithQueryConcurrency(qc), index.WithLookAhead(2))
		batch := ix.SearchBatch(context.Background(), queries, 10, opts)
		for qi, q := range queries {
			if !reflect.DeepEqual(batch[qi], ix.Search(q, 10, opts)) {
				t.Fatalf("qc=%d query=%d: batch result differs from Search", qc, qi)
			}
		}
	}
}
