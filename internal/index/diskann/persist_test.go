package diskann

import (
	"bytes"
	"reflect"
	"testing"

	"svdbench/internal/binenc"
	"svdbench/internal/index"
	"svdbench/internal/vec"
)

func TestPersistRoundTrip(t *testing.T) {
	ds, orig := shared(t)
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(binenc.NewReader(&buf), ds.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Medoid() != orig.Medoid() || got.PagesPerNode() != orig.PagesPerNode() {
		t.Error("metadata mismatch after round trip")
	}
	for qi := 0; qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := orig.Search(q, 10, index.SearchOptions{SearchList: 20, BeamWidth: 4})
		b := got.Search(q, 10, index.SearchOptions{SearchList: 20, BeamWidth: 4})
		if !reflect.DeepEqual(a.IDs, b.IDs) {
			t.Fatalf("query %d: %v vs %v", qi, a.IDs, b.IDs)
		}
		if a.Stats != b.Stats {
			t.Fatalf("query %d stats differ: %+v vs %+v", qi, a.Stats, b.Stats)
		}
	}
}

func TestPersistRejectsWrongData(t *testing.T) {
	_, orig := shared(t)
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	orig.WriteTo(w)
	w.Flush()
	if _, err := ReadFrom(binenc.NewReader(&buf), vec.NewMatrix(7, 32), nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	r := binenc.NewReader(bytes.NewReader([]byte("VAMAGARBAGEGARBAGEGARBAGE")))
	if _, err := ReadFrom(r, vec.NewMatrix(1, 4), nil); err == nil {
		t.Error("garbage accepted")
	}
}
