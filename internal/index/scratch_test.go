package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestEpochSetBasics(t *testing.T) {
	var s EpochSet
	s.Begin(8)
	for id := int32(0); id < 8; id++ {
		if s.Contains(id) {
			t.Fatalf("fresh set contains %d", id)
		}
	}
	s.Add(3)
	s.Add(7)
	if !s.Contains(3) || !s.Contains(7) || s.Contains(4) {
		t.Fatal("membership wrong after Add")
	}
	s.Remove(3)
	if s.Contains(3) || !s.Contains(7) {
		t.Fatal("membership wrong after Remove")
	}
	// A new epoch clears without touching storage.
	s.Begin(8)
	if s.Contains(7) {
		t.Fatal("stale membership survived Begin")
	}
	// Begin grows on demand.
	s.Begin(32)
	s.Add(31)
	if !s.Contains(31) {
		t.Fatal("grown set lost membership")
	}
}

func TestEpochSetWraparound(t *testing.T) {
	var s EpochSet
	s.Begin(4)
	s.Add(1)
	s.epoch = math.MaxUint32 // force the next Begin to wrap
	for i := range s.stamps {
		s.stamps[i] = math.MaxUint32 // worst case: every stamp matches
	}
	s.Begin(4)
	for id := int32(0); id < 4; id++ {
		if s.Contains(id) {
			t.Fatalf("wraparound left %d marked", id)
		}
	}
	s.Add(2)
	if !s.Contains(2) {
		t.Fatal("post-wrap Add lost")
	}
	s.Remove(2)
	if s.Contains(2) {
		t.Fatal("post-wrap Remove kept membership")
	}
}

func TestDrainAscendingMatchesSorted(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(40)
		var a, b MaxHeap
		for i := 0; i < n; i++ {
			nb := Neighbor{ID: int32(i), Dist: float32(r.Intn(10))}
			a.Push(nb)
			b.Push(nb)
		}
		want := a.SortedAscending()
		scratch := make([]Neighbor, 0, 4)
		got := b.DrainAscending(scratch[:0])
		if len(want) != len(got) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: element %d: %+v vs %+v", trial, i, want[i], got[i])
			}
		}
		if b.Len() != 0 {
			t.Fatalf("trial %d: heap not drained", trial)
		}
	}
}

func TestResultIntoSemantics(t *testing.T) {
	ns := []Neighbor{{ID: 5, Dist: 0.1}, {ID: 2, Dist: 0.2}, {ID: 9, Dist: 0.3}}
	var dst Result
	ResultInto(ns, 2, Stats{DistComps: 7}, &dst)
	if !reflect.DeepEqual(dst.IDs, []int32{5, 2}) || dst.Stats.DistComps != 7 {
		t.Fatalf("unexpected result %+v", dst)
	}
	// Reuse must not allocate fresh buffers: same backing array.
	before := &dst.IDs[0]
	ResultInto(ns, 2, Stats{}, &dst)
	if &dst.IDs[0] != before {
		t.Fatal("ResultInto reallocated a sufficient buffer")
	}
	// k == 0 still yields non-nil slices, matching ResultFromNeighbors.
	var empty Result
	ResultInto(nil, 0, Stats{}, &empty)
	if empty.IDs == nil || empty.Dists == nil {
		t.Fatal("k=0 result has nil slices")
	}
	ref := ResultFromNeighbors(nil, 0, Stats{})
	if (ref.IDs == nil) != (empty.IDs == nil) || len(ref.IDs) != len(empty.IDs) {
		t.Fatal("ResultInto and ResultFromNeighbors disagree at k=0")
	}
}
