package index

// SearchOption is a functional option over SearchOptions, the ergonomic
// layer of the search API. SearchOptions itself stays the stable wire form;
// options give call sites self-describing construction:
//
//	opts := index.NewSearchOptions(index.WithSearchList(100), index.WithBeamWidth(4))
//
// Options apply in order, so later options win over earlier ones.
type SearchOption func(*SearchOptions)

// WithNProbe sets the number of candidate clusters an IVF search scans.
func WithNProbe(n int) SearchOption { return func(o *SearchOptions) { o.NProbe = n } }

// WithEfSearch sets HNSW's dynamic candidate list size.
func WithEfSearch(ef int) SearchOption { return func(o *SearchOptions) { o.EfSearch = ef } }

// WithSearchList sets DiskANN's candidate list size (L).
func WithSearchList(l int) SearchOption { return func(o *SearchOptions) { o.SearchList = l } }

// WithBeamWidth sets DiskANN's beam width (W): frontier nodes fetched from
// storage per search iteration.
func WithBeamWidth(w int) SearchOption { return func(o *SearchOptions) { o.BeamWidth = w } }

// WithNodeCacheNodes sets the node-cache capacity, in nodes, that
// storage-based indexes (DiskANN, SPANN) consult before issuing beam or
// posting reads. Zero (the default) disables the cache.
func WithNodeCacheNodes(n int) SearchOption {
	return func(o *SearchOptions) { o.NodeCacheNodes = n }
}

// WithNodeCachePolicy selects the node-cache replacement policy:
// NodeCacheStatic or NodeCacheLRU (the default when empty).
func WithNodeCachePolicy(policy string) SearchOption {
	return func(o *SearchOptions) { o.NodeCachePolicy = policy }
}

// WithLookAhead sets the pipeline depth of the storage-based searches: the
// number of top unexpanded candidates whose pages are speculatively
// prefetched while the current hop's distances are scored. Zero (the
// default) disables prefetching. Results and demand I/O stay byte-identical
// to the synchronous search at any depth.
func WithLookAhead(n int) SearchOption { return func(o *SearchOptions) { o.LookAhead = n } }

// WithLayout selects the on-disk layout of a storage-based search: LayoutID
// (one node per page slot, the default when empty) or LayoutPage (page-node
// co-design: beam search over 4 KiB page groups, scoring every resident
// node a fetch returns). Overrides the layout the index was built with.
func WithLayout(layout string) SearchOption {
	return func(o *SearchOptions) { o.Layout = layout }
}

// WithQueryConcurrency bounds how many queries of one SearchBatch run
// concurrently (0 means the default of index.DefaultQueryConcurrency).
func WithQueryConcurrency(n int) SearchOption {
	return func(o *SearchOptions) { o.QueryConcurrency = n }
}

// WithFilter restricts results to ids for which f returns true (nil clears
// the filter).
func WithFilter(f func(id int32) bool) SearchOption {
	return func(o *SearchOptions) { o.Filter = f }
}

// NewSearchOptions builds SearchOptions from options over the zero value.
func NewSearchOptions(opts ...SearchOption) SearchOptions {
	var o SearchOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// With returns a copy of the options with the given options applied; the
// receiver is unchanged.
func (o SearchOptions) With(opts ...SearchOption) SearchOptions {
	for _, fn := range opts {
		fn(&o)
	}
	return o
}
