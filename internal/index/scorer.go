package index

import (
	"svdbench/internal/vec"
)

// Scorer evaluates metric distances between queries and the rows of a fixed
// matrix. For cosine it caches every row's norm at construction and the
// query's norm per query, reducing each distance to a single dot product —
// the optimisation real index implementations apply, and a ~3× saving on
// construction and search.
type Scorer struct {
	data   *vec.Matrix
	metric vec.Metric
	norms  []float32 // row norms; only for Cosine
}

// NewScorer builds a scorer over data.
func NewScorer(data *vec.Matrix, metric vec.Metric) *Scorer {
	s := &Scorer{data: data, metric: metric}
	if metric == vec.Cosine {
		n := data.Len()
		s.norms = make([]float32, n)
		for i := 0; i < n; i++ {
			s.norms[i] = vec.Norm(data.Row(i))
		}
	}
	return s
}

// QueryScorer scores one query against the scorer's rows.
type QueryScorer struct {
	s     *Scorer
	q     []float32
	qnorm float32
}

// Query prepares a query vector (caching its norm for cosine).
func (s *Scorer) Query(q []float32) QueryScorer {
	qs := QueryScorer{s: s, q: q}
	if s.metric == vec.Cosine {
		qs.qnorm = vec.Norm(q)
	}
	return qs
}

// QueryRow prepares row i of the matrix itself as the query, reusing its
// cached norm (used during graph construction, where stored vectors query
// each other).
func (s *Scorer) QueryRow(i int) QueryScorer {
	qs := QueryScorer{s: s, q: s.data.Row(i)}
	if s.metric == vec.Cosine {
		qs.qnorm = s.norms[i]
	}
	return qs
}

// Vector returns the underlying query vector.
func (qs QueryScorer) Vector() []float32 { return qs.q }

// Dist returns the metric distance from the query to row i (smaller is
// closer, consistent with vec.Distance).
func (qs QueryScorer) Dist(i int) float32 {
	switch qs.s.metric {
	case vec.L2:
		return vec.L2Sq(qs.q, qs.s.data.Row(i))
	case vec.IP:
		return -vec.Dot(qs.q, qs.s.data.Row(i))
	case vec.Cosine:
		rn := qs.s.norms[i]
		if qs.qnorm == 0 || rn == 0 {
			return 1
		}
		return 1 - vec.Dot(qs.q, qs.s.data.Row(i))/(qs.qnorm*rn)
	default:
		panic("index: unknown metric")
	}
}

// DistBatch writes the metric distance from the query to each listed row
// into out (len(out) must equal len(ids)). Every out[i] is bit-identical to
// Dist(ids[i]); rows are gathered four at a time through the vec batch
// kernels, which amortise the query loads and (on amd64) run in SSE.
//
//annlint:hotpath
func (qs QueryScorer) DistBatch(ids []int32, out []float32) {
	if len(ids) != len(out) {
		panic("index: DistBatch ids/out length mismatch")
	}
	d := qs.s.data
	n := len(ids)
	i := 0
	switch qs.s.metric {
	case vec.L2:
		for ; i+4 <= n; i += 4 {
			out[i], out[i+1], out[i+2], out[i+3] = vec.L2Sq4(qs.q,
				d.Row(int(ids[i])), d.Row(int(ids[i+1])), d.Row(int(ids[i+2])), d.Row(int(ids[i+3])))
		}
		for ; i < n; i++ {
			out[i] = vec.L2Sq(qs.q, d.Row(int(ids[i])))
		}
	case vec.IP:
		for ; i+4 <= n; i += 4 {
			out[i], out[i+1], out[i+2], out[i+3] = vec.Dot4(qs.q,
				d.Row(int(ids[i])), d.Row(int(ids[i+1])), d.Row(int(ids[i+2])), d.Row(int(ids[i+3])))
		}
		for ; i < n; i++ {
			out[i] = vec.Dot(qs.q, d.Row(int(ids[i])))
		}
		for j := 0; j < n; j++ {
			out[j] = -out[j]
		}
	case vec.Cosine:
		for ; i+4 <= n; i += 4 {
			out[i], out[i+1], out[i+2], out[i+3] = vec.Dot4(qs.q,
				d.Row(int(ids[i])), d.Row(int(ids[i+1])), d.Row(int(ids[i+2])), d.Row(int(ids[i+3])))
		}
		for ; i < n; i++ {
			out[i] = vec.Dot(qs.q, d.Row(int(ids[i])))
		}
		for j := 0; j < n; j++ {
			rn := qs.s.norms[ids[j]]
			if qs.qnorm == 0 || rn == 0 {
				out[j] = 1
				continue
			}
			out[j] = 1 - out[j]/(qs.qnorm*rn)
		}
	default:
		panic("index: unknown metric")
	}
}

// RowDist returns the metric distance between two stored rows, using cached
// norms where available.
func (s *Scorer) RowDist(i, j int) float32 {
	return s.QueryRow(i).Dist(j)
}

// Metric returns the scorer's metric.
func (s *Scorer) Metric() vec.Metric { return s.metric }
