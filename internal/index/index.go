// Package index defines the machinery shared by every vector index in the
// benchmark: the Index interface, search options, result types, the CPU cost
// model that converts counted work into virtual time, and the execution
// profile recorder used by the record-then-replay harness.
//
// Indexes run their real algorithms on real data (so recall numbers are
// genuine) while recording, per query, the alternating compute/I/O steps
// that the discrete-event simulation later replays under load.
package index

import (
	"errors"
	"time"

	"svdbench/internal/vec"
)

// ErrNotSupported is returned when an index cannot satisfy a request (for
// example deletion on an immutable index).
var ErrNotSupported = errors.New("index: operation not supported")

// SearchOptions carries the search-time parameters of all index families;
// each index reads the fields it understands (the paper's Table II maps the
// fields to indexes: NProbe for IVF, EfSearch for HNSW, SearchList and
// BeamWidth for DiskANN).
type SearchOptions struct {
	// NProbe is the number of candidate clusters an IVF search scans.
	NProbe int
	// EfSearch is HNSW's dynamic candidate list size.
	EfSearch int
	// SearchList is DiskANN's candidate list size (L).
	SearchList int
	// BeamWidth is DiskANN's beam width (W): frontier nodes fetched from
	// storage per search iteration.
	BeamWidth int
	// Filter restricts results to ids for which it returns true (nil
	// means no filtering). Implements the filtered-search extension.
	Filter func(id int32) bool
	// NodeCacheNodes is the capacity, in nodes, of the index-aware node
	// cache storage-based indexes (DiskANN, SPANN) consult before issuing
	// beam or posting reads. Zero disables the cache entirely, leaving
	// the recorded execution byte-identical to the uncached one.
	NodeCacheNodes int
	// NodeCachePolicy selects the node-cache replacement policy:
	// NodeCacheStatic (a BFS-warmed fixed set, DiskANN's
	// num_nodes_to_cache) or NodeCacheLRU (dynamic, the default when
	// empty). Ignored while NodeCacheNodes is zero.
	NodeCachePolicy string
	// LookAhead is the pipeline depth of the storage-based searches: the
	// number of top unexpanded candidates whose pages are speculatively
	// prefetched while the current hop's distances are scored (LAANN-style
	// look-ahead). Zero disables prefetching. Look-ahead changes *when*
	// pages are read, never *what* the candidate list contains: results and
	// demand I/O stay byte-identical to the synchronous search at any depth,
	// with speculative reads recorded separately (Step.Prefetch) and
	// accounted in Stats.PrefetchPages/PrefetchUsed.
	LookAhead int
	// Layout selects the on-disk layout a storage-based index searches:
	// LayoutID (the default when empty) keeps one node per page slot, the
	// layout the paper measures; LayoutPage groups a node with its nearest
	// graph neighbours into 4 KiB page-nodes and beam-searches over those
	// (the PageANN-style page-as-graph-unit co-design). Indexes without a
	// second layout ignore the field. An explicit option overrides the
	// layout the index was built with.
	Layout string
	// QueryConcurrency bounds how many queries of one SearchBatch run
	// concurrently on host goroutines (0 means the default of 8). Batches
	// against a mutable node cache always run sequentially in query order
	// regardless, so recorded executions stay deterministic.
	QueryConcurrency int
	// Scratch, when non-nil, supplies the reusable per-searcher workspace
	// (heaps, visited sets, candidate buffers) of the zero-alloc search hot
	// path. A scratch must be owned by one goroutine at a time; BatchRun
	// threads one per worker. Nil means the search allocates a private
	// scratch — results are identical either way.
	Scratch *SearchScratch
	// Recorder, when non-nil, receives the query's execution profile.
	Recorder *Profile
	// RecorderFor, when non-nil, supplies a per-query profile recorder for
	// batch searches: SearchBatch resolves Recorder for query qi as
	// RecorderFor(qi), letting one option set record a whole batch. It
	// overrides Recorder inside SearchBatch and is ignored by Search.
	RecorderFor func(qi int) *Profile
}

// On-disk layout names understood by the storage-based indexes.
const (
	// LayoutID packs one node per page slot (addresses are derived from the
	// node id): every beam hop fetches a page and scores exactly one node,
	// the layout behind the paper's O-15 finding. The default when empty.
	LayoutID = "id"
	// LayoutPage makes the 4 KiB page the logical graph unit: a page holds
	// a node and its nearest graph neighbours plus an embedded inter-page
	// adjacency list, so one fetch scores every resident node.
	LayoutPage = "page"
)

// Node-cache policy names understood by the storage-based indexes; they
// mirror internal/storage/nodecache's Policy values without importing it.
const (
	// NodeCacheStatic caches a fixed node set warmed by BFS from the
	// traversal entry point.
	NodeCacheStatic = "static"
	// NodeCacheLRU caches nodes least-recently-used, admitting on miss.
	NodeCacheLRU = "lru"
)

// NodeCacheMutable reports whether the options select a node cache whose
// state evolves across queries (every policy except the static set).
// Recording against a mutable cache must be sequential in query order —
// vdb.Collection.RecordQueries serialises itself when this is true — or the
// recorded executions would depend on host goroutine interleaving.
func (o SearchOptions) NodeCacheMutable() bool {
	return o.NodeCacheNodes > 0 && o.NodeCachePolicy != NodeCacheStatic
}

// Result is a completed search: ids ordered closest-first with their
// distances, plus counted work.
type Result struct {
	IDs   []int32
	Dists []float32
	Stats Stats
}

// Stats counts the work one search performed.
type Stats struct {
	// DistComps is the number of full-precision distance computations.
	DistComps int
	// PQComps is the number of compressed (PQ/SQ) distance computations.
	PQComps int
	// Hops is the number of graph expansion iterations (graph indexes).
	Hops int
	// PagesRead is the number of 4 KiB pages fetched from storage.
	PagesRead int
	// CachePages is the number of pages served by the node cache instead
	// of storage; PagesRead+CachePages is invariant under caching.
	CachePages int
	// PrefetchPages counts pages issued speculatively by look-ahead;
	// PrefetchUsed counts the subset a later hop actually demanded.
	// PrefetchPages−PrefetchUsed is the wasted prefetch volume. Both are
	// zero when LookAhead is zero. Demand accounting (PagesRead,
	// CachePages) is unaffected: a prefetched-then-demanded page still
	// counts in PagesRead, it just completes earlier at replay.
	PrefetchPages int
	PrefetchUsed  int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DistComps += other.DistComps
	s.PQComps += other.PQComps
	s.Hops += other.Hops
	s.PagesRead += other.PagesRead
	s.CachePages += other.CachePages
	s.PrefetchPages += other.PrefetchPages
	s.PrefetchUsed += other.PrefetchUsed
}

// WastedPrefetchRatio is the fraction of speculatively read pages no hop
// ever demanded (0 when look-ahead was off).
func (s Stats) WastedPrefetchRatio() float64 {
	if s.PrefetchPages == 0 {
		return 0
	}
	return float64(s.PrefetchPages-s.PrefetchUsed) / float64(s.PrefetchPages)
}

// Index is a built vector index ready to answer k-NN queries.
type Index interface {
	// Name identifies the index family ("IVF_FLAT", "HNSW", "DISKANN", ...).
	Name() string
	// Metric returns the distance metric the index was built with.
	Metric() vec.Metric
	// Len returns the number of indexed vectors.
	Len() int
	// Search returns the approximate k nearest neighbours of q.
	Search(q []float32, k int, opts SearchOptions) Result
}

// SizeReporter is implemented by indexes that can report their memory and
// storage footprints (for the paper's memory-cost discussion).
type SizeReporter interface {
	// MemoryBytes is the resident main-memory footprint.
	MemoryBytes() int64
	// StorageBytes is the on-SSD footprint (zero for memory-only indexes).
	StorageBytes() int64
}

// CostModel converts counted algorithmic work into virtual CPU time. Costs
// are expressed in picoseconds because SIMD kernels spend well under a
// nanosecond per dimension; the defaults approximate one core of the paper's
// Xeon Silver 4416+.
type CostModel struct {
	// DistFixedPs is the fixed overhead of one full-precision distance.
	DistFixedPs int64
	// DistPerDimPs is the per-dimension cost of one full-precision
	// distance.
	DistPerDimPs int64
	// PQFixedPs and PQPerSubPs cost one asymmetric PQ distance with m
	// sub-quantizer table lookups.
	PQFixedPs  int64
	PQPerSubPs int64
	// HeapOpPs is the bookkeeping cost per candidate push/pop.
	HeapOpPs int64
}

// DefaultCostModel is the calibration used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		DistFixedPs:  40_000,
		DistPerDimPs: 250,
		PQFixedPs:    20_000,
		PQPerSubPs:   900,
		HeapOpPs:     25_000,
	}
}

// Dist returns the virtual time of n full-precision distance computations at
// the given dimensionality.
func (c CostModel) Dist(dim, n int) time.Duration {
	return time.Duration((c.DistFixedPs + int64(dim)*c.DistPerDimPs) * int64(n) / 1000)
}

// PQ returns the virtual time of n PQ distance computations with m
// sub-quantizers.
func (c CostModel) PQ(m, n int) time.Duration {
	return time.Duration((c.PQFixedPs + int64(m)*c.PQPerSubPs) * int64(n) / 1000)
}

// Heap returns the virtual time of n heap operations.
func (c CostModel) Heap(n int) time.Duration {
	return time.Duration(c.HeapOpPs * int64(n) / 1000)
}

// Step is one stage of a query's execution: a CPU burst followed by a batch
// of page reads (the batch is empty for pure-compute steps). Graph
// traversals produce one step per hop with the beam's pages issued in
// parallel; cluster scans produce one step per probed cluster with the
// posting's pages read as a single contiguous request.
type Step struct {
	CPU   time.Duration
	Pages []int64
	// Contiguous marks the page batch as one sequential multi-page read
	// (a posting list) rather than parallel random reads (a beam).
	Contiguous bool
	// CachePages counts pages the node cache absorbed in this step: reads
	// the search would have issued to the device but served from cache at
	// hit cost (the hit cost is already folded into CPU). The replay
	// engine reports them to the tracer so hit rates appear in run
	// metrics without any device traffic.
	CachePages int
	// Prefetch lists the speculative reads look-ahead issued alongside
	// this step's demand I/O. The replay engine launches them
	// asynchronously — they complete in the background while later steps
	// burn CPU — and later demand pages matching an in-flight prefetch
	// join its completion instead of issuing a duplicate read. A step's
	// demand Pages always lists everything the search needed (prefetched
	// or not), so replaying with Prefetch stripped yields exactly the
	// synchronous execution.
	Prefetch []PrefetchRun
}

// PrefetchRun is one speculative read batch: the pages of one look-ahead
// candidate (a graph node's pages, issued as parallel 4 KiB reads) or one
// posting list (a single contiguous multi-page read).
type PrefetchRun struct {
	Pages      []int64
	Contiguous bool
}

// Profile is the recorded execution of one query against one index: the
// replay harness walks the steps in order, charging CPU and issuing I/O
// inside the simulation.
type Profile struct {
	Steps []Step
	// pending accumulates CPU cost not yet flushed into a step.
	pending time.Duration
	// pendingCache accumulates node-cache page hits not yet flushed.
	pendingCache int
	// pendingPrefetch accumulates speculative reads not yet flushed.
	pendingPrefetch []PrefetchRun
}

// AddCPU accumulates compute time into the current (unflushed) step.
func (p *Profile) AddCPU(d time.Duration) {
	if p == nil {
		return
	}
	p.pending += d
}

// AddCacheHit accumulates node-cache page hits into the current (unflushed)
// step; the caller charges the corresponding hit cost through AddCPU.
func (p *Profile) AddCacheHit(pages int) {
	if p == nil {
		return
	}
	p.pendingCache += pages
}

// AddPrefetch accumulates one speculative read batch into the current
// (unflushed) step; the pages are copied. Look-ahead charges no extra
// record-time CPU — selecting prefetch targets rides on work the search
// already does — which keeps CPU bursts byte-identical to the synchronous
// profile.
func (p *Profile) AddPrefetch(run PrefetchRun) {
	if p == nil || len(run.Pages) == 0 {
		return
	}
	cp := make([]int64, len(run.Pages)) //annlint:allow hotalloc -- profiling copy, taken only when a recorder is attached; measurement runs accept it
	copy(cp, run.Pages)
	p.pendingPrefetch = append(p.pendingPrefetch, PrefetchRun{Pages: cp, Contiguous: run.Contiguous})
}

// flushStep appends one step carrying everything pending.
func (p *Profile) flushStep(s Step) {
	s.CPU = p.pending
	s.CachePages = p.pendingCache
	s.Prefetch = p.pendingPrefetch
	p.Steps = append(p.Steps, s)
	p.pending = 0
	p.pendingCache = 0
	p.pendingPrefetch = nil
}

// AddIO flushes the pending compute plus the given parallel page batch as
// one step.
func (p *Profile) AddIO(pages []int64) {
	if p == nil {
		return
	}
	cp := make([]int64, len(pages)) //annlint:allow hotalloc -- profiling copy, taken only when a recorder is attached; measurement runs accept it
	copy(cp, pages)
	p.flushStep(Step{Pages: cp})
}

// AddContiguousIO flushes the pending compute plus one sequential
// multi-page read as one step.
func (p *Profile) AddContiguousIO(pages []int64) {
	if p == nil {
		return
	}
	cp := make([]int64, len(pages)) //annlint:allow hotalloc -- profiling copy, taken only when a recorder is attached; measurement runs accept it
	copy(cp, pages)
	p.flushStep(Step{Pages: cp, Contiguous: true})
}

// Flush closes the profile, emitting any pending compute, cache hits or
// prefetches as a final step.
func (p *Profile) Flush() {
	if p == nil {
		return
	}
	if p.pending > 0 || p.pendingCache > 0 || len(p.pendingPrefetch) > 0 {
		p.flushStep(Step{})
	}
}

// TotalCPU sums the compute time across steps.
func (p *Profile) TotalCPU() time.Duration {
	var d time.Duration
	for _, s := range p.Steps {
		d += s.CPU
	}
	return d + p.pending
}

// TotalPages counts the pages read across steps.
func (p *Profile) TotalPages() int {
	n := 0
	for _, s := range p.Steps {
		n += len(s.Pages)
	}
	return n
}

// TotalCachePages counts the pages the node cache absorbed across steps.
func (p *Profile) TotalCachePages() int {
	n := p.pendingCache
	for _, s := range p.Steps {
		n += s.CachePages
	}
	return n
}
