// Package kmeans implements Lloyd's algorithm with k-means++ seeding, the
// clustering substrate behind the IVF index family and the product
// quantisation codebooks. Assignment steps are parallelised with real
// goroutines (index construction is preprocessing, not simulated work).
package kmeans

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"svdbench/internal/vec"
)

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations (default 20).
	MaxIter int
	// Seed makes runs deterministic.
	Seed int64
	// Tol stops early when the mean centroid movement falls below it.
	Tol float64
}

// Result is a completed clustering.
type Result struct {
	// Centroids is the K×dim centroid matrix.
	Centroids *vec.Matrix
	// Assign maps each input row to its centroid.
	Assign []int32
	// Sizes counts members per cluster.
	Sizes []int
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Run clusters the rows of data into cfg.K groups under squared Euclidean
// distance. K is clamped to the number of rows.
func Run(data *vec.Matrix, cfg Config) Result {
	n, dim := data.Len(), data.Dim
	if cfg.K <= 0 {
		panic("kmeans: K must be positive")
	}
	if cfg.K > n {
		cfg.K = n
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 20
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	centroids := seedPlusPlus(data, cfg.K, r)
	assign := make([]int32, n)
	sizes := make([]int, cfg.K)

	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		assignAll(data, centroids, assign)
		// Recompute centroids.
		next := vec.NewMatrix(cfg.K, dim)
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			sizes[c]++
			vec.Add(next.Row(int(c)), data.Row(i))
		}
		var moved float64
		for c := 0; c < cfg.K; c++ {
			row := next.Row(c)
			if sizes[c] == 0 {
				// Re-seed an empty cluster on a random point.
				copy(row, data.Row(r.Intn(n)))
			} else {
				vec.Scale(row, 1/float32(sizes[c]))
			}
			moved += math.Sqrt(float64(vec.L2Sq(row, centroids.Row(c))))
		}
		centroids = next
		if moved/float64(cfg.K) < cfg.Tol {
			iters++
			break
		}
	}
	assignAll(data, centroids, assign)
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return Result{Centroids: centroids, Assign: assign, Sizes: sizes, Iters: iters}
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting. The
// data-wide distance sweeps run through the batch kernel (data rows are
// contiguous); L2Sq is argument-order-exact, so the picks are unchanged.
func seedPlusPlus(data *vec.Matrix, k int, r *rand.Rand) *vec.Matrix {
	n := data.Len()
	centroids := vec.NewMatrix(k, data.Dim)
	first := r.Intn(n)
	copy(centroids.Row(0), data.Row(first))
	d2 := make([]float64, n)
	sweep := func(c int, min bool) {
		var buf [scoreChunk]float32
		raw := data.Raw()
		dim := data.Dim
		cv := centroids.Row(c)
		for lo := 0; lo < n; lo += scoreChunk {
			cn := n - lo
			if cn > scoreChunk {
				cn = scoreChunk
			}
			vec.L2SqBatch(cv, raw[lo*dim:(lo+cn)*dim], buf[:cn])
			for i := 0; i < cn; i++ {
				if d := float64(buf[i]); !min || d < d2[lo+i] {
					d2[lo+i] = d
				}
			}
		}
	}
	sweep(0, false)
	for c := 1; c < k; c++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum <= 0 {
			pick = r.Intn(n)
		} else {
			x := r.Float64() * sum
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= x {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), data.Row(pick))
		sweep(c, true)
	}
	return centroids
}

// assignAll writes the nearest centroid of every row into assign, in
// parallel.
func assignAll(data, centroids *vec.Matrix, assign []int32) {
	n := data.Len()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				assign[i] = int32(Nearest(centroids, data.Row(i)))
			}
		}(lo, hi)
	}
	wg.Wait()
}

// scoreChunk is the row batch of the chunked centroid scans below: big
// enough to amortise the batch-kernel call, small enough to live on the
// stack.
const scoreChunk = 64

// Nearest returns the index of the centroid closest to v under squared
// Euclidean distance.
//
// Centroid matrices are contiguous, so distances come from the batch kernel
// in chunks; they are bit-identical to the scalar loop, and the first-
// minimum rule (strict <, ascending scan) picks the same argmin.
func Nearest(centroids *vec.Matrix, v []float32) int {
	var buf [scoreChunk]float32
	raw := centroids.Raw()
	dim := centroids.Dim
	k := centroids.Len()
	best, bestD := 0, float32(math.Inf(1))
	for lo := 0; lo < k; lo += scoreChunk {
		n := k - lo
		if n > scoreChunk {
			n = scoreChunk
		}
		vec.L2SqBatch(v, raw[lo*dim:(lo+n)*dim], buf[:n])
		for i := 0; i < n; i++ {
			if buf[i] < bestD {
				best, bestD = lo+i, buf[i]
			}
		}
	}
	return best
}

// NearestN returns the indexes of the n closest centroids to v, closest
// first.
func NearestN(centroids *vec.Matrix, v []float32, n int) []int {
	k := centroids.Len()
	if n > k {
		n = k
	}
	type cd struct {
		c int
		d float32
	}
	var buf [scoreChunk]float32
	raw := centroids.Raw()
	dim := centroids.Dim
	all := make([]cd, k)
	for lo := 0; lo < k; lo += scoreChunk {
		cn := k - lo
		if cn > scoreChunk {
			cn = scoreChunk
		}
		vec.L2SqBatch(v, raw[lo*dim:(lo+cn)*dim], buf[:cn])
		for i := 0; i < cn; i++ {
			all[lo+i] = cd{lo + i, buf[i]}
		}
	}
	// Partial selection sort: n is small (nprobe).
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < k; j++ {
			if all[j].d < all[min].d || (all[j].d == all[min].d && all[j].c < all[min].c) {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].c
	}
	return out
}
