package kmeans

import (
	"math/rand"
	"reflect"
	"testing"

	"svdbench/internal/vec"
)

// blobs generates k well-separated clusters of points.
func blobs(k, perCluster, dim int, seed int64) (*vec.Matrix, []int32) {
	r := rand.New(rand.NewSource(seed))
	centers := vec.NewMatrix(k, dim)
	for c := 0; c < k; c++ {
		row := centers.Row(c)
		for j := range row {
			row[j] = float32(r.NormFloat64() * 10) // far apart
		}
	}
	data := vec.NewMatrix(k*perCluster, dim)
	labels := make([]int32, k*perCluster)
	for i := 0; i < data.Len(); i++ {
		c := i % k
		labels[i] = int32(c)
		row := data.Row(i)
		center := centers.Row(c)
		for j := range row {
			row[j] = center[j] + float32(r.NormFloat64()*0.1)
		}
	}
	return data, labels
}

func TestRecoverWellSeparatedClusters(t *testing.T) {
	data, labels := blobs(4, 50, 8, 7)
	res := Run(data, Config{K: 4, Seed: 1})
	// Every pair in the same true cluster must share an assignment and
	// pairs in different true clusters must not (perfect separation).
	rep := map[int32]int32{} // true label -> assigned cluster
	for i, lab := range labels {
		got := res.Assign[i]
		if want, ok := rep[lab]; ok {
			if got != want {
				t.Fatalf("point %d of cluster %d assigned %d, want %d", i, lab, got, want)
			}
		} else {
			rep[lab] = got
		}
	}
	if len(rep) != 4 {
		t.Fatalf("recovered %d clusters, want 4", len(rep))
	}
}

func TestDeterminism(t *testing.T) {
	data, _ := blobs(3, 30, 4, 3)
	a := Run(data, Config{K: 3, Seed: 5})
	b := Run(data, Config{K: 3, Seed: 5})
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("same seed produced different assignments")
	}
	if !reflect.DeepEqual(a.Centroids.Raw(), b.Centroids.Raw()) {
		t.Error("same seed produced different centroids")
	}
}

func TestKClampedToN(t *testing.T) {
	data := vec.MatrixFromRows([][]float32{{1, 1}, {2, 2}})
	res := Run(data, Config{K: 10, Seed: 1})
	if res.Centroids.Len() != 2 {
		t.Errorf("centroids = %d, want 2", res.Centroids.Len())
	}
}

func TestSizesSumToN(t *testing.T) {
	data, _ := blobs(5, 20, 6, 11)
	res := Run(data, Config{K: 5, Seed: 2})
	sum := 0
	for _, s := range res.Sizes {
		sum += s
	}
	if sum != data.Len() {
		t.Errorf("sizes sum = %d, want %d", sum, data.Len())
	}
}

func TestAssignMatchesNearest(t *testing.T) {
	data, _ := blobs(3, 20, 4, 13)
	res := Run(data, Config{K: 3, Seed: 3})
	for i := 0; i < data.Len(); i++ {
		if int(res.Assign[i]) != Nearest(res.Centroids, data.Row(i)) {
			t.Fatalf("assignment %d inconsistent with Nearest", i)
		}
	}
}

func TestNearestN(t *testing.T) {
	cents := vec.MatrixFromRows([][]float32{{0, 0}, {1, 0}, {5, 0}, {10, 0}})
	got := NearestN(cents, []float32{0.9, 0}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("NearestN = %v, want [1 0]", got)
	}
	// n larger than k clamps.
	got = NearestN(cents, []float32{0, 0}, 10)
	if len(got) != 4 || got[0] != 0 {
		t.Errorf("clamped NearestN = %v", got)
	}
}

func TestPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for K=0")
		}
	}()
	Run(vec.NewMatrix(3, 2), Config{K: 0})
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Many identical points with large K forces empty clusters; sizes must
	// still sum to n and centroids stay finite.
	data := vec.NewMatrix(20, 2)
	for i := 0; i < 20; i++ {
		data.SetRow(i, []float32{1, 1})
	}
	res := Run(data, Config{K: 5, Seed: 9})
	sum := 0
	for _, s := range res.Sizes {
		sum += s
	}
	if sum != 20 {
		t.Errorf("sizes sum = %d", sum)
	}
}

func TestConvergesEarly(t *testing.T) {
	data, _ := blobs(2, 50, 4, 17)
	res := Run(data, Config{K: 2, Seed: 1, MaxIter: 100})
	if res.Iters >= 100 {
		t.Errorf("did not converge early: %d iters", res.Iters)
	}
}
