package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	records := []Record{
		{At: 0, Op: Read, Bytes: 4096},
		{At: 1500, Op: Write, Bytes: 8192},
		{At: 3000, Op: Read, Bytes: 4096},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip changed records:\n%v\n%v", got, records)
	}
}

func TestReadCSVHeaderOptional(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("0,R,4096\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("headerless read: %v, %d records", err, len(got))
	}
	got, err = ReadCSV(strings.NewReader("ns,op,bytes\n\n0,W,1\n"))
	if err != nil || len(got) != 1 || got[0].Op != Write {
		t.Fatalf("header+blank read: %v, %+v", err, got)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"0,R\n",          // missing field
		"x,R,4096\n",     // bad timestamp
		"0,T,4096\n",     // bad op
		"0,R,notanint\n", // bad size
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line %q accepted", c)
		}
	}
}

func TestReplay(t *testing.T) {
	records := []Record{
		{At: 0, Op: Read, Bytes: 4096},
		{At: 10, Op: Read, Bytes: 4096},
	}
	tr := Replay(records)
	r, _, rb, _ := tr.Totals()
	if r != 2 || rb != 8192 {
		t.Errorf("replay totals = %d ops %d bytes", r, rb)
	}
}
