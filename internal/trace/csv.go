package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"svdbench/internal/sim"
)

// WriteCSV streams raw records as "ns,op,bytes" lines, the interchange
// format between the harness and cmd/iostat (the role of the paper's
// bpftrace output files). Ops are R (read), W (write) and C (node-cache
// hit: a logical read the cache served without a device request).
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "ns,op,bytes"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d\n", int64(r.At), r.Op, r.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses records written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 && strings.HasPrefix(text, "ns,") {
			continue
		}
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(parts))
		}
		ns, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %w", line, err)
		}
		var op Op
		switch parts[1] {
		case "R":
			op = Read
		case "W":
			op = Write
		case "C":
			op = CacheHit
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, parts[1])
		}
		bytes, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %w", line, err)
		}
		out = append(out, Record{At: sim.Time(ns), Op: op, Bytes: bytes})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replay feeds raw records into a fresh tracer for offline analysis.
func Replay(records []Record) *Tracer {
	t := NewTracer(false)
	for _, r := range records {
		if r.Op == CacheHit {
			// One record per hit batch; page count is bytes/4KiB rounded
			// up so totals survive a round trip through CSV.
			pages := (r.Bytes + 4095) / 4096
			t.EmitCacheHit(r.At, pages, r.Bytes)
			continue
		}
		t.Emit(r.At, r.Op, r.Bytes)
	}
	return t
}
