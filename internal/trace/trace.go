// Package trace implements block-layer I/O tracing for the simulated storage
// device, playing the role bpftrace's block_rq_issue probe plays in the
// paper (Sec. III-A): for every request issued to the device it records the
// operation type and request size at issue time.
//
// Because a 30-second run at hundreds of MiB/s issues millions of requests,
// the tracer aggregates on the fly — per-second bandwidth buckets, a request
// size histogram, and running totals — and only retains raw records when
// explicitly asked to.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"svdbench/internal/sim"
)

// Op is a block-layer operation type.
type Op uint8

const (
	Read Op = iota
	Write
	// CacheHit is a logical read the node cache served without a device
	// request. It appears in the timeline and raw records so plots can show
	// total logical read traffic, but never in the request size histogram or
	// the read/write totals — it is not a block request.
	CacheHit
)

func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return "C"
	}
}

// Record is one block-layer request at issue time.
type Record struct {
	At    sim.Time
	Op    Op
	Bytes int
}

// Tracer collects block-layer request events. The zero value is a disabled
// tracer whose Emit is a no-op; create an active one with NewTracer.
// Tracers are used from simulation processes only and need no locking (the
// DES runs one process at a time).
type Tracer struct {
	enabled   bool
	keepRaw   bool
	records   []Record
	bucket    sim.Duration // bucket width for the bandwidth timeline
	readBkt   map[int64]int64
	writeBkt  map[int64]int64
	cacheBkt  map[int64]int64
	sizeHist  map[int]int64
	readOps   int64
	writeOps  int64
	readByte  int64
	writeByte int64
	cacheHits int64 // pages served by the node cache instead of the device
	cacheByte int64
	first     sim.Time
	last      sim.Time
	any       bool

	// Queue-depth and busy-overlap accounting. The device reports every
	// outstanding-request count change through NoteDepth and the CPU its
	// idle↔busy edges through SetCPUBusy; the tracer integrates both over
	// virtual time so Summarize can report mean/max queue depth and how much
	// of the run the device and the CPU were busy — separately and together
	// (the overlap a pipelined search exists to create).
	overlapAt   sim.Time
	depth       int
	depthInt    float64 // ∫ depth dt, in depth·nanoseconds
	maxDepth    int
	cpuBusy     bool
	devBusy     bool
	cpuBusyDur  sim.Duration
	devBusyDur  sim.Duration
	bothBusyDur sim.Duration
}

// NewTracer creates an active tracer with a per-second bandwidth timeline.
// If keepRaw is true, every raw record is retained as well.
func NewTracer(keepRaw bool) *Tracer {
	return &Tracer{
		enabled:  true,
		keepRaw:  keepRaw,
		bucket:   time.Second,
		readBkt:  make(map[int64]int64),
		writeBkt: make(map[int64]int64),
		cacheBkt: make(map[int64]int64),
		sizeHist: make(map[int]int64),
	}
}

// SetBucket changes the timeline bucket width (default one second). It must
// be called before any Emit.
func (t *Tracer) SetBucket(d sim.Duration) {
	if t.any {
		panic("trace: SetBucket after Emit")
	}
	t.bucket = d
}

// Emit records a block request at virtual time at.
func (t *Tracer) Emit(at sim.Time, op Op, bytes int) {
	if t == nil || !t.enabled {
		return
	}
	if !t.any || at < t.first {
		t.first = at
	}
	if at > t.last {
		t.last = at
	}
	t.any = true
	b := int64(at) / int64(t.bucket)
	switch op {
	case Read:
		t.readOps++
		t.readByte += int64(bytes)
		t.readBkt[b] += int64(bytes)
	case Write:
		t.writeOps++
		t.writeByte += int64(bytes)
		t.writeBkt[b] += int64(bytes)
	}
	t.sizeHist[bytes]++
	if t.keepRaw {
		t.records = append(t.records, Record{At: at, Op: op, Bytes: bytes})
	}
}

// EmitCacheHit records pages a node cache served instead of the device at
// virtual time at. Cache hits are logical reads, not block requests: they
// get their own timeline series (BucketPoint.CacheBytes) and raw-record op
// (CacheHit), but stay out of the request size histogram and the read/write
// totals so device-level statistics (Frac4KiB, IOPS) are unaffected.
func (t *Tracer) EmitCacheHit(at sim.Time, pages, bytes int) {
	if t == nil || !t.enabled {
		return
	}
	t.cacheHits += int64(pages)
	t.cacheByte += int64(bytes)
	if !t.any || at < t.first {
		t.first = at
	}
	if at > t.last {
		t.last = at
	}
	t.any = true
	t.cacheBkt[int64(at)/int64(t.bucket)] += int64(bytes)
	if t.keepRaw {
		t.records = append(t.records, Record{At: at, Op: CacheHit, Bytes: bytes})
	}
}

// advance integrates the current busy/depth state up to virtual time at.
func (t *Tracer) advance(at sim.Time) {
	if at <= t.overlapAt {
		return
	}
	dt := at.Sub(t.overlapAt)
	t.overlapAt = at
	t.depthInt += float64(t.depth) * float64(dt)
	if t.cpuBusy {
		t.cpuBusyDur += dt
	}
	if t.devBusy {
		t.devBusyDur += dt
	}
	if t.cpuBusy && t.devBusy {
		t.bothBusyDur += dt
	}
}

// NoteDepth records the device's outstanding-request count changing to depth
// at virtual time at. The device is considered busy whenever depth > 0.
func (t *Tracer) NoteDepth(at sim.Time, depth int) {
	if t == nil || !t.enabled {
		return
	}
	t.advance(at)
	t.depth = depth
	t.devBusy = depth > 0
	if depth > t.maxDepth {
		t.maxDepth = depth
	}
}

// SetCPUBusy records the CPU going busy or idle at virtual time at; wire it
// to sim.CPU.SetBusyNotify.
func (t *Tracer) SetCPUBusy(at sim.Time, busy bool) {
	if t == nil || !t.enabled {
		return
	}
	t.advance(at)
	t.cpuBusy = busy
}

// FinishAt closes the busy/depth integration at the end of a run. Call it
// once, after the simulation finishes and before Summarize, so the final
// idle tail (or a still-busy edge) is accounted.
func (t *Tracer) FinishAt(at sim.Time) {
	if t == nil || !t.enabled {
		return
	}
	t.advance(at)
}

// CacheTotals reports the node-cache pages and bytes absorbed so far.
func (t *Tracer) CacheTotals() (pages, bytes int64) {
	return t.cacheHits, t.cacheByte
}

// Totals reports aggregate operation counts and bytes.
func (t *Tracer) Totals() (readOps, writeOps, readBytes, writeBytes int64) {
	return t.readOps, t.writeOps, t.readByte, t.writeByte
}

// Records returns the raw records (only populated when keepRaw was set).
func (t *Tracer) Records() []Record { return t.records }

// BucketPoint is one interval of the bandwidth timeline. CacheBytes counts
// logical read bytes the node cache served in the interval — traffic that
// never reached the device but that a plot of total read demand must show.
type BucketPoint struct {
	Start      sim.Time
	ReadBytes  int64
	WriteBytes int64
	CacheBytes int64
}

// ReadMiBps returns the read bandwidth of the bucket in MiB/s given the
// bucket width.
func (p BucketPoint) ReadMiBps(width sim.Duration) float64 {
	return float64(p.ReadBytes) / (1 << 20) / width.Seconds()
}

// Timeline returns the bandwidth series ordered by time, including empty
// buckets between the first and last events so plots show gaps.
func (t *Tracer) Timeline() []BucketPoint {
	if !t.any {
		return nil
	}
	lo := int64(t.first) / int64(t.bucket)
	hi := int64(t.last) / int64(t.bucket)
	out := make([]BucketPoint, 0, hi-lo+1)
	for b := lo; b <= hi; b++ {
		out = append(out, BucketPoint{
			Start:      sim.Time(b * int64(t.bucket)),
			ReadBytes:  t.readBkt[b],
			WriteBytes: t.writeBkt[b],
			CacheBytes: t.cacheBkt[b],
		})
	}
	return out
}

// BucketWidth returns the timeline bucket width.
func (t *Tracer) BucketWidth() sim.Duration { return t.bucket }

// SizeBucket is one entry of the request size histogram.
type SizeBucket struct {
	Bytes int
	Count int64
}

// SizeHistogram returns request sizes sorted ascending.
func (t *Tracer) SizeHistogram() []SizeBucket {
	out := make([]SizeBucket, 0, len(t.sizeHist))
	for sz, n := range t.sizeHist { //annlint:allow mapiter -- unique Bytes keys; order restored by the sort below
		out = append(out, SizeBucket{Bytes: sz, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes < out[j].Bytes })
	return out
}

// FractionOfSize returns the fraction of all requests with exactly the given
// size — used to verify the paper's O-15 (>99.99 % of requests are 4 KiB).
func (t *Tracer) FractionOfSize(bytes int) float64 {
	total := t.readOps + t.writeOps
	if total == 0 {
		return 0
	}
	return float64(t.sizeHist[bytes]) / float64(total)
}

// Summary holds the derived statistics of a traced window.
type Summary struct {
	Window        sim.Duration
	ReadOps       int64
	WriteOps      int64
	ReadBytes     int64
	WriteBytes    int64
	ReadMiBps     float64
	WriteMiBps    float64
	ReadIOPS      float64
	Frac4KiB      float64
	MeanReadBytes float64
	// CacheHits and CacheBytes count pages (and their bytes) the node
	// cache served instead of the device; CacheHitRate is the byte
	// fraction of would-be reads the cache absorbed. All zero when no
	// cache was in play.
	CacheHits    int64
	CacheBytes   int64
	CacheHitRate float64
	// MeanQueueDepth and MaxQueueDepth describe the device's outstanding
	// request count over the window (time-weighted mean; NVMe queue depth).
	MeanQueueDepth float64
	MaxQueueDepth  int
	// DeviceBusyFrac, CPUBusyFrac and OverlapFrac are the fractions of the
	// window the device had requests outstanding, the CPU had a burst on a
	// core, and both at once. A synchronous beam search alternates the two
	// (overlap ≈ 0); a pipelined one overlaps them.
	DeviceBusyFrac float64
	CPUBusyFrac    float64
	OverlapFrac    float64
}

// Summarize computes throughput statistics over the given virtual window.
func (t *Tracer) Summarize(window sim.Duration) Summary {
	s := Summary{
		Window:     window,
		ReadOps:    t.readOps,
		WriteOps:   t.writeOps,
		ReadBytes:  t.readByte,
		WriteBytes: t.writeByte,
		Frac4KiB:   t.FractionOfSize(4096),
		CacheHits:  t.cacheHits,
		CacheBytes: t.cacheByte,
	}
	if t.cacheByte+t.readByte > 0 {
		s.CacheHitRate = float64(t.cacheByte) / float64(t.cacheByte+t.readByte)
	}
	s.MaxQueueDepth = t.maxDepth
	if window > 0 {
		secs := window.Seconds()
		s.ReadMiBps = float64(t.readByte) / (1 << 20) / secs
		s.WriteMiBps = float64(t.writeByte) / (1 << 20) / secs
		s.ReadIOPS = float64(t.readOps) / secs
		s.MeanQueueDepth = t.depthInt / float64(window)
		s.DeviceBusyFrac = float64(t.devBusyDur) / float64(window)
		s.CPUBusyFrac = float64(t.cpuBusyDur) / float64(window)
		s.OverlapFrac = float64(t.bothBusyDur) / float64(window)
	}
	if t.readOps > 0 {
		s.MeanReadBytes = float64(t.readByte) / float64(t.readOps)
	}
	return s
}

func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%v reads=%d (%.1f MiB/s, %.0f IOPS) writes=%d (%.1f MiB/s) 4KiB=%.4f%%",
		s.Window, s.ReadOps, s.ReadMiBps, s.ReadIOPS, s.WriteOps, s.WriteMiBps, 100*s.Frac4KiB)
	if s.CacheHits > 0 {
		fmt.Fprintf(&b, " cache=%d pages (%.1f%% hit)", s.CacheHits, 100*s.CacheHitRate)
	}
	return b.String()
}
