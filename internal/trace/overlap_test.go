package trace

import (
	"testing"
	"time"

	"svdbench/internal/sim"
)

// TestCacheHitsAppearInTimeline: pages absorbed by the node cache must show
// up in the bandwidth timeline's CacheBytes series alongside device reads —
// a plot of total read demand has to include traffic the cache served.
func TestCacheHitsAppearInTimeline(t *testing.T) {
	tr := NewTracer(false)
	tr.SetBucket(time.Millisecond)
	tr.Emit(0, Read, 4096)
	tr.EmitCacheHit(0, 2, 8192)
	tr.EmitCacheHit(sim.Time(time.Millisecond), 1, 4096)
	tl := tr.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline has %d buckets, want 2", len(tl))
	}
	if tl[0].ReadBytes != 4096 || tl[0].CacheBytes != 8192 {
		t.Errorf("bucket 0 = read %d cache %d, want 4096/8192", tl[0].ReadBytes, tl[0].CacheBytes)
	}
	if tl[1].ReadBytes != 0 || tl[1].CacheBytes != 4096 {
		t.Errorf("bucket 1 = read %d cache %d, want 0/4096", tl[1].ReadBytes, tl[1].CacheBytes)
	}
	pages, bytes := tr.CacheTotals()
	if pages != 3 || bytes != 12288 {
		t.Errorf("cache totals = (%d, %d), want (3, 12288)", pages, bytes)
	}
}

// TestCacheHitsAloneOpenTimeline: a trace consisting only of cache hits
// still has a timeline — the bug this guards against dropped EmitCacheHit
// from the first/last bookkeeping entirely.
func TestCacheHitsAloneOpenTimeline(t *testing.T) {
	tr := NewTracer(false)
	tr.SetBucket(time.Millisecond)
	tr.EmitCacheHit(sim.Time(3*time.Millisecond), 4, 16384)
	tl := tr.Timeline()
	if len(tl) != 1 || tl[0].CacheBytes != 16384 {
		t.Fatalf("cache-only timeline = %+v, want one 16 KiB bucket", tl)
	}
}

func TestCacheHitRecordsRetained(t *testing.T) {
	tr := NewTracer(true)
	tr.Emit(1, Read, 4096)
	tr.EmitCacheHit(2, 1, 4096)
	recs := tr.Records()
	if len(recs) != 2 || recs[1].Op != CacheHit || recs[1].At != 2 {
		t.Errorf("records = %+v, want trailing cache-hit at t=2", recs)
	}
	if CacheHit.String() != "C" {
		t.Errorf("CacheHit op string = %q, want C", CacheHit.String())
	}
}

// TestQueueDepthIntegration: NoteDepth edges integrate to the mean and max
// outstanding-request depth over the summary window.
func TestQueueDepthIntegration(t *testing.T) {
	tr := NewTracer(false)
	// Depth 2 for 250ms, 4 for 250ms, 0 for the remaining 500ms.
	tr.NoteDepth(0, 2)
	tr.NoteDepth(sim.Time(250*time.Millisecond), 4)
	tr.NoteDepth(sim.Time(500*time.Millisecond), 0)
	tr.FinishAt(sim.Time(time.Second))
	s := tr.Summarize(time.Second)
	if s.MaxQueueDepth != 4 {
		t.Errorf("max depth = %d, want 4", s.MaxQueueDepth)
	}
	want := 2*0.25 + 4*0.25
	if s.MeanQueueDepth < want-1e-9 || s.MeanQueueDepth > want+1e-9 {
		t.Errorf("mean depth = %v, want %v", s.MeanQueueDepth, want)
	}
	if s.DeviceBusyFrac < 0.5-1e-9 || s.DeviceBusyFrac > 0.5+1e-9 {
		t.Errorf("device busy frac = %v, want 0.5", s.DeviceBusyFrac)
	}
}

// TestCPUDeviceOverlap: the overlap fraction counts only intervals where the
// CPU and the device were busy simultaneously.
func TestCPUDeviceOverlap(t *testing.T) {
	tr := NewTracer(false)
	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	// Device busy [0, 600ms); CPU busy [400ms, 1000ms): overlap 200ms.
	tr.NoteDepth(0, 1)
	tr.SetCPUBusy(ms(400), true)
	tr.NoteDepth(ms(600), 0)
	tr.SetCPUBusy(ms(1000), false)
	tr.FinishAt(ms(1000))
	s := tr.Summarize(time.Second)
	check := func(name string, got, want float64) {
		if got < want-1e-9 || got > want+1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("DeviceBusyFrac", s.DeviceBusyFrac, 0.6)
	check("CPUBusyFrac", s.CPUBusyFrac, 0.6)
	check("OverlapFrac", s.OverlapFrac, 0.2)
}

// TestOverlapNilSafety: depth/busy hooks must be no-ops on a nil tracer, the
// shape they are wired through when tracing is disabled.
func TestOverlapNilSafety(t *testing.T) {
	var tr *Tracer
	tr.NoteDepth(0, 3)
	tr.SetCPUBusy(0, true)
	tr.FinishAt(sim.Time(time.Second))
	tr.EmitCacheHit(0, 1, 4096)
}
