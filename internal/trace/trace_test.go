package trace

import (
	"testing"
	"time"

	"svdbench/internal/sim"
)

func TestDisabledTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, Read, 4096) // nil receiver must not panic
	z := &Tracer{}
	z.Emit(0, Read, 4096)
	r, w, _, _ := z.Totals()
	if r != 0 || w != 0 {
		t.Error("disabled tracer recorded events")
	}
}

func TestTotalsAndHistogram(t *testing.T) {
	tr := NewTracer(false)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), Read, 4096)
	}
	tr.Emit(10, Read, 8192)
	tr.Emit(11, Write, 4096)
	r, w, rb, wb := tr.Totals()
	if r != 11 || w != 1 || rb != 10*4096+8192 || wb != 4096 {
		t.Errorf("totals = (%d,%d,%d,%d)", r, w, rb, wb)
	}
	h := tr.SizeHistogram()
	if len(h) != 2 || h[0].Bytes != 4096 || h[0].Count != 11 || h[1].Bytes != 8192 || h[1].Count != 1 {
		t.Errorf("histogram = %+v", h)
	}
	if f := tr.FractionOfSize(4096); f != 11.0/12.0 {
		t.Errorf("frac 4KiB = %v", f)
	}
}

func TestFractionOfSizeEmpty(t *testing.T) {
	tr := NewTracer(false)
	if tr.FractionOfSize(4096) != 0 {
		t.Error("empty tracer fraction must be 0")
	}
}

func TestTimelineBuckets(t *testing.T) {
	tr := NewTracer(false)
	sec := sim.Time(time.Second)
	tr.Emit(0, Read, 100)
	tr.Emit(sec/2, Read, 100)
	// Nothing in second 1.
	tr.Emit(2*sec+1, Read, 300)
	tl := tr.Timeline()
	if len(tl) != 3 {
		t.Fatalf("timeline length = %d, want 3 (gap bucket included)", len(tl))
	}
	if tl[0].ReadBytes != 200 || tl[1].ReadBytes != 0 || tl[2].ReadBytes != 300 {
		t.Errorf("bucket bytes = %d,%d,%d", tl[0].ReadBytes, tl[1].ReadBytes, tl[2].ReadBytes)
	}
	if tl[1].Start != sec {
		t.Errorf("bucket 1 start = %v", tl[1].Start)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tr := NewTracer(false)
	if tl := tr.Timeline(); tl != nil {
		t.Errorf("empty timeline = %v, want nil", tl)
	}
}

func TestSetBucket(t *testing.T) {
	tr := NewTracer(false)
	tr.SetBucket(100 * time.Millisecond)
	tr.Emit(sim.Time(50*time.Millisecond), Read, 10)
	tr.Emit(sim.Time(150*time.Millisecond), Read, 20)
	tl := tr.Timeline()
	if len(tl) != 2 || tl[0].ReadBytes != 10 || tl[1].ReadBytes != 20 {
		t.Errorf("custom buckets wrong: %+v", tl)
	}
}

func TestSetBucketAfterEmitPanics(t *testing.T) {
	tr := NewTracer(false)
	tr.Emit(0, Read, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on SetBucket after Emit")
		}
	}()
	tr.SetBucket(time.Millisecond)
}

func TestSummarize(t *testing.T) {
	tr := NewTracer(false)
	for i := 0; i < 1000; i++ {
		tr.Emit(sim.Time(i), Read, 4096)
	}
	s := tr.Summarize(time.Second)
	if s.ReadOps != 1000 || s.ReadIOPS != 1000 {
		t.Errorf("summary ops = %d iops = %v", s.ReadOps, s.ReadIOPS)
	}
	wantMiB := 1000 * 4096.0 / (1 << 20)
	if s.ReadMiBps < wantMiB*0.999 || s.ReadMiBps > wantMiB*1.001 {
		t.Errorf("MiB/s = %v, want %v", s.ReadMiBps, wantMiB)
	}
	if s.Frac4KiB != 1 {
		t.Errorf("frac = %v", s.Frac4KiB)
	}
	if s.MeanReadBytes != 4096 {
		t.Errorf("mean read bytes = %v", s.MeanReadBytes)
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}

func TestSummarizeZeroWindow(t *testing.T) {
	tr := NewTracer(false)
	s := tr.Summarize(0)
	if s.ReadMiBps != 0 || s.ReadIOPS != 0 {
		t.Error("zero window must give zero rates")
	}
}

func TestBucketPointReadMiBps(t *testing.T) {
	p := BucketPoint{ReadBytes: 1 << 20}
	if got := p.ReadMiBps(time.Second); got != 1 {
		t.Errorf("ReadMiBps = %v, want 1", got)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("op strings wrong")
	}
}

func TestKeepRawRetainsOrder(t *testing.T) {
	tr := NewTracer(true)
	tr.Emit(5, Write, 1)
	tr.Emit(7, Read, 2)
	recs := tr.Records()
	if len(recs) != 2 || recs[0].At != 5 || recs[1].At != 7 {
		t.Errorf("records = %+v", recs)
	}
}
