// Package binenc provides the little-endian binary encoding helpers shared
// by the index and collection persistence formats. Writers and readers
// capture the first error and turn subsequent calls into no-ops, so
// serialisation code reads linearly without per-field error checks.
package binenc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer encodes values to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) write(data []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(data)
}

// U64 writes an unsigned 64-bit value.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

// I64 writes a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I32 writes a signed 32-bit value.
func (w *Writer) I32(v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	w.write(buf[:])
}

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.I64(int64(len(b)))
	w.write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(vs []int32) {
	w.I64(int64(len(vs)))
	if w.err != nil {
		return
	}
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	w.write(buf)
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// F32s writes a length-prefixed []float32.
func (w *Writer) F32s(vs []float32) {
	w.I64(int64(len(vs)))
	if w.err != nil {
		return
	}
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	w.write(buf)
}

// Ints writes a length-prefixed []int (as 64-bit each).
func (w *Writer) Ints(vs []int) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// Reader decodes values written by Writer.
type Reader struct {
	r   *bufio.Reader
	err error
	// Limit bounds length prefixes to catch corrupt files (default 1<<31).
	Limit int64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<20), Limit: 1 << 31}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(buf []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, buf)
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	var buf [8]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// I32 reads a signed 32-bit value.
func (r *Reader) I32() int32 {
	var buf [4]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads and validates a length prefix.
func (r *Reader) length() int64 {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Limit {
		r.err = fmt.Errorf("binenc: invalid length %d", n)
		return 0
	}
	return n
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.length()
	if r.err != nil {
		return nil
	}
	buf := make([]byte, n)
	r.read(buf)
	if r.err != nil {
		return nil
	}
	return buf
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	buf := make([]byte, 4*n)
	r.read(buf)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// F32s reads a length-prefixed []float32.
func (r *Reader) F32s() []float32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	buf := make([]byte, 4*n)
	r.read(buf)
	if r.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	return out
}

// Magic writes/checks a fixed file signature.
func (w *Writer) Magic(m string) { w.write([]byte(m)) }

// Magic reads and verifies a fixed file signature.
func (r *Reader) Magic(m string) {
	buf := make([]byte, len(m))
	r.read(buf)
	if r.err == nil && string(buf) != m {
		r.err = fmt.Errorf("binenc: bad magic %q, want %q", buf, m)
	}
}

// MagicOneOf reads a fixed-length signature and returns whichever candidate
// it matches, failing otherwise — the versioned-format dispatch used by
// readers that accept more than one on-disk framing. All candidates must
// share one length.
func (r *Reader) MagicOneOf(ms ...string) string {
	if r.err != nil || len(ms) == 0 {
		return ""
	}
	buf := make([]byte, len(ms[0]))
	r.read(buf)
	if r.err != nil {
		return ""
	}
	for _, m := range ms {
		if string(buf) == m {
			return m
		}
	}
	r.err = fmt.Errorf("binenc: bad magic %q, want one of %q", buf, ms)
	return ""
}
