package binenc

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestRoundTripAllTypes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST01")
	w.U64(42)
	w.I64(-7)
	w.I32(-100000)
	w.Int(123456789)
	w.F64(3.25)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.I32s([]int32{-1, 0, 1})
	w.I64s([]int64{math.MaxInt64, math.MinInt64})
	w.F32s([]float32{1.5, -2.5})
	w.Ints([]int{9, 8, 7})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("TEST01")
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.I32(); got != -100000 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, []int32{-1, 0, 1}) {
		t.Errorf("I32s = %v", got)
	}
	if got := r.I64s(); !reflect.DeepEqual(got, []int64{math.MaxInt64, math.MinInt64}) {
		t.Errorf("I64s = %v", got)
	}
	if got := r.F32s(); !reflect.DeepEqual(got, []float32{1.5, -2.5}) {
		t.Errorf("F32s = %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{9, 8, 7}) {
		t.Errorf("Ints = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestEmptySlices(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I32s(nil)
	w.F32s([]float32{})
	w.Flush()
	r := NewReader(&buf)
	if got := r.I32s(); len(got) != 0 {
		t.Errorf("nil I32s = %v", got)
	}
	if got := r.F32s(); len(got) != 0 {
		t.Errorf("empty F32s = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("AAAA")
	w.Flush()
	r := NewReader(&buf)
	r.Magic("BBBB")
	if r.Err() == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedInput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F32s(make([]float32, 100))
	w.Flush()
	raw := buf.Bytes()[:50] // cut mid-payload
	r := NewReader(bytes.NewReader(raw))
	r.F32s()
	if r.Err() == nil {
		t.Error("truncated input accepted")
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(-5) // bogus negative length
	w.Flush()
	r := NewReader(&buf)
	r.Bytes()
	if r.Err() == nil {
		t.Error("negative length accepted")
	}

	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2)
	w2.I64(1 << 40) // absurd length
	w2.Flush()
	r2 := NewReader(&buf2)
	r2.Bytes()
	if r2.Err() == nil {
		t.Error("oversized length accepted")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U64() // EOF
	if r.Err() == nil {
		t.Fatal("no error at EOF")
	}
	first := r.Err()
	_ = r.I32s() // must stay a no-op
	if r.Err() != first {
		t.Error("error not sticky")
	}
}
