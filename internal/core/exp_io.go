package core

import (
	"fmt"
	"io"
)

// diskannPlateauThreads is the concurrency at which Milvus-DiskANN's
// throughput plateaus in the paper (Sec. IV-A: after 4 concurrent threads).
const diskannPlateauThreads = 4

// runFig5 traces Milvus-DiskANN read bandwidth over the run at three
// concurrency levels: 1, the plateau, and 256 (Sec. V-A).
func runFig5(b *Bench, w io.Writer) error {
	for _, dsName := range paperDatasets() {
		st, err := b.Stack(dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# %s — Milvus-DiskANN read bandwidth timeline (MiB/s per bucket)\n", dsName)
		for _, threads := range []int{1, diskannPlateauThreads, 256} {
			res := b.RunCell(st, st.Execs, RunConfig{Threads: threads, Timeline: true}, "fig5")
			fmt.Fprintf(w, "threads=%d mean=%.1f MiB/s: ", threads, res.Metrics.ReadMiBps)
			for _, p := range res.Timeline {
				fmt.Fprintf(w, "%.0f ", p.ReadMiBps(res.TimelineBucket))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig6 reports per-query average read bandwidth of Milvus-DiskANN at
// concurrency 1 and 256, plus the request-size observation O-15.
func runFig6(b *Bench, w io.Writer) error {
	tw := table(w, "dataset", "threads", "KiB/query", "read MiB/s", "QPS", "4KiB fraction")
	for _, dsName := range paperDatasets() {
		st, err := b.Stack(dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		for _, threads := range []int{1, 256} {
			res := b.RunCell(st, st.Execs, RunConfig{Threads: threads, Timeline: true}, "fig5")
			m := res.Metrics
			row(tw, dsName, threads,
				fmt.Sprintf("%.1f", m.KiBPerQuery()),
				fmt.Sprintf("%.1f", m.ReadMiBps),
				fmt.Sprintf("%.1f", m.QPS),
				fmt.Sprintf("%.5f", m.Frac4KiB))
		}
	}
	return tw.Flush()
}
