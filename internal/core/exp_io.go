package core

import (
	"context"
	"fmt"
	"io"
)

// diskannPlateauThreads is the concurrency at which Milvus-DiskANN's
// throughput plateaus in the paper (Sec. IV-A: after 4 concurrent threads).
const diskannPlateauThreads = 4

// fig56Grid runs the Fig. 5/6 timeline cells — every dataset at the three
// concurrency levels — as one scheduler fan-out. Both figures read from the
// same memoised cells, so whichever runs first pays for the grid.
func (b *Bench) fig56Grid(ctx context.Context) (map[string]map[int]RunOutput, error) {
	threadLevels := []int{1, diskannPlateauThreads, 256}
	type point struct {
		ds      string
		threads int
	}
	var pts []point
	for _, dsName := range paperDatasets() {
		for _, threads := range threadLevels {
			pts = append(pts, point{dsName, threads})
		}
	}
	outs := make([]RunOutput, len(pts))
	cells := make([]cell, len(pts))
	for i, p := range pts {
		i, p := i, p
		cells[i] = cell{
			key: fmt.Sprintf("%s/diskann-timeline/t=%d", p.ds, p.threads),
			run: func(ctx context.Context) error {
				st, err := b.StackContext(ctx, p.ds, milvusDiskANN())
				if err != nil {
					return err
				}
				res, err := b.RunCellContext(ctx, st, st.Execs, RunConfig{Threads: p.threads, Timeline: true}, "fig5")
				outs[i] = res
				return err
			},
		}
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return nil, err
	}
	res := map[string]map[int]RunOutput{}
	for i, p := range pts {
		if res[p.ds] == nil {
			res[p.ds] = map[int]RunOutput{}
		}
		res[p.ds][p.threads] = outs[i]
	}
	return res, nil
}

// runFig5 traces Milvus-DiskANN read bandwidth over the run at three
// concurrency levels: 1, the plateau, and 256 (Sec. V-A).
func runFig5(ctx context.Context, b *Bench, w io.Writer) error {
	grid, err := b.fig56Grid(ctx)
	if err != nil {
		return err
	}
	for _, dsName := range paperDatasets() {
		fmt.Fprintf(w, "# %s — Milvus-DiskANN read bandwidth timeline (MiB/s per bucket)\n", dsName)
		for _, threads := range []int{1, diskannPlateauThreads, 256} {
			res := grid[dsName][threads]
			fmt.Fprintf(w, "threads=%d mean=%.1f MiB/s: ", threads, res.Metrics.ReadMiBps)
			for _, p := range res.Timeline {
				fmt.Fprintf(w, "%.0f ", p.ReadMiBps(res.TimelineBucket))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig6 reports per-query average read bandwidth of Milvus-DiskANN at
// concurrency 1 and 256, plus the request-size observation O-15.
func runFig6(ctx context.Context, b *Bench, w io.Writer) error {
	grid, err := b.fig56Grid(ctx)
	if err != nil {
		return err
	}
	tw := table(w, "dataset", "threads", "KiB/query", "read MiB/s", "QPS", "4KiB fraction")
	for _, dsName := range paperDatasets() {
		for _, threads := range []int{1, 256} {
			m := grid[dsName][threads].Metrics
			row(tw, dsName, threads,
				fmt.Sprintf("%.1f", m.KiBPerQuery()),
				fmt.Sprintf("%.1f", m.ReadMiBps),
				fmt.Sprintf("%.1f", m.QPS),
				fmt.Sprintf("%.5f", m.Frac4KiB))
		}
	}
	return tw.Flush()
}
