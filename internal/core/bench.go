package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// Bench owns the shared state of a harness invocation: loaded datasets,
// built (engine, index) stacks, tuned parameters, recorded executions, and
// memoised run cells, so that every figure reuses the same artefacts exactly
// like the paper's scripts reuse the same built indexes.
type Bench struct {
	// Scale selects dataset sizes (see dataset.Scale).
	Scale dataset.Scale
	// CacheDir caches generated datasets on disk ("" disables).
	CacheDir string
	// Logf logs progress (nil silences).
	Logf func(format string, args ...interface{})
	// RunDefaults is applied to every cell (threads and sweep-specific
	// fields are overridden per cell).
	RunDefaults RunConfig

	mu       sync.Mutex
	datasets map[string]*dataset.Dataset
	stacks   map[string]*Stack
	prepared map[string]*prepared
	runCache map[string]RunOutput
}

// NewBench creates a bench at the given scale.
func NewBench(scale dataset.Scale, cacheDir string) *Bench {
	return &Bench{
		Scale:    scale,
		CacheDir: cacheDir,
		datasets: map[string]*dataset.Dataset{},
		stacks:   map[string]*Stack{},
		prepared: map[string]*prepared{},
		runCache: map[string]RunOutput{},
	}
}

func (b *Bench) logf(format string, args ...interface{}) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// Dataset loads (or generates and caches) a catalog dataset by paper name.
func (b *Bench) Dataset(name string) (*dataset.Dataset, error) {
	b.mu.Lock()
	if ds, ok := b.datasets[name]; ok {
		b.mu.Unlock()
		return ds, nil
	}
	b.mu.Unlock()
	spec, err := dataset.CatalogSpec(name, b.Scale)
	if err != nil {
		return nil, err
	}
	b.logf("dataset %s: loading (n=%d dim=%d)", name, spec.N, spec.Dim)
	start := time.Now()
	ds, err := dataset.LoadOrGenerate(b.CacheDir, spec)
	if err != nil {
		return nil, err
	}
	b.logf("dataset %s: ready in %v", name, time.Since(start).Round(time.Millisecond))
	b.mu.Lock()
	b.datasets[name] = ds
	b.mu.Unlock()
	return ds, nil
}

// Stack is one fully prepared (dataset, engine, index) configuration:
// built collection, tuned search parameters, achieved recall, and recorded
// executions at the tuned parameters.
type Stack struct {
	DatasetName string
	Dataset     *dataset.Dataset
	Setup       vdb.Setup
	Col         *vdb.Collection
	// Opts are the tuned search-time parameters (Table II).
	Opts index.SearchOptions
	// Recall is the achieved recall@10 at Opts over all queries.
	Recall float64
	// Execs are the recorded executions at Opts.
	Execs []vdb.QueryExec
	// BuildTime is the real (host) time index construction took.
	BuildTime time.Duration

	prep *prepared
}

// prepared is the engine-independent part of a stack — the built collection
// and its recorded executions. Engines whose traits produce an identical
// index structure (same kind, same segmentation) share one prepared entry:
// Qdrant and Weaviate both run one monolithic HNSW graph, so the expensive
// build and recording happen once, exactly as the paper shares index
// parameters across databases.
type prepared struct {
	col      *vdb.Collection
	dataset  *dataset.Dataset
	mu       sync.Mutex
	variants map[string][]vdb.QueryExec
	recalls  map[string]float64
}

// stackKey identifies a stack in the bench cache.
func stackKey(dsName string, setup vdb.Setup) string { return dsName + "/" + setup.Label() }

// colKey identifies the engine-independent collection structure.
func colKey(dsName string, setup vdb.Setup) string {
	return fmt.Sprintf("%s/%s/seg%d", dsName, setup.Index, setup.Engine.SegmentCapacity)
}

// Stack returns (building and tuning on first use) the prepared stack for a
// dataset name and setup. Segmented engines get their segment capacity
// rescaled to the bench's dataset scale so segment counts (and the O-14
// fan-out behaviour they cause) match the paper's proportions.
func (b *Bench) Stack(dsName string, setup vdb.Setup) (*Stack, error) {
	if setup.Engine.SegmentCapacity > 0 {
		setup.Engine.SegmentCapacity = dataset.SegmentCapacityFor(b.Scale)
	}
	// Per-query memory pressure models an in-memory index working set;
	// streaming posting-list scans (IVF_PQ) are exempt — the paper's
	// LanceDB OOM happened with HNSW only (Sec. IV-A).
	if setup.Index == vdb.IndexIVFPQ {
		setup.Engine.MemPerQuery, setup.Engine.MemBudget = 0, 0
	}
	key := stackKey(dsName, setup)
	b.mu.Lock()
	if s, ok := b.stacks[key]; ok {
		b.mu.Unlock()
		return s, nil
	}
	b.mu.Unlock()

	ds, err := b.Dataset(dsName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	prep, err := b.prepare(dsName, ds, setup)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)

	st := &Stack{
		DatasetName: dsName,
		Dataset:     ds,
		Setup:       setup,
		Col:         prep.col,
		BuildTime:   buildTime,
		prep:        prep,
	}
	if err := b.tune(st); err != nil {
		return nil, err
	}
	b.logf("stack %s: tuned %s, recording executions", key, describeOpts(setup.Index, st.Opts))
	st.Execs = st.ExecsFor(st.Opts)
	st.Recall = recallOfExecs(st.Execs, ds.GroundTruth)
	b.logf("stack %s: recall@10 = %.3f", key, st.Recall)

	b.mu.Lock()
	b.stacks[key] = st
	b.mu.Unlock()
	return st, nil
}

// prepare builds (or restores) the shared collection for a dataset and
// setup, memoised by structural key.
func (b *Bench) prepare(dsName string, ds *dataset.Dataset, setup vdb.Setup) (*prepared, error) {
	ck := colKey(dsName, setup)
	b.mu.Lock()
	if p, ok := b.prepared[ck]; ok {
		b.mu.Unlock()
		return p, nil
	}
	b.mu.Unlock()

	col, _ := b.loadCachedCollection(ck, ds, setup)
	if col == nil {
		b.logf("collection %s: building", ck)
		var err error
		col, err = vdb.NewCollection(ck, ds.Spec.Dim, ds.Spec.Metric, setup.Engine, setup.Index, vdb.DefaultBuildParams())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := col.BulkLoad(ds.Vectors, nil); err != nil {
			return nil, fmt.Errorf("collection %s: %w", ck, err)
		}
		b.logf("collection %s: built in %v", ck, time.Since(start).Round(time.Millisecond))
		b.saveCachedCollection(ck, ds, col)
	} else {
		b.logf("collection %s: loaded from cache", ck)
	}
	var nextPage int64
	col.AssignStorage(func(n int64) int64 { p := nextPage; nextPage += n; return p })
	p := &prepared{
		col:      col,
		dataset:  ds,
		variants: map[string][]vdb.QueryExec{},
		recalls:  map[string]float64{},
	}
	b.mu.Lock()
	b.prepared[ck] = p
	b.mu.Unlock()
	return p, nil
}

// PaperK is the result depth of every experiment (the paper evaluates
// recall@10 and k=10 searches).
const PaperK = 10

// stackCachePath returns the on-disk location of a persisted stack
// collection ("" when caching is disabled). The dataset's generation
// parameters participate so a generator change can never resurrect an index
// built over different data.
func (b *Bench) stackCachePath(key string, ds *dataset.Dataset) string {
	if b.CacheDir == "" {
		return ""
	}
	key = fmt.Sprintf("%s-n%d-s%d-c%d-sp%03d", key,
		ds.Spec.N, ds.Spec.Seed, ds.Spec.Clusters, int(ds.Spec.Spread*100))
	safe := make([]rune, 0, len(key))
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(b.CacheDir, "stacks", string(safe)+".col")
}

// loadCachedCollection restores a persisted stack collection, returning nil
// on any miss or mismatch (the stack is then rebuilt).
func (b *Bench) loadCachedCollection(key string, ds *dataset.Dataset, setup vdb.Setup) (*vdb.Collection, bool) {
	path := b.stackCachePath(key, ds)
	if path == "" {
		return nil, false
	}
	col, err := vdb.LoadCollection(path, ds.Vectors, setup.Engine, vdb.DefaultBuildParams())
	if err != nil {
		return nil, false
	}
	return col, true
}

// saveCachedCollection persists a freshly built collection, best-effort.
func (b *Bench) saveCachedCollection(key string, ds *dataset.Dataset, col *vdb.Collection) {
	path := b.stackCachePath(key, ds)
	if path == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		b.logf("stack %s: cache dir: %v", key, err)
		return
	}
	if err := col.Save(path); err != nil {
		b.logf("stack %s: cache save: %v", key, err)
	}
}

// recallOfExecs computes mean recall@10 of recorded executions.
func recallOfExecs(execs []vdb.QueryExec, gt [][]int32) float64 {
	ids := make([][]int32, len(execs))
	for i := range execs {
		ids[i] = execs[i].IDs
	}
	return dataset.MeanRecallAtK(ids, gt, PaperK)
}

// ExecsFor returns recorded executions at the given search options,
// memoised per option set (shared across engines with the same collection
// structure).
func (s *Stack) ExecsFor(opts index.SearchOptions) []vdb.QueryExec {
	p := s.prep
	key := fmt.Sprintf("np%d-ef%d-sl%d-bw%d", opts.NProbe, opts.EfSearch, opts.SearchList, opts.BeamWidth)
	p.mu.Lock()
	if e, ok := p.variants[key]; ok {
		p.mu.Unlock()
		return e
	}
	p.mu.Unlock()
	execs := p.col.RecordQueries(p.dataset.Queries, PaperK, opts)
	p.mu.Lock()
	p.variants[key] = execs
	p.mu.Unlock()
	return execs
}

// RecallFor computes achieved recall at non-default options, memoised.
func (s *Stack) RecallFor(opts index.SearchOptions) float64 {
	p := s.prep
	key := fmt.Sprintf("np%d-ef%d-sl%d-bw%d", opts.NProbe, opts.EfSearch, opts.SearchList, opts.BeamWidth)
	p.mu.Lock()
	if r, ok := p.recalls[key]; ok {
		p.mu.Unlock()
		return r
	}
	p.mu.Unlock()
	r := recallOfExecs(s.ExecsFor(opts), p.dataset.GroundTruth)
	p.mu.Lock()
	p.recalls[key] = r
	p.mu.Unlock()
	return r
}

// RunCell executes (memoised) one measurement cell for a stack.
func (b *Bench) RunCell(st *Stack, execs []vdb.QueryExec, cfg RunConfig, cellID string) RunOutput {
	cfg = b.mergeDefaults(cfg)
	key := fmt.Sprintf("%s/%s/t%d/d%v/mrc%d/%s", st.DatasetName, st.Setup.Label(), cfg.Threads, cfg.Duration, cfg.MaxReadConcurrent, cellID)
	b.mu.Lock()
	if out, ok := b.runCache[key]; ok {
		b.mu.Unlock()
		return out
	}
	b.mu.Unlock()
	out := Run(execs, st.Setup.Engine, cfg)
	b.mu.Lock()
	b.runCache[key] = out
	b.mu.Unlock()
	return out
}

func (b *Bench) mergeDefaults(cfg RunConfig) RunConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = b.RunDefaults.Duration
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = b.RunDefaults.Repetitions
	}
	if cfg.Cores <= 0 {
		cfg.Cores = b.RunDefaults.Cores
	}
	return cfg.Defaults()
}

// describeOpts renders the tuned parameter for logs and Table II.
func describeOpts(kind vdb.IndexKind, opts index.SearchOptions) string {
	switch kind {
	case vdb.IndexIVFFlat, vdb.IndexIVFPQ:
		return fmt.Sprintf("nprobe=%d", opts.NProbe)
	case vdb.IndexHNSW, vdb.IndexHNSWSQ:
		return fmt.Sprintf("efSearch=%d", opts.EfSearch)
	case vdb.IndexDiskANN:
		return fmt.Sprintf("search_list=%d beam_width=%d", opts.SearchList, opts.BeamWidth)
	default:
		return "?"
	}
}

// ThreadSweep is the paper's concurrency ladder for Figures 2–4.
var ThreadSweep = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SearchListSweep is the paper's Fig. 7–11 ladder.
var SearchListSweep = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// BeamWidthSweep is the paper's Fig. 12–15 ladder.
var BeamWidthSweep = []int{1, 2, 4, 8, 16, 32}

// sortedKeys is a small test helper.
func sortedKeys(m map[string][]vdb.QueryExec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
