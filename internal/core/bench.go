package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// Bench owns the shared state of a harness invocation: loaded datasets,
// built (engine, index) stacks, tuned parameters, recorded executions, and
// memoised run cells, so that every figure reuses the same artefacts exactly
// like the paper's scripts reuse the same built indexes.
//
// All Bench state is safe for concurrent use: experiment cells fan out
// across Scheduler workers, and every cache is a per-key singleflight — the
// first goroutine asking for a dataset, stack or run cell computes it while
// later askers block on that one computation instead of duplicating it.
type Bench struct {
	// Scale selects dataset sizes (see dataset.Scale).
	Scale dataset.Scale
	// CacheDir caches generated datasets on disk ("" disables).
	CacheDir string
	// Logf logs progress (nil silences).
	Logf func(format string, args ...interface{})
	// RunDefaults is applied to every cell (threads and sweep-specific
	// fields are overridden per cell).
	RunDefaults RunConfig
	// Workers bounds how many experiment cells execute concurrently on
	// host goroutines (0 = runtime.GOMAXPROCS). Results are byte-identical
	// at any worker count; see Scheduler.
	Workers int
	// OnProgress, when non-nil, receives one report per completed cell.
	OnProgress func(Progress)

	mu       sync.Mutex
	datasets map[string]*datasetEntry
	stacks   map[string]*stackEntry
	prepared map[string]*preparedEntry
	runCache map[string]*runEntry
}

// Singleflight cache entries: the map slot is created under b.mu, the value
// is computed exactly once under the entry's own sync.Once, and failed
// computations evict their slot so a cancelled run never poisons a later
// one.
type (
	datasetEntry struct {
		once sync.Once
		ds   *dataset.Dataset
		err  error
	}
	stackEntry struct {
		once sync.Once
		st   *Stack
		err  error
	}
	preparedEntry struct {
		once sync.Once
		p    *prepared
		err  error
	}
	runEntry struct {
		once sync.Once
		out  RunOutput
		err  error
	}
)

// NewBench creates a bench at the given scale.
func NewBench(scale dataset.Scale, cacheDir string) *Bench {
	return &Bench{
		Scale:    scale,
		CacheDir: cacheDir,
		datasets: map[string]*datasetEntry{},
		stacks:   map[string]*stackEntry{},
		prepared: map[string]*preparedEntry{},
		runCache: map[string]*runEntry{},
	}
}

// runGrid executes cells through a scheduler configured from the bench's
// Workers and OnProgress fields. Every experiment fans its measurement grid
// out through here.
func (b *Bench) runGrid(ctx context.Context, cells []cell) error {
	s := NewScheduler(b.Workers)
	s.OnProgress(b.OnProgress)
	return s.Run(ctx, cells)
}

func (b *Bench) logf(format string, args ...interface{}) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// Dataset loads (or generates and caches) a catalog dataset by paper name.
// It is the context-free wrapper over DatasetContext.
func (b *Bench) Dataset(name string) (*dataset.Dataset, error) {
	return b.DatasetContext(context.Background(), name)
}

// DatasetContext is Dataset with cancellation. Concurrent calls for the same
// name share one generation.
func (b *Bench) DatasetContext(ctx context.Context, name string) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	e, ok := b.datasets[name]
	if !ok {
		e = &datasetEntry{}
		b.datasets[name] = e
	}
	b.mu.Unlock()
	e.once.Do(func() { e.ds, e.err = b.loadDataset(ctx, name) })
	if e.err != nil {
		b.evictDataset(name, e)
	}
	return e.ds, e.err
}

func (b *Bench) evictDataset(name string, e *datasetEntry) {
	b.mu.Lock()
	if b.datasets[name] == e {
		delete(b.datasets, name)
	}
	b.mu.Unlock()
}

func (b *Bench) loadDataset(ctx context.Context, name string) (*dataset.Dataset, error) {
	spec, err := dataset.CatalogSpec(name, b.Scale)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.logf("dataset %s: loading (n=%d dim=%d)", name, spec.N, spec.Dim)
	start := time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	ds, err := dataset.LoadOrGenerate(b.CacheDir, spec)
	if err != nil {
		return nil, err
	}
	b.logf("dataset %s: ready in %v", name, time.Since(start).Round(time.Millisecond)) //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	return ds, nil
}

// Stack is one fully prepared (dataset, engine, index) configuration:
// built collection, tuned search parameters, achieved recall, and recorded
// executions at the tuned parameters.
type Stack struct {
	DatasetName string
	Dataset     *dataset.Dataset
	Setup       vdb.Setup
	Col         *vdb.Collection
	// Opts are the tuned search-time parameters (Table II).
	Opts index.SearchOptions
	// Recall is the achieved recall@10 at Opts over all queries.
	Recall float64
	// Execs are the recorded executions at Opts.
	Execs []vdb.QueryExec
	// BuildTime is the real (host) time index construction took.
	BuildTime time.Duration

	prep *prepared
}

// prepared is the engine-independent part of a stack — the built collection
// and its recorded executions. Engines whose traits produce an identical
// index structure (same kind, same segmentation) share one prepared entry:
// Qdrant and Weaviate both run one monolithic HNSW graph, so the expensive
// build and recording happen once, exactly as the paper shares index
// parameters across databases.
type prepared struct {
	col      *vdb.Collection
	dataset  *dataset.Dataset
	mu       sync.Mutex
	variants map[string]*execsEntry
}

// execsEntry singleflights the recording (and recall computation) of one
// search-option variant, so concurrent cells asking for the same options
// share one RecordQueries pass.
type execsEntry struct {
	once  sync.Once
	execs []vdb.QueryExec

	recallOnce sync.Once
	recall     float64
}

// stackKey identifies a stack in the bench cache.
func stackKey(dsName string, setup vdb.Setup) string { return dsName + "/" + setup.Label() }

// colKey identifies the engine-independent collection structure.
func colKey(dsName string, setup vdb.Setup) string {
	return fmt.Sprintf("%s/%s/seg%d", dsName, setup.Index, setup.Engine.SegmentCapacity)
}

// Stack returns (building and tuning on first use) the prepared stack for a
// dataset name and setup. It is the context-free wrapper over StackContext.
func (b *Bench) Stack(dsName string, setup vdb.Setup) (*Stack, error) {
	return b.StackContext(context.Background(), dsName, setup)
}

// StackContext is Stack with cancellation. Segmented engines get their
// segment capacity rescaled to the bench's dataset scale so segment counts
// (and the O-14 fan-out behaviour they cause) match the paper's
// proportions. Concurrent calls for the same (dataset, setup) share one
// build; calls for different setups build their stacks in parallel.
func (b *Bench) StackContext(ctx context.Context, dsName string, setup vdb.Setup) (*Stack, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if setup.Engine.SegmentCapacity > 0 {
		setup.Engine.SegmentCapacity = dataset.SegmentCapacityFor(b.Scale)
	}
	// Per-query memory pressure models an in-memory index working set;
	// streaming posting-list scans (IVF_PQ) are exempt — the paper's
	// LanceDB OOM happened with HNSW only (Sec. IV-A).
	if setup.Index == vdb.IndexIVFPQ {
		setup.Engine.MemPerQuery, setup.Engine.MemBudget = 0, 0
	}
	key := stackKey(dsName, setup)
	b.mu.Lock()
	e, ok := b.stacks[key]
	if !ok {
		e = &stackEntry{}
		b.stacks[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() { e.st, e.err = b.buildStack(ctx, key, dsName, setup) })
	if e.err != nil {
		b.mu.Lock()
		if b.stacks[key] == e {
			delete(b.stacks, key)
		}
		b.mu.Unlock()
	}
	return e.st, e.err
}

// buildStack is the singleflight body of StackContext.
func (b *Bench) buildStack(ctx context.Context, key, dsName string, setup vdb.Setup) (*Stack, error) {
	ds, err := b.DatasetContext(ctx, dsName)
	if err != nil {
		return nil, err
	}
	start := time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	prep, err := b.prepare(ctx, dsName, ds, setup)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start) //annlint:allow wallclock -- host-side progress timing, never enters the simulation

	st := &Stack{
		DatasetName: dsName,
		Dataset:     ds,
		Setup:       setup,
		Col:         prep.col,
		BuildTime:   buildTime,
		prep:        prep,
	}
	if err := b.tune(ctx, st); err != nil {
		return nil, err
	}
	b.logf("stack %s: tuned %s, recording executions", key, describeOpts(setup.Index, st.Opts))
	st.Execs = st.ExecsFor(st.Opts)
	st.Recall = recallOfExecs(st.Execs, ds.GroundTruth)
	b.logf("stack %s: recall@10 = %.3f", key, st.Recall)
	return st, nil
}

// prepare builds (or restores) the shared collection for a dataset and
// setup, singleflighted by structural key.
func (b *Bench) prepare(ctx context.Context, dsName string, ds *dataset.Dataset, setup vdb.Setup) (*prepared, error) {
	ck := colKey(dsName, setup)
	b.mu.Lock()
	e, ok := b.prepared[ck]
	if !ok {
		e = &preparedEntry{}
		b.prepared[ck] = e
	}
	b.mu.Unlock()
	e.once.Do(func() { e.p, e.err = b.buildPrepared(ctx, ck, ds, setup) })
	if e.err != nil {
		b.mu.Lock()
		if b.prepared[ck] == e {
			delete(b.prepared, ck)
		}
		b.mu.Unlock()
	}
	return e.p, e.err
}

// buildPrepared is the singleflight body of prepare.
func (b *Bench) buildPrepared(ctx context.Context, ck string, ds *dataset.Dataset, setup vdb.Setup) (*prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	col, _ := b.loadCachedCollection(ck, ds, setup)
	if col == nil {
		b.logf("collection %s: building", ck)
		var err error
		col, err = vdb.NewCollection(ck, ds.Spec.Dim, ds.Spec.Metric, setup.Engine, setup.Index, vdb.DefaultBuildParams())
		if err != nil {
			return nil, err
		}
		start := time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
		if err := col.BulkLoad(ds.Vectors, nil); err != nil {
			return nil, fmt.Errorf("collection %s: %w", ck, err)
		}
		b.logf("collection %s: built in %v", ck, time.Since(start).Round(time.Millisecond)) //annlint:allow wallclock -- host-side progress timing, never enters the simulation
		b.saveCachedCollection(ck, ds, col)
	} else {
		b.logf("collection %s: loaded from cache", ck)
	}
	var nextPage int64
	col.AssignStorage(func(n int64) int64 { p := nextPage; nextPage += n; return p })
	return &prepared{
		col:      col,
		dataset:  ds,
		variants: map[string]*execsEntry{},
	}, nil
}

// PaperK is the result depth of every experiment (the paper evaluates
// recall@10 and k=10 searches).
const PaperK = 10

// stackCachePath returns the on-disk location of a persisted stack
// collection ("" when caching is disabled). The dataset's generation
// parameters participate so a generator change can never resurrect an index
// built over different data.
func (b *Bench) stackCachePath(key string, ds *dataset.Dataset) string {
	if b.CacheDir == "" {
		return ""
	}
	key = fmt.Sprintf("%s-n%d-s%d-c%d-sp%03d", key,
		ds.Spec.N, ds.Spec.Seed, ds.Spec.Clusters, int(ds.Spec.Spread*100))
	safe := make([]rune, 0, len(key))
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(b.CacheDir, "stacks", string(safe)+".col")
}

// loadCachedCollection restores a persisted stack collection, returning nil
// on any miss or mismatch (the stack is then rebuilt).
func (b *Bench) loadCachedCollection(key string, ds *dataset.Dataset, setup vdb.Setup) (*vdb.Collection, bool) {
	path := b.stackCachePath(key, ds)
	if path == "" {
		return nil, false
	}
	col, err := vdb.LoadCollection(path, ds.Vectors, setup.Engine, vdb.DefaultBuildParams())
	if err != nil {
		return nil, false
	}
	return col, true
}

// saveCachedCollection persists a freshly built collection, best-effort.
func (b *Bench) saveCachedCollection(key string, ds *dataset.Dataset, col *vdb.Collection) {
	path := b.stackCachePath(key, ds)
	if path == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		b.logf("stack %s: cache dir: %v", key, err)
		return
	}
	if err := col.Save(path); err != nil {
		b.logf("stack %s: cache save: %v", key, err)
	}
}

// recallOfExecs computes mean recall@10 of recorded executions.
func recallOfExecs(execs []vdb.QueryExec, gt [][]int32) float64 {
	ids := make([][]int32, len(execs))
	for i := range execs {
		ids[i] = execs[i].IDs
	}
	return dataset.MeanRecallAtK(ids, gt, PaperK)
}

// variantEntry returns (creating on first use) the singleflight entry for
// one option set.
func (p *prepared) variantEntry(opts index.SearchOptions) *execsEntry {
	key := fmt.Sprintf("np%d-ef%d-sl%d-bw%d-nc%d-ncp%s-la%d-qc%d-ly%s",
		opts.NProbe, opts.EfSearch, opts.SearchList, opts.BeamWidth,
		opts.NodeCacheNodes, opts.NodeCachePolicy,
		opts.LookAhead, opts.QueryConcurrency, opts.Layout)
	p.mu.Lock()
	e, ok := p.variants[key]
	if !ok {
		e = &execsEntry{}
		p.variants[key] = e
	}
	p.mu.Unlock()
	return e
}

// ExecsFor returns recorded executions at the given search options,
// memoised per option set (shared across engines with the same collection
// structure). Concurrent calls for the same options share one recording.
func (s *Stack) ExecsFor(opts index.SearchOptions) []vdb.QueryExec {
	p := s.prep
	e := p.variantEntry(opts)
	e.once.Do(func() { e.execs = p.col.RecordQueries(p.dataset.Queries, PaperK, opts) })
	return e.execs
}

// RecallFor computes achieved recall at non-default options, memoised.
func (s *Stack) RecallFor(opts index.SearchOptions) float64 {
	p := s.prep
	e := p.variantEntry(opts)
	e.recallOnce.Do(func() { e.recall = recallOfExecs(s.ExecsFor(opts), p.dataset.GroundTruth) })
	return e.recall
}

// RunCell executes (memoised) one measurement cell for a stack. It is the
// context-free wrapper over RunCellContext.
func (b *Bench) RunCell(st *Stack, execs []vdb.QueryExec, cfg RunConfig, cellID string) RunOutput {
	out, _ := b.RunCellContext(context.Background(), st, execs, cfg, cellID)
	return out
}

// RunCellContext is RunCell with cancellation. Concurrent calls for the same
// cell key share one simulation.
func (b *Bench) RunCellContext(ctx context.Context, st *Stack, execs []vdb.QueryExec, cfg RunConfig, cellID string) (RunOutput, error) {
	if err := ctx.Err(); err != nil {
		return RunOutput{}, err
	}
	cfg = b.mergeDefaults(cfg)
	key := fmt.Sprintf("%s/%s/t%d/d%v/mrc%d/cr%t/%s", st.DatasetName, st.Setup.Label(), cfg.Threads, cfg.Duration, cfg.MaxReadConcurrent, cfg.CoalesceReads, cellID)
	b.mu.Lock()
	e, ok := b.runCache[key]
	if !ok {
		e = &runEntry{}
		b.runCache[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() { e.out, e.err = RunContext(ctx, execs, st.Setup.Engine, cfg) })
	if e.err != nil {
		b.mu.Lock()
		if b.runCache[key] == e {
			delete(b.runCache, key)
		}
		b.mu.Unlock()
	}
	return e.out, e.err
}

func (b *Bench) mergeDefaults(cfg RunConfig) RunConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = b.RunDefaults.Duration
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = b.RunDefaults.Repetitions
	}
	if cfg.Cores <= 0 {
		cfg.Cores = b.RunDefaults.Cores
	}
	return cfg.Defaults()
}

// describeOpts renders the tuned parameter for logs and Table II.
func describeOpts(kind vdb.IndexKind, opts index.SearchOptions) string {
	switch kind {
	case vdb.IndexIVFFlat, vdb.IndexIVFPQ:
		return fmt.Sprintf("nprobe=%d", opts.NProbe)
	case vdb.IndexHNSW, vdb.IndexHNSWSQ:
		return fmt.Sprintf("efSearch=%d", opts.EfSearch)
	case vdb.IndexDiskANN:
		return fmt.Sprintf("search_list=%d beam_width=%d", opts.SearchList, opts.BeamWidth)
	default:
		return "?"
	}
}

// ThreadSweep is the paper's concurrency ladder for Figures 2–4.
var ThreadSweep = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SearchListSweep is the paper's Fig. 7–11 ladder.
var SearchListSweep = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// BeamWidthSweep is the paper's Fig. 12–15 ladder.
var BeamWidthSweep = []int{1, 2, 4, 8, 16, 32}

// sortedKeys is a small test helper.
func sortedKeys(m map[string]*execsEntry) []string {
	out := make([]string, 0, len(m))
	for k := range m { //annlint:allow mapiter -- key order is restored by the sort below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
