package core

import (
	"context"
	"fmt"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// TargetRecall is the paper's tuning goal: recall@10 ≥ 0.9 (Sec. III-C).
const TargetRecall = 0.9

// tuneSampleQueries caps the query subset used during parameter tuning.
const tuneSampleQueries = 200

// tune determines the stack's search-time parameters following the paper's
// Table II procedure:
//
//   - IVF_FLAT: nlist = 4·√n (applied at build time), nprobe tuned to the
//     recall target.
//   - IVF_PQ (LanceDB): reuses the nprobe tuned for Milvus-IVF on the same
//     dataset; the achieved (lower) recall is reported, as in the paper's
//     parenthesised accuracy column.
//   - HNSW: efSearch tuned on Milvus and reused by Qdrant/Weaviate.
//   - HNSW_SQ (LanceDB): efSearch tuned separately (the paper's
//     "efSearch (LanceDB)" column) because quantisation costs accuracy.
//   - DiskANN: search_list fixed at its minimum (10) because it already
//     exceeds the target there (Tab. II), beam_width 4.
func (b *Bench) tune(ctx context.Context, st *Stack) error {
	switch st.Setup.Index {
	case vdb.IndexIVFFlat:
		np := b.tuneNProbe(st)
		st.Opts = index.SearchOptions{NProbe: np}
	case vdb.IndexIVFPQ:
		milvus, err := b.StackContext(ctx, st.DatasetName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexIVFFlat})
		if err != nil {
			return fmt.Errorf("tune %s: need milvus IVF params: %w", st.Setup.Label(), err)
		}
		st.Opts = index.SearchOptions{NProbe: milvus.Opts.NProbe}
	case vdb.IndexHNSW:
		if st.Setup.Engine.Name == "milvus" {
			st.Opts = index.SearchOptions{EfSearch: b.tuneEf(st)}
			return nil
		}
		milvus, err := b.StackContext(ctx, st.DatasetName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
		if err != nil {
			return fmt.Errorf("tune %s: need milvus HNSW params: %w", st.Setup.Label(), err)
		}
		st.Opts = index.SearchOptions{EfSearch: milvus.Opts.EfSearch}
	case vdb.IndexHNSWSQ:
		st.Opts = index.SearchOptions{EfSearch: b.tuneEf(st)}
	case vdb.IndexDiskANN:
		// The paper tunes search_list to the recall target and finds the
		// minimum value (10) already exceeds it (Tab. II); we follow the
		// same procedure with the same floor.
		L := tuneUp("search_list", 10, 512, func(v int) float64 {
			return tuneRecall(st, index.SearchOptions{SearchList: v, BeamWidth: 4})
		})
		st.Opts = index.SearchOptions{SearchList: L, BeamWidth: 4}
	default:
		return fmt.Errorf("tune: %w: unknown index kind %q", vdb.ErrBadParams, st.Setup.Index)
	}
	return nil
}

// tuneRecall measures recall@10 at the given options over the tuning sample.
func tuneRecall(st *Stack, opts index.SearchOptions) float64 {
	ds := st.Dataset
	n := ds.Queries.Len()
	if n > tuneSampleQueries {
		n = tuneSampleQueries
	}
	results := make([][]int32, n)
	for qi := 0; qi < n; qi++ {
		results[qi] = st.Col.Search(ds.Queries.Row(qi), PaperK, opts).IDs
	}
	return dataset.MeanRecallAtK(results, ds.GroundTruth[:n], PaperK)
}

// tuneNProbe finds the smallest nprobe reaching the recall target.
func (b *Bench) tuneNProbe(st *Stack) int {
	maxProbe := 1
	for _, seg := range st.Col.Segments() {
		type nlister interface{ NList() int }
		if nl, ok := seg.Index.(nlister); ok && nl.NList() > maxProbe {
			maxProbe = nl.NList()
		}
	}
	return tuneUp("nprobe", 1, maxProbe, func(v int) float64 {
		return tuneRecall(st, index.SearchOptions{NProbe: v})
	})
}

// tuneEf finds the smallest efSearch reaching the recall target.
func (b *Bench) tuneEf(st *Stack) int {
	return tuneUp("efSearch", PaperK, 4096, func(v int) float64 {
		return tuneRecall(st, index.SearchOptions{EfSearch: v})
	})
}

// tuneUp finds the minimal parameter value in [lo, hi] whose recall meets
// TargetRecall, by exponential probing followed by binary refinement.
// Recall is treated as monotone non-decreasing in the parameter (true for
// nprobe and efSearch up to noise). If even hi misses the target, hi is
// returned, mirroring the paper's LanceDB-IVF case where the target is
// unreachable and the achieved accuracy is simply reported.
func tuneUp(name string, lo, hi int, eval func(int) float64) int {
	return tuneUpTo(name, lo, hi, TargetRecall, eval)
}

// tuneUpTo is tuneUp against an arbitrary recall target, used when an
// experiment matches a previously-achieved recall instead of the paper's
// fixed 0.9 goal (e.g. the layout experiment's equal-recall comparison).
func tuneUpTo(name string, lo, hi int, target float64, eval func(int) float64) int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	// Exponential probe for the first passing value.
	pass := -1
	prev := lo - 1
	for v := lo; ; v *= 2 {
		if v > hi {
			v = hi
		}
		if eval(v) >= target {
			pass = v
			break
		}
		prev = v
		if v == hi {
			break
		}
	}
	if pass < 0 {
		return hi
	}
	// Binary refine in (prev, pass].
	loB, hiB := prev+1, pass
	for loB < hiB {
		mid := (loB + hiB) / 2
		if eval(mid) >= target {
			hiB = mid
		} else {
			loB = mid + 1
		}
	}
	_ = name
	return hiB
}
