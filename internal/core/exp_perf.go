package core

import (
	"fmt"
	"io"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/vdb"
)

// runTable1 reproduces the paper's Sec. III-A fio calibration of the raw
// device: peak 4 KiB random-read IOPS from one core, 4 KiB IOPS with 64
// concurrent requests on four cores, and 128 KiB sequential bandwidth with
// 32 threads. The paper's measured values were 324.3 KIOPS, 1.3 MIOPS and
// 7.2 GiB/s on the Samsung 990 Pro.
func runTable1(b *Bench, w io.Writer) error {
	type cell struct {
		name            string
		cores, jobs, sz int
		paper           string
	}
	cells := []cell{
		{"4KiB randread, 1 core, qd256", 1, 256, 4096, "324.3 KIOPS"},
		{"4KiB randread, 4 cores, qd64", 4, 64, 4096, "1.3 MIOPS"},
		{"128KiB seqread, 32 threads", 20, 32, 128 * 1024, "7.2 GiB/s"},
	}
	tw := table(w, "workload", "paper", "measured IOPS", "measured MiB/s")
	for _, c := range cells {
		iops, mibps := fioLike(c.cores, c.jobs, c.sz, 500*time.Millisecond)
		row(tw, c.name, c.paper, fmt.Sprintf("%.0f", iops), fmt.Sprintf("%.0f", mibps))
	}
	return tw.Flush()
}

// fioLike runs a closed-loop raw-device workload on a fresh simulated stack.
func fioLike(cores, jobs, reqBytes int, dur sim.Duration) (iops, mibps float64) {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, cores)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	deadline := sim.Time(dur)
	var ops int64
	for i := 0; i < jobs; i++ {
		k.Spawn("fio", func(e *sim.Env) {
			for e.Now() < deadline {
				dev.Read(e, 0, reqBytes)
				ops++
			}
		})
	}
	k.RunAll()
	secs := dur.Seconds()
	return float64(ops) / secs, float64(ops) * float64(reqBytes) / (1 << 20) / secs
}

// runTable2 reproduces Table II: per dataset, the tuned search-time
// parameter and achieved recall@10 of every index.
func runTable2(b *Bench, w io.Writer) error {
	tw := table(w, "dataset", "ivf nlist", "ivf nprobe", "ivf acc", "hnsw efSearch", "hnsw acc",
		"efSearch (lancedb)", "lancedb acc", "diskann search_list", "diskann acc")
	for _, dsName := range paperDatasets() {
		ivfStack, err := b.Stack(dsName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexIVFFlat})
		if err != nil {
			return err
		}
		hnswStack, err := b.Stack(dsName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
		if err != nil {
			return err
		}
		lanceStack, err := b.Stack(dsName, vdb.Setup{Engine: vdb.LanceDB(), Index: vdb.IndexHNSWSQ})
		if err != nil {
			return err
		}
		daStack, err := b.Stack(dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		// Also report LanceDB-IVF achieved accuracy (parenthesised in the
		// paper because the target is unreachable under PQ).
		lanceIVF, err := b.Stack(dsName, vdb.Setup{Engine: vdb.LanceDB(), Index: vdb.IndexIVFPQ})
		if err != nil {
			return err
		}
		nlist := 0
		for _, seg := range ivfStack.Col.Segments() {
			if nl, ok := seg.Index.(interface{ NList() int }); ok {
				nlist += nl.NList()
			}
		}
		row(tw, dsName,
			nlist,
			ivfStack.Opts.NProbe,
			fmt.Sprintf("%.2f (%.2f)", ivfStack.Recall, lanceIVF.Recall),
			hnswStack.Opts.EfSearch,
			fmt.Sprintf("%.2f", hnswStack.Recall),
			lanceStack.Opts.EfSearch,
			fmt.Sprintf("%.2f", lanceStack.Recall),
			daStack.Opts.SearchList,
			fmt.Sprintf("%.2f", daStack.Recall),
		)
	}
	return tw.Flush()
}

// sweepFig234 runs (or reuses) the shared Figure 2/3/4 thread sweep for one
// dataset and setup.
func (b *Bench) sweepFig234(dsName string, setup vdb.Setup) (map[int]Metrics, error) {
	st, err := b.Stack(dsName, setup)
	if err != nil {
		return nil, err
	}
	out := map[int]Metrics{}
	for _, threads := range ThreadSweep {
		res := b.RunCell(st, st.Execs, RunConfig{Threads: threads}, "fig234")
		out[threads] = res.Metrics
	}
	return out, nil
}

// runFig2 prints throughput (QPS) per setup per dataset across the thread
// ladder.
func runFig2(b *Bench, w io.Writer) error {
	for _, dsName := range paperDatasets() {
		fmt.Fprintf(w, "# %s — throughput (QPS), higher is better\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells, err := b.sweepFig234(dsName, setup)
			if err != nil {
				return err
			}
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				cols = append(cols, failLabel(cells[t]))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig3 prints P99 latency (µs).
func runFig3(b *Bench, w io.Writer) error {
	for _, dsName := range paperDatasets() {
		fmt.Fprintf(w, "# %s — P99 latency (µs), lower is better\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells, err := b.sweepFig234(dsName, setup)
			if err != nil {
				return err
			}
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				m := cells[t]
				if m.Served == 0 {
					cols = append(cols, "FAIL")
				} else {
					cols = append(cols, fmtDur(m.P99))
				}
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig4 prints global CPU utilisation (%) for the two large datasets, as
// in the paper.
func runFig4(b *Bench, w io.Writer) error {
	for _, dsName := range []string{"cohere-large", "openai-large"} {
		fmt.Fprintf(w, "# %s — global CPU usage (%%), 100 = all cores busy\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells, err := b.sweepFig234(dsName, setup)
			if err != nil {
				return err
			}
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				cols = append(cols, fmt.Sprintf("%.1f", 100*cells[t].CPUUtil))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func threadsHeader() []interface{} {
	out := make([]interface{}, len(ThreadSweep))
	for i, t := range ThreadSweep {
		out[i] = fmt.Sprintf("t=%d", t)
	}
	return out
}
