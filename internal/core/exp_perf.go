package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/vdb"
)

// runTable1 reproduces the paper's Sec. III-A fio calibration of the raw
// device: peak 4 KiB random-read IOPS from one core, 4 KiB IOPS with 64
// concurrent requests on four cores, and 128 KiB sequential bandwidth with
// 32 threads. The paper's measured values were 324.3 KIOPS, 1.3 MIOPS and
// 7.2 GiB/s on the Samsung 990 Pro.
func runTable1(ctx context.Context, b *Bench, w io.Writer) error {
	type cal struct {
		name            string
		cores, jobs, sz int
		paper           string
	}
	cals := []cal{
		{"4KiB randread, 1 core, qd256", 1, 256, 4096, "324.3 KIOPS"},
		{"4KiB randread, 4 cores, qd64", 4, 64, 4096, "1.3 MIOPS"},
		{"128KiB seqread, 32 threads", 20, 32, 128 * 1024, "7.2 GiB/s"},
	}
	type point struct{ iops, mibps float64 }
	results := make([]point, len(cals))
	cells := make([]cell, len(cals))
	for i, c := range cals {
		i, c := i, c
		cells[i] = cell{
			key: "table1/" + c.name,
			run: func(ctx context.Context) error {
				iops, mibps := fioLike(c.cores, c.jobs, c.sz, 500*time.Millisecond)
				results[i] = point{iops, mibps}
				return nil
			},
		}
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return err
	}
	tw := table(w, "workload", "paper", "measured IOPS", "measured MiB/s")
	for i, c := range cals {
		row(tw, c.name, c.paper, fmt.Sprintf("%.0f", results[i].iops), fmt.Sprintf("%.0f", results[i].mibps))
	}
	return tw.Flush()
}

// fioLike runs a closed-loop raw-device workload on a fresh simulated stack.
func fioLike(cores, jobs, reqBytes int, dur sim.Duration) (iops, mibps float64) {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, cores)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	deadline := sim.Time(dur)
	var ops int64
	for i := 0; i < jobs; i++ {
		k.Spawn("fio", func(e *sim.Env) {
			for e.Now() < deadline {
				dev.Read(e, 0, reqBytes)
				ops++
			}
		})
	}
	k.RunAll()
	secs := dur.Seconds()
	return float64(ops) / secs, float64(ops) * float64(reqBytes) / (1 << 20) / secs
}

// prefetchStacks builds the given (dataset, setup) stacks as one scheduler
// grid so independent index builds run on parallel host workers; results
// land in the bench cache for the sequential rendering pass that follows.
func (b *Bench) prefetchStacks(ctx context.Context, dsNames []string, setups []vdb.Setup) error {
	var cells []cell
	for _, dsName := range dsNames {
		for _, setup := range setups {
			dsName, setup := dsName, setup
			cells = append(cells, cell{
				key: "stack/" + dsName + "/" + setup.Label(),
				run: func(ctx context.Context) error {
					_, err := b.StackContext(ctx, dsName, setup)
					return err
				},
			})
		}
	}
	return b.runGrid(ctx, cells)
}

// runTable2 reproduces Table II: per dataset, the tuned search-time
// parameter and achieved recall@10 of every index.
func runTable2(ctx context.Context, b *Bench, w io.Writer) error {
	setups := []vdb.Setup{
		{Engine: vdb.Milvus(), Index: vdb.IndexIVFFlat},
		{Engine: vdb.Milvus(), Index: vdb.IndexHNSW},
		{Engine: vdb.LanceDB(), Index: vdb.IndexHNSWSQ},
		milvusDiskANN(),
		{Engine: vdb.LanceDB(), Index: vdb.IndexIVFPQ},
	}
	if err := b.prefetchStacks(ctx, paperDatasets(), setups); err != nil {
		return err
	}
	tw := table(w, "dataset", "ivf nlist", "ivf nprobe", "ivf acc", "hnsw efSearch", "hnsw acc",
		"efSearch (lancedb)", "lancedb acc", "diskann search_list", "diskann acc")
	for _, dsName := range paperDatasets() {
		ivfStack, err := b.StackContext(ctx, dsName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexIVFFlat})
		if err != nil {
			return err
		}
		hnswStack, err := b.StackContext(ctx, dsName, vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
		if err != nil {
			return err
		}
		lanceStack, err := b.StackContext(ctx, dsName, vdb.Setup{Engine: vdb.LanceDB(), Index: vdb.IndexHNSWSQ})
		if err != nil {
			return err
		}
		daStack, err := b.StackContext(ctx, dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		// Also report LanceDB-IVF achieved accuracy (parenthesised in the
		// paper because the target is unreachable under PQ).
		lanceIVF, err := b.StackContext(ctx, dsName, vdb.Setup{Engine: vdb.LanceDB(), Index: vdb.IndexIVFPQ})
		if err != nil {
			return err
		}
		nlist := 0
		for _, seg := range ivfStack.Col.Segments() {
			if nl, ok := seg.Index.(interface{ NList() int }); ok {
				nlist += nl.NList()
			}
		}
		row(tw, dsName,
			nlist,
			ivfStack.Opts.NProbe,
			fmt.Sprintf("%.2f (%.2f)", ivfStack.Recall, lanceIVF.Recall),
			hnswStack.Opts.EfSearch,
			fmt.Sprintf("%.2f", hnswStack.Recall),
			lanceStack.Opts.EfSearch,
			fmt.Sprintf("%.2f", lanceStack.Recall),
			daStack.Opts.SearchList,
			fmt.Sprintf("%.2f", daStack.Recall),
		)
	}
	return tw.Flush()
}

// fig234Sweeps runs the full Figures 2–4 measurement grid — every requested
// dataset × setup × thread count — as one scheduler fan-out, so stack builds
// and simulation cells overlap across host workers. Results come back keyed
// as dataset → setup label → threads; cells are memoised, so the three
// figures share one grid's work.
func (b *Bench) fig234Sweeps(ctx context.Context, dsNames []string, setups []vdb.Setup) (map[string]map[string]map[int]Metrics, error) {
	type point struct {
		ds      string
		setup   vdb.Setup
		threads int
	}
	var pts []point
	for _, dsName := range dsNames {
		for _, setup := range setups {
			for _, threads := range ThreadSweep {
				pts = append(pts, point{dsName, setup, threads})
			}
		}
	}
	outs := make([]RunOutput, len(pts))
	cells := make([]cell, len(pts))
	for i, p := range pts {
		i, p := i, p
		cells[i] = cell{
			key: fmt.Sprintf("%s/%s/t=%d", p.ds, p.setup.Label(), p.threads),
			run: func(ctx context.Context) error {
				st, err := b.StackContext(ctx, p.ds, p.setup)
				if err != nil {
					return err
				}
				out, err := b.RunCellContext(ctx, st, st.Execs, RunConfig{Threads: p.threads}, "fig234")
				outs[i] = out
				return err
			},
		}
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return nil, err
	}
	res := map[string]map[string]map[int]Metrics{}
	for i, p := range pts {
		byDS := res[p.ds]
		if byDS == nil {
			byDS = map[string]map[int]Metrics{}
			res[p.ds] = byDS
		}
		bySetup := byDS[p.setup.Label()]
		if bySetup == nil {
			bySetup = map[int]Metrics{}
			byDS[p.setup.Label()] = bySetup
		}
		bySetup[p.threads] = outs[i].Metrics
	}
	return res, nil
}

// runFig2 prints throughput (QPS) per setup per dataset across the thread
// ladder.
func runFig2(ctx context.Context, b *Bench, w io.Writer) error {
	sweeps, err := b.fig234Sweeps(ctx, paperDatasets(), setupsForFigure2())
	if err != nil {
		return err
	}
	for _, dsName := range paperDatasets() {
		fmt.Fprintf(w, "# %s — throughput (QPS), higher is better\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells := sweeps[dsName][setup.Label()]
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				cols = append(cols, failLabel(cells[t]))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig3 prints P99 latency (µs).
func runFig3(ctx context.Context, b *Bench, w io.Writer) error {
	sweeps, err := b.fig234Sweeps(ctx, paperDatasets(), setupsForFigure2())
	if err != nil {
		return err
	}
	for _, dsName := range paperDatasets() {
		fmt.Fprintf(w, "# %s — P99 latency (µs), lower is better\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells := sweeps[dsName][setup.Label()]
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				m := cells[t]
				if m.Served == 0 {
					cols = append(cols, "FAIL")
				} else {
					cols = append(cols, fmtDur(m.P99))
				}
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig4 prints global CPU utilisation (%) for the two large datasets, as
// in the paper.
func runFig4(ctx context.Context, b *Bench, w io.Writer) error {
	largeDatasets := []string{"cohere-large", "openai-large"}
	sweeps, err := b.fig234Sweeps(ctx, largeDatasets, setupsForFigure2())
	if err != nil {
		return err
	}
	for _, dsName := range largeDatasets {
		fmt.Fprintf(w, "# %s — global CPU usage (%%), 100 = all cores busy\n", dsName)
		tw := table(w, append([]interface{}{"setup"}, threadsHeader()...)...)
		for _, setup := range setupsForFigure2() {
			cells := sweeps[dsName][setup.Label()]
			cols := []interface{}{setup.Label()}
			for _, t := range ThreadSweep {
				cols = append(cols, fmt.Sprintf("%.1f", 100*cells[t].CPUUtil))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func threadsHeader() []interface{} {
	out := make([]interface{}, len(ThreadSweep))
	for i, t := range ThreadSweep {
		out[i] = fmt.Sprintf("t=%d", t)
	}
	return out
}
