package core

import (
	"testing"
	"time"
)

func TestNewRunConfig(t *testing.T) {
	cfg := NewRunConfig(WithThreads(256), WithRepetitions(5), WithCores(8), WithSeed(42))
	if cfg.Threads != 256 || cfg.Repetitions != 5 || cfg.Cores != 8 || cfg.Seed != 42 {
		t.Errorf("options not applied: %+v", cfg)
	}
	// Untouched fields pick up the standard defaults.
	if cfg.Duration != 2*time.Second {
		t.Errorf("Duration = %v, want the 2s default", cfg.Duration)
	}
}

func TestNewRunConfigDefaultsOnly(t *testing.T) {
	if got, want := NewRunConfig(), (RunConfig{}).Defaults(); got != want {
		t.Errorf("NewRunConfig() = %+v, want Defaults() %+v", got, want)
	}
}

func TestRunConfigWithIsCopy(t *testing.T) {
	base := NewRunConfig(WithThreads(4))
	mod := base.With(WithThreads(16), WithMaxReadConcurrent(256))
	if base.Threads != 4 {
		t.Errorf("receiver mutated: %+v", base)
	}
	if mod.Threads != 16 || mod.MaxReadConcurrent != 256 {
		t.Errorf("copy missing options: %+v", mod)
	}
}

func TestWithTimeline(t *testing.T) {
	cfg := NewRunConfig(WithTimeline(10 * time.Millisecond))
	if !cfg.Timeline || cfg.TimelineBucket != 10*time.Millisecond {
		t.Errorf("timeline option not applied: %+v", cfg)
	}
}

func TestLaterOptionsWin(t *testing.T) {
	cfg := NewRunConfig(WithThreads(1), WithThreads(64))
	if cfg.Threads != 64 {
		t.Errorf("Threads = %d, want the later option's 64", cfg.Threads)
	}
}
