package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/vdb"
)

func TestSchedulerRunsAllCells(t *testing.T) {
	const n = 100
	results := make([]int, n)
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = cell{
			key: fmt.Sprintf("cell-%d", i),
			run: func(ctx context.Context) error {
				results[i] = i * i
				return nil
			},
		}
	}
	if err := NewScheduler(4).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	for i, got := range results {
		if got != i*i {
			t.Errorf("slot %d = %d, want %d", i, got, i*i)
		}
	}
}

func TestSchedulerDefaultWorkers(t *testing.T) {
	if got, want := NewScheduler(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := NewScheduler(7).Workers(); got != 7 {
		t.Errorf("Workers() = %d, want 7", got)
	}
}

func TestSchedulerEmptyGrid(t *testing.T) {
	if err := NewScheduler(4).Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerErrorCancelsRemaining verifies the first cell error stops the
// grid: later cells never start, and the error comes back wrapped with the
// failing cell's key and matchable with errors.Is.
func TestSchedulerErrorCancelsRemaining(t *testing.T) {
	sentinel := errors.New("boom")
	var ran [5]bool
	cells := make([]cell, 5)
	for i := range cells {
		i := i
		cells[i] = cell{
			key: fmt.Sprintf("cell-%d", i),
			run: func(ctx context.Context) error {
				ran[i] = true
				if i == 1 {
					return sentinel
				}
				return nil
			},
		}
	}
	err := NewScheduler(1).Run(context.Background(), cells)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if want := "cell cell-1: boom"; err.Error() != want {
		t.Errorf("err = %q, want %q", err, want)
	}
	if !ran[0] || !ran[1] {
		t.Error("cells before the failure should have run")
	}
	for i := 2; i < 5; i++ {
		if ran[i] {
			t.Errorf("cell %d ran after the failure", i)
		}
	}
}

// TestSchedulerCancellationStopsWithinOneCell verifies a cancelled context
// stops the grid before the next cell starts.
func TestSchedulerCancellationStopsWithinOneCell(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran [5]bool
	cells := make([]cell, 5)
	for i := range cells {
		i := i
		cells[i] = cell{
			key: fmt.Sprintf("cell-%d", i),
			run: func(ctx context.Context) error {
				ran[i] = true
				if i == 1 {
					cancel()
				}
				return nil
			},
		}
	}
	err := NewScheduler(1).Run(ctx, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 2; i < 5; i++ {
		if ran[i] {
			t.Errorf("cell %d ran after cancellation", i)
		}
	}
}

func TestSchedulerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := NewScheduler(1).Run(ctx, []cell{{key: "x", run: func(context.Context) error { ran = true; return nil }}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("cell ran under a pre-cancelled context")
	}
}

func TestSchedulerProgressReports(t *testing.T) {
	const n = 10
	var reports []Progress
	cells := make([]cell, n)
	for i := range cells {
		cells[i] = cell{key: fmt.Sprintf("cell-%d", i), run: func(context.Context) error { return nil }}
	}
	s := NewScheduler(4)
	s.OnProgress(func(p Progress) { reports = append(reports, p) })
	if err := s.Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	for i, p := range reports {
		if p.Done != i+1 || p.Total != n {
			t.Errorf("report %d: Done/Total = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, n)
		}
		if p.Err != nil {
			t.Errorf("report %d: unexpected error %v", i, p.Err)
		}
	}
	if last := reports[n-1]; last.ETA != 0 {
		t.Errorf("final report ETA = %v, want 0", last.ETA)
	}
}

// TestSchedulerDeterministicMerge is the tentpole guarantee: a grid run with
// 8 workers renders byte-identical output to the same grid with 1 worker.
// Two independent benches (separate caches, separate singleflights) run the
// same experiments at different worker counts and must agree byte for byte.
func TestSchedulerDeterministicMerge(t *testing.T) {
	render := func(workers int) string {
		b := NewBench(dataset.ScaleTiny, "")
		b.RunDefaults = RunConfig{Duration: 50 * time.Millisecond, Repetitions: 2, Cores: 4}
		b.Workers = workers
		var buf bytes.Buffer
		for _, id := range []string{"table1", "extA"} {
			exp, err := ExperimentByID(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := exp.RunContext(context.Background(), b, &buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("8-worker output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestRunContextCancelled verifies the measurement primitive rejects a
// cancelled context without running.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, nil, vdb.Traits{}, RunConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunMatchesRunContext verifies the context-free wrapper and repeated
// parallel-repetition runs agree exactly (bit-identical aggregation).
func TestRunMatchesRunContext(t *testing.T) {
	b := NewBench(dataset.ScaleTiny, "")
	b.RunDefaults = RunConfig{Duration: 50 * time.Millisecond, Repetitions: 3, Cores: 4}
	st, err := b.Stack("cohere-small", milvusDiskANN())
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.mergeDefaults(RunConfig{Threads: 4})
	a := Run(st.Execs, st.Setup.Engine, cfg)
	c, err := RunContext(context.Background(), st.Execs, st.Setup.Engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != c.Metrics {
		t.Errorf("Run and RunContext disagree:\n%+v\n%+v", a.Metrics, c.Metrics)
	}
	// And a second run is bit-identical (determinism across invocations).
	d, err := RunContext(context.Background(), st.Execs, st.Setup.Engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics != d.Metrics {
		t.Errorf("repeat run disagrees:\n%+v\n%+v", c.Metrics, d.Metrics)
	}
}

// TestBenchGridConcurrentStacks drives runGrid through concurrent cells that
// all demand the same stacks, exercising the singleflight caches under the
// race detector.
func TestBenchGridConcurrentStacks(t *testing.T) {
	b := NewBench(dataset.ScaleTiny, "")
	b.RunDefaults = RunConfig{Duration: 30 * time.Millisecond, Repetitions: 1, Cores: 4}
	b.Workers = 8
	var builds int64
	cells := make([]cell, 16)
	for i := range cells {
		cells[i] = cell{
			key: fmt.Sprintf("cell-%d", i),
			run: func(ctx context.Context) error {
				st, err := b.StackContext(ctx, "cohere-small", milvusDiskANN())
				if err != nil {
					return err
				}
				if st == nil || len(st.Execs) == 0 {
					return errors.New("empty stack")
				}
				atomic.AddInt64(&builds, 1)
				return nil
			},
		}
	}
	if err := b.runGrid(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if builds != 16 {
		t.Errorf("ran %d cells, want 16", builds)
	}
}
