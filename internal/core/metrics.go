// Package core implements the paper's contribution: the characterisation
// framework. It drives recorded query executions through the simulated
// engines with closed-loop query threads (the VectorDBBench methodology of
// Sec. III-B), collects throughput, tail latency, CPU utilisation and I/O
// statistics, tunes index parameters to the paper's recall targets
// (Table II), and exposes one experiment per table and figure.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"svdbench/internal/sim"
)

// Percentile returns the p-quantile (0 < p ≤ 1) of the samples using the
// nearest-rank method the paper's tooling uses for P99. It returns 0 for an
// empty sample set.
func Percentile(samples []sim.Duration, p float64) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]sim.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// MeanDuration averages the samples.
func MeanDuration(samples []sim.Duration) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / sim.Duration(len(samples))
}

// MeanStd returns mean and population standard deviation of float values.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Metrics is the aggregate of one run (or the mean of several repetitions).
type Metrics struct {
	// QPS is completed queries per virtual second.
	QPS float64
	// QPSStd is the std-dev of QPS across repetitions.
	QPSStd float64
	// P50, P90 and P99 are latency percentiles; the paper reports P99.
	P50 sim.Duration
	P90 sim.Duration
	P99 sim.Duration
	// P99Std is the std-dev of P99 across repetitions.
	P99Std sim.Duration
	// MeanLatency is the average query latency.
	MeanLatency sim.Duration
	// CPUUtil is mean global CPU utilisation in [0,1] (the paper's Fig. 4
	// y-axis, where 1.0 means all cores fully busy).
	CPUUtil float64
	// ReadMiBps is the mean device read bandwidth during the run.
	ReadMiBps float64
	// WriteMiBps is the mean device write bandwidth.
	WriteMiBps float64
	// BytesPerQuery is read bytes divided by completed queries (the
	// paper's "per-query average bandwidth", Fig. 6/11/15).
	BytesPerQuery float64
	// Frac4KiB is the fraction of I/O requests of exactly 4 KiB (O-15).
	Frac4KiB float64
	// MeanReadBytes is the average read request size.
	MeanReadBytes float64
	// ReadOps counts device read requests issued during the run.
	ReadOps int64
	// CacheHits counts pages the node cache served instead of the device;
	// CacheHitRate is the byte fraction of would-be reads it absorbed.
	// Both stay zero when no node cache is configured.
	CacheHits    int64
	CacheHitRate float64
	// MeanQueueDepth and MaxQueueDepth describe the device's outstanding
	// request count over the run: the time-weighted mean and the peak.
	MeanQueueDepth float64
	MaxQueueDepth  int
	// DeviceBusyFrac, CPUBusyFrac and OverlapFrac are the fractions of the
	// measurement window the device had requests outstanding, the CPU had a
	// burst on a core, and both at once — the overlap a pipelined search
	// exists to create (≈0 for a synchronous beam search).
	DeviceBusyFrac float64
	CPUBusyFrac    float64
	OverlapFrac    float64
	// Served counts completed queries; Failed counts rejected ones
	// (e.g. out of memory).
	Served int64
	Failed int64
}

// KiBPerQuery converts BytesPerQuery to KiB for reporting.
func (m Metrics) KiBPerQuery() float64 { return m.BytesPerQuery / 1024 }

func (m Metrics) String() string {
	s := fmt.Sprintf("qps=%.1f±%.1f p99=%v cpu=%.1f%% read=%.1fMiB/s perQ=%.1fKiB served=%d failed=%d",
		m.QPS, m.QPSStd, m.P99, 100*m.CPUUtil, m.ReadMiBps, m.KiBPerQuery(), m.Served, m.Failed)
	if m.CacheHits > 0 {
		s += fmt.Sprintf(" cache=%.1f%%", 100*m.CacheHitRate)
	}
	return s
}

// AggregateRuns folds repetition metrics into one Metrics with mean and
// standard deviation for QPS and P99 (the paper reports mean ± std over five
// repetitions).
func AggregateRuns(reps []Metrics) Metrics {
	if len(reps) == 0 {
		return Metrics{}
	}
	qps := make([]float64, len(reps))
	p99 := make([]float64, len(reps))
	var out Metrics
	for i, r := range reps {
		qps[i] = r.QPS
		p99[i] = float64(r.P99)
		out.P50 += r.P50 / sim.Duration(len(reps))
		out.P90 += r.P90 / sim.Duration(len(reps))
		out.MeanLatency += r.MeanLatency / sim.Duration(len(reps))
		out.CPUUtil += r.CPUUtil / float64(len(reps))
		out.ReadMiBps += r.ReadMiBps / float64(len(reps))
		out.WriteMiBps += r.WriteMiBps / float64(len(reps))
		out.BytesPerQuery += r.BytesPerQuery / float64(len(reps))
		out.Frac4KiB += r.Frac4KiB / float64(len(reps))
		out.MeanReadBytes += r.MeanReadBytes / float64(len(reps))
		out.CacheHitRate += r.CacheHitRate / float64(len(reps))
		out.MeanQueueDepth += r.MeanQueueDepth / float64(len(reps))
		out.DeviceBusyFrac += r.DeviceBusyFrac / float64(len(reps))
		out.CPUBusyFrac += r.CPUBusyFrac / float64(len(reps))
		out.OverlapFrac += r.OverlapFrac / float64(len(reps))
		if r.MaxQueueDepth > out.MaxQueueDepth {
			out.MaxQueueDepth = r.MaxQueueDepth
		}
		out.ReadOps += r.ReadOps
		out.CacheHits += r.CacheHits
		out.Served += r.Served
		out.Failed += r.Failed
	}
	m, s := MeanStd(qps)
	out.QPS, out.QPSStd = m, s
	m, s = MeanStd(p99)
	out.P99, out.P99Std = sim.Duration(m), sim.Duration(s)
	return out
}

// fmtDur renders a duration in microseconds for tabular output, matching the
// paper's latency axes.
func fmtDur(d sim.Duration) string {
	return fmt.Sprintf("%.0f", float64(d)/float64(time.Microsecond))
}
