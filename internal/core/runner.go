package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/trace"
	"svdbench/internal/vdb"
)

// RunConfig controls one closed-loop measurement, mirroring the paper's
// methodology (Sec. III-B): N query threads, each with one in-flight query,
// cycling through the recorded query set for a fixed duration, page cache
// dropped before each run, repeated with mean ± std reported.
//
// RunConfig is the stable wire form of a measurement: a plain struct whose
// zero fields mean "use the standard defaults" (see Defaults). The
// functional options in options.go (WithThreads, WithRepetitions, ...) are
// the ergonomic layer over it; both construct the same values.
type RunConfig struct {
	// Threads is the closed-loop concurrency (the paper sweeps 1..256).
	Threads int
	// Duration is the virtual measurement window (the paper uses 30 s of
	// wall time; the simulation default is 2 s of virtual time, which
	// yields the same steady-state rates).
	Duration sim.Duration
	// Repetitions is the number of runs aggregated (paper: 5).
	Repetitions int
	// Cores is the simulated CPU core count (paper testbed: 20).
	Cores int
	// Timeline enables fine-grained bandwidth buckets for Fig. 5.
	Timeline bool
	// TimelineBucket overrides the bucket width (default Duration/30).
	TimelineBucket sim.Duration
	// Seed perturbs per-repetition thread start offsets so repetitions
	// differ slightly, as real runs do.
	Seed int64
	// MaxReadConcurrent overrides the engine's segment-worker cap (for
	// the Fig. 12–15 beam-width experiments).
	MaxReadConcurrent int
	// BeamWidth is recorded for reporting only (the recorded executions
	// already embody it).
	BeamWidth int
	// CoalesceReads routes the engine's device reads through an ssd.Batcher:
	// requests outstanding across concurrent queries at the same instant are
	// submitted in shared batches of up to the device queue depth, paying
	// SubmitCPU once per batch plus BatchSubmitCPU per extra request. Service
	// order is unchanged, so the same bytes are read either way.
	CoalesceReads bool
	// LookAhead is recorded for reporting only (the recorded executions
	// already embody the prefetch schedule).
	LookAhead int
}

// Defaults fills zero fields with the standard experiment configuration.
func (c RunConfig) Defaults() RunConfig {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.Cores <= 0 {
		c.Cores = 20
	}
	return c
}

// RunOutput bundles the aggregate metrics with the traced timeline of the
// last repetition.
type RunOutput struct {
	Metrics  Metrics
	Timeline []trace.BucketPoint
	// TimelineBucket is the bucket width the timeline was recorded at.
	TimelineBucket sim.Duration
}

// Run executes the closed-loop workload against a fresh simulated stack
// (kernel, CPU, SSD, engine) per repetition and returns aggregated metrics.
// The recorded executions in execs are replayed round-robin across threads,
// restarting from the first query when exhausted, exactly like the paper's
// 1,000-query loop. Run is the context-free wrapper over RunContext; it can
// never be cancelled and therefore never fails.
func Run(execs []vdb.QueryExec, traits vdb.Traits, cfg RunConfig) RunOutput {
	out, _ := RunContext(context.Background(), execs, traits, cfg)
	return out
}

// RunContext is Run with cancellation: a cancelled ctx stops the measurement
// between repetitions and returns ctx's error with a zero RunOutput.
//
// Repetitions fan out across host goroutines (bounded by the repetition
// count and runtime.GOMAXPROCS): every repetition owns a fresh simulated
// stack and a private result slot indexed by repetition number, so the
// aggregate — and the reported timeline, taken from the last repetition — is
// bit-identical to a sequential run regardless of host scheduling.
func RunContext(ctx context.Context, execs []vdb.QueryExec, traits vdb.Traits, cfg RunConfig) (RunOutput, error) {
	if err := ctx.Err(); err != nil {
		return RunOutput{}, err
	}
	cfg = cfg.Defaults()
	bucket := cfg.TimelineBucket
	if bucket <= 0 {
		bucket = cfg.Duration / 30
		if bucket <= 0 {
			bucket = time.Millisecond
		}
	}
	nrep := cfg.Repetitions
	reps := make([]Metrics, nrep)
	timelines := make([][]trace.BucketPoint, nrep)
	workers := runtime.GOMAXPROCS(0)
	if workers > nrep {
		workers = nrep
	}
	var (
		next int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rep := int(atomic.AddInt64(&next, 1)) - 1
				if rep >= nrep || ctx.Err() != nil {
					return
				}
				reps[rep], timelines[rep] = runOnce(execs, traits, cfg, int64(rep)+cfg.Seed, bucket)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return RunOutput{}, err
	}
	return RunOutput{Metrics: AggregateRuns(reps), Timeline: timelines[nrep-1], TimelineBucket: bucket}, nil
}

// runOnce is a single repetition: fresh virtual hardware, drop-caches
// equivalent (everything starts cold), closed loop until the horizon.
func runOnce(execs []vdb.QueryExec, traits vdb.Traits, cfg RunConfig, seed int64, bucket sim.Duration) (Metrics, []trace.BucketPoint) {
	// A positive MaxReadConcurrent raises (or lowers) the engine's
	// segment-task pool for this run — the paper adjusts Milvus's
	// maxReadConcurrentRatio this way for the beam-width experiments.
	if traits.IntraQueryParallel && cfg.MaxReadConcurrent > 0 {
		traits.MaxReadConcurrent = cfg.MaxReadConcurrent
	}
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, cfg.Cores)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	tr := trace.NewTracer(false)
	tr.SetBucket(bucket)
	dev.Attach(tr)
	cpu.SetBusyNotify(tr.SetCPUBusy)
	eng := vdb.NewEngine(k, cpu, dev, traits)
	if cfg.CoalesceReads {
		eng.SetBatcher(ssd.NewBatcher(dev))
	}

	deadline := sim.Time(cfg.Duration)
	var latencies []sim.Duration
	var served, failed int64
	next := 0 // shared round-robin cursor over the query set

	for t := 0; t < cfg.Threads; t++ {
		t := t
		k.Spawn("query-thread", func(e *sim.Env) {
			// Small deterministic start skew so repetitions differ and
			// threads do not tick in lockstep.
			skew := time.Duration((int64(t)*7919+seed*104729)%997) * time.Microsecond / 10
			e.Sleep(skew)
			for e.Now() < deadline {
				qe := &execs[next]
				next++
				if next == len(execs) {
					next = 0
				}
				start := e.Now()
				err := eng.RunQuery(e, qe)
				end := e.Now()
				if err != nil {
					failed++
					// Back off like a crashing client loop would.
					e.Sleep(time.Millisecond)
					continue
				}
				if end <= deadline {
					served++
					latencies = append(latencies, end.Sub(start))
				}
			}
		})
	}
	busyStart := cpu.BusyTime()
	endTime := k.RunAll() // lets in-flight queries drain past the horizon
	tr.FinishAt(endTime)  // close the queue-depth/overlap integration
	busyEnd := cpu.BusyTime()
	window := cfg.Duration
	if d := endTime.Sub(0); d > window {
		window = d
	}
	util := sim.Utilization(busyStart, busyEnd, window, cfg.Cores)
	if util > 1 {
		util = 1
	}

	m := Metrics{
		P50:         Percentile(latencies, 0.50),
		P90:         Percentile(latencies, 0.90),
		P99:         Percentile(latencies, 0.99),
		MeanLatency: MeanDuration(latencies),
		CPUUtil:     util,
		Served:      served,
		Failed:      failed,
	}
	if cfg.Duration > 0 {
		m.QPS = float64(served) / cfg.Duration.Seconds()
	}
	sum := tr.Summarize(cfg.Duration)
	m.ReadMiBps = sum.ReadMiBps
	m.WriteMiBps = sum.WriteMiBps
	m.Frac4KiB = sum.Frac4KiB
	m.MeanReadBytes = sum.MeanReadBytes
	m.ReadOps = sum.ReadOps
	m.CacheHits = sum.CacheHits
	m.CacheHitRate = sum.CacheHitRate
	m.MeanQueueDepth = sum.MeanQueueDepth
	m.MaxQueueDepth = sum.MaxQueueDepth
	m.DeviceBusyFrac = sum.DeviceBusyFrac
	m.CPUBusyFrac = sum.CPUBusyFrac
	m.OverlapFrac = sum.OverlapFrac
	if served > 0 {
		m.BytesPerQuery = float64(sum.ReadBytes) / float64(served)
	}
	var tl []trace.BucketPoint
	if cfg.Timeline {
		tl = tr.Timeline()
	}
	return m, tl
}
