package core

import (
	"testing"
	"time"

	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// syntheticExecs builds n pure-CPU query executions of the given cost.
func syntheticExecs(n int, cpu time.Duration, pages int) []vdb.QueryExec {
	execs := make([]vdb.QueryExec, n)
	for i := range execs {
		step := index.Step{CPU: cpu}
		for p := 0; p < pages; p++ {
			step.Pages = append(step.Pages, int64(p))
		}
		execs[i] = vdb.QueryExec{Segments: [][]index.Step{{step}}}
	}
	return execs
}

func fastCfg(threads int) RunConfig {
	return RunConfig{Threads: threads, Duration: 200 * time.Millisecond, Repetitions: 2, Cores: 20}
}

func plainTraits() vdb.Traits {
	return vdb.Traits{Name: "plain", PerQueryCPU: 10 * time.Microsecond}
}

func TestRunProducesThroughput(t *testing.T) {
	execs := syntheticExecs(100, time.Millisecond, 0)
	out := Run(execs, plainTraits(), fastCfg(1))
	m := out.Metrics
	if m.Served == 0 || m.QPS <= 0 {
		t.Fatalf("no throughput: %+v", m)
	}
	// One thread, ~1.01 ms per query → ≈990 QPS.
	if m.QPS < 800 || m.QPS > 1100 {
		t.Errorf("QPS = %.0f, want ≈990", m.QPS)
	}
	if m.P99 < time.Millisecond {
		t.Errorf("P99 = %v below service time", m.P99)
	}
}

func TestRunScalesWithThreads(t *testing.T) {
	execs := syntheticExecs(100, time.Millisecond, 0)
	one := Run(execs, plainTraits(), fastCfg(1)).Metrics.QPS
	eight := Run(execs, plainTraits(), fastCfg(8)).Metrics.QPS
	if eight < 6*one {
		t.Errorf("8 threads gave %.0f QPS vs %.0f at 1 (poor scaling)", eight, one)
	}
}

func TestRunSaturatesAtCores(t *testing.T) {
	execs := syntheticExecs(100, time.Millisecond, 0)
	cfg := fastCfg(64) // 64 threads on 20 cores
	m := Run(execs, plainTraits(), cfg).Metrics
	// Max ≈ 20 cores / 1.01ms ≈ 19.8k QPS.
	if m.QPS > 21000 {
		t.Errorf("QPS %.0f exceeds core capacity", m.QPS)
	}
	if m.CPUUtil < 0.9 {
		t.Errorf("CPU util %.2f, want saturated", m.CPUUtil)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	execs := syntheticExecs(50, 500*time.Microsecond, 2)
	a := Run(execs, plainTraits(), fastCfg(4))
	b := Run(execs, plainTraits(), fastCfg(4))
	if a.Metrics.QPS != b.Metrics.QPS || a.Metrics.P99 != b.Metrics.P99 {
		t.Errorf("same config diverged: %v vs %v", a.Metrics, b.Metrics)
	}
}

func TestRunRecordsIO(t *testing.T) {
	execs := syntheticExecs(50, 100*time.Microsecond, 4)
	m := Run(execs, plainTraits(), fastCfg(4)).Metrics
	if m.ReadMiBps <= 0 {
		t.Error("no read bandwidth for I/O workload")
	}
	if m.Frac4KiB != 1 {
		t.Errorf("4KiB fraction = %v, want 1 (page reads only)", m.Frac4KiB)
	}
	wantBytes := 4 * 4096.0
	if m.BytesPerQuery < wantBytes*0.99 || m.BytesPerQuery > wantBytes*1.01 {
		t.Errorf("bytes/query = %v, want %v", m.BytesPerQuery, wantBytes)
	}
}

func TestRunIdleWakeSuperlinearity(t *testing.T) {
	tr := plainTraits()
	tr.IdleWake = 2 * time.Millisecond
	execs := syntheticExecs(100, 100*time.Microsecond, 0)
	one := Run(execs, tr, fastCfg(1)).Metrics.QPS
	sixteen := Run(execs, tr, fastCfg(16)).Metrics.QPS
	// With every 1-thread query paying the wake penalty, 16 threads must
	// scale superlinearly (O-4's mechanism).
	if sixteen < 20*one {
		t.Errorf("scaling %0.1f× not superlinear (1→16 threads: %.0f → %.0f)", sixteen/one, one, sixteen)
	}
}

func TestRunOOMCountsFailures(t *testing.T) {
	tr := plainTraits()
	tr.MemPerQuery = 1 << 30
	tr.MemBudget = 4 << 30
	execs := syntheticExecs(20, 5*time.Millisecond, 0)
	m := Run(execs, tr, fastCfg(16)).Metrics
	if m.Failed == 0 {
		t.Error("no OOM failures at 16 threads with 4-query budget")
	}
	if m.Served == 0 {
		t.Error("all queries failed; some should fit the budget")
	}
}

func TestRunTimeline(t *testing.T) {
	execs := syntheticExecs(50, 100*time.Microsecond, 2)
	cfg := fastCfg(4)
	cfg.Timeline = true
	out := Run(execs, plainTraits(), cfg)
	if len(out.Timeline) == 0 {
		t.Fatal("no timeline buckets")
	}
	if out.TimelineBucket <= 0 {
		t.Error("no bucket width")
	}
}

func TestRunDefaults(t *testing.T) {
	cfg := RunConfig{}.Defaults()
	if cfg.Threads != 1 || cfg.Duration != 2*time.Second || cfg.Repetitions != 3 || cfg.Cores != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestFailLabel(t *testing.T) {
	if failLabel(Metrics{QPS: 5}) != "5.0" {
		t.Error("plain label wrong")
	}
	if failLabel(Metrics{Failed: 3}) != "FAIL(oom)" {
		t.Error("total failure label wrong")
	}
	if got := failLabel(Metrics{QPS: 5, Served: 2, Failed: 3}); got != "5.0 (partial, 3 oom)" {
		t.Errorf("partial label = %q", got)
	}
}

// Property: latency percentiles are ordered for any thread count.
func TestPropertyPercentilesOrdered(t *testing.T) {
	execs := syntheticExecs(60, 300*time.Microsecond, 2)
	for _, threads := range []int{1, 3, 17, 50} {
		m := Run(execs, plainTraits(), fastCfg(threads)).Metrics
		if m.P50 > m.P90 || m.P90 > m.P99 {
			t.Errorf("threads=%d: P50=%v P90=%v P99=%v not ordered", threads, m.P50, m.P90, m.P99)
		}
		if m.MeanLatency <= 0 {
			t.Errorf("threads=%d: no mean latency", threads)
		}
	}
}

// The segment-task pool must cap intra-query parallel engines' throughput
// below the pure-CPU bound (O-4's plateau mechanism).
func TestRunSegmentPoolPlateau(t *testing.T) {
	// Segment tasks that mostly wait on I/O: the task pool binds long
	// before the CPU does, exactly the Milvus-DiskANN situation.
	mk := func() []vdb.QueryExec {
		execs := make([]vdb.QueryExec, 40)
		for i := range execs {
			segs := make([][]index.Step, 30)
			for s := range segs {
				segs[s] = []index.Step{
					{CPU: 5 * time.Microsecond, Pages: []int64{0}},
					{CPU: 5 * time.Microsecond, Pages: []int64{1}},
				}
			}
			execs[i] = vdb.QueryExec{Segments: segs}
		}
		return execs
	}
	four := Run(mk(), vdb.Milvus(), fastCfg(4)).Metrics.QPS
	big := Run(mk(), vdb.Milvus(), fastCfg(64)).Metrics.QPS
	if big > four*1.5 {
		t.Errorf("no plateau: t=4 %.0f vs t=64 %.0f", four, big)
	}
	// Raising the pool (the Fig. 12–15 configuration) lifts the plateau.
	cfg := fastCfg(64)
	cfg.MaxReadConcurrent = 512
	raised := Run(mk(), vdb.Milvus(), cfg).Metrics.QPS
	if raised <= big*1.5 {
		t.Errorf("raised pool did not lift throughput: %.0f vs %.0f", raised, big)
	}
}
