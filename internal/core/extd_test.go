package core

import (
	"strings"
	"testing"
)

func TestExtDSPANNSmoke(t *testing.T) {
	out := runExp(t, "extD")
	for _, want := range []string{"DiskANN", "SPANN", "amplification"} {
		if !strings.Contains(out, want) {
			t.Errorf("extD output missing %q:\n%s", want, out)
		}
	}
}
