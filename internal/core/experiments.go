package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"svdbench/internal/dataset"
	"svdbench/internal/vdb"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the harness identifier ("fig2", "table1", "extA", ...).
	ID string
	// Paper names the table/figure in the paper.
	Paper string
	// Title describes what is measured.
	Title string
	// Run executes the experiment, writing its rows to w.
	Run func(b *Bench, w io.Writer) error
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table I", Title: "SSD calibration: fio-style raw device envelope", Run: runTable1},
		{ID: "table2", Paper: "Table II", Title: "Build/search-time parameters and achieved recall@10", Run: runTable2},
		{ID: "fig2", Paper: "Figure 2", Title: "Throughput scalability vs query threads", Run: runFig2},
		{ID: "fig3", Paper: "Figure 3", Title: "P99 latency scalability vs query threads", Run: runFig3},
		{ID: "fig4", Paper: "Figure 4", Title: "Global CPU usage vs query threads", Run: runFig4},
		{ID: "fig5", Paper: "Figure 5", Title: "Milvus-DiskANN read bandwidth timeline", Run: runFig5},
		{ID: "fig6", Paper: "Figure 6", Title: "Milvus-DiskANN per-query read bandwidth", Run: runFig6},
		{ID: "fig7", Paper: "Figure 7", Title: "DiskANN throughput vs search_list", Run: runFig7},
		{ID: "fig8", Paper: "Figure 8", Title: "DiskANN P99 latency vs search_list", Run: runFig8},
		{ID: "fig9", Paper: "Figure 9", Title: "DiskANN recall@10 vs search_list", Run: runFig9},
		{ID: "fig10", Paper: "Figure 10", Title: "DiskANN total read bandwidth vs search_list", Run: runFig10},
		{ID: "fig11", Paper: "Figure 11", Title: "DiskANN per-query bandwidth vs search_list", Run: runFig11},
		{ID: "fig12", Paper: "Figure 12", Title: "DiskANN throughput vs beam_width", Run: runFig12},
		{ID: "fig13", Paper: "Figure 13", Title: "DiskANN P99 latency vs beam_width", Run: runFig13},
		{ID: "fig14", Paper: "Figure 14", Title: "DiskANN total read bandwidth vs beam_width", Run: runFig14},
		{ID: "fig15", Paper: "Figure 15", Title: "DiskANN per-query bandwidth vs beam_width", Run: runFig15},
		{ID: "extA", Paper: "Extension A", Title: "Hybrid search + insert/delete workload (Sec. VIII)", Run: runExtA},
		{ID: "extB", Paper: "Extension B", Title: "Filtered search performance (Sec. VIII)", Run: runExtB},
		{ID: "extC", Paper: "Extension C", Title: "Design ablations: beam width 1, monolithic Milvus", Run: runExtC},
		{ID: "extD", Paper: "Extension D", Title: "Storage-index shoot-out: DiskANN vs SPANN-style clusters", Run: runExtD},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}

// table starts an aligned output table with a header row.
func table(w io.Writer, cols ...interface{}) *tabwriter.Writer {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	row(tw, cols...)
	return tw
}

func row(tw *tabwriter.Writer, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
}

// paperDatasets is the evaluation's dataset order.
func paperDatasets() []string { return dataset.CatalogNames() }

// setupsForFigure2 returns the seven setups, LanceDB last as in the paper's
// legends.
func setupsForFigure2() []vdb.Setup { return vdb.PaperSetups() }

// milvusDiskANN is the setup Sections V and VI study exclusively.
func milvusDiskANN() vdb.Setup { return vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexDiskANN} }

// failLabel annotates a cell whose queries failed (the paper's LanceDB OOM
// exclusions).
func failLabel(m Metrics) string {
	if m.Failed > 0 && m.Served == 0 {
		return "FAIL(oom)"
	}
	if m.Failed > 0 {
		return fmt.Sprintf("%.1f (partial, %d oom)", m.QPS, m.Failed)
	}
	return fmt.Sprintf("%.1f", m.QPS)
}
