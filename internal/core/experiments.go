package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"svdbench/internal/dataset"
	"svdbench/internal/vdb"
)

// ErrUnknownExperiment is returned by ExperimentByID for an id outside the
// registry. It marks a user error (a bad -experiment flag) as opposed to an
// internal failure; cmd/annbench maps it to a distinct exit code.
var ErrUnknownExperiment = errors.New("core: unknown experiment")

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the harness identifier ("fig2", "table1", "extA", ...).
	ID string
	// Paper names the table/figure in the paper.
	Paper string
	// Title describes what is measured.
	Title string

	// run executes the experiment, writing its rows to w.
	run func(ctx context.Context, b *Bench, w io.Writer) error
}

// Run executes the experiment, writing its rows to w. It is the
// context-free wrapper over RunContext.
func (e Experiment) Run(b *Bench, w io.Writer) error {
	return e.RunContext(context.Background(), b, w)
}

// RunContext executes the experiment under ctx: cancelling ctx stops the
// measurement grid within one cell and returns ctx's error.
func (e Experiment) RunContext(ctx context.Context, b *Bench, w io.Writer) error {
	if e.run == nil {
		return fmt.Errorf("%w: experiment %q has no runner", ErrUnknownExperiment, e.ID)
	}
	return e.run(ctx, b, w)
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table I", Title: "SSD calibration: fio-style raw device envelope", run: runTable1},
		{ID: "table2", Paper: "Table II", Title: "Build/search-time parameters and achieved recall@10", run: runTable2},
		{ID: "fig2", Paper: "Figure 2", Title: "Throughput scalability vs query threads", run: runFig2},
		{ID: "fig3", Paper: "Figure 3", Title: "P99 latency scalability vs query threads", run: runFig3},
		{ID: "fig4", Paper: "Figure 4", Title: "Global CPU usage vs query threads", run: runFig4},
		{ID: "fig5", Paper: "Figure 5", Title: "Milvus-DiskANN read bandwidth timeline", run: runFig5},
		{ID: "fig6", Paper: "Figure 6", Title: "Milvus-DiskANN per-query read bandwidth", run: runFig6},
		{ID: "fig7", Paper: "Figure 7", Title: "DiskANN throughput vs search_list", run: runFig7},
		{ID: "fig8", Paper: "Figure 8", Title: "DiskANN P99 latency vs search_list", run: runFig8},
		{ID: "fig9", Paper: "Figure 9", Title: "DiskANN recall@10 vs search_list", run: runFig9},
		{ID: "fig10", Paper: "Figure 10", Title: "DiskANN total read bandwidth vs search_list", run: runFig10},
		{ID: "fig11", Paper: "Figure 11", Title: "DiskANN per-query bandwidth vs search_list", run: runFig11},
		{ID: "fig12", Paper: "Figure 12", Title: "DiskANN throughput vs beam_width", run: runFig12},
		{ID: "fig13", Paper: "Figure 13", Title: "DiskANN P99 latency vs beam_width", run: runFig13},
		{ID: "fig14", Paper: "Figure 14", Title: "DiskANN total read bandwidth vs beam_width", run: runFig14},
		{ID: "fig15", Paper: "Figure 15", Title: "DiskANN per-query bandwidth vs beam_width", run: runFig15},
		{ID: "extA", Paper: "Extension A", Title: "Hybrid search + insert/delete workload (Sec. VIII)", run: runExtA},
		{ID: "extB", Paper: "Extension B", Title: "Filtered search performance (Sec. VIII)", run: runExtB},
		{ID: "extC", Paper: "Extension C", Title: "Design ablations: beam width 1, monolithic Milvus", run: runExtC},
		{ID: "extD", Paper: "Extension D", Title: "Storage-index shoot-out: DiskANN vs SPANN-style clusters", run: runExtD},
		{ID: "cache", Paper: "Extension E", Title: "Node-cache sweep: hit rate, device reads, and latency vs capacity and policy", run: runCache},
		{ID: "pipeline", Paper: "Extension F", Title: "Async pipeline: look-ahead prefetch and coalesced submission vs the synchronous baseline", run: runPipeline},
		{ID: "layout", Paper: "Extension G", Title: "Page-node layout: device reads, hops, and latency vs the ID-packed baseline at equal recall", run: runLayout},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("%w %q (have %v)", ErrUnknownExperiment, id, ids)
}

// table starts an aligned output table with a header row.
func table(w io.Writer, cols ...interface{}) *tabwriter.Writer {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	row(tw, cols...)
	return tw
}

func row(tw *tabwriter.Writer, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
}

// paperDatasets is the evaluation's dataset order.
func paperDatasets() []string { return dataset.CatalogNames() }

// setupsForFigure2 returns the seven setups, LanceDB last as in the paper's
// legends.
func setupsForFigure2() []vdb.Setup { return vdb.PaperSetups() }

// milvusDiskANN is the setup Sections V and VI study exclusively.
func milvusDiskANN() vdb.Setup { return vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexDiskANN} }

// failLabel annotates a cell whose queries failed (the paper's LanceDB OOM
// exclusions).
func failLabel(m Metrics) string {
	if m.Failed > 0 && m.Served == 0 {
		return "FAIL(oom)"
	}
	if m.Failed > 0 {
		return fmt.Sprintf("%.1f (partial, %d oom)", m.QPS, m.Failed)
	}
	return fmt.Sprintf("%.1f", m.QPS)
}
