package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"svdbench/internal/index"
	"svdbench/internal/index/spann"
	"svdbench/internal/vdb"
)

// TestPipelineLookAheadCutsLatency is the PR's acceptance criterion: at one
// closed-loop thread, look-ahead ≥ 2 with coalesced submission must cut mean
// latency by at least 20% against the synchronous baseline at equal recall
// (equal by construction — the result sets are asserted byte-identical).
// SPANN anchors the bound: its probe order is fixed after navigation, so the
// prefetch of posting j+1 overlaps cleanly with posting j's scan.
func TestPipelineLookAheadCutsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an index and runs the simulation")
	}
	b := tinyBench(t)
	ds, err := b.Dataset("cohere-small")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spann.Build(ds.Vectors, nil, spann.Config{Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var page int64
	sp.AssignPages(func(n int64) int64 { p := page; page += n; return p })
	nprobe := 8
	if nprobe > sp.Postings() {
		nprobe = sp.Postings()
	}
	opts := index.SearchOptions{NProbe: nprobe}

	syncExecs, syncRecall := recordRaw(ds, sp, opts)
	laExecs, laRecall := recordRaw(ds, sp, opts.With(index.WithLookAhead(2)))
	if syncRecall != laRecall {
		t.Fatalf("recall changed under look-ahead: %v vs %v", syncRecall, laRecall)
	}
	for qi := range syncExecs {
		if !reflect.DeepEqual(syncExecs[qi].IDs, laExecs[qi].IDs) {
			t.Fatalf("query %d: look-ahead changed the result set", qi)
		}
	}

	neutral := vdb.Traits{Name: "neutral", PerQueryCPU: 30 * time.Microsecond}
	cfg := RunConfig{Threads: 1, Duration: 100 * time.Millisecond, Repetitions: 1, Cores: 20}
	ctx := context.Background()
	syncOut, err := RunContext(ctx, syncExecs, neutral, cfg)
	if err != nil {
		t.Fatal(err)
	}
	laCfg := cfg
	laCfg.CoalesceReads = true
	laCfg.LookAhead = 2
	laOut, err := RunContext(ctx, laExecs, neutral, laCfg)
	if err != nil {
		t.Fatal(err)
	}
	if syncOut.Metrics.Served == 0 || laOut.Metrics.Served == 0 {
		t.Fatalf("empty runs: sync served %d, pipelined served %d",
			syncOut.Metrics.Served, laOut.Metrics.Served)
	}
	base, pipelined := syncOut.Metrics.MeanLatency, laOut.Metrics.MeanLatency
	if float64(pipelined) > 0.8*float64(base) {
		t.Errorf("pipelined mean latency %v is not ≥20%% below synchronous %v", pipelined, base)
	}
	if laOut.Metrics.OverlapFrac <= syncOut.Metrics.OverlapFrac {
		t.Errorf("pipelined CPU/device overlap %.3f not above synchronous %.3f",
			laOut.Metrics.OverlapFrac, syncOut.Metrics.OverlapFrac)
	}
}

// TestPipelineExperimentRegistered: the sweep is part of the registry with
// its extension label.
func TestPipelineExperimentRegistered(t *testing.T) {
	exp, err := ExperimentByID("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Paper != "Extension F" {
		t.Errorf("pipeline experiment labelled %q, want Extension F", exp.Paper)
	}
}
