package core

import (
	"context"
	"fmt"
	"io"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
	"svdbench/internal/trace"
	"svdbench/internal/vdb"
	"svdbench/internal/vec"
)

// runExtA extends the paper per its Sec. VIII: vector search under a
// concurrent insert/delete stream. Writes occupy the SSD's shared bus (NAND
// read/write interference) and burn CPU, degrading search throughput and
// tail latency as the write rate grows.
func runExtA(ctx context.Context, b *Bench, w io.Writer) error {
	st, err := b.StackContext(ctx, "cohere-small", milvusDiskANN())
	if err != nil {
		return err
	}
	writerCounts := []int{0, 4, 16, 64, 128}
	results := make([]Metrics, len(writerCounts))
	cells := make([]cell, len(writerCounts))
	for i, writers := range writerCounts {
		i, writers := i, writers
		cells[i] = cell{
			key: fmt.Sprintf("extA/writers=%d", writers),
			run: func(ctx context.Context) error {
				// Each cell spins up a private simulated stack inside
				// runHybrid, so cells are independent and parallel-safe.
				results[i] = runHybrid(st, 16, writers, b.mergeDefaults(RunConfig{}))
				return nil
			},
		}
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN search under concurrent writes (16 query threads)")
	tw := table(w, "writer threads", "QPS", "P99 (µs)", "read MiB/s", "write MiB/s")
	for i, writers := range writerCounts {
		m := results[i]
		row(tw, writers,
			fmt.Sprintf("%.1f", m.QPS),
			fmtDur(m.P99),
			fmt.Sprintf("%.1f", m.ReadMiBps),
			fmt.Sprintf("%.1f", m.WriteMiBps))
	}
	return tw.Flush()
}

// runHybrid is the Ext-A workload: queryThreads closed-loop searchers plus
// writerThreads alternating insert/delete clients against the same engine
// and device.
func runHybrid(st *Stack, queryThreads, writerThreads int, cfg RunConfig) Metrics {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, cfg.Cores)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	tr := trace.NewTracer(false)
	dev.Attach(tr)
	eng := vdb.NewEngine(k, cpu, dev, st.Setup.Engine)
	deadline := sim.Time(cfg.Duration)
	var latencies []sim.Duration
	var served int64
	next := 0
	for t := 0; t < queryThreads; t++ {
		k.Spawn("query", func(e *sim.Env) {
			for e.Now() < deadline {
				qe := &st.Execs[next]
				next++
				if next == len(st.Execs) {
					next = 0
				}
				start := e.Now()
				if eng.RunQuery(e, qe) == nil && e.Now() <= deadline {
					served++
					latencies = append(latencies, e.Now().Sub(start))
				}
			}
		})
	}
	vectorBytes := st.Dataset.Spec.Dim * 4
	for t := 0; t < writerThreads; t++ {
		k.Spawn("writer", func(e *sim.Env) {
			i := 0
			for e.Now() < deadline {
				if i%8 == 7 {
					eng.RunDelete(e)
				} else {
					eng.RunInsert(e, vectorBytes)
				}
				i++
			}
		})
	}
	k.RunAll()
	m := Metrics{
		P99:         Percentile(latencies, 0.99),
		MeanLatency: MeanDuration(latencies),
		Served:      served,
	}
	if cfg.Duration > 0 {
		m.QPS = float64(served) / cfg.Duration.Seconds()
	}
	sum := tr.Summarize(cfg.Duration)
	m.ReadMiBps = sum.ReadMiBps
	m.WriteMiBps = sum.WriteMiBps
	return m
}

// runExtB measures filtered search (payload predicate pushdown): recall
// against filtered ground truth and the work amplification caused by
// discarding candidates inside the traversal.
func runExtB(ctx context.Context, b *Bench, w io.Writer) error {
	ds, err := b.DatasetContext(ctx, "cohere-small")
	if err != nil {
		return err
	}
	// Attach a payload with ~10% / ~50% selectivity classes.
	payloads := make([]vdb.Payload, ds.Vectors.Len())
	for i := range payloads {
		cls := "common" // ~50%
		if i%2 == 1 {
			cls = "other"
		}
		if i%10 == 0 {
			cls = "rare" // 10%
		}
		payloads[i] = vdb.Payload{"class": cls}
	}
	col, err := vdb.NewCollection("extB", ds.Spec.Dim, ds.Spec.Metric, vdb.Qdrant(), vdb.IndexHNSW, vdb.DefaultBuildParams())
	if err != nil {
		return err
	}
	if err := col.BulkLoad(ds.Vectors, payloads); err != nil {
		return err
	}
	cases := []struct {
		name   string
		filter func(int32) bool
		accept func(int32) bool
	}{
		{"unfiltered", nil, func(int32) bool { return true }},
		{"class=common (~45%)", col.FilterEq("class", "common"), func(id int32) bool { return id%2 == 0 && id%10 != 0 }},
		{"class=rare (10%)", col.FilterEq("class", "rare"), func(id int32) bool { return id%10 == 0 }},
	}
	tw := table(w, "filter", "recall@10", "mean dist comps", "QPS (16 threads)")
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return err
		}
		gt := filteredGroundTruth(ds, c.accept)
		opts := index.SearchOptions{EfSearch: 128, Filter: c.filter}
		execs := col.RecordQueries(ds.Queries, PaperK, opts)
		recall := recallOfExecs(execs, gt)
		// Mean work from a direct pass.
		var comps int
		n := ds.Queries.Len()
		for qi := 0; qi < n; qi++ {
			res := col.Segments()[0].Index.Search(ds.Queries.Row(qi), PaperK, opts)
			comps += res.Stats.DistComps
		}
		out, err := RunContext(ctx, execs, vdb.Qdrant(), b.mergeDefaults(RunConfig{Threads: 16}))
		if err != nil {
			return err
		}
		row(tw, c.name,
			fmt.Sprintf("%.3f", recall),
			comps/n,
			fmt.Sprintf("%.1f", out.Metrics.QPS))
	}
	return tw.Flush()
}

// filteredGroundTruth recomputes exact neighbours over the accepted subset.
func filteredGroundTruth(ds *dataset.Dataset, accept func(int32) bool) [][]int32 {
	var rows []int
	for i := 0; i < ds.Vectors.Len(); i++ {
		if accept(int32(i)) {
			rows = append(rows, i)
		}
	}
	sub := vecSubset(ds, rows)
	gtLocal := dataset.BruteForce(sub, ds.Queries, ds.Spec.Metric, PaperK)
	out := make([][]int32, len(gtLocal))
	for qi, ids := range gtLocal {
		mapped := make([]int32, len(ids))
		for i, id := range ids {
			mapped[i] = int32(rows[id])
		}
		out[qi] = mapped
	}
	return out
}

func vecSubset(ds *dataset.Dataset, rows []int) *vec.Matrix {
	sub := vec.NewMatrix(len(rows), ds.Spec.Dim)
	for i, r := range rows {
		sub.SetRow(i, ds.Vectors.Row(r))
	}
	return sub
}

// runExtC reports the design ablations DESIGN.md calls out: beam search vs
// best-first (W=1), and Milvus's segmentation vs a monolithic build.
func runExtC(ctx context.Context, b *Bench, w io.Writer) error {
	// Ablation 1: beam width on cohere-small, 1 thread.
	st, err := b.StackContext(ctx, "cohere-small", milvusDiskANN())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation 1 — beam search vs best-first (search_list=100, 1 thread)")
	tw := table(w, "beam width", "QPS", "P99 (µs)", "KiB/query")
	for _, W := range []int{1, 4} {
		execs := st.ExecsFor(index.NewSearchOptions(index.WithSearchList(100), index.WithBeamWidth(W)))
		out, err := b.RunCellContext(ctx, st, execs, RunConfig{Threads: 1}, fmt.Sprintf("extC-W%d", W))
		if err != nil {
			return err
		}
		row(tw, W, fmt.Sprintf("%.1f", out.Metrics.QPS), fmtDur(out.Metrics.P99),
			fmt.Sprintf("%.1f", out.Metrics.KiBPerQuery()))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Ablation 2: segmented vs monolithic Milvus-DiskANN on the large
	// dataset — segmentation is the mechanism behind O-14's per-query
	// bandwidth growth.
	fmt.Fprintln(w, "# Ablation 2 — Milvus segmentation vs monolithic (cohere-large, DiskANN)")
	seg, err := b.StackContext(ctx, "cohere-large", milvusDiskANN())
	if err != nil {
		return err
	}
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	monoStack, err := b.StackContext(ctx, "cohere-large", vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN})
	if err != nil {
		return err
	}
	tw = table(w, "layout", "segments", "QPS (t=16)", "P99 (µs)", "KiB/query", "recall@10")
	for _, s := range []*Stack{seg, monoStack} {
		out, err := b.RunCellContext(ctx, s, s.Execs, RunConfig{Threads: 16}, "extC-seg")
		if err != nil {
			return err
		}
		row(tw, s.Setup.Engine.Name, len(s.Col.Segments()),
			fmt.Sprintf("%.1f", out.Metrics.QPS), fmtDur(out.Metrics.P99),
			fmt.Sprintf("%.1f", out.Metrics.KiBPerQuery()),
			fmt.Sprintf("%.3f", s.Recall))
	}
	return tw.Flush()
}
