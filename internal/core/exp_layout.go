package core

import (
	"context"
	"fmt"
	"io"

	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/vdb"
)

// runLayout measures the page-node layout (Extension G): DiskANN's on-disk
// pages regrouped so each 4 KiB page holds several graph-adjacent nodes, the
// page becoming the unit the beam search fetches, scores and expands. Three
// cells over the monolithic Milvus-DiskANN stack:
//
//   - id: the tuned node-per-page baseline (Table II parameters).
//   - page, equal L: the page layout at the baseline's search_list — one
//     list slot now covers a whole page group, so recall rises while reads
//     fall.
//   - page, tuned L: search_list re-tuned down to the baseline's recall
//     (±0.5 pt), the equal-accuracy point where the read savings are the
//     honest headline.
func runLayout(ctx context.Context, b *Bench, w io.Writer) error {
	st, err := b.StackContext(ctx, "cohere-large", vdb.Setup{Engine: monoMilvus(), Index: vdb.IndexDiskANN})
	if err != nil {
		return err
	}

	pageEq := st.Opts.With(index.WithLayout(index.LayoutPage))
	// Re-tune the page layout's search_list to the ID baseline's achieved
	// recall. L counts page groups under the page layout, and every fetched
	// group scores all its resident nodes, so the equal-recall L is far
	// below the node-count L of the baseline.
	hi := 2 * st.Opts.SearchList
	if hi < 16 {
		hi = 16
	}
	tunedL := tuneUpTo("layout-page-L", 1, hi, st.Recall-0.005, func(v int) float64 {
		return st.RecallFor(pageEq.With(index.WithSearchList(v)))
	})
	pageTuned := pageEq.With(index.WithSearchList(tunedL))

	variants := []struct {
		label  string
		cellID string
		opts   index.SearchOptions
	}{
		{"id", "layout-id", st.Opts},
		{"page (equal L)", "layout-page-eqL", pageEq},
		{"page (tuned L)", "layout-page-tuned", pageTuned},
	}
	type cellOut struct {
		recall float64
		nq     int
		pf     index.Stats
		m      Metrics
	}
	outs := make([]cellOut, len(variants))
	cells := make([]cell, 0, len(variants))
	for i, v := range variants {
		i, v := i, v
		cells = append(cells, cell{
			key: fmt.Sprintf("cohere-large/layout/%s", v.cellID),
			run: func(ctx context.Context) error {
				execs := st.ExecsFor(v.opts)
				out, err := b.RunCellContext(ctx, st, execs, RunConfig{Threads: 4}, v.cellID)
				outs[i] = cellOut{recall: st.RecallFor(v.opts), nq: len(execs), pf: prefetchTotals(execs), m: out.Metrics}
				return err
			},
		})
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return err
	}

	tw := table(w, "layout", "search_list", "recall@10", "hops/query", "dev reads/query", "KiB/query", "QPS", "mean (µs)", "P99 (µs)")
	readsPerQ := make([]float64, len(variants))
	for i, v := range variants {
		o := outs[i]
		if o.m.Served > 0 {
			readsPerQ[i] = float64(o.m.ReadOps) / float64(o.m.Served)
		}
		hopsPerQ := 0.0
		if o.nq > 0 {
			hopsPerQ = float64(o.pf.Hops) / float64(o.nq)
		}
		row(tw, v.label,
			fmt.Sprintf("%d", v.opts.SearchList),
			fmt.Sprintf("%.3f", o.recall),
			fmt.Sprintf("%.1f", hopsPerQ),
			fmt.Sprintf("%.1f", readsPerQ[i]),
			fmt.Sprintf("%.1f", o.m.KiBPerQuery()),
			fmt.Sprintf("%.1f", o.m.QPS),
			fmtDur(o.m.MeanLatency),
			fmtDur(o.m.P99))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	capacity := 0
	for _, seg := range st.Col.Segments() {
		if ix, ok := seg.Index.(*diskann.Index); ok {
			capacity = ix.PageCapacity()
			break
		}
	}
	reduction := 0.0
	if readsPerQ[0] > 0 {
		reduction = 1 - readsPerQ[2]/readsPerQ[0]
	}
	fmt.Fprintf(w, "\n(Page-node co-design: %d nodes share each 4 KiB page with their nearest graph\n", capacity)
	fmt.Fprintf(w, " neighbours, so one device read feeds %d candidate scores instead of one. At the\n", capacity)
	fmt.Fprintf(w, " ID baseline's recall the tuned page layout issues %.0f%% fewer device reads per\n", 100*reduction)
	fmt.Fprintln(w, " query; the equal-L row shows the same effect spent on recall instead of reads.)")
	return nil
}

// monoMilvus is the monolithic Milvus engine the single-segment extensions
// measure (segment capacity 0 = one sealed segment).
func monoMilvus() vdb.Traits {
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	return mono
}
