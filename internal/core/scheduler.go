package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one unit of scheduler work: a keyed, self-contained measurement.
// The run closure writes its result into a caller-owned, cell-private slot,
// which is what makes the merge deterministic: no matter which worker
// finishes first, the caller reads the slots back in input order, so an
// 8-worker grid renders byte-identical tables to a sequential one.
type cell struct {
	// key identifies the cell in progress reports and error messages
	// (e.g. "cohere-large/milvus-DISKANN/t=256").
	key string
	// run performs the measurement. It must only write state owned by this
	// cell and must honour ctx cancellation between expensive phases.
	run func(ctx context.Context) error
}

// Progress is one scheduler progress report, emitted after each completed
// cell. Reports are delivered sequentially (never concurrently), but from
// worker goroutines, so handlers that touch shared state need no locking
// against each other yet must not assume they run on the caller's goroutine.
type Progress struct {
	// Key is the completed cell's key.
	Key string
	// Done and Total count completed and scheduled cells.
	Done, Total int
	// Elapsed is host wall-clock time since the grid started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time at the observed mean
	// cell rate (zero until the first cell completes).
	ETA time.Duration
	// Err is the cell's error, nil on success.
	Err error
}

// Scheduler fans independent experiment cells out across a bounded pool of
// host goroutines. It is the harness-level counterpart of the simulated
// testbed's virtual cores: `Workers` controls how many *simulations* run
// concurrently on the host, while RunConfig.Cores controls how many virtual
// CPUs exist *inside* each simulation — the two never interact, which is why
// results are independent of the worker count.
//
// Determinism guarantee: cells receive private result slots and the caller
// merges them in input order, so for a fixed cell list the output is
// byte-identical at any worker count, including 1 (the sequential harness).
type Scheduler struct {
	workers int

	mu       sync.Mutex
	progress func(Progress)
}

// NewScheduler returns a scheduler with the given worker-pool size.
// workers <= 0 selects runtime.GOMAXPROCS(0), one worker per schedulable
// host core.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{workers: workers}
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// OnProgress installs a hook receiving one report per completed cell.
// Passing nil removes the hook.
func (s *Scheduler) OnProgress(fn func(Progress)) {
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

// Run executes the cells across the worker pool and blocks until every
// started cell has finished. The first cell error cancels the cells not yet
// started (cells already running finish or observe the cancelled context
// themselves); a cancelled ctx likewise stops the grid within one cell.
// Run returns the first error, wrapped with the failing cell's key.
func (s *Scheduler) Run(ctx context.Context, cells []cell) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(cells)
	if n == 0 {
		return nil
	}
	workers := s.workers
	if workers > n {
		workers = n
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     int64 // atomic cursor over the cell list
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		done     int
		start    = time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	)
	complete := func(key string, err error) {
		errMu.Lock()
		done++
		d, total := done, n
		elapsed := time.Since(start) //annlint:allow wallclock -- host-side progress timing, never enters the simulation
		var eta time.Duration
		if d > 0 && d < total {
			eta = time.Duration(int64(elapsed) / int64(d) * int64(total-d))
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %s: %w", key, err)
		}
		s.mu.Lock()
		hook := s.progress
		s.mu.Unlock()
		if hook != nil {
			hook(Progress{Key: key, Done: d, Total: total, Elapsed: elapsed, ETA: eta, Err: err})
		}
		errMu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || runCtx.Err() != nil {
					return
				}
				err := cells[i].run(runCtx)
				complete(cells[i].key, err)
				if err != nil {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
