package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/index/spann"
	"svdbench/internal/vdb"
)

// runExtD compares the two storage-based index families head to head —
// DiskANN's graph (dependent 4 KiB random reads) against a SPANN-style
// cluster index (few contiguous multi-page posting reads) — extending the
// paper's Sec. II-B discussion and its ref [30]. Both indexes are built
// monolithically over the same dataset and replayed under identical neutral
// engine traits, so every difference is the index's own.
func runExtD(ctx context.Context, b *Bench, w io.Writer) error {
	ds, err := b.DatasetContext(ctx, "cohere-large")
	if err != nil {
		return err
	}
	neutral := vdb.Traits{Name: "neutral", PerQueryCPU: 30 * time.Microsecond}

	// DiskANN at its tuned minimum search_list, reusing the monolithic
	// collection the Ext-C ablation also uses (disk-cached across runs).
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	monoStack, err := b.StackContext(ctx, "cohere-large", vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN})
	if err != nil {
		return err
	}
	da, ok := monoStack.Col.Segments()[0].Index.(*diskann.Index)
	if !ok {
		return fmt.Errorf("extD: %w: monolithic stack holds %T, want *diskann.Index", vdb.ErrBadParams, monoStack.Col.Segments()[0].Index)
	}
	var page int64
	alloc := func(n int64) int64 { p := page; page += n; return p }
	da.AssignPages(alloc)
	// Use the stack's tuned search_list so both indexes are compared at
	// the same recall target.
	daOpts := monoStack.Opts
	daExecs, daRecall := recordRaw(ds, da, daOpts)

	// SPANN with nprobe tuned to at least DiskANN's recall.
	sp, err := spann.Build(ds.Vectors, nil, spann.Config{Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		return err
	}
	sp.AssignPages(alloc)
	spOpts := index.SearchOptions{NProbe: tuneUp("spann-nprobe", 1, sp.Postings(), func(v int) float64 {
		_, r := recordRawSample(ds, sp, index.SearchOptions{NProbe: v}, 100)
		return r
	})}
	spExecs, spRecall := recordRaw(ds, sp, spOpts)

	type row2 struct {
		name    string
		ix      index.Index
		execs   []vdb.QueryExec
		recall  float64
		details string
	}
	rows := []row2{
		{fmt.Sprintf("DiskANN (graph, W=%d, L=%d)", daOpts.BeamWidth, daOpts.SearchList), da, daExecs, daRecall,
			fmt.Sprintf("storage=%.1fMiB memory=%.1fMiB", mib(da.StorageBytes()), mib(da.MemoryBytes()))},
		{fmt.Sprintf("SPANN (clusters, nprobe=%d)", spOpts.NProbe), sp, spExecs, spRecall,
			fmt.Sprintf("storage=%.1fMiB memory=%.1fMiB amplification=%.2fx", mib(sp.StorageBytes()), mib(sp.MemoryBytes()), sp.SpaceAmplification())},
	}
	tw := table(w, "index", "recall@10", "QPS (t=16)", "P99 (µs)", "KiB/query", "mean req size (KiB)", "footprint")
	for _, r := range rows {
		out, err := RunContext(ctx, r.execs, neutral, b.mergeDefaults(RunConfig{Threads: 16}))
		if err != nil {
			return err
		}
		m := out.Metrics
		meanReq := m.MeanReadBytes / 1024
		row(tw, r.name,
			fmt.Sprintf("%.3f", r.recall),
			fmt.Sprintf("%.1f", m.QPS),
			fmtDur(m.P99),
			fmt.Sprintf("%.1f", m.KiBPerQuery()),
			fmt.Sprintf("%.1f", meanReq),
			r.details)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(SPANN issues few contiguous multi-page reads where DiskANN issues chains of 4 KiB")
	fmt.Fprintln(w, " random reads, and pays for it in storage amplification — the paper's Sec. II-B trade-off.)")
	return nil
}

// recordRaw records the execution of every dataset query against a bare
// index, returning replayable executions and the achieved recall@10.
func recordRaw(ds *dataset.Dataset, ix index.Index, opts index.SearchOptions) ([]vdb.QueryExec, float64) {
	execs := make([]vdb.QueryExec, ds.Queries.Len())
	ids := make([][]int32, ds.Queries.Len())
	for qi := 0; qi < ds.Queries.Len(); qi++ {
		var prof index.Profile
		o := opts
		o.Recorder = &prof
		res := ix.Search(ds.Queries.Row(qi), PaperK, o)
		execs[qi] = vdb.QueryExec{Segments: [][]index.Step{prof.Steps}, IDs: res.IDs, Stats: res.Stats}
		ids[qi] = res.IDs
	}
	return execs, dataset.MeanRecallAtK(ids, ds.GroundTruth, PaperK)
}

// recordRawSample is recordRaw over the first n queries (for tuning).
func recordRawSample(ds *dataset.Dataset, ix index.Index, opts index.SearchOptions, n int) ([]vdb.QueryExec, float64) {
	if n > ds.Queries.Len() {
		n = ds.Queries.Len()
	}
	ids := make([][]int32, n)
	for qi := 0; qi < n; qi++ {
		res := ix.Search(ds.Queries.Row(qi), PaperK, opts)
		ids[qi] = res.IDs
	}
	return nil, dataset.MeanRecallAtK(ids, ds.GroundTruth[:n], PaperK)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
