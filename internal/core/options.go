package core

import "svdbench/internal/sim"

// RunOption is a functional option over RunConfig, the ergonomic layer of
// the measurement API. RunConfig itself stays the stable wire form — a plain
// struct that serialises, diffs and zero-values cleanly — while options give
// call sites self-describing construction:
//
//	cfg := core.NewRunConfig(core.WithThreads(256), core.WithRepetitions(5))
//
// Options apply in order, so later options win over earlier ones.
type RunOption func(*RunConfig)

// WithThreads sets the closed-loop client concurrency (the paper sweeps
// 1..256).
func WithThreads(n int) RunOption { return func(c *RunConfig) { c.Threads = n } }

// WithDuration sets the virtual measurement window per repetition.
func WithDuration(d sim.Duration) RunOption { return func(c *RunConfig) { c.Duration = d } }

// WithRepetitions sets how many repetitions are aggregated (paper: 5).
func WithRepetitions(n int) RunOption { return func(c *RunConfig) { c.Repetitions = n } }

// WithCores sets the simulated CPU core count (paper testbed: 20). This is
// virtual hardware inside the simulation, unrelated to the host-side
// Scheduler worker pool.
func WithCores(n int) RunOption { return func(c *RunConfig) { c.Cores = n } }

// WithSeed perturbs per-repetition thread start offsets.
func WithSeed(seed int64) RunOption { return func(c *RunConfig) { c.Seed = seed } }

// WithTimeline enables fine-grained bandwidth buckets (Fig. 5). A positive
// bucket overrides the default width of Duration/30.
func WithTimeline(bucket sim.Duration) RunOption {
	return func(c *RunConfig) {
		c.Timeline = true
		c.TimelineBucket = bucket
	}
}

// WithMaxReadConcurrent overrides the engine's segment-worker cap (the
// Fig. 12–15 beam-width configuration).
func WithMaxReadConcurrent(n int) RunOption {
	return func(c *RunConfig) { c.MaxReadConcurrent = n }
}

// WithCoalesceReads routes the engine's device reads through a request
// coalescer (ssd.Batcher): reads outstanding across concurrent queries are
// submitted in shared batches, amortising per-request submission CPU.
func WithCoalesceReads(on bool) RunOption {
	return func(c *RunConfig) { c.CoalesceReads = on }
}

// NewRunConfig builds a RunConfig from options layered over the standard
// experiment defaults (see RunConfig.Defaults).
func NewRunConfig(opts ...RunOption) RunConfig {
	var cfg RunConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Defaults()
}

// With returns a copy of the config with the options applied; the receiver
// is unchanged.
func (c RunConfig) With(opts ...RunOption) RunConfig {
	for _, o := range opts {
		o(&c)
	}
	return c
}
