package core

import (
	"context"
	"fmt"
	"io"

	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// searchListOpts returns the DiskANN options of one Fig. 7–11 sweep point.
func searchListOpts(L int) index.SearchOptions {
	return index.NewSearchOptions(index.WithSearchList(L), index.WithBeamWidth(4))
}

// beamWidthOpts returns the DiskANN options of one Fig. 12–15 sweep point.
// As in the paper (Sec. VI-B), search_list is fixed at 100 so candidate
// availability does not bottleneck the beam.
func beamWidthOpts(W int) index.SearchOptions {
	return index.NewSearchOptions(index.WithSearchList(100), index.WithBeamWidth(W))
}

// diskannSweep measures every dataset across a DiskANN parameter ladder as
// one flattened scheduler grid: each (dataset, value) pair is its own cell,
// so the whole figure's measurement fans out over host workers instead of
// serialising per dataset. Results are keyed dataset → swept value.
func (b *Bench) diskannSweep(ctx context.Context, vals []int,
	optsFor func(int) index.SearchOptions, cfgFor func(int) RunConfig,
	cellIDFor func(int) string) (map[string]map[int]Metrics, error) {

	type point struct {
		ds  string
		val int
	}
	var pts []point
	for _, dsName := range paperDatasets() {
		for _, v := range vals {
			pts = append(pts, point{dsName, v})
		}
	}
	outs := make([]Metrics, len(pts))
	cells := make([]cell, len(pts))
	for i, p := range pts {
		i, p := i, p
		cells[i] = cell{
			key: fmt.Sprintf("%s/%s", p.ds, cellIDFor(p.val)),
			run: func(ctx context.Context) error {
				st, err := b.StackContext(ctx, p.ds, milvusDiskANN())
				if err != nil {
					return err
				}
				execs := st.ExecsFor(optsFor(p.val))
				res, err := b.RunCellContext(ctx, st, execs, cfgFor(p.val), cellIDFor(p.val))
				outs[i] = res.Metrics
				return err
			},
		}
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return nil, err
	}
	res := map[string]map[int]Metrics{}
	for i, p := range pts {
		if res[p.ds] == nil {
			res[p.ds] = map[int]Metrics{}
		}
		res[p.ds][p.val] = outs[i]
	}
	return res, nil
}

// sweepSearchList measures all datasets across the search_list ladder at the
// given concurrency.
func (b *Bench) sweepSearchList(ctx context.Context, threads int) (map[string]map[int]Metrics, error) {
	return b.diskannSweep(ctx, SearchListSweep,
		searchListOpts,
		func(int) RunConfig { return RunConfig{Threads: threads} },
		func(L int) string { return fmt.Sprintf("figSL-%d", L) })
}

// sweepBeamWidth measures all datasets across the beam_width ladder. The
// paper raises Milvus's maxReadConcurrentRatio for this experiment so the
// beam is never starved of scheduler slots; the equivalent here is raising
// the segment-task pool well beyond the core count.
func (b *Bench) sweepBeamWidth(ctx context.Context, threads int) (map[string]map[int]Metrics, error) {
	return b.diskannSweep(ctx, BeamWidthSweep,
		beamWidthOpts,
		func(int) RunConfig { return RunConfig{Threads: threads, MaxReadConcurrent: 256} },
		func(W int) string { return fmt.Sprintf("figBW-%d", W) })
}

func sweepHeader(vals []int, prefix string) []interface{} {
	out := make([]interface{}, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s=%d", prefix, v)
	}
	return out
}

// runFig7 prints DiskANN throughput across search_list at 1 and 256 threads.
func runFig7(ctx context.Context, b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		sweep, err := b.sweepSearchList(ctx, threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Milvus-DiskANN throughput (QPS) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][L].QPS))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig8 prints DiskANN P99 latency across search_list with one thread.
func runFig8(ctx context.Context, b *Bench, w io.Writer) error {
	sweep, err := b.sweepSearchList(ctx, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN P99 latency (µs) vs search_list, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
	for _, dsName := range paperDatasets() {
		cols := []interface{}{dsName}
		for _, L := range SearchListSweep {
			cols = append(cols, fmtDur(sweep[dsName][L].P99))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig9 prints recall@10 across search_list (pure algorithm property, no
// simulation involved).
func runFig9(ctx context.Context, b *Bench, w io.Writer) error {
	if err := b.prefetchStacks(ctx, paperDatasets(), []vdb.Setup{milvusDiskANN()}); err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN recall@10 vs search_list")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
	for _, dsName := range paperDatasets() {
		st, err := b.StackContext(ctx, dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, L := range SearchListSweep {
			cols = append(cols, fmt.Sprintf("%.3f", st.RecallFor(searchListOpts(L))))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig10 prints total read bandwidth across search_list at 1 and 256
// threads.
func runFig10(ctx context.Context, b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		sweep, err := b.sweepSearchList(ctx, threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Milvus-DiskANN read bandwidth (MiB/s) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][L].ReadMiBps))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig11 prints per-query average bandwidth across search_list.
func runFig11(ctx context.Context, b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		sweep, err := b.sweepSearchList(ctx, threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Milvus-DiskANN per-query read volume (KiB/query) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][L].KiBPerQuery()))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig12 prints throughput across beam_width (threads=1, as in the
// artifact's var-bwidth runs).
func runFig12(ctx context.Context, b *Bench, w io.Writer) error {
	sweep, err := b.sweepBeamWidth(ctx, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN throughput (QPS) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][W].QPS))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig13 prints P99 latency across beam_width.
func runFig13(ctx context.Context, b *Bench, w io.Writer) error {
	sweep, err := b.sweepBeamWidth(ctx, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN P99 latency (µs) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmtDur(sweep[dsName][W].P99))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig14 prints total read bandwidth across beam_width.
func runFig14(ctx context.Context, b *Bench, w io.Writer) error {
	sweep, err := b.sweepBeamWidth(ctx, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN read bandwidth (MiB/s) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][W].ReadMiBps))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig15 prints per-query bandwidth across beam_width.
func runFig15(ctx context.Context, b *Bench, w io.Writer) error {
	sweep, err := b.sweepBeamWidth(ctx, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Milvus-DiskANN per-query read volume (KiB/query) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", sweep[dsName][W].KiBPerQuery()))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}
