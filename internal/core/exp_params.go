package core

import (
	"fmt"
	"io"

	"svdbench/internal/index"
)

// searchListOpts returns the DiskANN options of one Fig. 7–11 sweep point.
func searchListOpts(L int) index.SearchOptions {
	return index.SearchOptions{SearchList: L, BeamWidth: 4}
}

// beamWidthOpts returns the DiskANN options of one Fig. 12–15 sweep point.
// As in the paper (Sec. VI-B), search_list is fixed at 100 so candidate
// availability does not bottleneck the beam.
func beamWidthOpts(W int) index.SearchOptions {
	return index.SearchOptions{SearchList: 100, BeamWidth: W}
}

// sweepSearchList measures one dataset across the search_list ladder at the
// given concurrency.
func (b *Bench) sweepSearchList(dsName string, threads int) (map[int]Metrics, error) {
	st, err := b.Stack(dsName, milvusDiskANN())
	if err != nil {
		return nil, err
	}
	out := map[int]Metrics{}
	for _, L := range SearchListSweep {
		execs := st.ExecsFor(searchListOpts(L))
		res := b.RunCell(st, execs, RunConfig{Threads: threads}, fmt.Sprintf("figSL-%d", L))
		out[L] = res.Metrics
	}
	return out, nil
}

// sweepBeamWidth measures one dataset across the beam_width ladder. The
// paper raises Milvus's maxReadConcurrentRatio for this experiment so the
// beam is never starved of scheduler slots; the equivalent here is raising
// the segment-task pool well beyond the core count.
func (b *Bench) sweepBeamWidth(dsName string, threads int) (map[int]Metrics, error) {
	st, err := b.Stack(dsName, milvusDiskANN())
	if err != nil {
		return nil, err
	}
	out := map[int]Metrics{}
	for _, W := range BeamWidthSweep {
		execs := st.ExecsFor(beamWidthOpts(W))
		res := b.RunCell(st, execs, RunConfig{Threads: threads, MaxReadConcurrent: 256}, fmt.Sprintf("figBW-%d", W))
		out[W] = res.Metrics
	}
	return out, nil
}

func sweepHeader(vals []int, prefix string) []interface{} {
	out := make([]interface{}, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s=%d", prefix, v)
	}
	return out
}

// runFig7 prints DiskANN throughput across search_list at 1 and 256 threads.
func runFig7(b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		fmt.Fprintf(w, "# Milvus-DiskANN throughput (QPS) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cells, err := b.sweepSearchList(dsName, threads)
			if err != nil {
				return err
			}
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", cells[L].QPS))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig8 prints DiskANN P99 latency across search_list with one thread.
func runFig8(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN P99 latency (µs) vs search_list, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
	for _, dsName := range paperDatasets() {
		cells, err := b.sweepSearchList(dsName, 1)
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, L := range SearchListSweep {
			cols = append(cols, fmtDur(cells[L].P99))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig9 prints recall@10 across search_list (pure algorithm property, no
// simulation involved).
func runFig9(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN recall@10 vs search_list")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
	for _, dsName := range paperDatasets() {
		st, err := b.Stack(dsName, milvusDiskANN())
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, L := range SearchListSweep {
			cols = append(cols, fmt.Sprintf("%.3f", st.RecallFor(searchListOpts(L))))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig10 prints total read bandwidth across search_list at 1 and 256
// threads.
func runFig10(b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		fmt.Fprintf(w, "# Milvus-DiskANN read bandwidth (MiB/s) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cells, err := b.sweepSearchList(dsName, threads)
			if err != nil {
				return err
			}
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", cells[L].ReadMiBps))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig11 prints per-query average bandwidth across search_list.
func runFig11(b *Bench, w io.Writer) error {
	for _, threads := range []int{1, 256} {
		fmt.Fprintf(w, "# Milvus-DiskANN per-query read volume (KiB/query) vs search_list, threads=%d\n", threads)
		tw := table(w, append([]interface{}{"dataset"}, sweepHeader(SearchListSweep, "L")...)...)
		for _, dsName := range paperDatasets() {
			cells, err := b.sweepSearchList(dsName, threads)
			if err != nil {
				return err
			}
			cols := []interface{}{dsName}
			for _, L := range SearchListSweep {
				cols = append(cols, fmt.Sprintf("%.1f", cells[L].KiBPerQuery()))
			}
			row(tw, cols...)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig12 prints throughput across beam_width (threads=1, as in the
// artifact's var-bwidth runs).
func runFig12(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN throughput (QPS) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cells, err := b.sweepBeamWidth(dsName, 1)
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", cells[W].QPS))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig13 prints P99 latency across beam_width.
func runFig13(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN P99 latency (µs) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cells, err := b.sweepBeamWidth(dsName, 1)
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmtDur(cells[W].P99))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig14 prints total read bandwidth across beam_width.
func runFig14(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN read bandwidth (MiB/s) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cells, err := b.sweepBeamWidth(dsName, 1)
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", cells[W].ReadMiBps))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}

// runFig15 prints per-query bandwidth across beam_width.
func runFig15(b *Bench, w io.Writer) error {
	fmt.Fprintln(w, "# Milvus-DiskANN per-query read volume (KiB/query) vs beam_width, search_list=100, threads=1")
	tw := table(w, append([]interface{}{"dataset"}, sweepHeader(BeamWidthSweep, "W")...)...)
	for _, dsName := range paperDatasets() {
		cells, err := b.sweepBeamWidth(dsName, 1)
		if err != nil {
			return err
		}
		cols := []interface{}{dsName}
		for _, W := range BeamWidthSweep {
			cols = append(cols, fmt.Sprintf("%.1f", cells[W].KiBPerQuery()))
		}
		row(tw, cols...)
	}
	return tw.Flush()
}
