package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"svdbench/internal/index"
	"svdbench/internal/index/spann"
	"svdbench/internal/vdb"
)

// pipelinePoint is one cell of the async-pipeline sweep: a look-ahead depth
// crossed with a closed-loop thread count. la == 0 is the synchronous
// baseline (no prefetch, direct per-request submission); la > 0 runs the
// full pipeline — look-ahead prefetch within a query plus coalesced read
// submission across queries.
type pipelinePoint struct {
	la      int
	threads int
}

// pipelinePoints returns the sweep grid in deterministic order.
func pipelinePoints() []pipelinePoint {
	var pts []pipelinePoint
	for _, t := range []int{1, 8} {
		for _, la := range []int{0, 2, 4, 8} {
			pts = append(pts, pipelinePoint{la: la, threads: t})
		}
	}
	return pts
}

// prefetchTotals sums the speculative-read accounting across executions.
func prefetchTotals(execs []vdb.QueryExec) index.Stats {
	var s index.Stats
	for i := range execs {
		s.Add(execs[i].Stats)
	}
	return s
}

// runPipeline measures the async batched pipeline (Extension F): LAANN-style
// look-ahead prefetch inside each query plus coalesced request submission
// across queries, against the synchronous baseline. Look-ahead changes only
// when pages are read — results, demand I/O and recall are byte-identical at
// every depth — so each column's interesting outputs are latency, QPS, the
// wasted-prefetch ratio the speculation pays, and how much of the run
// overlaps device and CPU time (the overlap a pipeline exists to create).
func runPipeline(ctx context.Context, b *Bench, w io.Writer) error {
	ds, err := b.DatasetContext(ctx, "cohere-large")
	if err != nil {
		return err
	}
	neutral := vdb.Traits{Name: "neutral", PerQueryCPU: 30 * time.Microsecond}

	// SPANN built raw over the dataset: its probe order is known after
	// navigation, so look-ahead overlaps posting j+1's contiguous read with
	// posting j's scan — the favourable case.
	sp, err := spann.Build(ds.Vectors, nil, spann.Config{Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		return err
	}
	var page int64
	sp.AssignPages(func(n int64) int64 { p := page; page += n; return p })
	nprobe := tuneUp("pipeline-spann-nprobe", 1, sp.Postings(), func(v int) float64 {
		_, r := recordRawSample(ds, sp, index.SearchOptions{NProbe: v}, 100)
		return r
	})
	// The pipeline needs a probe sequence to overlap: floor nprobe at 8 (or
	// every posting on very small builds) so the sweep exercises look-ahead
	// even when one probe already reaches the recall target. Raising nprobe
	// only raises recall, and the comparison down each look-ahead column is
	// at one fixed nprobe either way.
	if nprobe < 8 {
		nprobe = 8
		if nprobe > sp.Postings() {
			nprobe = sp.Postings()
		}
	}
	spOpts := index.SearchOptions{NProbe: nprobe}

	// DiskANN over the monolithic Milvus stack at its tuned search_list:
	// the adversarial case, where the frontier shifts between hops and
	// speculation can be wasted.
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	st, err := b.StackContext(ctx, "cohere-large", vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN})
	if err != nil {
		return err
	}

	pts := pipelinePoints()
	type cellOut struct {
		recall float64
		pf     index.Stats
		m      Metrics
	}
	spOuts := make([]cellOut, len(pts))
	daOuts := make([]cellOut, len(pts))
	cells := make([]cell, 0, 2*len(pts))
	for i, p := range pts {
		i, p := i, p
		cfg := RunConfig{Threads: p.threads, CoalesceReads: p.la > 0, LookAhead: p.la}
		cells = append(cells, cell{
			key: fmt.Sprintf("cohere-large/pipeline/spann-la%d-t%d", p.la, p.threads),
			run: func(ctx context.Context) error {
				execs, recall := recordRaw(ds, sp, spOpts.With(index.WithLookAhead(p.la)))
				out, err := RunContext(ctx, execs, neutral, b.mergeDefaults(cfg))
				spOuts[i] = cellOut{recall: recall, pf: prefetchTotals(execs), m: out.Metrics}
				return err
			},
		})
		cells = append(cells, cell{
			key: fmt.Sprintf("cohere-large/pipeline/diskann-la%d-t%d", p.la, p.threads),
			run: func(ctx context.Context) error {
				opts := st.Opts.With(index.WithLookAhead(p.la))
				execs := st.ExecsFor(opts)
				out, err := b.RunCellContext(ctx, st, execs, cfg,
					fmt.Sprintf("pipeline-la%d", p.la))
				daOuts[i] = cellOut{recall: st.RecallFor(opts), pf: prefetchTotals(execs), m: out.Metrics}
				return err
			},
		})
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return err
	}

	tw := table(w, "index", "look-ahead", "threads", "recall@10", "dev reads/query", "wasted pf", "QPS", "mean (µs)", "P99 (µs)", "overlap", "mean QD")
	emit := func(name string, outs []cellOut) {
		for i, p := range pts {
			o := outs[i]
			readsPerQ := 0.0
			if o.m.Served > 0 {
				readsPerQ = float64(o.m.ReadOps) / float64(o.m.Served)
			}
			row(tw, name,
				fmt.Sprintf("%d", p.la),
				fmt.Sprintf("%d", p.threads),
				fmt.Sprintf("%.3f", o.recall),
				fmt.Sprintf("%.1f", readsPerQ),
				fmt.Sprintf("%.1f%%", 100*o.pf.WastedPrefetchRatio()),
				fmt.Sprintf("%.1f", o.m.QPS),
				fmtDur(o.m.MeanLatency),
				fmtDur(o.m.P99),
				fmt.Sprintf("%.1f%%", 100*o.m.OverlapFrac),
				fmt.Sprintf("%.1f", o.m.MeanQueueDepth))
		}
	}
	emit(fmt.Sprintf("SPANN (nprobe=%d)", spOpts.NProbe), spOuts)
	emit(fmt.Sprintf("DiskANN (W=%d, L=%d)", st.Opts.BeamWidth, st.Opts.SearchList), daOuts)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(Look-ahead changes when pages are read, never what the search demands: recall and")
	fmt.Fprintln(w, " demand I/O are constant down each column while prefetch overlaps the next read with")
	fmt.Fprintln(w, " the current scan. Device reads/query grow with the wasted-speculation ratio — the")
	fmt.Fprintln(w, " bandwidth the pipeline spends to shorten the critical path. SPANN's known probe")
	fmt.Fprintln(w, " order pipelines cleanly; DiskANN's shifting frontier wastes part of its speculation.)")
	return nil
}
