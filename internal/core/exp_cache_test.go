package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// monoDiskANN is the monolithic Milvus-DiskANN setup the cache experiment
// measures.
func monoDiskANN() vdb.Setup {
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	return vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN}
}

// TestCacheReducesReadOpsAtIdenticalRecall is the PR's acceptance criterion:
// a static cache of at least beam-width nodes must yield strictly fewer
// device read operations at byte-identical results (hence identical recall).
func TestCacheReducesReadOpsAtIdenticalRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an index stack")
	}
	b := tinyBench(t)
	st, err := b.Stack("cohere-small", monoDiskANN())
	if err != nil {
		t.Fatal(err)
	}
	cached := st.Opts.With(
		index.WithNodeCacheNodes(st.Opts.BeamWidth),
		index.WithNodeCachePolicy(index.NodeCacheStatic),
	)

	baseExecs := st.ExecsFor(st.Opts)
	cachedExecs := st.ExecsFor(cached)
	for qi := range baseExecs {
		if !reflect.DeepEqual(baseExecs[qi].IDs, cachedExecs[qi].IDs) {
			t.Fatalf("query %d: cached results differ from uncached", qi)
		}
	}
	if r := st.RecallFor(cached); r != st.Recall {
		t.Fatalf("cached recall %v != uncached %v", r, st.Recall)
	}

	base := b.RunCell(st, baseExecs, RunConfig{Threads: 4}, "cache-accept-off")
	hit := b.RunCell(st, cachedExecs, RunConfig{Threads: 4}, "cache-accept-static")
	if base.Metrics.CacheHits != 0 {
		t.Errorf("uncached run reports %d cache hits", base.Metrics.CacheHits)
	}
	if hit.Metrics.CacheHits == 0 {
		t.Error("cached run reports no cache hits")
	}
	if hit.Metrics.ReadOps >= base.Metrics.ReadOps {
		t.Errorf("cached read ops %d not strictly below uncached %d", hit.Metrics.ReadOps, base.Metrics.ReadOps)
	}
}

// renderCache runs the cache experiment on a fresh bench at the given worker
// count with fixed tiny-scale settings (the golden file's contract).
func renderCache(t *testing.T, workers int) string {
	t.Helper()
	b := NewBench(dataset.ScaleTiny, "")
	b.RunDefaults = RunConfig{Duration: 100 * time.Millisecond, Repetitions: 2, Cores: 8}
	b.Workers = workers
	exp, err := ExperimentByID("cache")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.RunContext(context.Background(), b, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCacheExperimentGolden pins the experiment's table byte-for-byte: the
// grid order and every formatted figure must be identical at any -parallel
// worker count and across runs (run with -update to regenerate testdata).
func TestCacheExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds index stacks")
	}
	seq := renderCache(t, 1)
	par := renderCache(t, 8)
	if seq != par {
		t.Fatalf("8-worker output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	for _, want := range []string{"hit rate", "reads/query", "static", "lru", "off"} {
		if !strings.Contains(seq, want) {
			t.Errorf("cache output missing %q:\n%s", want, seq)
		}
	}
	golden := filepath.Join("testdata", "cache_tiny.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with go test -run TestCacheExperimentGolden -update): %v", err)
	}
	if seq != string(want) {
		t.Errorf("cache experiment output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", seq, want)
	}
}
