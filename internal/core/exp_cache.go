package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"svdbench/internal/index"
	"svdbench/internal/index/spann"
	"svdbench/internal/vdb"
)

// cacheSizes derives the node-cache capacity ladder from the dataset size:
// roughly 1.5 %, 6 % and 25 % of the indexed vectors, deduplicated so tiny
// datasets do not sweep the same capacity twice.
func cacheSizes(n int) []int {
	var out []int
	for _, div := range []int{64, 16, 4} {
		s := n / div
		if s < 1 {
			s = 1
		}
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// cachePoint is one cell of the node-cache sweep; the zero policy ("off")
// is the uncached baseline.
type cachePoint struct {
	policy string
	nodes  int
}

// cachePoints returns the sweep grid: the baseline first, then every policy
// at every capacity, in deterministic order.
func cachePoints(n int) []cachePoint {
	pts := []cachePoint{{policy: "off"}}
	for _, pol := range []string{index.NodeCacheStatic, index.NodeCacheLRU} {
		for _, s := range cacheSizes(n) {
			pts = append(pts, cachePoint{policy: pol, nodes: s})
		}
	}
	return pts
}

// cacheOpts applies a sweep point to base search options.
func cacheOpts(base index.SearchOptions, p cachePoint) index.SearchOptions {
	if p.nodes <= 0 {
		return base
	}
	return base.With(index.WithNodeCacheNodes(p.nodes), index.WithNodeCachePolicy(p.policy))
}

// runCache sweeps the index-aware node cache across capacity and policy for
// both storage-based index families (Extension E). Because the cache is
// resolved at record time and only absorbs reads — it never alters the
// search frontier — recall is identical down the column while device read
// traffic falls with hit rate; the interesting outputs are the hit rate,
// the per-query read count, and what the saved I/O buys in latency.
func runCache(ctx context.Context, b *Bench, w io.Writer) error {
	ds, err := b.DatasetContext(ctx, "cohere-large")
	if err != nil {
		return err
	}
	neutral := vdb.Traits{Name: "neutral", PerQueryCPU: 30 * time.Microsecond}

	// DiskANN over the monolithic Milvus stack (shared with Ext-C/D), at
	// its tuned search_list so every row sits at the same recall target.
	mono := vdb.Milvus()
	mono.Name = "milvus-monolithic"
	mono.SegmentCapacity = 0
	st, err := b.StackContext(ctx, "cohere-large", vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN})
	if err != nil {
		return err
	}

	// SPANN built raw over the same vectors, nprobe tuned to the recall
	// target (the Ext-D construction).
	sp, err := spann.Build(ds.Vectors, nil, spann.Config{Metric: ds.Spec.Metric, Seed: 1})
	if err != nil {
		return err
	}
	var page int64
	sp.AssignPages(func(n int64) int64 { p := page; page += n; return p })
	spOpts := index.SearchOptions{NProbe: tuneUp("cache-spann-nprobe", 1, sp.Postings(), func(v int) float64 {
		_, r := recordRawSample(ds, sp, index.SearchOptions{NProbe: v}, 100)
		return r
	})}

	pts := cachePoints(ds.Vectors.Len())
	type cellOut struct {
		recall float64
		m      Metrics
	}
	daOuts := make([]cellOut, len(pts))
	spOuts := make([]cellOut, len(pts))
	cells := make([]cell, 0, 2*len(pts))
	for i, p := range pts {
		i, p := i, p
		cells = append(cells, cell{
			key: fmt.Sprintf("cohere-large/cache/diskann-%s-%d", p.policy, p.nodes),
			run: func(ctx context.Context) error {
				opts := cacheOpts(st.Opts, p)
				execs := st.ExecsFor(opts)
				out, err := b.RunCellContext(ctx, st, execs, RunConfig{Threads: 4},
					fmt.Sprintf("cache-%s-%d", p.policy, p.nodes))
				daOuts[i] = cellOut{recall: st.RecallFor(opts), m: out.Metrics}
				return err
			},
		})
		cells = append(cells, cell{
			key: fmt.Sprintf("cohere-large/cache/spann-%s-%d", p.policy, p.nodes),
			run: func(ctx context.Context) error {
				execs, recall := recordRaw(ds, sp, cacheOpts(spOpts, p))
				out, err := RunContext(ctx, execs, neutral, b.mergeDefaults(RunConfig{Threads: 4}))
				spOuts[i] = cellOut{recall: recall, m: out.Metrics}
				return err
			},
		})
	}
	if err := b.runGrid(ctx, cells); err != nil {
		return err
	}

	tw := table(w, "index", "policy", "cache nodes", "recall@10", "hit rate", "reads/query", "QPS (t=4)", "mean (µs)", "P99 (µs)")
	emit := func(name string, outs []cellOut) {
		for i, p := range pts {
			o := outs[i]
			readsPerQ := 0.0
			if o.m.Served > 0 {
				readsPerQ = float64(o.m.ReadOps) / float64(o.m.Served)
			}
			row(tw, name, p.policy,
				fmt.Sprintf("%d", p.nodes),
				fmt.Sprintf("%.3f", o.recall),
				fmt.Sprintf("%.1f%%", 100*o.m.CacheHitRate),
				fmt.Sprintf("%.1f", readsPerQ),
				fmt.Sprintf("%.1f", o.m.QPS),
				fmtDur(o.m.MeanLatency),
				fmtDur(o.m.P99))
		}
	}
	emit(fmt.Sprintf("DiskANN (W=%d, L=%d)", st.Opts.BeamWidth, st.Opts.SearchList), daOuts)
	emit(fmt.Sprintf("SPANN (nprobe=%d)", spOpts.NProbe), spOuts)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(The cache is consulted before every beam or posting read and never changes results:")
	fmt.Fprintln(w, " recall is constant down each column while device reads/query falls with hit rate.)")
	return nil
}
