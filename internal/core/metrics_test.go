package core

import (
	"math"
	"testing"
	"time"

	"svdbench/internal/sim"
)

func TestPercentile(t *testing.T) {
	var samples []sim.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, sim.Duration(i)*time.Millisecond)
	}
	if got := Percentile(samples, 0.99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v, want 99ms", got)
	}
	if got := Percentile(samples, 0.5); got != 50*time.Millisecond {
		t.Errorf("P50 = %v, want 50ms", got)
	}
	if got := Percentile(samples, 1.0); got != 100*time.Millisecond {
		t.Errorf("P100 = %v, want 100ms", got)
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty P99 = %v", got)
	}
	one := []sim.Duration{7 * time.Millisecond}
	if got := Percentile(one, 0.99); got != 7*time.Millisecond {
		t.Errorf("single-sample P99 = %v", got)
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	samples := []sim.Duration{5, 1, 3}
	Percentile(samples, 0.99)
	if samples[0] != 5 || samples[1] != 1 || samples[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanDuration(t *testing.T) {
	if got := MeanDuration([]sim.Duration{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v", got)
	}
	if got := MeanDuration(nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-9 {
		t.Errorf("mean=%v std=%v, want 5, 2", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty MeanStd nonzero")
	}
}

func TestAggregateRuns(t *testing.T) {
	reps := []Metrics{
		{QPS: 100, P99: 10 * time.Millisecond, CPUUtil: 0.4, Served: 100, BytesPerQuery: 1000},
		{QPS: 200, P99: 20 * time.Millisecond, CPUUtil: 0.6, Served: 200, BytesPerQuery: 3000},
	}
	agg := AggregateRuns(reps)
	if agg.QPS != 150 {
		t.Errorf("mean QPS = %v", agg.QPS)
	}
	if agg.QPSStd != 50 {
		t.Errorf("QPS std = %v", agg.QPSStd)
	}
	if agg.P99 != 15*time.Millisecond {
		t.Errorf("mean P99 = %v", agg.P99)
	}
	if agg.CPUUtil != 0.5 {
		t.Errorf("mean CPU = %v", agg.CPUUtil)
	}
	if agg.Served != 300 {
		t.Errorf("served = %d", agg.Served)
	}
	if agg.BytesPerQuery != 2000 {
		t.Errorf("bytes/query = %v", agg.BytesPerQuery)
	}
	if AggregateRuns(nil).QPS != 0 {
		t.Error("empty aggregate nonzero")
	}
}

func TestMetricsFormatting(t *testing.T) {
	m := Metrics{QPS: 10, BytesPerQuery: 2048}
	if m.KiBPerQuery() != 2 {
		t.Errorf("KiB/query = %v", m.KiBPerQuery())
	}
	if m.String() == "" {
		t.Error("empty string")
	}
	if fmtDur(1500*time.Microsecond) != "1500" {
		t.Errorf("fmtDur = %s", fmtDur(1500*time.Microsecond))
	}
}
