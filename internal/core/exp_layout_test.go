package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
)

func TestLayoutExperimentRegistered(t *testing.T) {
	exp, err := ExperimentByID("layout")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Paper != "Extension G" {
		t.Errorf("layout experiment maps to %q, want Extension G", exp.Paper)
	}
}

// TestLayoutCutsDeviceReadsAtEqualRecall is the PR's acceptance criterion:
// at the ID baseline's recall (±0.5 pt), the page-node layout must issue at
// least 30% fewer device reads per query on the 768-d segment.
func TestLayoutCutsDeviceReadsAtEqualRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an index stack")
	}
	b := tinyBench(t)
	st, err := b.Stack("cohere-large", monoDiskANN())
	if err != nil {
		t.Fatal(err)
	}

	pageEq := st.Opts.With(index.WithLayout(index.LayoutPage))
	hi := 2 * st.Opts.SearchList
	if hi < 16 {
		hi = 16
	}
	target := st.Recall - 0.005
	tunedL := tuneUpTo("layout-accept-L", 1, hi, target, func(v int) float64 {
		return st.RecallFor(pageEq.With(index.WithSearchList(v)))
	})
	pageOpts := pageEq.With(index.WithSearchList(tunedL))
	if r := st.RecallFor(pageOpts); r < target {
		t.Fatalf("tuned page recall %.3f below target %.3f (L=%d)", r, target, tunedL)
	}

	idOut := b.RunCell(st, st.ExecsFor(st.Opts), RunConfig{Threads: 4}, "layout-accept-id")
	pgOut := b.RunCell(st, st.ExecsFor(pageOpts), RunConfig{Threads: 4}, "layout-accept-page")
	if idOut.Metrics.Served == 0 || pgOut.Metrics.Served == 0 {
		t.Fatalf("no served queries: id %d, page %d", idOut.Metrics.Served, pgOut.Metrics.Served)
	}
	idReads := float64(idOut.Metrics.ReadOps) / float64(idOut.Metrics.Served)
	pgReads := float64(pgOut.Metrics.ReadOps) / float64(pgOut.Metrics.Served)
	if pgReads > 0.7*idReads {
		t.Errorf("page layout reads/query = %.2f, want ≤ 70%% of id's %.2f", pgReads, idReads)
	}
}

// renderLayout runs the layout experiment on a fresh bench at the given
// worker count with fixed tiny-scale settings (the golden file's contract).
func renderLayout(t *testing.T, workers int) string {
	t.Helper()
	b := NewBench(dataset.ScaleTiny, "")
	b.RunDefaults = RunConfig{Duration: 100 * time.Millisecond, Repetitions: 2, Cores: 8}
	b.Workers = workers
	exp, err := ExperimentByID("layout")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.RunContext(context.Background(), b, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestLayoutExperimentGolden pins the experiment's table byte-for-byte: the
// cell order and every formatted figure must be identical at any -parallel
// worker count and across runs (run with -update to regenerate testdata).
func TestLayoutExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds index stacks")
	}
	seq := renderLayout(t, 1)
	par := renderLayout(t, 8)
	if seq != par {
		t.Fatalf("8-worker output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	for _, want := range []string{"dev reads/query", "page (equal L)", "page (tuned L)", "recall@10"} {
		if !strings.Contains(seq, want) {
			t.Errorf("layout output missing %q:\n%s", want, seq)
		}
	}
	golden := filepath.Join("testdata", "layout_tiny.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with go test -run TestLayoutExperimentGolden -update): %v", err)
	}
	if seq != string(want) {
		t.Errorf("layout experiment output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", seq, want)
	}
}
