package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/vdb"
)

// tinyBench builds a bench at the tiny scale with fast run defaults.
func tinyBench(t *testing.T) *Bench {
	t.Helper()
	b := NewBench(dataset.ScaleTiny, t.TempDir())
	b.RunDefaults = RunConfig{Duration: 100 * time.Millisecond, Repetitions: 1, Cores: 20}
	return b
}

func TestBenchDatasetCachedAndScaled(t *testing.T) {
	b := tinyBench(t)
	ds, err := b.Dataset("cohere-small")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Spec.Dim != 768 {
		t.Errorf("dim = %d", ds.Spec.Dim)
	}
	again, err := b.Dataset("cohere-small")
	if err != nil || again != ds {
		t.Error("dataset not memoised")
	}
	if _, err := b.Dataset("unknown"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestStackTunesToTargetRecall(t *testing.T) {
	b := tinyBench(t)
	st, err := b.Stack("cohere-small", vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recall < TargetRecall-0.02 {
		t.Errorf("tuned recall = %v, want ≥%v", st.Recall, TargetRecall)
	}
	if st.Opts.EfSearch < PaperK {
		t.Errorf("efSearch = %d below k", st.Opts.EfSearch)
	}
	if len(st.Execs) != st.Dataset.Queries.Len() {
		t.Errorf("recorded %d execs", len(st.Execs))
	}
	// Memoised.
	again, err := b.Stack("cohere-small", vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
	if err != nil || again != st {
		t.Error("stack not memoised")
	}
}

func TestStackDiskANNRecallAtMinimumSearchList(t *testing.T) {
	b := tinyBench(t)
	st, err := b.Stack("cohere-small", milvusDiskANN())
	if err != nil {
		t.Fatal(err)
	}
	// Tab. II: DiskANN reaches the target at the minimum search_list.
	if st.Opts.SearchList != 10 {
		t.Errorf("search_list = %d, want 10", st.Opts.SearchList)
	}
	if st.Recall < 0.85 {
		t.Errorf("DiskANN recall at L=10 = %v, want high", st.Recall)
	}
	// DiskANN executions carry I/O.
	pages := 0
	for _, s := range st.Execs[0].Segments {
		for _, step := range s {
			pages += len(step.Pages)
		}
	}
	if pages == 0 {
		t.Error("DiskANN exec recorded no pages")
	}
}

func TestHNSWParamsSharedAcrossEngines(t *testing.T) {
	b := tinyBench(t)
	milvus, err := b.Stack("openai-small", vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexHNSW})
	if err != nil {
		t.Fatal(err)
	}
	qdrant, err := b.Stack("openai-small", vdb.Setup{Engine: vdb.Qdrant(), Index: vdb.IndexHNSW})
	if err != nil {
		t.Fatal(err)
	}
	if qdrant.Opts.EfSearch != milvus.Opts.EfSearch {
		t.Errorf("qdrant ef=%d, milvus ef=%d: paper shares the tuned value", qdrant.Opts.EfSearch, milvus.Opts.EfSearch)
	}
}

func TestLanceIVFPQReusesMilvusNProbe(t *testing.T) {
	b := tinyBench(t)
	milvus, err := b.Stack("cohere-small", vdb.Setup{Engine: vdb.Milvus(), Index: vdb.IndexIVFFlat})
	if err != nil {
		t.Fatal(err)
	}
	lance, err := b.Stack("cohere-small", vdb.Setup{Engine: vdb.LanceDB(), Index: vdb.IndexIVFPQ})
	if err != nil {
		t.Fatal(err)
	}
	if lance.Opts.NProbe != milvus.Opts.NProbe {
		t.Errorf("lance nprobe=%d, milvus nprobe=%d", lance.Opts.NProbe, milvus.Opts.NProbe)
	}
	// PQ costs accuracy (the paper's parenthesised column); at tiny scale
	// the loss can round away, so only assert it never helps.
	if lance.Recall > milvus.Recall+1e-9 {
		t.Errorf("lance recall %v above milvus %v", lance.Recall, milvus.Recall)
	}
	// The storage-based IVF_PQ must actually issue I/O.
	pages := 0
	for _, seg := range lance.Execs[0].Segments {
		for _, s := range seg {
			pages += len(s.Pages)
		}
	}
	if pages == 0 {
		t.Error("lance IVF_PQ exec recorded no pages")
	}
}

func TestExecsForMemoised(t *testing.T) {
	b := tinyBench(t)
	st, err := b.Stack("cohere-small", milvusDiskANN())
	if err != nil {
		t.Fatal(err)
	}
	opts := index.SearchOptions{SearchList: 20, BeamWidth: 4}
	a := st.ExecsFor(opts)
	bb := st.ExecsFor(opts)
	if &a[0] != &bb[0] {
		t.Error("variant executions not memoised")
	}
	// Tuned executions plus the explicit variant.
	if len(sortedKeys(st.prep.variants)) != 2 {
		t.Errorf("variant cache keys = %v", sortedKeys(st.prep.variants))
	}
}

func TestRunCellMemoised(t *testing.T) {
	b := tinyBench(t)
	st, err := b.Stack("cohere-small", vdb.Setup{Engine: vdb.Qdrant(), Index: vdb.IndexHNSW})
	if err != nil {
		t.Fatal(err)
	}
	a := b.RunCell(st, st.Execs, RunConfig{Threads: 2}, "x")
	c := b.RunCell(st, st.Execs, RunConfig{Threads: 2}, "x")
	if a.Metrics.QPS != c.Metrics.QPS {
		t.Error("run cell not memoised")
	}
}

func TestTuneUp(t *testing.T) {
	// Recall model: passes at v ≥ 37.
	eval := func(v int) float64 {
		if v >= 37 {
			return 0.95
		}
		return 0.5
	}
	if got := tuneUp("x", 1, 1000, eval); got != 37 {
		t.Errorf("tuneUp = %d, want 37", got)
	}
	// Unreachable target returns hi.
	if got := tuneUp("x", 1, 8, func(int) float64 { return 0.1 }); got != 8 {
		t.Errorf("unreachable tuneUp = %d, want 8", got)
	}
	// Passing at lo returns lo.
	if got := tuneUp("x", 5, 100, func(int) float64 { return 1 }); got != 5 {
		t.Errorf("lo-pass tuneUp = %d, want 5", got)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 23 {
		t.Errorf("%d experiments, want 23 (2 tables + 14 figures + 7 extensions)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.run == nil || e.Paper == "" || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ExperimentByID("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1Experiment(t *testing.T) {
	b := tinyBench(t)
	var buf bytes.Buffer
	exp, _ := ExperimentByID("table1")
	if err := exp.Run(b, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"324.3 KIOPS", "1.3 MIOPS", "7.2 GiB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9ExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all four DiskANN stacks")
	}
	b := tinyBench(t)
	var buf bytes.Buffer
	exp, _ := ExperimentByID("fig9")
	if err := exp.Run(b, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cohere-small") || !strings.Contains(buf.String(), "L=100") {
		t.Errorf("fig9 output malformed:\n%s", buf.String())
	}
}

func TestDescribeOpts(t *testing.T) {
	if describeOpts(vdb.IndexIVFFlat, index.SearchOptions{NProbe: 7}) != "nprobe=7" {
		t.Error("ivf describe wrong")
	}
	if describeOpts(vdb.IndexHNSW, index.SearchOptions{EfSearch: 9}) != "efSearch=9" {
		t.Error("hnsw describe wrong")
	}
	if !strings.Contains(describeOpts(vdb.IndexDiskANN, index.SearchOptions{SearchList: 10, BeamWidth: 4}), "search_list=10") {
		t.Error("diskann describe wrong")
	}
}
