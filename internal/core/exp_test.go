package core

import (
	"bytes"
	"strings"
	"testing"
)

// runExp executes one experiment on a tiny bench and returns its output.
func runExp(t *testing.T, id string) string {
	t.Helper()
	if testing.Short() {
		t.Skipf("%s builds index stacks", id)
	}
	b := tinyBench(t)
	exp, err := ExperimentByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.Run(b, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestExtAHybridSmoke(t *testing.T) {
	out := runExp(t, "extA")
	if !strings.Contains(out, "writer threads") {
		t.Errorf("extA output malformed:\n%s", out)
	}
	// The zero-writer row must exist and carry zero write bandwidth.
	if !strings.Contains(out, "0.0") {
		t.Errorf("extA output missing baseline write bandwidth:\n%s", out)
	}
}

func TestExtBFilteredSmoke(t *testing.T) {
	out := runExp(t, "extB")
	for _, want := range []string{"unfiltered", "class=rare (10%)", "recall@10"} {
		if !strings.Contains(out, want) {
			t.Errorf("extB output missing %q:\n%s", want, out)
		}
	}
}

func TestExtCAblationSmoke(t *testing.T) {
	out := runExp(t, "extC")
	for _, want := range []string{"beam width", "milvus-monolithic", "segments"} {
		if !strings.Contains(out, want) {
			t.Errorf("extC output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5TimelineSmoke(t *testing.T) {
	out := runExp(t, "fig5")
	if !strings.Contains(out, "threads=1") || !strings.Contains(out, "threads=256") {
		t.Errorf("fig5 output malformed:\n%s", out)
	}
}

func TestFig6PerQuerySmoke(t *testing.T) {
	out := runExp(t, "fig6")
	if !strings.Contains(out, "KiB/query") || !strings.Contains(out, "4KiB fraction") {
		t.Errorf("fig6 output malformed:\n%s", out)
	}
}
