package sim

// CPU models a fixed pool of identical cores. Compute bursts occupy one core
// for a span of virtual time; when all cores are busy, bursts queue in FIFO
// order behind a fair scheduler. The model matches the paper's testbed
// configuration (Sec. III-A): a fixed core count with hyper-threading and
// frequency boost disabled, so one burst of work always costs the same
// virtual time.
//
// Busy time is accounted cumulatively so a caller can compute utilisation
// over any window, which is how Figure 4's global CPU usage is produced.
type CPU struct {
	sem   *Semaphore
	cores int
	busy  Duration // cumulative core-busy virtual time

	inUse  int                      // bursts currently holding cores
	notify func(at Time, busy bool) // idle↔busy transition hook
}

// NewCPU creates a CPU with the given number of cores.
func NewCPU(k *Kernel, cores int) *CPU {
	return &CPU{sem: NewSemaphore(k, "cpu", int64(cores)), cores: cores}
}

// Cores returns the number of cores.
func (c *CPU) Cores() int { return c.cores }

// SetBusyNotify installs a hook called on every idle↔busy transition: fn is
// invoked with busy=true when the first burst starts executing on a core and
// busy=false when the last one finishes. The tracer uses it to measure how
// much of a run the CPU and the device overlap. Pass nil to detach.
func (c *CPU) SetBusyNotify(fn func(at Time, busy bool)) { c.notify = fn }

// burstStart marks one burst holding a core, firing the busy hook on the
// idle→busy edge.
func (c *CPU) burstStart(at Time) {
	c.inUse++
	if c.inUse == 1 && c.notify != nil {
		c.notify(at, true)
	}
}

// burstEnd marks one burst done, firing the busy hook on the busy→idle edge.
func (c *CPU) burstEnd(at Time) {
	c.inUse--
	if c.inUse == 0 && c.notify != nil {
		c.notify(at, false)
	}
}

// Use occupies one core for d of virtual time, queueing if all cores are
// busy. Zero and negative durations are no-ops.
func (c *CPU) Use(e *Env, d Duration) {
	if d <= 0 {
		return
	}
	c.sem.Acquire(e, 1)
	c.burstStart(e.Now())
	e.Sleep(d)
	c.burstEnd(e.Now())
	c.sem.Release(1)
	c.busy += d
}

// UseN occupies n cores for d of virtual time each (as a single gang
// acquisition). It models a burst that is perfectly parallel across n cores.
func (c *CPU) UseN(e *Env, n int, d Duration) {
	if d <= 0 || n <= 0 {
		return
	}
	if n > c.cores {
		n = c.cores
	}
	c.sem.Acquire(e, int64(n))
	c.burstStart(e.Now())
	e.Sleep(d)
	c.burstEnd(e.Now())
	c.sem.Release(int64(n))
	c.busy += Duration(n) * d
}

// BusyTime returns cumulative core-busy virtual time since creation.
func (c *CPU) BusyTime() Duration { return c.busy }

// Utilization returns mean CPU utilisation in [0,1] given the busy time at
// the start of a window, the busy time at its end, and the window length.
func Utilization(busyStart, busyEnd Duration, window Duration, cores int) float64 {
	if window <= 0 || cores <= 0 {
		return 0
	}
	return float64(busyEnd-busyStart) / (float64(window) * float64(cores))
}

// InUse returns the number of cores currently occupied.
func (c *CPU) InUse() int { return int(c.sem.Held()) }

// QueueLen returns the number of bursts waiting for a core.
func (c *CPU) QueueLen() int { return c.sem.QueueLen() }
