package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: under random workloads, a semaphore never exceeds its capacity
// and every process completes.
func TestPropertySemaphoreNeverOverCommits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		capacity := int64(1 + r.Intn(4))
		sem := NewSemaphore(k, "s", capacity)
		cpu := NewCPU(k, 2)
		procs := 3 + r.Intn(10)
		violated := false
		done := 0
		for i := 0; i < procs; i++ {
			hold := time.Duration(1+r.Intn(500)) * time.Microsecond
			n := int64(1 + r.Intn(int(capacity)))
			start := time.Duration(r.Intn(200)) * time.Microsecond
			k.Spawn("p", func(e *Env) {
				e.Sleep(start)
				sem.Acquire(e, n)
				if sem.Held() > capacity {
					violated = true
				}
				cpu.Use(e, hold)
				sem.Release(n)
				done++
			})
		}
		k.RunAll()
		return !violated && done == procs && sem.Held() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the virtual clock never moves backwards across random event
// sequences.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		ok := true
		var last Time
		for i := 0; i < 8; i++ {
			k.Spawn("p", func(e *Env) {
				for j := 0; j < 5; j++ {
					e.Sleep(time.Duration(r.Intn(1000)) * time.Microsecond)
					if e.Now() < last {
						ok = false
					}
					last = e.Now()
				}
			})
		}
		k.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total CPU busy time equals the sum of requested bursts,
// regardless of contention.
func TestPropertyCPUBusyConserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		cpu := NewCPU(k, 1+r.Intn(4))
		var want Duration
		for i := 0; i < 10; i++ {
			d := time.Duration(1+r.Intn(300)) * time.Microsecond
			want += d
			k.Spawn("p", func(e *Env) { cpu.Use(e, d) })
		}
		k.RunAll()
		return cpu.BusyTime() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a FIFO queue delivers every item exactly once in order, for any
// interleaving of producers and a consumer.
func TestPropertyQueueExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		q := NewQueue(k)
		producers := 1 + r.Intn(4)
		perProducer := 1 + r.Intn(10)
		var got []int
		k.Spawn("consumer", func(e *Env) {
			for {
				v, ok := q.Get(e)
				if !ok {
					return
				}
				got = append(got, v.(int))
			}
		})
		g := make(chan struct{}) // not used; keep spawn order deterministic
		_ = g
		remaining := producers
		for p := 0; p < producers; p++ {
			p := p
			k.Spawn("producer", func(e *Env) {
				for j := 0; j < perProducer; j++ {
					e.Sleep(time.Duration(r.Intn(100)) * time.Microsecond)
					q.Put(p*1000 + j)
				}
				remaining--
				if remaining == 0 {
					q.Close()
				}
			})
		}
		k.RunAll()
		if len(got) != producers*perProducer {
			return false
		}
		// Per-producer order must be preserved.
		lastSeen := map[int]int{}
		for _, v := range got {
			p, j := v/1000, v%1000
			if prev, ok := lastSeen[p]; ok && j <= prev {
				return false
			}
			lastSeen[p] = j
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
