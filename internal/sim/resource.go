package sim

import "fmt"

// Semaphore is a counting semaphore with a FIFO wait queue. Acquire order is
// strictly first-come-first-served, which keeps simulations deterministic and
// models fair schedulers.
type Semaphore struct {
	k        *Kernel
	name     string
	capacity int64
	held     int64
	waiters  []semWaiter

	// accounting
	totalWaits   int64
	totalWaitDur Duration
	maxQueue     int
}

type semWaiter struct {
	p     *proc
	n     int64
	since Time
	env   *Env
}

// NewSemaphore creates a semaphore with the given capacity.
func NewSemaphore(k *Kernel, name string, capacity int64) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q capacity must be positive, got %d", name, capacity))
	}
	return &Semaphore{k: k, name: name, capacity: capacity}
}

// Capacity returns the semaphore's total capacity.
func (s *Semaphore) Capacity() int64 { return s.capacity }

// Held returns the number of units currently held.
func (s *Semaphore) Held() int64 { return s.held }

// QueueLen returns the number of processes waiting to acquire.
func (s *Semaphore) QueueLen() int { return len(s.waiters) }

// Acquire obtains n units, blocking in FIFO order until they are available.
func (s *Semaphore) Acquire(e *Env, n int64) {
	if n <= 0 || n > s.capacity {
		panic(fmt.Sprintf("sim: semaphore %q: acquire %d with capacity %d", s.name, n, s.capacity))
	}
	if len(s.waiters) == 0 && s.held+n <= s.capacity {
		s.held += n
		return
	}
	s.totalWaits++
	s.waiters = append(s.waiters, semWaiter{p: e.p, n: n, since: e.k.now, env: e})
	if len(s.waiters) > s.maxQueue {
		s.maxQueue = len(s.waiters)
	}
	e.parkNoEvent()
}

// TryAcquire obtains n units if immediately available, reporting success.
func (s *Semaphore) TryAcquire(n int64) bool {
	if n <= 0 || n > s.capacity {
		return false
	}
	if len(s.waiters) == 0 && s.held+n <= s.capacity {
		s.held += n
		return true
	}
	return false
}

// Release returns n units and wakes as many FIFO waiters as now fit.
func (s *Semaphore) Release(n int64) {
	s.held -= n
	if s.held < 0 {
		panic(fmt.Sprintf("sim: semaphore %q released below zero", s.name))
	}
	s.dispatch()
}

// dispatch grants the semaphore to queued waiters in FIFO order while
// capacity remains. A large waiter at the head blocks smaller ones behind it
// (no barging), preserving fairness.
func (s *Semaphore) dispatch() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.held+w.n > s.capacity {
			return
		}
		s.held += w.n
		s.totalWaitDur += s.k.now.Sub(w.since)
		s.waiters = s.waiters[1:]
		s.k.unpark(w.p)
	}
}

// WaitStats reports the number of acquisitions that had to wait, the total
// virtual time spent waiting, and the maximum queue length observed.
func (s *Semaphore) WaitStats() (waits int64, total Duration, maxQueue int) {
	return s.totalWaits, s.totalWaitDur, s.maxQueue
}

// Group is a fork/join helper: a parent process spawns children with Go and
// blocks in Wait until all of them finish. It mirrors sync.WaitGroup for
// simulated processes.
type Group struct {
	k       *Kernel
	pending int
	waiter  *proc
}

// NewGroup creates an empty group bound to the environment's kernel.
func (e *Env) NewGroup() *Group { return &Group{k: e.k} }

// Go spawns fn as a child process counted by the group. The kernel calls the
// group back when the child finishes, so Go adds no wrapper closure around
// fn.
func (g *Group) Go(name string, fn func(*Env)) {
	g.pending++
	g.k.spawn(name, g.k.now, fn, nil, g)
}

// GoRunner is Go for a reusable Runner body (no closure allocation).
func (g *Group) GoRunner(name string, r Runner) {
	g.pending++
	g.k.spawn(name, g.k.now, nil, r, g)
}

// done is the kernel's completion callback for a grouped process.
func (g *Group) done() {
	g.pending--
	if g.pending == 0 && g.waiter != nil {
		w := g.waiter
		g.waiter = nil
		g.k.unpark(w)
	}
}

// Wait blocks the calling process until every child spawned with Go has
// finished. Only one process may Wait on a group at a time.
func (g *Group) Wait(e *Env) {
	if g.pending == 0 {
		return
	}
	if g.waiter != nil {
		panic("sim: concurrent Wait on Group")
	}
	g.waiter = e.p
	e.parkNoEvent()
}

// AllocGroup returns an idle group from the kernel's free list (or a fresh
// one). Fork/join-per-step hot paths pair it with ReleaseGroup; NewGroup
// remains the unpooled constructor.
func (k *Kernel) AllocGroup() *Group {
	if n := len(k.groupPool); n > 0 {
		g := k.groupPool[n-1]
		k.groupPool = k.groupPool[:n-1]
		return g
	}
	return &Group{k: k}
}

// ReleaseGroup returns a quiescent group (no pending children, no waiter) to
// the free list.
func (k *Kernel) ReleaseGroup(g *Group) {
	if g.pending != 0 || g.waiter != nil {
		panic("sim: ReleaseGroup of an active group")
	}
	k.groupPool = append(k.groupPool, g)
}

// Queue is an unbounded FIFO of interface values with blocking Get,
// supporting close semantics like a Go channel. It models work queues inside
// the simulated database engines.
type Queue struct {
	k      *Kernel
	items  []interface{}
	getter []*proc
	closed bool
}

// NewQueue creates an empty open queue.
func NewQueue(k *Kernel) *Queue { return &Queue{k: k} }

// Put appends v and wakes one blocked getter, if any. Put on a closed queue
// panics.
func (q *Queue) Put(v interface{}) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, v)
	if len(q.getter) > 0 {
		p := q.getter[0]
		q.getter = q.getter[1:]
		q.k.unpark(p)
	}
}

// Get removes and returns the oldest item, blocking while the queue is empty
// and open. It returns ok=false once the queue is closed and drained.
func (q *Queue) Get(e *Env) (v interface{}, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.getter = append(q.getter, e.p)
		e.parkNoEvent()
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Close marks the queue closed and wakes all blocked getters, which then
// observe ok=false.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, p := range q.getter {
		q.k.unpark(p)
	}
	q.getter = nil
}
