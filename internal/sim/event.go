package sim

// Event is a one-shot completion signal between simulated processes: one
// process fires it exactly once, any number of processes wait for it. Waiting
// on an already-fired event returns immediately, which is what makes it the
// join primitive for speculative work — a prefetch read fires its event when
// the device completes it, and the demand path that later needs the same
// pages waits on the event instead of issuing a duplicate read (a no-op when
// the prefetch already landed).
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*proc
	w0      [1]*proc // inline buffer: the common case is a single waiter
}

// NewEvent creates an unfired event bound to the kernel.
func NewEvent(k *Kernel) *Event {
	ev := &Event{k: k}
	ev.waiters = ev.w0[:0]
	return ev
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event complete and wakes every waiter at the current
// virtual time. Firing twice panics: an event models one completion.
func (ev *Event) Fire() {
	if ev.fired {
		panic("sim: Event fired twice")
	}
	ev.fired = true
	for _, p := range ev.waiters {
		ev.k.unpark(p)
	}
	ev.waiters = ev.waiters[:0]
}

// Wait blocks the calling process until the event fires (returning
// immediately if it already has).
func (ev *Event) Wait(e *Env) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, e.p)
	e.parkNoEvent()
}

// AllocEvent returns an unfired event from the kernel's free list (or a
// fresh one). Hot simulation paths pair it with ReleaseEvent so one-shot
// completion signals stop allocating in the steady state; NewEvent remains
// the unpooled constructor for events with open-ended lifetimes.
func (k *Kernel) AllocEvent() *Event {
	if n := len(k.eventPool); n > 0 {
		ev := k.eventPool[n-1]
		k.eventPool = k.eventPool[:n-1]
		ev.fired = false
		return ev
	}
	ev := &Event{k: k}
	ev.waiters = ev.w0[:0]
	return ev
}

// ReleaseEvent returns a fired, waiter-free event to the free list. The
// caller must be its last user.
func (k *Kernel) ReleaseEvent(ev *Event) {
	if !ev.fired || len(ev.waiters) != 0 {
		panic("sim: ReleaseEvent of an event still in use")
	}
	k.eventPool = append(k.eventPool, ev)
}
