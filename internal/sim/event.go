package sim

// Event is a one-shot completion signal between simulated processes: one
// process fires it exactly once, any number of processes wait for it. Waiting
// on an already-fired event returns immediately, which is what makes it the
// join primitive for speculative work — a prefetch read fires its event when
// the device completes it, and the demand path that later needs the same
// pages waits on the event instead of issuing a duplicate read (a no-op when
// the prefetch already landed).
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*proc
}

// NewEvent creates an unfired event bound to the kernel.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event complete and wakes every waiter at the current
// virtual time. Firing twice panics: an event models one completion.
func (ev *Event) Fire() {
	if ev.fired {
		panic("sim: Event fired twice")
	}
	ev.fired = true
	for _, p := range ev.waiters {
		ev.k.unpark(p)
	}
	ev.waiters = nil
}

// Wait blocks the calling process until the event fires (returning
// immediately if it already has).
func (ev *Event) Wait(e *Env) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, e.p)
	e.parkNoEvent()
}
