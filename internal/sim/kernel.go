// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes, each running in its own goroutine,
// through a virtual clock. Exactly one process executes at a time; a process
// yields back to the kernel whenever it waits for virtual time to pass or for
// a resource to become available. Events scheduled for the same instant are
// ordered by a monotonically increasing sequence number, which makes runs
// fully deterministic: the same program produces the same event order and the
// same virtual timestamps on every run.
//
// The package also provides the resource primitives the benchmark needs on
// top of the raw kernel: counting semaphores with FIFO wait queues
// (Semaphore), fork/join process groups (Group), bounded FIFO queues (Queue),
// and a multi-core CPU resource with utilisation accounting (CPU).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64
	proc *proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procRunnable procState = iota
	procBlocked
	procDone
)

// proc is the kernel-side handle for one simulated process.
type proc struct {
	id    int
	name  string
	wake  chan struct{}
	state procState
}

// Kernel is a discrete-event simulation instance. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan *proc // processes signal the kernel here when they block or exit
	nextID int
	live   int // processes spawned and not yet done

	started  bool
	deadlock func(k *Kernel) // called when no events remain but processes are blocked
}

// NewKernel returns an empty simulation at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan *proc),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule enqueues a wake-up for p at time at.
func (k *Kernel) schedule(p *proc, at Time) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, proc: p})
}

// Env is a process's handle to the simulation. Every simulated process
// receives one; all interaction with virtual time flows through it. An Env
// must only be used from the goroutine of the process that owns it.
type Env struct {
	k *Kernel
	p *proc
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.k.now }

// Kernel returns the kernel this process runs under.
func (e *Env) Kernel() *Kernel { return e.k }

// Name returns the process name given at Spawn time.
func (e *Env) Name() string { return e.p.name }

// Sleep suspends the process for d of virtual time. Negative or zero
// durations yield the processor but do not advance the clock.
func (e *Env) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e.k.schedule(e.p, e.k.now.Add(d))
	e.block()
}

// SleepUntil suspends the process until virtual time t (or returns
// immediately if t is in the past).
func (e *Env) SleepUntil(t Time) {
	e.k.schedule(e.p, t)
	e.block()
}

// block hands control back to the kernel and waits to be woken.
func (e *Env) block() {
	e.p.state = procBlocked
	e.k.yield <- e.p
	<-e.p.wake
	e.p.state = procRunnable
}

// parkNoEvent blocks the process without scheduling any wake-up event; some
// other process must wake it via unpark. Used by resource wait queues.
func (e *Env) parkNoEvent() {
	e.p.state = procBlocked
	e.k.yield <- e.p
	<-e.p.wake
	e.p.state = procRunnable
}

// unpark schedules p to resume at the current virtual time.
func (k *Kernel) unpark(p *proc) { k.schedule(p, k.now) }

// Spawn creates a new simulated process executing fn, runnable at the current
// virtual time. fn runs in its own goroutine under kernel control. Spawn may
// be called before Run or from inside a running process.
func (k *Kernel) Spawn(name string, fn func(*Env)) {
	k.nextID++
	p := &proc{id: k.nextID, name: name, wake: make(chan struct{})}
	k.live++
	env := &Env{k: k, p: p}
	go func() {
		<-p.wake // wait for first dispatch
		p.state = procRunnable
		fn(env)
		p.state = procDone
		k.yield <- p
	}()
	k.schedule(p, k.now)
}

// SpawnAt is like Spawn but the process first becomes runnable at time at.
func (k *Kernel) SpawnAt(name string, at Time, fn func(*Env)) {
	k.nextID++
	p := &proc{id: k.nextID, name: name, wake: make(chan struct{})}
	k.live++
	env := &Env{k: k, p: p}
	go func() {
		<-p.wake
		p.state = procRunnable
		fn(env)
		p.state = procDone
		k.yield <- p
	}()
	k.schedule(p, at)
}

// OnDeadlock installs a handler invoked if the event queue drains while
// processes are still alive but blocked (a genuine deadlock in the simulated
// program). The default panics.
func (k *Kernel) OnDeadlock(fn func(k *Kernel)) { k.deadlock = fn }

// Run executes the simulation until no events remain or the virtual clock
// would pass until. It returns the virtual time at which the run stopped.
// Processes still blocked at the horizon remain blocked; Run may be called
// again with a later horizon to continue.
func (k *Kernel) Run(until Time) Time {
	k.started = true
	for len(k.events) > 0 {
		ev := k.events[0]
		if ev.at > until {
			k.now = until
			return k.now
		}
		heap.Pop(&k.events)
		if ev.proc.state == procDone {
			continue
		}
		k.now = ev.at
		// Dispatch the process and wait for it to yield (block, spawn
		// more work, or terminate).
		ev.proc.wake <- struct{}{}
		p := <-k.yield
		if p.state == procDone {
			k.live--
		}
	}
	if k.live > 0 {
		if k.deadlock != nil {
			k.deadlock(k)
			return k.now
		}
		panic(fmt.Sprintf("sim: deadlock at t=%v with %d live processes", k.now, k.live))
	}
	return k.now
}

// RunAll executes the simulation until every process has finished.
func (k *Kernel) RunAll() Time { return k.Run(MaxTime) }

// Live reports the number of processes that have been spawned and have not
// yet terminated.
func (k *Kernel) Live() int { return k.live }

// Pending reports the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }
