// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes, each running in its own goroutine,
// through a virtual clock. Exactly one process executes at a time; a process
// yields back to the kernel whenever it waits for virtual time to pass or for
// a resource to become available. Events scheduled for the same instant are
// ordered by a monotonically increasing sequence number, which makes runs
// fully deterministic: the same program produces the same event order and the
// same virtual timestamps on every run.
//
// The package also provides the resource primitives the benchmark needs on
// top of the raw kernel: counting semaphores with FIFO wait queues
// (Semaphore), fork/join process groups (Group), bounded FIFO queues (Queue),
// and a multi-core CPU resource with utilisation accounting (CPU).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled wake-up for a process. gen snapshots the process's
// recycling generation at schedule time, so a wake-up outlives its target
// harmlessly: a stale event for a since-recycled process is skipped.
type event struct {
	at   Time
	seq  uint64
	gen  uint64
	proc *proc
}

// eventHeap is a binary min-heap over (at, seq), hand-rolled rather than
// container/heap so pushes and pops move concrete values — the interface
// boxing of the stdlib heap would allocate on every scheduled wake-up, which
// is the kernel's hottest operation.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procRunnable procState = iota
	procBlocked
	procDone
)

// proc is the kernel-side handle for one simulated process. Finished procs
// return to the kernel's free list with their goroutines parked, so spawning
// a process on a warmed-up kernel allocates nothing and creates no
// goroutine: the recycled proc's loop just runs the next body.
type proc struct {
	id    int
	name  string
	wake  chan struct{}
	state procState
	gen   uint64 // bumped on recycle; stale heap events are skipped
	env   *Env   // allocated once, reused across bodies

	body   func(*Env)
	runner Runner
	group  *Group // fork/join group counting this process, if any
	exit   bool   // drain signal: the proc's goroutine terminates
}

// Runner is a reusable process body: SpawnRunner runs it like Spawn runs a
// closure, but hot simulation paths can free-list runner values and resubmit
// them, avoiding the per-spawn closure allocation.
type Runner interface{ Run(*Env) }

// Kernel is a discrete-event simulation instance. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan *proc // processes signal the kernel here when they block or exit
	nextID int
	live   int // processes spawned and not yet done

	free      []*proc  // recycled procs with parked goroutines
	eventPool []*Event // fired events returned via ReleaseEvent
	groupPool []*Group // idle groups returned via ReleaseGroup

	started  bool
	deadlock func(k *Kernel) // called when no events remain but processes are blocked
}

// NewKernel returns an empty simulation at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan *proc),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule enqueues a wake-up for p at time at.
func (k *Kernel) schedule(p *proc, at Time) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, gen: p.gen, proc: p})
}

// Env is a process's handle to the simulation. Every simulated process
// receives one; all interaction with virtual time flows through it. An Env
// must only be used from the goroutine of the process that owns it.
type Env struct {
	k *Kernel
	p *proc
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.k.now }

// Kernel returns the kernel this process runs under.
func (e *Env) Kernel() *Kernel { return e.k }

// Name returns the process name given at Spawn time.
func (e *Env) Name() string { return e.p.name }

// Sleep suspends the process for d of virtual time. Negative or zero
// durations yield the processor but do not advance the clock.
func (e *Env) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e.k.schedule(e.p, e.k.now.Add(d))
	e.block()
}

// SleepUntil suspends the process until virtual time t (or returns
// immediately if t is in the past).
func (e *Env) SleepUntil(t Time) {
	e.k.schedule(e.p, t)
	e.block()
}

// block hands control back to the kernel and waits to be woken.
func (e *Env) block() {
	e.p.state = procBlocked
	e.k.yield <- e.p
	<-e.p.wake
	e.p.state = procRunnable
}

// parkNoEvent blocks the process without scheduling any wake-up event; some
// other process must wake it via unpark. Used by resource wait queues.
func (e *Env) parkNoEvent() {
	e.p.state = procBlocked
	e.k.yield <- e.p
	<-e.p.wake
	e.p.state = procRunnable
}

// unpark schedules p to resume at the current virtual time.
func (k *Kernel) unpark(p *proc) { k.schedule(p, k.now) }

// procLoop is the goroutine body of every proc: run dispatched bodies until
// drained. A live proc alternates between parked (waiting on wake) and
// executing one body; between bodies it sits on the kernel's free list.
func (k *Kernel) procLoop(p *proc) {
	for {
		<-p.wake // wait for dispatch
		if p.exit {
			return
		}
		p.state = procRunnable
		if r := p.runner; r != nil {
			p.runner = nil
			r.Run(p.env)
		} else {
			fn := p.body
			p.body = nil
			fn(p.env)
		}
		if g := p.group; g != nil {
			p.group = nil
			g.done()
		}
		p.state = procDone
		k.yield <- p
	}
}

// spawn is the shared process-creation path: reuse a pooled proc (and its
// parked goroutine) when one is free, otherwise start a fresh one.
func (k *Kernel) spawn(name string, at Time, fn func(*Env), r Runner, g *Group) {
	var p *proc
	if n := len(k.free); n > 0 {
		p = k.free[n-1]
		k.free = k.free[:n-1]
		p.name = name
	} else {
		k.nextID++
		p = &proc{id: k.nextID, name: name, wake: make(chan struct{})}
		p.env = &Env{k: k, p: p}
		go k.procLoop(p)
	}
	p.state = procBlocked
	p.body, p.runner, p.group = fn, r, g
	k.live++
	k.schedule(p, at)
}

// Spawn creates a new simulated process executing fn, runnable at the current
// virtual time. fn runs in its own goroutine under kernel control. Spawn may
// be called before Run or from inside a running process.
func (k *Kernel) Spawn(name string, fn func(*Env)) { k.spawn(name, k.now, fn, nil, nil) }

// SpawnAt is like Spawn but the process first becomes runnable at time at.
func (k *Kernel) SpawnAt(name string, at Time, fn func(*Env)) { k.spawn(name, at, fn, nil, nil) }

// SpawnRunner is Spawn for a reusable Runner body (no closure allocation).
func (k *Kernel) SpawnRunner(name string, r Runner) { k.spawn(name, k.now, nil, r, nil) }

// recycle returns a finished proc to the free list for the next spawn.
func (k *Kernel) recycle(p *proc) {
	p.gen++
	k.free = append(k.free, p)
}

// drainPool terminates the goroutines of every pooled proc. Called when a
// run reaches full quiescence so finished simulations leave no parked
// goroutines behind (the race detector bounds simultaneously live
// goroutines, and the core suite runs thousands of simulations per test
// binary).
func (k *Kernel) drainPool() {
	for _, p := range k.free {
		p.exit = true
		p.wake <- struct{}{}
	}
	k.free = k.free[:0]
}

// OnDeadlock installs a handler invoked if the event queue drains while
// processes are still alive but blocked (a genuine deadlock in the simulated
// program). The default panics.
func (k *Kernel) OnDeadlock(fn func(k *Kernel)) { k.deadlock = fn }

// Run executes the simulation until no events remain or the virtual clock
// would pass until. It returns the virtual time at which the run stopped.
// Processes still blocked at the horizon remain blocked; Run may be called
// again with a later horizon to continue.
func (k *Kernel) Run(until Time) Time {
	k.started = true
	for len(k.events) > 0 {
		ev := k.events[0]
		if ev.at > until {
			k.now = until
			return k.now
		}
		k.events.pop()
		if ev.gen != ev.proc.gen || ev.proc.state == procDone {
			continue
		}
		k.now = ev.at
		// Dispatch the process and wait for it to yield (block, spawn
		// more work, or terminate).
		ev.proc.wake <- struct{}{}
		p := <-k.yield
		if p.state == procDone {
			k.live--
			k.recycle(p)
		}
	}
	if k.live > 0 {
		if k.deadlock != nil {
			k.deadlock(k)
			return k.now
		}
		panic(fmt.Sprintf("sim: deadlock at t=%v with %d live processes", k.now, k.live))
	}
	k.drainPool()
	return k.now
}

// RunAll executes the simulation until every process has finished.
func (k *Kernel) RunAll() Time { return k.Run(MaxTime) }

// Live reports the number of processes that have been spawned and have not
// yet terminated.
func (k *Kernel) Live() int { return k.live }

// Pending reports the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }
