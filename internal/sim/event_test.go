package sim

import (
	"testing"
	"time"
)

func TestEventWaitBlocksUntilFire(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	var woke Time
	k.Spawn("waiter", func(e *Env) {
		ev.Wait(e)
		woke = e.Now()
	})
	k.Spawn("firer", func(e *Env) {
		e.Sleep(2 * time.Millisecond)
		ev.Fire()
	})
	k.RunAll()
	if woke != Time(2*time.Millisecond) {
		t.Errorf("waiter woke at %v, want 2ms", woke)
	}
	if !ev.Fired() {
		t.Error("event not marked fired")
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	var woke Time
	k.Spawn("firer", func(e *Env) { ev.Fire() })
	k.Spawn("late-waiter", func(e *Env) {
		e.Sleep(time.Millisecond)
		before := e.Now()
		ev.Wait(e)
		woke = e.Now()
		if woke != before {
			t.Errorf("wait on fired event advanced time %v → %v", before, woke)
		}
	})
	k.RunAll()
	if woke != Time(time.Millisecond) {
		t.Errorf("late waiter finished at %v, want 1ms", woke)
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	woke := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("waiter", func(e *Env) {
			ev.Wait(e)
			woke[i] = e.Now()
		})
	}
	k.Spawn("firer", func(e *Env) {
		e.Sleep(time.Millisecond)
		ev.Fire()
	})
	k.RunAll()
	for i, at := range woke {
		if at != Time(time.Millisecond) {
			t.Errorf("waiter %d woke at %v, want 1ms", i, at)
		}
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	defer func() {
		if recover() == nil {
			t.Error("second Fire did not panic")
		}
	}()
	ev.Fire()
	ev.Fire()
}

// TestCPUBusyNotifyEdges: the hook fires only on idle↔busy transitions, not
// on every Use — two overlapping bursts report one busy span.
func TestCPUBusyNotifyEdges(t *testing.T) {
	type edge struct {
		at   Time
		busy bool
	}
	k := NewKernel()
	cpu := NewCPU(k, 4)
	var edges []edge
	cpu.SetBusyNotify(func(at Time, busy bool) {
		edges = append(edges, edge{at, busy})
	})
	// Two bursts overlapping in [0, 3ms): one busy edge at 0, one idle edge
	// at 3ms, no chatter in between.
	k.Spawn("a", func(e *Env) { cpu.Use(e, 2*time.Millisecond) })
	k.Spawn("b", func(e *Env) {
		e.Sleep(time.Millisecond)
		cpu.Use(e, 2*time.Millisecond)
	})
	k.RunAll()
	want := []edge{{0, true}, {Time(3 * time.Millisecond), false}}
	if len(edges) != len(want) {
		t.Fatalf("got %d busy edges %v, want %v", len(edges), edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}
}
