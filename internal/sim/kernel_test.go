package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(e *Env) {
		e.Sleep(150 * time.Microsecond)
		woke = e.Now()
	})
	end := k.RunAll()
	if woke != Time(150*time.Microsecond) {
		t.Errorf("woke at %v, want 150µs", woke)
	}
	if end != woke {
		t.Errorf("run ended at %v, want %v", end, woke)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	k := NewKernel()
	var after Time
	k.Spawn("p", func(e *Env) {
		e.Sleep(0)
		e.Sleep(-time.Second)
		after = e.Now()
	})
	k.RunAll()
	if after != 0 {
		t.Errorf("clock moved to %v on zero/negative sleep", after)
	}
}

func TestSleepUntilPast(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(e *Env) {
		e.Sleep(time.Millisecond)
		e.SleepUntil(0) // in the past: must not rewind
		if e.Now() != Time(time.Millisecond) {
			t.Errorf("clock rewound to %v", e.Now())
		}
	})
	k.RunAll()
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(e *Env) {
				for j := 0; j < 3; j++ {
					e.Sleep(time.Duration(i+1) * time.Millisecond)
					order = append(order, fmt.Sprintf("p%d@%v", i, e.Now()))
				}
			})
		}
		k.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != 15 {
		t.Fatalf("got %d events, want 15", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSameInstantFIFOOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(e *Env) {
			e.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order not FIFO: %v", order)
		}
	}
}

func TestRunHorizonStopsClock(t *testing.T) {
	k := NewKernel()
	done := false
	k.Spawn("p", func(e *Env) {
		e.Sleep(10 * time.Second)
		done = true
	})
	end := k.Run(Time(time.Second))
	if done {
		t.Error("process ran past the horizon")
	}
	if end != Time(time.Second) {
		t.Errorf("clock at %v, want 1s", end)
	}
	k.RunAll()
	if !done {
		t.Error("process did not complete after extending horizon")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childTime Time
	k.Spawn("parent", func(e *Env) {
		e.Sleep(time.Millisecond)
		e.Kernel().Spawn("child", func(ce *Env) {
			ce.Sleep(time.Millisecond)
			childTime = ce.Now()
		})
		e.Sleep(5 * time.Millisecond)
	})
	k.RunAll()
	if childTime != Time(2*time.Millisecond) {
		t.Errorf("child finished at %v, want 2ms", childTime)
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var started Time
	k.SpawnAt("late", Time(3*time.Second), func(e *Env) { started = e.Now() })
	k.RunAll()
	if started != Time(3*time.Second) {
		t.Errorf("started at %v, want 3s", started)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, "s", 1)
	called := false
	k.OnDeadlock(func(*Kernel) { called = true })
	k.Spawn("p", func(e *Env) {
		sem.Acquire(e, 1)
		sem.Acquire(e, 1) // self-deadlock
	})
	k.RunAll()
	if !called {
		t.Error("deadlock handler not invoked")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, "s", 2)
	inFlight, maxInFlight := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", func(e *Env) {
			sem.Acquire(e, 1)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			e.Sleep(time.Millisecond)
			inFlight--
			sem.Release(1)
		})
	}
	end := k.RunAll()
	if maxInFlight != 2 {
		t.Errorf("max in flight %d, want 2", maxInFlight)
	}
	// 6 jobs, 2 at a time, 1ms each => 3ms.
	if end != Time(3*time.Millisecond) {
		t.Errorf("finished at %v, want 3ms", end)
	}
}

func TestSemaphoreFIFONoBarging(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, "s", 2)
	var order []string
	k.Spawn("holder", func(e *Env) {
		sem.Acquire(e, 2)
		e.Sleep(time.Millisecond)
		sem.Release(2)
	})
	k.SpawnAt("big", 1, func(e *Env) {
		sem.Acquire(e, 2)
		order = append(order, "big")
		sem.Release(2)
	})
	k.SpawnAt("small", 2, func(e *Env) {
		sem.Acquire(e, 1)
		order = append(order, "small")
		sem.Release(1)
	})
	k.RunAll()
	if len(order) != 2 || order[0] != "big" {
		t.Errorf("barging occurred, order %v", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, "s", 1)
	if !sem.TryAcquire(1) {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire(1) {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	sem.Release(1)
	if !sem.TryAcquire(1) {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestSemaphoreWaitStats(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, "s", 1)
	k.Spawn("a", func(e *Env) {
		sem.Acquire(e, 1)
		e.Sleep(2 * time.Millisecond)
		sem.Release(1)
	})
	k.Spawn("b", func(e *Env) {
		sem.Acquire(e, 1)
		sem.Release(1)
	})
	k.RunAll()
	waits, total, maxQ := sem.WaitStats()
	if waits != 1 || total != 2*time.Millisecond || maxQ != 1 {
		t.Errorf("stats = (%d, %v, %d), want (1, 2ms, 1)", waits, total, maxQ)
	}
}

func TestGroupJoin(t *testing.T) {
	k := NewKernel()
	var joined Time
	k.Spawn("parent", func(e *Env) {
		g := e.NewGroup()
		for i := 1; i <= 4; i++ {
			d := time.Duration(i) * time.Millisecond
			g.Go("child", func(ce *Env) { ce.Sleep(d) })
		}
		g.Wait(e)
		joined = e.Now()
	})
	k.RunAll()
	if joined != Time(4*time.Millisecond) {
		t.Errorf("joined at %v, want 4ms (slowest child)", joined)
	}
}

func TestGroupWaitAfterChildrenDone(t *testing.T) {
	k := NewKernel()
	k.Spawn("parent", func(e *Env) {
		g := e.NewGroup()
		g.Go("fast", func(ce *Env) {})
		e.Sleep(time.Millisecond)
		g.Wait(e) // children already done: must not block forever
		if e.Now() != Time(time.Millisecond) {
			t.Errorf("wait advanced clock to %v", e.Now())
		}
	})
	k.RunAll()
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	k := NewKernel()
	q := NewQueue(k)
	var got []int
	k.Spawn("consumer", func(e *Env) {
		for {
			v, ok := q.Get(e)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	k.Spawn("producer", func(e *Env) {
		for i := 0; i < 5; i++ {
			e.Sleep(time.Millisecond)
			q.Put(i)
		}
		e.Sleep(time.Millisecond)
		q.Close()
	})
	k.RunAll()
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO: %v", got)
		}
	}
}

func TestQueueCloseWakesAllGetters(t *testing.T) {
	k := NewKernel()
	q := NewQueue(k)
	finished := 0
	for i := 0; i < 3; i++ {
		k.Spawn("getter", func(e *Env) {
			_, ok := q.Get(e)
			if ok {
				t.Error("got item from empty closed queue")
			}
			finished++
		})
	}
	k.Spawn("closer", func(e *Env) {
		e.Sleep(time.Millisecond)
		q.Close()
	})
	k.RunAll()
	if finished != 3 {
		t.Errorf("%d getters finished, want 3", finished)
	}
}

func TestCPUSerializesBeyondCores(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, 2)
	for i := 0; i < 4; i++ {
		k.Spawn("burst", func(e *Env) { cpu.Use(e, 10*time.Millisecond) })
	}
	end := k.RunAll()
	if end != Time(20*time.Millisecond) {
		t.Errorf("4 bursts on 2 cores finished at %v, want 20ms", end)
	}
	if cpu.BusyTime() != 40*time.Millisecond {
		t.Errorf("busy time %v, want 40ms", cpu.BusyTime())
	}
}

func TestCPUUseNGang(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, 4)
	k.Spawn("gang", func(e *Env) { cpu.UseN(e, 8, 10*time.Millisecond) }) // clamped to 4
	end := k.RunAll()
	if end != Time(10*time.Millisecond) {
		t.Errorf("gang finished at %v, want 10ms", end)
	}
	if cpu.BusyTime() != 40*time.Millisecond {
		t.Errorf("busy %v, want 40ms", cpu.BusyTime())
	}
}

func TestUtilizationMath(t *testing.T) {
	u := Utilization(0, 10*time.Second, 1*time.Second, 20)
	if u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if Utilization(0, 0, 0, 20) != 0 {
		t.Error("zero window must give zero utilization")
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, 8)
	done := 0
	for i := 0; i < 500; i++ {
		i := i
		k.Spawn("w", func(e *Env) {
			e.Sleep(time.Duration(i%17) * time.Microsecond)
			cpu.Use(e, time.Duration(50+i%13)*time.Microsecond)
			done++
		})
	}
	k.RunAll()
	if done != 500 {
		t.Fatalf("completed %d, want 500", done)
	}
}
