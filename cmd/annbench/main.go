// Command annbench is the benchmark harness: it regenerates any table or
// figure of the paper against the simulated testbed.
//
// Usage:
//
//	annbench -list
//	annbench -experiment fig2 [-scale small] [-duration 2s] [-reps 3]
//	annbench -experiment all -quick
//
// Results print as aligned text tables; EXPERIMENTS.md archives a full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"svdbench/internal/core"
	"svdbench/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "annbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annbench", flag.ContinueOnError)
	var (
		expID    = fs.String("experiment", "", "experiment id (see -list), or \"all\"")
		scale    = fs.String("scale", string(dataset.ScaleSmall), "dataset scale: tiny, small, repro")
		duration = fs.Duration("duration", 2*time.Second, "virtual measurement window per cell")
		reps     = fs.Int("reps", 3, "repetitions per cell")
		cores    = fs.Int("cores", 20, "simulated CPU cores (paper testbed: 20)")
		dataDir  = fs.String("data", defaultDataDir(), "dataset cache directory (empty disables caching)")
		quick    = fs.Bool("quick", false, "tiny scale, 300ms cells, 1 repetition")
		list     = fs.Bool("list", false, "list experiments and exit")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "  %-8s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("-experiment required (or -list)")
	}
	if *quick {
		*scale = string(dataset.ScaleTiny)
		*duration = 300 * time.Millisecond
		*reps = 1
	}

	b := core.NewBench(dataset.Scale(*scale), *dataDir)
	b.RunDefaults = core.RunConfig{Duration: *duration, Repetitions: *reps, Cores: *cores}
	if !*quiet {
		logger := log.New(stderr, "annbench: ", log.Ltime)
		b.Logf = logger.Printf
	}

	var ids []string
	if *expID == "all" {
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expID, ",")
	}
	for _, id := range ids {
		exp, err := core.ExperimentByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s (%s): %s [scale=%s duration=%v reps=%d]\n", exp.ID, exp.Paper, exp.Title, *scale, *duration, *reps)
		start := time.Now()
		if err := exp.Run(b, stdout); err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Fprintf(stdout, "== %s done in %v\n\n", exp.ID, time.Since(start).Round(time.Second))
	}
	return nil
}

func defaultDataDir() string {
	if d := os.Getenv("SVDBENCH_DATA"); d != "" {
		return d
	}
	return "data"
}
