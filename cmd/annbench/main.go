// Command annbench is the benchmark harness: it regenerates any table or
// figure of the paper against the simulated testbed.
//
// Usage:
//
//	annbench -list
//	annbench -experiment fig2 [-scale small] [-duration 2s] [-reps 3] [-parallel 8]
//	annbench -experiment all -quick
//	annbench -experiment fig2 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Results print as aligned text tables; EXPERIMENTS.md archives a full run.
// The -cpuprofile/-memprofile flags capture host-side pprof profiles of the
// run, for diagnosing hot-path regressions without editing code.
//
// Exit codes: 0 on success, 2 on user error (unknown experiment or engine,
// bad flags), 1 on internal failure. Ctrl-C cancels the run after the
// in-flight experiment cells finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"svdbench/internal/core"
	"svdbench/internal/dataset"
	"svdbench/internal/vdb"
)

// Exit codes, in the sysexits spirit: user errors are distinguishable from
// harness bugs so scripts can tell a typo from a broken build.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

// errUsage marks bad flag combinations detected by run itself (as opposed to
// the typed sentinels from core and vdb).
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "annbench: %v\n", err)
	}
	os.Exit(classify(err))
}

// classify maps an error from run to the process exit code. Typed sentinels
// (core.ErrUnknownExperiment, vdb.ErrUnknownEngine, vdb.ErrBadParams) and
// flag-parse failures are user errors; anything else is internal.
func classify(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return exitOK
	case errors.Is(err, core.ErrUnknownExperiment),
		errors.Is(err, vdb.ErrUnknownEngine),
		errors.Is(err, vdb.ErrBadParams),
		errors.Is(err, errUsage):
		return exitUsage
	default:
		return exitInternal
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("experiment", "", "experiment id (see -list), or \"all\"")
		scale    = fs.String("scale", string(dataset.ScaleSmall), "dataset scale: tiny, small, repro")
		duration = fs.Duration("duration", 2*time.Second, "virtual measurement window per cell")
		reps     = fs.Int("reps", 3, "repetitions per cell")
		cores    = fs.Int("cores", 20, "simulated CPU cores (paper testbed: 20)")
		parallel = fs.Int("parallel", 0, "host worker goroutines per experiment grid (0 = GOMAXPROCS)")
		dataDir  = fs.String("data", defaultDataDir(), "dataset cache directory (empty disables caching)")
		quick    = fs.Bool("quick", false, "tiny scale, 300ms cells, 1 repetition")
		list     = fs.Bool("list", false, "list experiments and exit")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %w", errUsage, err)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "annbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "annbench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "  %-8s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("%w: -experiment required (or -list)", errUsage)
	}
	if *quick {
		*scale = string(dataset.ScaleTiny)
		*duration = 300 * time.Millisecond
		*reps = 1
	}
	switch dataset.Scale(*scale) {
	case dataset.ScaleTiny, dataset.ScaleSmall, dataset.ScaleRepro:
	default:
		return fmt.Errorf("%w: unknown -scale %q (have tiny, small, repro)", errUsage, *scale)
	}

	b := core.NewBench(dataset.Scale(*scale), *dataDir)
	b.RunDefaults = core.RunConfig{Duration: *duration, Repetitions: *reps, Cores: *cores}
	b.Workers = *parallel
	if !*quiet {
		logger := log.New(stderr, "annbench: ", log.Ltime)
		b.Logf = logger.Printf
		b.OnProgress = func(p core.Progress) {
			if p.Err != nil {
				logger.Printf("cell %s failed: %v", p.Key, p.Err)
				return
			}
			logger.Printf("cell %d/%d done (%s), eta %v", p.Done, p.Total, p.Key, p.ETA.Round(time.Second))
		}
	}

	var ids []string
	if *expID == "all" {
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expID, ",")
	}
	for _, id := range ids {
		exp, err := core.ExperimentByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s (%s): %s [scale=%s duration=%v reps=%d]\n", exp.ID, exp.Paper, exp.Title, *scale, *duration, *reps)
		start := time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
		if err := exp.RunContext(ctx, b, stdout); err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Fprintf(stdout, "== %s done in %v\n\n", exp.ID, time.Since(start).Round(time.Second)) //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	}
	return nil
}

func defaultDataDir() string {
	if d := os.Getenv("SVDBENCH_DATA"); d != "" {
		return d
	}
	return "data"
}
