package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"

	"svdbench/internal/core"
	"svdbench/internal/vdb"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig15", "extA", "extD", "cache"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunRequiresExperiment(t *testing.T) {
	err := run(context.Background(), nil, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing -experiment accepted")
	}
	if classify(err) != exitUsage {
		t.Errorf("classify(%v) = %d, want %d", err, classify(err), exitUsage)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(context.Background(), []string{"-experiment", "fig99", "-data", ""}, &bytes.Buffer{}, &bytes.Buffer{})
	if !errors.Is(err, core.ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
	if classify(err) != exitUsage {
		t.Errorf("classify(%v) = %d, want %d", err, classify(err), exitUsage)
	}
}

func TestRunUnknownScale(t *testing.T) {
	err := run(context.Background(), []string{"-experiment", "table1", "-scale", "huge", "-data", ""}, &bytes.Buffer{}, &bytes.Buffer{})
	if classify(err) != exitUsage {
		t.Errorf("classify(%v) = %d, want %d", err, classify(err), exitUsage)
	}
}

func TestRunTable1Quick(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "table1", "-quick", "-quiet", "-data", ""}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "table1 done") {
		t.Errorf("output = %s", out.String())
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-experiment", "table1", "-quick", "-quiet", "-data", ""}, &bytes.Buffer{}, &bytes.Buffer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if classify(err) != exitInternal {
		t.Errorf("classify(%v) = %d, want %d", err, classify(err), exitInternal)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, exitOK},
		{flag.ErrHelp, exitOK},
		{fmt.Errorf("wrapped: %w", core.ErrUnknownExperiment), exitUsage},
		{fmt.Errorf("wrapped: %w", vdb.ErrUnknownEngine), exitUsage},
		{fmt.Errorf("wrapped: %w", vdb.ErrBadParams), exitUsage},
		{errors.New("boom"), exitInternal},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestClassifyFixedBadParamSites pins the errwrap fixes in
// internal/core/tuner.go and internal/core/exp_spann.go: their
// bad-parameter errors now wrap vdb.ErrBadParams, so annbench exits 2
// (usage) instead of 1 (internal) — even through the per-experiment
// wrapping run() adds.
func TestClassifyFixedBadParamSites(t *testing.T) {
	tuneErr := fmt.Errorf("tune: %w: unknown index kind %q", vdb.ErrBadParams, "BOGUS")
	extDErr := fmt.Errorf("extD: %w: monolithic stack holds %T, want *diskann.Index", vdb.ErrBadParams, nil)
	for _, err := range []error{tuneErr, extDErr} {
		if got := classify(err); got != exitUsage {
			t.Errorf("classify(%v) = %d, want %d", err, got, exitUsage)
		}
		wrapped := fmt.Errorf("fig9: %w", err)
		if got := classify(wrapped); got != exitUsage {
			t.Errorf("classify(%v) = %d, want %d", wrapped, got, exitUsage)
		}
	}
}
