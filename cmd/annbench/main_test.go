package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig15", "extA", "extD"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -experiment accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99", "-data", ""}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTable1Quick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick", "-quiet", "-data", ""}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "table1 done") {
		t.Errorf("output = %s", out.String())
	}
}
