package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != exitClean {
		t.Fatalf("run(-list) = %d, want %d (stderr: %s)", code, exitClean, errb.String())
	}
	for _, name := range []string{
		"wallclock", "seededrand", "mapiter", "errwrap", "ctxprop", "floatcmp",
		"hotalloc", "scratchalias", "goroleak", "detmerge",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

// The repo itself must lint clean — this is the same invocation as
// `make lint`, addressed by module path so the test is cwd-independent.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"svdbench/..."}, &out, &errb); code != exitClean {
		t.Fatalf("repo lint = %d, want %d\n%s%s", code, exitClean, out.String(), errb.String())
	}
}

// The split passes must individually come back clean too: -fast is the
// AST-only suite, -deep the fact-based suite.
func TestRepoIsCleanSplitPasses(t *testing.T) {
	for _, flag := range []string{"-fast", "-deep"} {
		var out, errb bytes.Buffer
		if code := run([]string{flag, "svdbench/..."}, &out, &errb); code != exitClean {
			t.Fatalf("repo lint %s = %d, want %d\n%s%s", flag, code, exitClean, out.String(), errb.String())
		}
	}
}

func TestFastDeepMutuallyExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fast", "-deep", "./..."}, &out, &errb); code != exitError {
		t.Fatalf("run(-fast -deep) = %d, want %d", code, exitError)
	}
}

// -suppressions lists every allow directive with its justification and
// exits clean: the audit mode reports, it does not judge.
func TestSuppressionAudit(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-suppressions", "svdbench/internal/index/..."}, &out, &errb); code != exitClean {
		t.Fatalf("run(-suppressions) = %d, want %d (stderr: %s)", code, exitClean, errb.String())
	}
	if !strings.Contains(out.String(), "allow hotalloc -- ") {
		t.Errorf("-suppressions output missing hotalloc allow entries:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allow scratchalias -- ") {
		t.Errorf("-suppressions output missing the scratchalias allow entry:\n%s", out.String())
	}
}

func TestBadPatternIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != exitError {
		t.Fatalf("run(./does-not-exist) = %d, want %d", code, exitError)
	}
}
