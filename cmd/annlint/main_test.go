package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != exitClean {
		t.Fatalf("run(-list) = %d, want %d (stderr: %s)", code, exitClean, errb.String())
	}
	for _, name := range []string{"wallclock", "seededrand", "mapiter", "errwrap", "ctxprop", "floatcmp"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

// The repo itself must lint clean — this is the same invocation as
// `make lint`, addressed by module path so the test is cwd-independent.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"svdbench/..."}, &out, &errb); code != exitClean {
		t.Fatalf("repo lint = %d, want %d\n%s%s", code, exitClean, out.String(), errb.String())
	}
}

func TestBadPatternIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != exitError {
		t.Fatalf("run(./does-not-exist) = %d, want %d", code, exitError)
	}
}
