// Command annlint runs the repo's domain-specific static analyzers — the
// determinism, seeding, error-hygiene, and hot-path/concurrency invariants
// the compiler cannot check (see internal/analysis and DESIGN.md "Static
// analysis & determinism conventions").
//
// Usage:
//
//	annlint [-list] [-fast | -deep] [-suppressions] [packages]
//
// With no arguments it lints ./... with the full suite. -fast runs only the
// single-pass AST analyzers; -deep runs only the fact-based multi-pass
// analyzers (cross-package function summaries). -suppressions lists every
// active //annlint:allow directive with file:line and justification, for
// audit, and exits 0. Exit codes: 0 clean, 1 diagnostics found, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"svdbench/internal/analysis"
)

const (
	exitClean = 0
	exitDiags = 1
	exitError = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("annlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	fast := fs.Bool("fast", false, "run only the single-pass AST analyzers")
	deep := fs.Bool("deep", false, "run only the fact-based multi-pass analyzers")
	suppressions := fs.Bool("suppressions", false, "list active //annlint:allow directives and exit")
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *fast && *deep {
		fmt.Fprintln(stderr, "annlint: -fast and -deep are mutually exclusive")
		return exitError
	}

	analyzers := analysis.All()
	switch {
	case *fast:
		analyzers = analysis.Fast()
	case *deep:
		analyzers = analysis.Deep()
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "annlint: %v\n", err)
		return exitError
	}

	if *suppressions {
		n := 0
		for _, pkg := range pkgs {
			if pkg.FactsOnly {
				continue
			}
			for _, s := range analysis.ListSuppressions(pkg, analysis.All()) {
				fmt.Fprintf(stdout, "%s:%d: allow %s -- %s\n", s.Pos.Filename, s.Pos.Line, s.Analyzer, s.Justification)
				n++
			}
		}
		fmt.Fprintf(stderr, "annlint: %d active suppression(s)\n", n)
		return exitClean
	}

	found := 0
	reported := 0
	for _, pkg := range pkgs {
		if !pkg.FactsOnly {
			reported++
		}
	}
	for _, d := range analysis.LintPackages(pkgs, analyzers) {
		fmt.Fprintln(stdout, d)
		found++
	}
	if found > 0 {
		fmt.Fprintf(stderr, "annlint: %d problem(s) in %d package(s)\n", found, reported)
		return exitDiags
	}
	return exitClean
}
