// Command annlint runs the repo's domain-specific static analyzers — the
// determinism, seeding, and error-hygiene invariants the compiler cannot
// check (see internal/analysis and DESIGN.md "Static analysis & determinism
// conventions").
//
// Usage:
//
//	annlint [-list] [packages]
//
// With no arguments it lints ./... . Exit codes: 0 clean, 1 diagnostics
// found, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"svdbench/internal/analysis"
)

const (
	exitClean = 0
	exitDiags = 1
	exitError = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("annlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "annlint: %v\n", err)
		return exitError
	}

	found := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Lint(pkg, analyzers) {
			fmt.Fprintln(stdout, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "annlint: %d problem(s) in %d package(s)\n", found, len(pkgs))
		return exitDiags
	}
	return exitClean
}
