package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunGeneratesAndCaches(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-name", "cohere-small", "-scale", "tiny", "-data", dir, "-info"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n=200", "dim=768", "cached at", "mean vector norm", "paper-scale original: 1000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Second call hits the cache (much faster, same output shape).
	buf.Reset()
	if err := run([]string{"-name", "cohere-small", "-scale", "tiny", "-data", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=200") {
		t.Error("cache path broken")
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-name", "bogus", "-data", ""}, &bytes.Buffer{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDsBase(t *testing.T) {
	if dsBase("cohere-small@tiny") != "cohere-small" {
		t.Error("dsBase wrong")
	}
	if dsBase("plain") != "plain" {
		t.Error("dsBase without scale wrong")
	}
}
