// Command dsgen generates and inspects the benchmark's synthetic embedding
// datasets.
//
// Usage:
//
//	dsgen -name cohere-small -scale tiny -data ./data   # generate + cache
//	dsgen -name openai-large -scale repro -info          # print stats too
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"svdbench/internal/dataset"
	"svdbench/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dsgen", flag.ContinueOnError)
	var (
		name  = fs.String("name", "cohere-small", "catalog dataset name")
		scale = fs.String("scale", string(dataset.ScaleTiny), "tiny, small or repro")
		dir   = fs.String("data", "data", "cache directory (empty disables caching)")
		info  = fs.Bool("info", false, "print statistics about the dataset")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := dataset.CatalogSpec(*name, dataset.Scale(*scale))
	if err != nil {
		return err
	}
	start := time.Now() //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	ds, err := dataset.LoadOrGenerate(*dir, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: n=%d dim=%d queries=%d groundK=%d metric=%s (ready in %v)\n",
		spec.Name, ds.Vectors.Len(), ds.Vectors.Dim, ds.Queries.Len(),
		len(ds.GroundTruth[0]), spec.Metric, time.Since(start).Round(time.Millisecond)) //annlint:allow wallclock -- host-side progress timing, never enters the simulation
	if *dir != "" {
		fmt.Fprintf(w, "cached at %s\n", dataset.CachePath(*dir, spec))
	}
	if *info {
		printInfo(w, ds)
	}
	return nil
}

func printInfo(w io.Writer, ds *dataset.Dataset) {
	// Norm check and nearest-neighbour distance distribution.
	var normSum float64
	samples := 0
	for i := 0; i < ds.Vectors.Len(); i += 97 {
		normSum += float64(vec.Norm(ds.Vectors.Row(i)))
		samples++
	}
	fmt.Fprintf(w, "mean vector norm (sampled): %.4f\n", normSum/float64(samples))
	var d1, dk float64
	for qi := range ds.GroundTruth {
		gt := ds.GroundTruth[qi]
		q := ds.Queries.Row(qi)
		d1 += float64(vec.Distance(ds.Spec.Metric, q, ds.Vectors.Row(int(gt[0]))))
		last := gt[len(gt)-1]
		dk += float64(vec.Distance(ds.Spec.Metric, q, ds.Vectors.Row(int(last))))
	}
	n := float64(len(ds.GroundTruth))
	fmt.Fprintf(w, "mean distance to NN1: %.4f, to NN%d: %.4f\n", d1/n, len(ds.GroundTruth[0]), dk/n)
	bytes := int64(ds.Vectors.Len()) * int64(ds.Vectors.Dim) * 4
	fmt.Fprintf(w, "raw vector bytes: %.1f MiB (paper-scale original: %d vectors)\n",
		float64(bytes)/(1<<20), dataset.PaperCount(dsBase(ds.Spec.Name)))
}

// dsBase strips the "@scale" suffix from a spec name.
func dsBase(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '@' {
			return name[:i]
		}
	}
	return name
}
