package main

import (
	"strings"
	"testing"
)

func art(entries ...entry) artefact {
	return artefact{Suite: "host", Results: entries}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := art(entry{Name: "dot-768", NsPerOp: 1000, AllocsPerOp: 0})
	fresh := art(entry{Name: "dot-768", NsPerOp: 1150, AllocsPerOp: 0})
	_, regs := diff(base, fresh, 0.20)
	if len(regs) != 0 {
		t.Fatalf("15%% slowdown within 20%% tolerance flagged: %v", regs)
	}
}

func TestDiffFailsOnNsRegression(t *testing.T) {
	base := art(entry{Name: "dot-768", NsPerOp: 1000, AllocsPerOp: 0})
	fresh := art(entry{Name: "dot-768", NsPerOp: 1300, AllocsPerOp: 0})
	_, regs := diff(base, fresh, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("30%% slowdown not flagged: %v", regs)
	}
}

func TestDiffFailsOnAnyAllocRegression(t *testing.T) {
	base := art(entry{Name: "search-batch", NsPerOp: 1000, AllocsPerOp: 10})
	fresh := art(entry{Name: "search-batch", NsPerOp: 900, AllocsPerOp: 11})
	_, regs := diff(base, fresh, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("single-alloc growth not flagged: %v", regs)
	}
}

func TestDiffIgnoresReplayEntries(t *testing.T) {
	base := art(entry{Name: "replay-pipelined", NsPerOp: 1000, AllocsPerOp: 10})
	fresh := art(entry{Name: "replay-pipelined", NsPerOp: 9000, AllocsPerOp: 999})
	report, regs := diff(base, fresh, 0.20)
	if len(regs) != 0 {
		t.Fatalf("replay entry gated: %v", regs)
	}
	if len(report) != 1 || !strings.Contains(report[0], "not gated") {
		t.Fatalf("replay entry not reported as ungated: %v", report)
	}
}

func TestDiffIgnoresNonIntersection(t *testing.T) {
	base := art(
		entry{Name: "dot-768", NsPerOp: 1000},
		entry{Name: "retired-row", NsPerOp: 1000},
	)
	fresh := art(
		entry{Name: "dot-768", NsPerOp: 1000},
		entry{Name: "brand-new-row", NsPerOp: 1e12, AllocsPerOp: 1 << 30},
	)
	report, regs := diff(base, fresh, 0.20)
	if len(regs) != 0 {
		t.Fatalf("non-intersecting rows gated: %v", regs)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"brand-new-row", "retired-row"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report does not mention %q:\n%s", want, joined)
		}
	}
}

func TestDiffImprovementsPass(t *testing.T) {
	base := art(entry{Name: "search-batch", NsPerOp: 2000, AllocsPerOp: 50})
	fresh := art(entry{Name: "search-batch", NsPerOp: 1000, AllocsPerOp: 0})
	_, regs := diff(base, fresh, 0.20)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}
