// Command benchdiff compares a freshly generated benchmark artefact
// (cmd/hostbench, cmd/pipelinebench) against its checked-in baseline and
// fails when the hot path regressed: any kernel or search entry more than
// 20% slower in ns/op, or allocating more per op at all (the zero-alloc
// contract admits no tolerance). Replay entries — the macro simulation
// rows, whose timing is workload-shaped rather than kernel-shaped — are
// reported but not gated.
//
// Usage:
//
//	go run ./cmd/benchdiff -base BENCH_host.json -new /tmp/fresh.json
//
// Entries are matched by name over the intersection of the two files; rows
// present on only one side are reported and ignored, so adding a benchmark
// does not break the gate retroactively.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// entry is one benchmark row of the artefact (the fields benchdiff gates).
type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// artefact is the on-disk shape shared by BENCH_host.json and
// BENCH_pipeline.json.
type artefact struct {
	Suite   string  `json:"suite"`
	Results []entry `json:"results"`
}

// gated reports whether an entry participates in the regression gate.
// Replay rows replay a recorded query log through the device simulation;
// their wall-clock is dominated by simulated-workload shape and is tracked
// by the pipeline acceptance tests instead.
func gated(name string) bool { return !strings.HasPrefix(name, "replay-") }

// diff compares fresh results against the baseline. It returns one report
// line per comparison and the subset that regressed.
func diff(base, fresh artefact, nsTolerance float64) (report []string, regressions []string) {
	baseline := make(map[string]entry, len(base.Results))
	for _, e := range base.Results {
		baseline[e.Name] = e
	}
	seen := make(map[string]bool, len(fresh.Results))
	for _, e := range fresh.Results {
		seen[e.Name] = true
		b, ok := baseline[e.Name]
		if !ok {
			report = append(report, fmt.Sprintf("  new   %-24s %12.0f ns/op %8d allocs/op (no baseline, ignored)", e.Name, e.NsPerOp, e.AllocsPerOp))
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = e.NsPerOp / b.NsPerOp
		}
		line := fmt.Sprintf("  %-24s %12.0f -> %12.0f ns/op (%+.1f%%)  %d -> %d allocs/op",
			e.Name, b.NsPerOp, e.NsPerOp, 100*(ratio-1), b.AllocsPerOp, e.AllocsPerOp)
		if !gated(e.Name) {
			report = append(report, line+"  [not gated]")
			continue
		}
		var bad []string
		if b.NsPerOp > 0 && ratio > 1+nsTolerance {
			bad = append(bad, fmt.Sprintf("ns/op +%.1f%% exceeds %.0f%% tolerance", 100*(ratio-1), 100*nsTolerance))
		}
		if e.AllocsPerOp > b.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("allocs/op grew %d -> %d", b.AllocsPerOp, e.AllocsPerOp))
		}
		if len(bad) > 0 {
			line += "  REGRESSION: " + strings.Join(bad, "; ")
			regressions = append(regressions, fmt.Sprintf("%s: %s", e.Name, strings.Join(bad, "; ")))
		}
		report = append(report, line)
	}
	for _, e := range base.Results {
		if !seen[e.Name] {
			report = append(report, fmt.Sprintf("  gone  %-24s (baseline row missing from fresh run, ignored)", e.Name))
		}
	}
	return report, regressions
}

func readArtefact(path string) (artefact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return artefact{}, err
	}
	var a artefact
	if err := json.Unmarshal(data, &a); err != nil {
		return artefact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

func main() {
	basePath := flag.String("base", "BENCH_host.json", "checked-in baseline artefact")
	freshPath := flag.String("new", "", "freshly generated artefact to gate")
	nsTol := flag.Float64("ns-tolerance", 0.20, "allowed fractional ns/op increase on gated entries")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	base, err := readArtefact(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readArtefact(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Suite != fresh.Suite {
		fmt.Fprintf(os.Stderr, "benchdiff: suite mismatch: baseline %q vs fresh %q\n", base.Suite, fresh.Suite)
		os.Exit(2)
	}
	report, regressions := diff(base, fresh, *nsTol)
	fmt.Printf("benchdiff: suite %q, %s vs %s\n", base.Suite, *basePath, *freshPath)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
