package main

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestRunReadWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bs", "4096", "-jobs", "64", "-cores", "4", "-duration", "300ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	m := regexp.MustCompile(`IOPS\s+= (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no IOPS in output:\n%s", out)
	}
	iops, _ := strconv.Atoi(m[1])
	// The paper's calibration point: ≈1.3 MIOPS at 64 deep on 4 cores.
	if iops < 1_100_000 || iops > 1_500_000 {
		t.Errorf("IOPS = %d, want ≈1.3M", iops)
	}
}

func TestRunWriteWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rw", "write", "-duration", "100ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rw=write") {
		t.Errorf("output = %s", buf.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-bs", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("bs=0 accepted")
	}
	if err := run([]string{"-rw", "trim"}, &bytes.Buffer{}); err == nil {
		t.Error("rw=trim accepted")
	}
}
