// Command fiosim benchmarks the simulated NVMe device the way the paper
// uses fio (Sec. III-A): closed-loop raw reads/writes at a chosen request
// size, queue depth, and core count, reporting IOPS, bandwidth, and latency
// percentiles.
//
// Usage:
//
//	fiosim -bs 4096 -jobs 64 -cores 4 -duration 1s
//	fiosim -bs 131072 -jobs 32 -rw write
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"svdbench/internal/sim"
	"svdbench/internal/storage/ssd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fiosim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fiosim", flag.ContinueOnError)
	var (
		bs       = fs.Int("bs", 4096, "request size in bytes")
		jobs     = fs.Int("jobs", 1, "concurrent jobs, one in-flight request each")
		cores    = fs.Int("cores", 1, "simulated CPU cores")
		duration = fs.Duration("duration", time.Second, "virtual run length")
		rw       = fs.String("rw", "read", "read or write")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bs <= 0 || *jobs <= 0 || *cores <= 0 {
		return fmt.Errorf("bs, jobs and cores must be positive")
	}
	if *rw != "read" && *rw != "write" {
		return fmt.Errorf("rw must be read or write, got %q", *rw)
	}

	k := sim.NewKernel()
	cpu := sim.NewCPU(k, *cores)
	dev := ssd.New(k, cpu, ssd.DefaultConfig())
	deadline := sim.Time(*duration)
	var ops int64
	var lats []sim.Duration
	for i := 0; i < *jobs; i++ {
		k.Spawn("job", func(e *sim.Env) {
			for e.Now() < deadline {
				start := e.Now()
				if *rw == "write" {
					dev.Write(e, 0, *bs)
				} else {
					dev.Read(e, 0, *bs)
				}
				ops++
				lats = append(lats, e.Now().Sub(start))
			}
		})
	}
	k.RunAll()

	secs := duration.Seconds()
	iops := float64(ops) / secs
	mibps := float64(ops) * float64(*bs) / (1 << 20) / secs
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) sim.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	fmt.Fprintf(w, "%s: bs=%d jobs=%d cores=%d duration=%v rw=%s\n", ssd.DefaultConfig().Name, *bs, *jobs, *cores, *duration, *rw)
	fmt.Fprintf(w, "  IOPS      = %.0f\n", iops)
	fmt.Fprintf(w, "  bandwidth = %.1f MiB/s (%.2f GiB/s)\n", mibps, mibps/1024)
	fmt.Fprintf(w, "  lat p50   = %v\n", pct(0.50))
	fmt.Fprintf(w, "  lat p99   = %v\n", pct(0.99))
	fmt.Fprintf(w, "  CPU busy  = %v\n", cpu.BusyTime())
	return nil
}
