// Command iostat analyses block-layer trace files (the CSV the harness can
// emit, standing in for the paper's bpftrace captures): totals, per-second
// bandwidth timeline, and the request size histogram behind O-15.
//
// Usage:
//
//	iostat -trace run.csv
//	iostat -trace run.csv -bucket 100ms -hist
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"svdbench/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "iostat: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("iostat", flag.ContinueOnError)
	var (
		path   = fs.String("trace", "", "trace CSV file (required)")
		bucket = fs.Duration("bucket", time.Second, "timeline bucket width")
		hist   = fs.Bool("hist", false, "print request size histogram")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-trace required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		fmt.Fprintln(w, "empty trace")
		return nil
	}

	t := trace.NewTracer(false)
	t.SetBucket(*bucket)
	for _, r := range records {
		t.Emit(r.At, r.Op, r.Bytes)
	}
	window := records[len(records)-1].At.Sub(records[0].At)
	if window <= 0 {
		window = *bucket
	}
	fmt.Fprintln(w, t.Summarize(window))
	fmt.Fprintf(w, "4 KiB requests: %.4f%% (paper O-15: >99.99%% for DiskANN)\n", 100*t.FractionOfSize(4096))

	fmt.Fprintln(w, "\ntimeline (read MiB/s per bucket):")
	for _, p := range t.Timeline() {
		fmt.Fprintf(w, "  %8v  %10.1f\n", time.Duration(p.Start), p.ReadMiBps(*bucket))
	}
	if *hist {
		fmt.Fprintln(w, "\nrequest size histogram:")
		for _, b := range t.SizeHistogram() {
			fmt.Fprintf(w, "  %8d B  %d\n", b.Bytes, b.Count)
		}
	}
	return nil
}
