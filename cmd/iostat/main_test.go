package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalysis(t *testing.T) {
	path := writeTrace(t, "ns,op,bytes\n0,R,4096\n1000000,R,4096\n2000000,W,8192\n")
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-hist"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reads=2", "writes=1", "4 KiB requests", "timeline", "histogram", "8192"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := writeTrace(t, "ns,op,bytes\n")
	var buf bytes.Buffer
	if err := run([]string{"-trace", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestRunMissingFlag(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("missing -trace accepted")
	}
}

func TestRunBadFile(t *testing.T) {
	if err := run([]string{"-trace", "/nonexistent/x.csv"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTrace(t, "ns,op,bytes\n0,X,1\n")
	if err := run([]string{"-trace", path}, &bytes.Buffer{}); err == nil {
		t.Error("bad op accepted")
	}
}
