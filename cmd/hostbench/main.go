// Command hostbench runs the host-speed microbenchmark suite of the search
// hot path and writes the results as JSON — the BENCH_host.json artefact
// that tracks the wall-clock trajectory of the distance kernels and the
// zero-alloc search layer across PRs (ROADMAP item 4), next to
// BENCH_pipeline.json's pipeline numbers.
//
// Two sections:
//
//   - kernels: scalar vs batch scoring of one query against 256 packed rows
//     at the paper's common dimensions (96/128/768/1536), for dot product,
//     squared L2 and cosine. One op scores all 256 rows, so scalar and batch
//     rows compare directly; the batch/scalar ratio at dim 768 is the
//     tentpole's ≥2× acceptance bar.
//   - search: end-to-end queries/sec of the zero-alloc search path — the
//     cached 10k-vector DiskANN stack (in-memory search and recorded
//     execution capture) and a 100k-vector in-memory exact scan.
//
// Usage:
//
//	go run ./cmd/hostbench [-out BENCH_host.json] [-quick] [-data DIR]
//
// -quick runs the kernel section only (the CI smoke mode: no dataset
// generation or index construction).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"testing"

	"svdbench/internal/core"
	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/index/flat"
	"svdbench/internal/vdb"
	"svdbench/internal/vec"
)

// result is one benchmark row of the JSON artefact.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// QPS is queries per second for search rows (0 for kernel rows).
	QPS float64 `json:"qps,omitempty"`
}

func bench(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchQPS is bench for search rows where one op runs `queries` queries.
func benchQPS(name string, queries int, fn func(b *testing.B)) result {
	r := bench(name, fn)
	if r.NsPerOp > 0 {
		r.QPS = float64(queries) * 1e9 / r.NsPerOp
	}
	return r
}

// kernelRows is the packed row count of every kernel benchmark.
const kernelRows = 256

// sink defeats dead-code elimination of benchmark bodies.
var sink float32

func kernelBenches() []result {
	r := rand.New(rand.NewSource(1))
	var out []result
	for _, dim := range []int{96, 128, 768, 1536} {
		q := make([]float32, dim)
		rows := make([]float32, kernelRows*dim)
		for i := range q {
			q[i] = r.Float32()
		}
		for i := range rows {
			rows[i] = r.Float32()
		}
		dists := make([]float32, kernelRows)
		row := func(i int) []float32 { return rows[i*dim : (i+1)*dim] }

		out = append(out,
			bench(fmt.Sprintf("dot-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var s float32
					for j := 0; j < kernelRows; j++ {
						s += vec.Dot(q, row(j))
					}
					sink += s
				}
			}),
			bench(fmt.Sprintf("dot-batch-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vec.DotBatch(q, rows, dists)
					sink += dists[0]
				}
			}),
			bench(fmt.Sprintf("l2sq-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var s float32
					for j := 0; j < kernelRows; j++ {
						s += vec.L2Sq(q, row(j))
					}
					sink += s
				}
			}),
			bench(fmt.Sprintf("l2sq-batch-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vec.L2SqBatch(q, rows, dists)
					sink += dists[0]
				}
			}),
			bench(fmt.Sprintf("cosine-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var s float32
					for j := 0; j < kernelRows; j++ {
						s += vec.CosineDistance(q, row(j))
					}
					sink += s
				}
			}),
			bench(fmt.Sprintf("cosine-batch-%d", dim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vec.DistanceBatch(vec.Cosine, q, rows, dists)
					sink += dists[0]
				}
			}),
		)
	}
	return out
}

func searchBenches(dataDir string) ([]result, error) {
	var out []result

	// 10k tier: the committed cohere-large DiskANN stack (a cache hit under
	// data/stacks), searched in memory and with execution recording. The
	// monolithic single-segment setup matches the committed asset, like the
	// cache/pipeline experiments.
	b := core.NewBench(dataset.ScaleSmall, dataDir)
	mono := vdb.Milvus()
	mono.SegmentCapacity = 0
	st, err := b.Stack("cohere-large", vdb.Setup{Engine: mono, Index: vdb.IndexDiskANN})
	if err != nil {
		return nil, fmt.Errorf("10k stack: %w", err)
	}
	queries := st.Dataset.Queries
	opts := st.Opts
	out = append(out,
		benchQPS("search-diskann-10k", queries.Len(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < queries.Len(); qi++ {
					exec := st.Col.Search(queries.Row(qi), core.PaperK, opts)
					if len(exec.IDs) == 0 {
						b.Fatal("empty result")
					}
				}
			}
		}),
		benchQPS("record-diskann-10k", queries.Len(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if execs := st.Col.RecordQueries(queries, core.PaperK, opts); len(execs) == 0 {
					b.Fatal("no executions")
				}
			}
		}),
	)

	// 100k tier: an in-memory exact scan at paper dimensionality. Generated
	// fresh (not disk-cached): ground truth is skipped, so generation is a
	// few seconds and the artefact stays out of the dataset cache.
	ds := dataset.Generate(dataset.Spec{
		Name: "host-100k", N: 100_000, Dim: 768, NumQueries: 32,
		Clusters: 64, Spread: 0.9, Seed: 7, Metric: vec.Cosine,
	})
	ix := flat.New(ds.Vectors, vec.Cosine, nil)
	scanOpts := index.SearchOptions{Scratch: index.NewSearchScratch()}
	var dst index.Result
	out = append(out,
		benchQPS("scan-flat-100k", ds.Queries.Len(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < ds.Queries.Len(); qi++ {
					ix.SearchInto(ds.Queries.Row(qi), core.PaperK, scanOpts, &dst)
					if len(dst.IDs) == 0 {
						b.Fatal("empty result")
					}
				}
			}
		}),
	)
	return out, nil
}

func main() {
	out := flag.String("out", "BENCH_host.json", "output path ('-' for stdout)")
	quick := flag.Bool("quick", false, "kernel benchmarks only (CI smoke)")
	dataDir := flag.String("data", defaultDataDir(), "dataset cache directory")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("hostbench: ")

	results := kernelBenches()
	// The tentpole bar: batch kernels ≥2× the per-pair scalar path at 768.
	logRatio := func(scalar, batch string) {
		var s, b float64
		for _, r := range results {
			switch r.Name {
			case scalar:
				s = r.NsPerOp
			case batch:
				b = r.NsPerOp
			}
		}
		if s > 0 && b > 0 {
			log.Printf("%s vs %s: %.1fx", batch, scalar, s/b)
		}
	}
	logRatio("dot-768", "dot-batch-768")
	logRatio("l2sq-768", "l2sq-batch-768")
	logRatio("cosine-768", "cosine-batch-768")

	if !*quick {
		sr, err := searchBenches(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, sr...)
	}

	enc, err := json.MarshalIndent(struct {
		Suite   string   `json:"suite"`
		Results []result `json:"results"`
	}{Suite: "host", Results: results}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(results))
}

func defaultDataDir() string {
	if d := os.Getenv("SVDBENCH_DATA"); d != "" {
		return d
	}
	return "data"
}
