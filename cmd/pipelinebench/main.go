// Command pipelinebench runs the host-side microbenchmark suite of the
// async batched search pipeline and writes the results as JSON — the
// BENCH_pipeline.json artefact that tracks the wall-clock trajectory of the
// batch-first hot path across PRs (ROADMAP item 5).
//
// Five targets cover the pipeline's two halves at tiny dataset scale:
//
//	search-batch          SearchBatch over the whole query set, synchronous
//	search-batch-la4      the same batch recording a look-ahead-4 schedule
//	replay-sync           simulated replay, direct per-request submission
//	replay-pipelined-la0  simulated replay, coalesced batches, no look-ahead
//	replay-pipelined      simulated replay, look-ahead + coalesced batches
//
// replay-pipelined-la0 isolates the batching machinery: it replays the same
// schedules as replay-sync, so its ns/op must not exceed replay-sync's —
// coalescing is pure mechanism and must cost nothing when nothing overlaps.
//
// Usage:
//
//	go run ./cmd/pipelinebench [-out BENCH_pipeline.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"svdbench"
)

// result is one benchmark row of the JSON artefact.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func bench(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output path ('-' for stdout)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("pipelinebench: ")

	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)
	col, err := svdbench.NewCollection("bench", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })

	syncOpts := svdbench.NewSearchOptions(svdbench.WithSearchList(20), svdbench.WithBeamWidth(4))
	laOpts := syncOpts.With(svdbench.WithLookAhead(4))
	syncExecs := col.RecordQueries(ds.Queries, svdbench.PaperK, syncOpts)
	laExecs := col.RecordQueries(ds.Queries, svdbench.PaperK, laOpts)
	ctx := context.Background()

	replayCfg := svdbench.RunConfig{
		Threads: 8, Duration: 50 * time.Millisecond, Repetitions: 1, Cores: 20,
	}
	results := []result{
		bench("search-batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := col.SearchBatch(ctx, ds.Queries, svdbench.PaperK, syncOpts); len(got) == 0 {
					b.Fatal("empty batch")
				}
			}
		}),
		bench("search-batch-la4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := col.SearchBatch(ctx, ds.Queries, svdbench.PaperK, laOpts); len(got) == 0 {
					b.Fatal("empty batch")
				}
			}
		}),
		bench("replay-sync", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := svdbench.RunWorkload(syncExecs, svdbench.Milvus(), replayCfg)
				if out.Metrics.Served == 0 {
					b.Fatal("no queries served")
				}
			}
		}),
		bench("replay-pipelined-la0", func(b *testing.B) {
			b.ReportAllocs()
			cfg := replayCfg
			cfg.CoalesceReads = true
			for i := 0; i < b.N; i++ {
				out := svdbench.RunWorkload(syncExecs, svdbench.Milvus(), cfg)
				if out.Metrics.Served == 0 {
					b.Fatal("no queries served")
				}
			}
		}),
		bench("replay-pipelined", func(b *testing.B) {
			b.ReportAllocs()
			cfg := replayCfg
			cfg.CoalesceReads = true
			cfg.LookAhead = 4
			for i := 0; i < b.N; i++ {
				out := svdbench.RunWorkload(laExecs, svdbench.Milvus(), cfg)
				if out.Metrics.Served == 0 {
					b.Fatal("no queries served")
				}
			}
		}),
	}

	enc, err := json.MarshalIndent(struct {
		Suite   string   `json:"suite"`
		Dataset string   `json:"dataset"`
		Results []result `json:"results"`
	}{Suite: "pipeline", Dataset: spec.Name, Results: results}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(results))
}
