module svdbench

go 1.22
