// Package svdbench is the public API of the storage-based ANN benchmark, a
// reproduction of "Storage-Based Approximate Nearest Neighbor Search: What
// are the Performance, Cost, and I/O Characteristics?" (IISWC 2025).
//
// The package re-exports the library's building blocks:
//
//   - synthetic embedding datasets with exact ground truth (GenerateDataset,
//     CatalogSpec),
//   - a full vector-database core with four engine trait profiles —
//     Milvus, Qdrant, Weaviate, LanceDB — over five index families —
//     IVF_FLAT, IVF_PQ, HNSW, HNSW_SQ, DiskANN (NewCollection),
//   - a calibrated discrete-event testbed simulation (RunWorkload), and
//   - the experiment registry that regenerates every table and figure of
//     the paper (Experiments, NewBench).
//
// See examples/quickstart for a five-minute tour.
package svdbench

import (
	"context"
	"time"

	"svdbench/internal/core"
	"svdbench/internal/dataset"
	"svdbench/internal/index"
	"svdbench/internal/index/diskann"
	"svdbench/internal/index/flat"
	"svdbench/internal/index/hnsw"
	"svdbench/internal/index/ivf"
	"svdbench/internal/index/spann"
	"svdbench/internal/vdb"
	"svdbench/internal/vec"
)

// Core data types.
type (
	// Dataset is a generated workload: base vectors, queries, ground truth.
	Dataset = dataset.Dataset
	// DatasetSpec describes a synthetic dataset deterministically.
	DatasetSpec = dataset.Spec
	// Scale selects catalog dataset sizes (ScaleTiny/ScaleSmall/ScaleRepro).
	Scale = dataset.Scale
	// Matrix is a dense row-major float32 vector collection.
	Matrix = vec.Matrix
	// Metric is a vector distance metric.
	Metric = vec.Metric

	// Collection is a vector collection under one engine's traits.
	Collection = vdb.Collection
	// Payload is auxiliary data attached to a vector.
	Payload = vdb.Payload
	// EngineTraits is the behavioural envelope of a database engine.
	EngineTraits = vdb.Traits
	// IndexKind selects an index family.
	IndexKind = vdb.IndexKind
	// BuildParams carries build-time index parameters (Table II).
	BuildParams = vdb.BuildParams
	// Setup pairs an engine with an index kind.
	Setup = vdb.Setup
	// QueryExec is a recorded query execution for simulation replay.
	QueryExec = vdb.QueryExec

	// SearchOptions carries search-time parameters (nprobe, efSearch,
	// search_list, beam_width, look-ahead, filters).
	SearchOptions = index.SearchOptions
	// SearchResult is a completed search with work statistics.
	SearchResult = index.Result
	// SearchStats counts the work one search performed, including the
	// speculative-read accounting of look-ahead pipelining.
	SearchStats = index.Stats
	// Searcher is a batch-capable index: SearchBatch answers a whole query
	// batch with results byte-identical to sequential Search calls.
	Searcher = index.Searcher

	// Bench orchestrates datasets, stacks and experiment cells.
	Bench = core.Bench
	// Stack is a prepared (dataset, engine, index) configuration.
	Stack = core.Stack
	// RunConfig controls one closed-loop measurement.
	RunConfig = core.RunConfig
	// RunOutput is the measurement result with optional I/O timeline.
	RunOutput = core.RunOutput
	// Metrics is the aggregate of one measurement.
	Metrics = core.Metrics
	// Experiment regenerates one table or figure of the paper.
	Experiment = core.Experiment
	// Scheduler fans experiment cells out over host worker goroutines with
	// deterministic result ordering.
	Scheduler = core.Scheduler
	// Progress is one per-cell completion report from a Scheduler.
	Progress = core.Progress

	// RunOption is a functional option over RunConfig (WithThreads, ...).
	RunOption = core.RunOption
	// SearchOption is a functional option over SearchOptions (WithBeamWidth, ...).
	SearchOption = index.SearchOption
)

// Typed sentinel errors, matchable with errors.Is through any wrapping.
var (
	// ErrUnknownEngine reports an engine name outside the paper's four.
	ErrUnknownEngine = vdb.ErrUnknownEngine
	// ErrUnknownExperiment reports an experiment id outside the registry.
	ErrUnknownExperiment = core.ErrUnknownExperiment
	// ErrBadParams reports structurally invalid caller input (bad dimension,
	// empty bulk load, mismatched vector).
	ErrBadParams = vdb.ErrBadParams
)

// Distance metrics.
const (
	L2     = vec.L2
	IP     = vec.IP
	Cosine = vec.Cosine
)

// Index kinds (Sec. III-C).
const (
	IndexIVFFlat = vdb.IndexIVFFlat
	IndexIVFPQ   = vdb.IndexIVFPQ
	IndexHNSW    = vdb.IndexHNSW
	IndexHNSWSQ  = vdb.IndexHNSWSQ
	IndexDiskANN = vdb.IndexDiskANN
)

// Catalog scales.
const (
	ScaleTiny  = dataset.ScaleTiny
	ScaleSmall = dataset.ScaleSmall
	ScaleRepro = dataset.ScaleRepro
)

// Engine trait profiles of the four benchmarked systems.
func Milvus() EngineTraits   { return vdb.Milvus() }
func Qdrant() EngineTraits   { return vdb.Qdrant() }
func Weaviate() EngineTraits { return vdb.Weaviate() }
func LanceDB() EngineTraits  { return vdb.LanceDB() }

// EngineByName resolves an engine trait profile by paper name.
func EngineByName(name string) (EngineTraits, error) { return vdb.EngineByName(name) }

// PaperSetups returns the seven (engine, index) configurations of the
// paper's Figures 2–4.
func PaperSetups() []Setup { return vdb.PaperSetups() }

// DefaultBuildParams returns the paper's Table II build-time settings
// (HNSW M=16/efC=200, DiskANN R=48/L=100/α=1.2, IVF nlist=4·√n).
func DefaultBuildParams() BuildParams { return vdb.DefaultBuildParams() }

// NewCollection creates an empty collection for an engine and index kind.
func NewCollection(name string, dim int, metric Metric, traits EngineTraits, kind IndexKind, params BuildParams) (*Collection, error) {
	return vdb.NewCollection(name, dim, metric, traits, kind, params)
}

// GenerateDataset builds the synthetic dataset described by spec, including
// exact ground truth.
func GenerateDataset(spec DatasetSpec) *Dataset { return dataset.Generate(spec) }

// LoadOrGenerateDataset returns the dataset for spec, using dir as an
// on-disk cache ("" disables caching).
func LoadOrGenerateDataset(dir string, spec DatasetSpec) (*Dataset, error) {
	return dataset.LoadOrGenerate(dir, spec)
}

// CatalogSpec returns the spec of one of the paper's four datasets
// ("cohere-small", "cohere-large", "openai-small", "openai-large") at a
// scale.
func CatalogSpec(name string, s Scale) (DatasetSpec, error) { return dataset.CatalogSpec(name, s) }

// CatalogNames lists the paper's datasets in presentation order.
func CatalogNames() []string { return dataset.CatalogNames() }

// MeanRecallAtK averages recall@k of search results against ground truth.
func MeanRecallAtK(results [][]int32, truth [][]int32, k int) float64 {
	return dataset.MeanRecallAtK(results, truth, k)
}

// NewMatrix allocates an n×dim vector matrix.
func NewMatrix(n, dim int) *Matrix { return vec.NewMatrix(n, dim) }

// RunWorkload replays recorded executions through the simulated testbed
// under a trait profile: the measurement primitive behind every figure. It
// is the context-free wrapper over RunWorkloadContext.
func RunWorkload(execs []QueryExec, traits EngineTraits, cfg RunConfig) RunOutput {
	return core.Run(execs, traits, cfg)
}

// RunWorkloadContext is RunWorkload with cancellation: a cancelled ctx stops
// the measurement between repetitions and returns ctx's error.
func RunWorkloadContext(ctx context.Context, execs []QueryExec, traits EngineTraits, cfg RunConfig) (RunOutput, error) {
	return core.RunContext(ctx, execs, traits, cfg)
}

// NewScheduler creates a worker pool running experiment cells on n host
// goroutines (n <= 0 selects runtime.GOMAXPROCS).
func NewScheduler(n int) *Scheduler { return core.NewScheduler(n) }

// NewRunConfig builds a RunConfig from functional options layered over the
// standard experiment defaults.
func NewRunConfig(opts ...RunOption) RunConfig { return core.NewRunConfig(opts...) }

// Functional options over RunConfig; see the core package for details.
func WithThreads(n int) RunOption                 { return core.WithThreads(n) }
func WithDuration(d time.Duration) RunOption      { return core.WithDuration(d) }
func WithRepetitions(n int) RunOption             { return core.WithRepetitions(n) }
func WithCores(n int) RunOption                   { return core.WithCores(n) }
func WithSeed(seed int64) RunOption               { return core.WithSeed(seed) }
func WithTimeline(bucket time.Duration) RunOption { return core.WithTimeline(bucket) }
func WithMaxReadConcurrent(n int) RunOption       { return core.WithMaxReadConcurrent(n) }
func WithCoalesceReads(on bool) RunOption         { return core.WithCoalesceReads(on) }

// NewSearchOptions builds SearchOptions from functional options.
func NewSearchOptions(opts ...SearchOption) SearchOptions { return index.NewSearchOptions(opts...) }

// Functional options over SearchOptions; see the index package for details.
func WithNProbe(n int) SearchOption     { return index.WithNProbe(n) }
func WithEfSearch(ef int) SearchOption  { return index.WithEfSearch(ef) }
func WithSearchList(l int) SearchOption { return index.WithSearchList(l) }
func WithBeamWidth(w int) SearchOption  { return index.WithBeamWidth(w) }

// Async-pipeline options for the batch-first search API: WithLookAhead sets
// how many top unexpanded candidates' pages a storage-based search
// speculatively prefetches while the current hop scores (results stay
// byte-identical at any depth); WithQueryConcurrency bounds how many queries
// of one SearchBatch run concurrently.
func WithLookAhead(n int) SearchOption        { return index.WithLookAhead(n) }
func WithQueryConcurrency(n int) SearchOption { return index.WithQueryConcurrency(n) }

// WithLayout selects the on-disk layout of a storage-based search: LayoutID
// (one node per 4 KiB page slot, the paper's layout and the default) or
// LayoutPage (page-node co-design: beam search over page groups packing each
// node with its nearest graph neighbours, scoring every resident a fetched
// page returns). The `layout` experiment (Extension G) measures the
// device-read difference at equal recall.
func WithLayout(layout string) SearchOption { return index.WithLayout(layout) }

// On-disk layout names accepted by WithLayout.
const (
	LayoutID   = index.LayoutID
	LayoutPage = index.LayoutPage
)

// Node-cache options for the storage-based indexes (DiskANN, SPANN): cache
// the n hottest nodes between beam search and the device. Policies are
// NodeCacheStatic (BFS-warmed from the entry point) and NodeCacheLRU.
func WithNodeCacheNodes(n int) SearchOption     { return index.WithNodeCacheNodes(n) }
func WithNodeCachePolicy(p string) SearchOption { return index.WithNodeCachePolicy(p) }

// Node-cache policy names accepted by WithNodeCachePolicy.
const (
	NodeCacheStatic = index.NodeCacheStatic
	NodeCacheLRU    = index.NodeCacheLRU
)

// NewBench creates an experiment orchestrator at a dataset scale, caching
// generated datasets in cacheDir ("" disables).
func NewBench(scale Scale, cacheDir string) *Bench { return core.NewBench(scale, cacheDir) }

// Experiments returns the registry regenerating every table and figure.
func Experiments() []Experiment { return core.Experiments() }

// ExperimentByID finds one experiment ("table1", "fig2", ..., "extC").
func ExperimentByID(id string) (Experiment, error) { return core.ExperimentByID(id) }

// PaperK is the result depth (k=10) every experiment uses.
const PaperK = core.PaperK

// Bare index constructors, for algorithm-level work outside the database
// layer (the extD experiment compares DiskANN and SPANN this way).
type (
	// VectorIndex is the interface all index families implement.
	VectorIndex = index.Index
	// HNSWConfig configures an HNSW build (M, efConstruction, SQ).
	HNSWConfig = hnsw.Config
	// DiskANNConfig configures a Vamana/DiskANN build (R, LBuild, alpha, PQM).
	DiskANNConfig = diskann.Config
	// IVFConfig configures an IVF build (nlist, PQ).
	IVFConfig = ivf.Config
	// SPANNConfig configures a SPANN-style build (posting size, replication).
	SPANNConfig = spann.Config
)

// BuildHNSW constructs a hierarchical navigable small-world graph index.
func BuildHNSW(data *Matrix, ids []int32, cfg HNSWConfig) (*hnsw.Index, error) {
	return hnsw.Build(data, ids, cfg)
}

// BuildDiskANN constructs a storage-based Vamana graph index.
func BuildDiskANN(data *Matrix, ids []int32, cfg DiskANNConfig) (*diskann.Index, error) {
	return diskann.Build(data, ids, cfg)
}

// BuildIVF constructs an inverted-file index (flat or PQ).
func BuildIVF(data *Matrix, ids []int32, cfg IVFConfig) (*ivf.Index, error) {
	return ivf.Build(data, ids, cfg)
}

// BuildSPANN constructs a SPANN-style storage-based cluster index.
func BuildSPANN(data *Matrix, ids []int32, cfg SPANNConfig) (*spann.Index, error) {
	return spann.Build(data, ids, cfg)
}

// NewFlat constructs the exact brute-force baseline index.
func NewFlat(data *Matrix, metric Metric, ids []int32) *flat.Index {
	return flat.New(data, metric, ids)
}
