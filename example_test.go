package svdbench_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"svdbench"
)

// Example shows the end-to-end flow: generate a dataset, build a collection
// under an engine profile, search it, and replay the workload on the
// simulated testbed.
func Example() {
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)

	col, err := svdbench.NewCollection("demo", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })

	opts := svdbench.SearchOptions{SearchList: 10, BeamWidth: 4}
	execs := col.RecordQueries(ds.Queries, svdbench.PaperK, opts)
	out := svdbench.RunWorkload(execs, svdbench.Milvus(), svdbench.RunConfig{
		Threads: 8, Duration: 100 * time.Millisecond, Repetitions: 1,
	})
	fmt.Println(out.Metrics.Served > 0)
	// Output: true
}

// ExampleBuildHNSW builds a bare HNSW index outside the database layer.
func ExampleBuildHNSW() {
	data := svdbench.NewMatrix(3, 4)
	data.SetRow(0, []float32{1, 0, 0, 0})
	data.SetRow(1, []float32{0, 1, 0, 0})
	data.SetRow(2, []float32{0.9, 0.1, 0, 0})
	ix, err := svdbench.BuildHNSW(data, nil, svdbench.HNSWConfig{M: 4, Metric: svdbench.L2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res := ix.Search([]float32{1, 0, 0, 0}, 2, svdbench.SearchOptions{EfSearch: 4})
	fmt.Println(res.IDs)
	// Output: [0 2]
}

// ExampleExperiments lists the registry that regenerates the paper.
func ExampleExperiments() {
	fmt.Println(len(svdbench.Experiments()), "experiments")
	first, _ := svdbench.ExperimentByID("table1")
	fmt.Println(first.Paper)
	// Output:
	// 23 experiments
	// Table I
}

// ExampleCollection_SearchBatch runs a whole query set through the
// batch-first search core. Each query's result is byte-identical to calling
// Search per query; the batch runs up to WithQueryConcurrency queries at
// once and WithLookAhead pipelines each query's storage reads at replay.
func ExampleCollection_SearchBatch() {
	spec, err := svdbench.CatalogSpec("cohere-small", svdbench.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	ds := svdbench.GenerateDataset(spec)

	col, err := svdbench.NewCollection("demo", ds.Spec.Dim, ds.Spec.Metric,
		svdbench.Milvus(), svdbench.IndexDiskANN, svdbench.DefaultBuildParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.BulkLoad(ds.Vectors, nil); err != nil {
		log.Fatal(err)
	}
	var page int64
	col.AssignStorage(func(n int64) int64 { p := page; page += n; return p })

	opts := svdbench.NewSearchOptions(
		svdbench.WithSearchList(10), svdbench.WithBeamWidth(4),
		svdbench.WithLookAhead(2), svdbench.WithQueryConcurrency(4))
	execs := col.SearchBatch(context.Background(), ds.Queries, svdbench.PaperK, opts)
	single := col.Search(ds.Queries.Row(0), svdbench.PaperK, opts)
	fmt.Println(len(execs) == ds.Queries.Len())
	fmt.Println(fmt.Sprint(execs[0].IDs) == fmt.Sprint(single.IDs))
	// Output:
	// true
	// true
}
