# svdbench build/verify targets. `make check` is the tier-1 verification
# gate: vet, the annlint determinism/seeding/error-hygiene analyzers, build,
# and the full test suite under the race detector (the scheduler fans
# experiment cells across host goroutines, so every test run doubles as a
# concurrency audit).

GO ?= go

.PHONY: all build test race vet lint lint-fast lint-deep check bench bench-pipeline bench-host bench-diff fuzz

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the simulation-heavy core suite by an order of
# magnitude; give it headroom beyond go test's 10m default.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (see DESIGN.md "Static analysis &
# determinism conventions" and `go run ./cmd/annlint -list`). `lint` runs the
# full suite; `lint-fast` runs only the single-pass AST analyzers (wallclock,
# seededrand, mapiter, errwrap, ctxprop, floatcmp, detmerge) and `lint-deep`
# only the fact-based cross-package analyzers (hotalloc, scratchalias,
# goroleak).
lint:
	$(GO) run ./cmd/annlint ./...

lint-fast:
	$(GO) run ./cmd/annlint -fast ./...

lint-deep:
	$(GO) run ./cmd/annlint -deep ./...

check: vet lint build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Async-pipeline microbenchmarks: regenerates the committed
# BENCH_pipeline.json wall-clock trajectory artefact (ROADMAP item 5).
bench-pipeline:
	$(GO) run ./cmd/pipelinebench -out BENCH_pipeline.json

# Host-speed microbenchmarks of the distance kernels and the zero-alloc
# search layer: regenerates the committed BENCH_host.json trajectory
# artefact (ROADMAP item 4). HOSTBENCH_FLAGS=-quick runs the kernel section
# only (the CI smoke mode).
bench-host:
	$(GO) run ./cmd/hostbench -out BENCH_host.json $(HOSTBENCH_FLAGS)

# Regression gate over the committed benchmark baselines: reruns the quick
# kernel suite into a scratch file and fails on >20% ns/op growth or any
# allocs/op growth on gated (non-replay) entries. CI runs this after its
# bench-host smoke.
bench-diff:
	$(GO) run ./cmd/hostbench -quick -out /tmp/bench_host_fresh.json
	$(GO) run ./cmd/benchdiff -base BENCH_host.json -new /tmp/bench_host_fresh.json

# Short coverage-guided fuzzing of the node-cache invariants (the seeded
# corpora already run as part of every plain `go test`); each target gets a
# brief budget so CI exercises the mutation engine without open-ended runs.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLRUVsModel -fuzztime=$(FUZZTIME) ./internal/storage/nodecache
	$(GO) test -run=^$$ -fuzz=FuzzStaticVsModel -fuzztime=$(FUZZTIME) ./internal/storage/nodecache
	$(GO) test -run=^$$ -fuzz=FuzzDeterministicReplay -fuzztime=$(FUZZTIME) ./internal/storage/nodecache
